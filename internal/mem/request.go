// Package mem provides the memory-controller building blocks shared by
// the baseline and PCMap controllers: the request type, DDR3-style
// physical address mapping, shared command/data bus models with
// turnaround accounting, FR-FCFS queue selection, and the metrics the
// paper's evaluation reports.
package mem

import (
	"pcmap/internal/ecc"
	"pcmap/internal/sim"
)

// Kind distinguishes reads from writes.
type Kind int

const (
	// Read is a demand cache-line fetch (64 B, critical path).
	Read Kind = iota
	// Write is a cache-line write-back from the LLC with a dirty-word
	// mask identifying the essential words.
	Write
)

func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Request is one memory transaction presented to a controller.
type Request struct {
	Kind Kind
	// Addr is the line-aligned physical byte address.
	Addr uint64
	// Mask marks the dirty 8-byte words of a write-back (bit w =>
	// word w changed in the cache). Zero means a fully silent
	// write-back. Ignored for reads.
	Mask uint8
	// Data optionally carries the new line content for writes. When
	// nil, the controller synthesizes changed words so the functional
	// store still exercises real differential writes and parity
	// updates.
	Data *[ecc.LineBytes]byte
	// Core identifies the requesting core (for per-core stats and
	// rollback delivery); -1 for traffic with no core attribution.
	Core int
	// OnDone, if non-nil, runs when the request completes. For RoW
	// reads completion is the moment reconstructed data is returned to
	// the CPU; verification results arrive later via OnVerify.
	OnDone func(*Request)
	// OnVerify, if non-nil, runs for RoW-served reads when the
	// deferred SECDED verification completes; faulty reports whether
	// the initially returned data turned out wrong (the CPU must
	// discard or roll back).
	OnVerify func(r *Request, faulty bool)

	// Timestamps filled by the controller.
	Arrive sim.Time
	Issue  sim.Time
	Done   sim.Time

	// Started marks a request that has left the queue's schedulable
	// pool and is in service (its queue slot is held until completion,
	// as the controller's buffers hold the data until then).
	Started bool

	// Reconstructed is set when the read was served by RoW, with the
	// busy chip's word rebuilt from PCC parity.
	Reconstructed bool
	// DelayedByWrite is set when the request's service was ever
	// blocked behind an ongoing write (Figure 1's metric).
	DelayedByWrite bool

	// ReadData receives the returned line content for reads.
	ReadData [ecc.LineBytes]byte

	// Err is set before OnDone when the request could not be served
	// correctly — for reads, an *UncorrectableError when stored
	// corruption survived SECDED correction and PCC reconstruction.
	// Nil on every successfully served request.
	Err error
}

// Latency returns the request's total service latency.
func (r *Request) Latency() sim.Time { return r.Done - r.Arrive }
