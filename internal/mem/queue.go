package mem

import "pcmap/internal/sim"

// Queue is a bounded FIFO of requests with FR-FCFS selection support:
// the scheduler prefers row-buffer hits and, among equals, older
// requests (Section II-B).
type Queue struct {
	reqs []*Request
	cap  int
}

// NewQueue returns an empty queue with the given capacity.
func NewQueue(capacity int) *Queue { return &Queue{cap: capacity} }

// Len returns the number of queued requests.
func (q *Queue) Len() int { return len(q.reqs) }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.cap }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return len(q.reqs) >= q.cap }

// Occupancy returns the fill fraction in [0,1].
func (q *Queue) Occupancy() float64 {
	if q.cap == 0 {
		return 0
	}
	return float64(len(q.reqs)) / float64(q.cap)
}

// Push appends r. It reports false (and does not enqueue) when full.
func (q *Queue) Push(r *Request) bool {
	if q.Full() {
		return false
	}
	q.reqs = append(q.reqs, r)
	return true
}

// Oldest returns the oldest request matching pred, or nil. A nil pred
// matches everything.
func (q *Queue) Oldest(pred func(*Request) bool) *Request {
	for _, r := range q.reqs {
		if pred == nil || pred(r) {
			return r
		}
	}
	return nil
}

// SelectFRFCFS returns the request the FR-FCFS policy would issue next
// among those matching ready: the oldest row-hit request if any,
// otherwise the oldest ready request. rowHit classifies a request.
func (q *Queue) SelectFRFCFS(ready func(*Request) bool, rowHit func(*Request) bool) *Request {
	var firstReady *Request
	for _, r := range q.reqs {
		if !ready(r) {
			continue
		}
		if rowHit(r) {
			return r
		}
		if firstReady == nil {
			firstReady = r
		}
	}
	return firstReady
}

// Remove deletes r from the queue (no-op if absent), preserving order.
func (q *Queue) Remove(r *Request) {
	for i, x := range q.reqs {
		if x == r {
			q.reqs = append(q.reqs[:i], q.reqs[i+1:]...)
			return
		}
	}
}

// Each calls fn for every queued request in arrival order; fn returning
// false stops the walk.
func (q *Queue) Each(fn func(*Request) bool) {
	for _, r := range q.reqs {
		if !fn(r) {
			return
		}
	}
}

// OldestArrival returns the arrival time of the head request, or zero
// when empty.
func (q *Queue) OldestArrival() sim.Time {
	if len(q.reqs) == 0 {
		return 0
	}
	return q.reqs[0].Arrive
}
