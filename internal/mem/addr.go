package mem

import (
	"fmt"
	"math/bits"

	"pcmap/internal/ecc"
)

// Geometry is the memory shape the address map needs. It lives here
// (rather than taking config.Memory directly) so that config can
// depend on this package's unit types without an import cycle.
type Geometry struct {
	Channels      int
	Banks         int
	RowBytes      int64
	CapacityBytes int64
}

// AddrMap decodes line-aligned physical addresses into the DDR3
// topology coordinates of Table I. The bit layout, low to high, is
//
//	[6b line offset][channel][column][bank][row]
//
// so consecutive cache lines interleave across channels (maximizing
// channel parallelism) while consecutive channel-local lines walk the
// columns of one row (preserving row-buffer locality), the conventional
// DRAMSim2-style mapping.
type AddrMap struct {
	Channels int
	Banks    int

	chBits, colBits, bankBits int
	linesPerRow               int
	rows                      int64
}

// NewAddrMap builds the mapping for the given memory geometry.
func NewAddrMap(g Geometry) (*AddrMap, error) {
	a := &AddrMap{Channels: g.Channels, Banks: g.Banks}
	if g.Channels&(g.Channels-1) != 0 || g.Banks&(g.Banks-1) != 0 {
		return nil, fmt.Errorf("mem: channels (%d) and banks (%d) must be powers of two", g.Channels, g.Banks)
	}
	a.chBits = bits.TrailingZeros(uint(g.Channels))
	a.bankBits = bits.TrailingZeros(uint(g.Banks))
	a.linesPerRow = int(g.RowBytes / ecc.LineBytes)
	if a.linesPerRow <= 0 || a.linesPerRow&(a.linesPerRow-1) != 0 {
		return nil, fmt.Errorf("mem: lines per row %d must be a positive power of two", a.linesPerRow)
	}
	a.colBits = bits.TrailingZeros(uint(a.linesPerRow))
	a.rows = g.CapacityBytes / (int64(g.Channels) * int64(g.Banks) * g.RowBytes)
	if a.rows <= 0 {
		return nil, fmt.Errorf("mem: capacity %d too small for geometry", g.CapacityBytes)
	}
	return a, nil
}

// Coord locates a line within the memory system.
type Coord struct {
	Channel int
	Bank    int
	Row     int64
	Col     int
	// LineIdx is the channel-local line index used as the functional
	// store key (unique per channel).
	LineIdx uint64
	// RotIdx is the index that drives the rotation schemes: the
	// channel-local sequential line number, so successive channel-local
	// addresses get successive rotation offsets (Section IV-C2 uses
	// "Address modulo (k x L)"; we use the channel-local equivalent so
	// all eight/ten offsets occur regardless of channel interleaving).
	RotIdx uint64
}

// Decode maps a byte address to its coordinates. Addresses beyond the
// configured capacity wrap (the simulator's synthetic footprints stay
// inside capacity; wrapping just keeps arithmetic total).
func (a *AddrMap) Decode(addr uint64) Coord {
	line := addr >> 6
	var c Coord
	c.Channel = int(line & uint64(a.Channels-1))
	line >>= uint(a.chBits)
	c.Col = int(line & uint64(a.linesPerRow-1))
	line >>= uint(a.colBits)
	c.Bank = int(line & uint64(a.Banks-1))
	line >>= uint(a.bankBits)
	c.Row = int64(line % uint64(a.rows))
	c.LineIdx = (uint64(c.Row)*uint64(a.Banks)+uint64(c.Bank))*uint64(a.linesPerRow) + uint64(c.Col)
	c.RotIdx = uint64(c.Row)*uint64(a.linesPerRow) + uint64(c.Col)
	return c
}

// Encode is the inverse of Decode for in-capacity coordinates, used by
// tests and trace tooling.
func (a *AddrMap) Encode(c Coord) uint64 {
	line := uint64(c.Row)
	line = line<<uint(a.bankBits) | uint64(c.Bank)
	line = line<<uint(a.colBits) | uint64(c.Col)
	line = line<<uint(a.chBits) | uint64(c.Channel)
	return line << 6
}

// CoordFromLineIdx rebuilds the full coordinates of a channel-local
// line index (the inverse of the LineIdx construction in Decode); the
// wear-leveling remapper uses it to locate a remapped physical line.
func (a *AddrMap) CoordFromLineIdx(channel int, lineIdx uint64) Coord {
	var c Coord
	c.Channel = channel
	c.Col = int(lineIdx % uint64(a.linesPerRow))
	rest := lineIdx / uint64(a.linesPerRow)
	c.Bank = int(rest % uint64(a.Banks))
	c.Row = int64(rest/uint64(a.Banks)) % a.rows
	c.LineIdx = lineIdx
	c.RotIdx = uint64(c.Row)*uint64(a.linesPerRow) + uint64(c.Col)
	return c
}

// LinesPerChannel returns the channel-local line count.
func (a *AddrMap) LinesPerChannel() uint64 {
	return uint64(a.rows) * uint64(a.Banks) * uint64(a.linesPerRow)
}

// LinesPerRow returns the number of cache lines per row buffer.
func (a *AddrMap) LinesPerRow() int { return a.linesPerRow }

// Rows returns the number of rows per bank.
func (a *AddrMap) Rows() int64 { return a.rows }
