package mem

import "fmt"

// UncorrectableError reports a read whose returned data could not be
// fully repaired: SECDED found a multi-bit error in at least one word
// and PCC reconstruction could not produce a word that re-validates
// against the stored check bits. The request's ReadData still carries
// the controller's best effort, but the marked words are not
// trustworthy; consumers must treat the access as failed rather than
// use the data silently.
type UncorrectableError struct {
	// Addr is the request's line-aligned physical byte address.
	Addr uint64
	// LineIdx is the channel-local line index (after any remapping).
	LineIdx uint64
	// WordMask marks the 8-byte words (bit w = word w) that remain
	// corrupt after SECDED correction and PCC reconstruction. Zero means
	// the line-level parity audit failed without localizing a word: some
	// word passed SECDED (or was silently miscorrected — SECDED aliases
	// >=3-bit errors) yet the line's XOR disagrees with its PCC parity.
	WordMask uint8
}

func (e *UncorrectableError) Error() string {
	return fmt.Sprintf("mem: uncorrectable error at addr %#x (line %#x, words %#08b)",
		e.Addr, e.LineIdx, e.WordMask)
}
