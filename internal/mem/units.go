package mem

import "pcmap/internal/sim"

// This file defines the defined ("unit") types the simulator uses for
// quantities that are *not* simulated time: memory-bus clock cycles and
// raw picoseconds. Mixing them with sim.Time through bare conversions
// is exactly the class of bug (a cycles-vs-nanoseconds mixup) that
// silently invalidates every experiment, so the pcmaplint unitsafe
// analyzer bans cross-unit conversions outside the defining packages.
// Conversions happen only through the methods below.

// Cycles counts cycles of the 400 MHz DDR3 memory clock, the unit the
// paper's Table I command timings (tCL, tWL, tBurst, ...) are quoted
// in. It is a count, not a duration: convert with Time() before adding
// to any sim.Time quantity.
type Cycles int

// Time converts the cycle count to simulated time (2.5 ns per cycle).
func (c Cycles) Time() sim.Time { return sim.MemCycle.Times(int(c)) }

// Times returns the cycle count scaled by n (e.g. burst cycles per
// transferred word group).
func (c Cycles) Times(n int) Cycles { return c * Cycles(n) }

// Int returns the raw count for indexing and formatting.
func (c Cycles) Int() int { return int(c) }

// Picos is a duration in picoseconds, the unit PCM cell timings are
// quoted in by the device literature. sim.Time ticks are 100 ps, so a
// Picos value is 100x finer than the engine's clock; Time() truncates
// to whole ticks.
type Picos int64

// PicosFromNS returns a Picos duration of ns nanoseconds.
func PicosFromNS(ns float64) Picos { return Picos(ns * 1e3) }

// PicosOf converts simulated time to picoseconds exactly.
func PicosOf(t sim.Time) Picos { return Picos(t.Ticks() * 100) }

// Time converts to simulated time, truncating to a whole 100 ps tick.
func (p Picos) Time() sim.Time { return sim.Time(p / 100) }

// NS reports the duration as a floating point number of nanoseconds.
func (p Picos) NS() float64 { return float64(p) / 1e3 }
