package mem

import (
	"pcmap/internal/obs"
	"pcmap/internal/sim"
)

// Bus models a shared, serialized channel resource (the 80-bit data bus
// or the command/address bus). The data bus additionally charges a
// turnaround delay whenever the transfer direction flips (the write
// turnaround of Section II-B).
type Bus struct {
	freeAt     sim.Time
	lastWrite  bool
	any        bool
	Turnaround sim.Time // applied on direction change (0 for command bus)

	// Busy accumulates total occupied time for utilization reporting.
	Busy sim.Time

	// Timeline instrumentation (nil when tracing is off): every Acquire
	// becomes an occupancy span on the bus's track.
	trace           *obs.Tracer
	track           obs.TrackID
	nmRead, nmWrite obs.NameID
}

// Instrument attaches the bus to a timeline track. A nil tracer leaves
// the bus untraced; the hot path then costs a single nil check.
func (b *Bus) Instrument(tr *obs.Tracer, process, name string) {
	if tr == nil {
		return
	}
	b.trace = tr
	b.track = tr.Track(process, name)
	b.nmRead = tr.Name("xfer.read")
	b.nmWrite = tr.Name("xfer.write")
}

// Acquire books the bus for dur starting no earlier than earliest,
// honoring previous occupancy and direction turnaround. It returns the
// transfer's [start, end).
func (b *Bus) Acquire(earliest, dur sim.Time, write bool) (start, end sim.Time) {
	start = earliest
	if b.freeAt > start {
		start = b.freeAt
	}
	if b.any && b.lastWrite != write {
		start += b.Turnaround
	}
	end = start + dur
	b.freeAt = end
	b.lastWrite = write
	b.any = true
	b.Busy += dur
	if b.trace != nil {
		nm := b.nmRead
		if write {
			nm = b.nmWrite
		}
		b.trace.Span(b.track, nm, start, dur)
	}
	return start, end
}

// FreeAt returns the time the bus next becomes free.
func (b *Bus) FreeAt() sim.Time { return b.freeAt }

// NextFree returns the later of t and the bus's free time, without
// booking anything.
func (b *Bus) NextFree(t sim.Time) sim.Time {
	if b.freeAt > t {
		return b.freeAt
	}
	return t
}
