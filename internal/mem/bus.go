package mem

import "pcmap/internal/sim"

// Bus models a shared, serialized channel resource (the 80-bit data bus
// or the command/address bus). The data bus additionally charges a
// turnaround delay whenever the transfer direction flips (the write
// turnaround of Section II-B).
type Bus struct {
	freeAt     sim.Time
	lastWrite  bool
	any        bool
	Turnaround sim.Time // applied on direction change (0 for command bus)

	// Busy accumulates total occupied time for utilization reporting.
	Busy sim.Time
}

// Acquire books the bus for dur starting no earlier than earliest,
// honoring previous occupancy and direction turnaround. It returns the
// transfer's [start, end).
func (b *Bus) Acquire(earliest, dur sim.Time, write bool) (start, end sim.Time) {
	start = earliest
	if b.freeAt > start {
		start = b.freeAt
	}
	if b.any && b.lastWrite != write {
		start += b.Turnaround
	}
	end = start + dur
	b.freeAt = end
	b.lastWrite = write
	b.any = true
	b.Busy += dur
	return start, end
}

// FreeAt returns the time the bus next becomes free.
func (b *Bus) FreeAt() sim.Time { return b.freeAt }

// NextFree returns the later of t and the bus's free time, without
// booking anything.
func (b *Bus) NextFree(t sim.Time) sim.Time {
	if b.freeAt > t {
		return b.freeAt
	}
	return t
}
