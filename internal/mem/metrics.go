package mem

import (
	"pcmap/internal/sim"
	"pcmap/internal/stats"
)

// Metrics aggregates everything the paper's evaluation section measures
// for one memory channel. The experiment harness merges channels.
type Metrics struct {
	Reads        stats.Counter
	Writes       stats.Counter
	SilentWrites stats.Counter // write-backs with zero essential words

	ReadLatency  *stats.LatencyTracker // arrival to data return
	WriteLatency *stats.LatencyTracker // arrival to final chip update

	ReadsDelayedByWrite stats.Counter // Figure 1 numerator

	DirtyWords *stats.Histogram // Figure 2: essential words per write

	IRLP *stats.IRLP // Figure 8

	RoWServed     stats.Counter // reads served by reconstruction
	RoWVerifies   stats.Counter
	RoWFaulty     stats.Counter // verifications that found bad data
	WoWOverlapped stats.Counter // writes issued while another write ongoing
	OverlapReads  stats.Counter // reads issued while a write was in service

	// Partition-level parallelism (the PALP variant). A "part overlap"
	// is an access that proceeded only because the conflicting work sat
	// in a different partition of its bank — exactly the service the
	// whole-bank scheduler would have delayed.
	PartOverlapReads  stats.Counter
	PartOverlapWrites stats.Counter

	// Content-aware write distributions (the RWoW-DCA variant): SET and
	// RESET transition counts per serviced write, over the whole line
	// (0..512 bits). Nil on variants without ContentAware observation.
	SetBits   *stats.Histogram
	ResetBits *stats.Histogram

	ECCCorrected stats.Counter // SECDED single-bit corrections on reads

	// Reliability path (fault injection + program-and-verify; the
	// counters cross-check against pcm.FaultModel's injection counts).
	SECDEDCorrected  stats.Counter         // read words repaired by SECDED (data bit)
	SECDEDCheckFixed stats.Counter         // check-word-only errors found by SECDED
	PCCRecovered     stats.Counter         // double-bit words rebuilt from PCC parity
	UncorrectedReads stats.Counter         // reads reported with a typed uncorrectable error
	WriteVerifies    stats.Counter         // writes that entered program-and-verify
	VerifyReads      stats.Counter         // verify read-back operations (initial + per retry)
	WriteRetries     stats.Counter         // re-program attempts after a verify mismatch
	WriteRemaps      stats.Counter         // lines remapped to the spare pool
	RemapFailures    stats.Counter         // remaps abandoned: spare pool exhausted
	VerifyLatency    *stats.LatencyTracker // verify/retry time appended past the write's program end

	DrainEntries stats.Counter
	WriteQStalls stats.Counter // enqueue attempts rejected: write queue full
	ReadQStalls  stats.Counter
	StatusPolls  stats.Counter
	WearMoves    stats.Counter // Start-Gap line copies
	WritePauses  stats.Counter // write-pausing segment interruptions

	FirstArrival sim.Time
	LastDone     sim.Time
	// HaveArrival distinguishes "no request observed" from a first
	// arrival at time zero. Exported so the whole block (and therefore
	// system.Results) serializes for the experiment runner's disk cache;
	// treat it as read-only outside NoteArrival/Merge/Reset.
	HaveArrival bool

	// reg indexes every counter field above under its snake_case report
	// name. It is built lazily (registry) so a Metrics decoded from the
	// experiment runner's JSON cache — which round-trips only the
	// exported fields — re-binds transparently on first use. Reset,
	// Merge, and Counters all delegate to it, making the registry the
	// single source of truth for the counter set; the struct fields
	// remain as thin compatibility accessors for call sites
	// (m.Reads.Inc() and friends keep working because the registry holds
	// pointers to the fields, not copies).
	reg *stats.Registry
}

// NewMetrics returns a zeroed metrics block with its counter registry
// bound.
func NewMetrics() *Metrics {
	m := &Metrics{
		ReadLatency:   stats.NewLatencyTracker(),
		WriteLatency:  stats.NewLatencyTracker(),
		VerifyLatency: stats.NewLatencyTracker(),
		DirtyWords:    stats.NewHistogram(9),
		SetBits:       stats.NewHistogram(513),
		ResetBits:     stats.NewHistogram(513),
		IRLP:          stats.NewIRLP(),
	}
	m.reg = stats.NewRegistry()
	m.bind(m.reg)
	return m
}

// bind registers every counter field into r under its report name, in
// the report's fixed order (registration order is iteration order, so
// this list IS the Counters output order — append only at the end, as
// report compatibility demands). The pcmaplint metricscomplete analyzer
// checks that no counter field is missing here.
func (m *Metrics) bind(r *stats.Registry) {
	r.Register("reads", &m.Reads)
	r.Register("writes", &m.Writes)
	r.Register("silent_writes", &m.SilentWrites)
	r.Register("reads_delayed_by_write", &m.ReadsDelayedByWrite)
	r.Register("row_served", &m.RoWServed)
	r.Register("row_verifies", &m.RoWVerifies)
	r.Register("row_faulty", &m.RoWFaulty)
	r.Register("wow_overlapped", &m.WoWOverlapped)
	r.Register("overlap_reads", &m.OverlapReads)
	r.Register("ecc_corrected", &m.ECCCorrected)
	r.Register("secded_corrected", &m.SECDEDCorrected)
	r.Register("secded_check_fixed", &m.SECDEDCheckFixed)
	r.Register("pcc_recovered", &m.PCCRecovered)
	r.Register("uncorrected_reads", &m.UncorrectedReads)
	r.Register("write_verifies", &m.WriteVerifies)
	r.Register("verify_reads", &m.VerifyReads)
	r.Register("write_retries", &m.WriteRetries)
	r.Register("write_remaps", &m.WriteRemaps)
	r.Register("remap_failures", &m.RemapFailures)
	r.Register("drain_entries", &m.DrainEntries)
	r.Register("writeq_stalls", &m.WriteQStalls)
	r.Register("readq_stalls", &m.ReadQStalls)
	r.Register("status_polls", &m.StatusPolls)
	r.Register("wear_moves", &m.WearMoves)
	r.Register("write_pauses", &m.WritePauses)
	r.Register("part_overlap_reads", &m.PartOverlapReads)
	r.Register("part_overlap_writes", &m.PartOverlapWrites)
}

// registry returns the metrics block's private counter index, building
// it on first use. Laziness matters: a Metrics produced by the JSON
// codecs arrives with reg == nil and must behave identically to a
// freshly constructed one.
func (m *Metrics) registry() *stats.Registry {
	if m.reg == nil {
		m.reg = stats.NewRegistry()
		m.bind(m.reg)
	}
	return m.reg
}

// RegisterInto publishes the metrics counters into an external registry
// view (e.g. the system root's "mem.chan0" subtree) by registering the
// same field pointers under the same names. The block's own registry
// and the external tree then observe identical live values.
func (m *Metrics) RegisterInto(r *stats.Registry) { m.bind(r) }

// Registry exposes the block's private counter index (binding it if
// needed). Callers deserializing a Metrics use it to re-establish the
// registry invariant; everyone else should prefer Counters.
func (m *Metrics) Registry() *stats.Registry { return m.registry() }

// NoteArrival records the first request arrival (throughput window).
func (m *Metrics) NoteArrival(t sim.Time) {
	if !m.HaveArrival || t < m.FirstArrival {
		m.FirstArrival = t
		m.HaveArrival = true
	}
}

// NoteDone records a completion time (throughput window).
func (m *Metrics) NoteDone(t sim.Time) {
	if t > m.LastDone {
		m.LastDone = t
	}
}

// WriteThroughput returns completed writes per microsecond over the
// observed window (Figure 9's metric before normalization).
func (m *Metrics) WriteThroughput() float64 {
	window := m.LastDone - m.FirstArrival
	if window <= 0 {
		return 0
	}
	return float64(m.Writes.Value()) / window.Microseconds()
}

// Reset returns the metrics block to its freshly-constructed state.
// Used to discard warmup-phase measurements in place. Counters are
// zeroed through the registry (so any external registry views stay
// bound to the same, now-zero fields); trackers reset in place,
// keeping their grown storage — the warmup-discard reset runs once
// per channel per simulation and used to rebuild ~2.4 MB of latency
// buckets each time.
func (m *Metrics) Reset() {
	m.registry().Reset()
	m.ReadLatency.Reset()
	m.WriteLatency.Reset()
	m.VerifyLatency.Reset()
	m.DirtyWords.Reset()
	if m.SetBits != nil {
		m.SetBits.Reset()
	}
	if m.ResetBits != nil {
		m.ResetBits.Reset()
	}
	m.IRLP.Reset()
	m.FirstArrival = 0
	m.LastDone = 0
	m.HaveArrival = false
}

// NamedCounter is one row of the Counters report. It is the registry's
// row type: the metrics report and any registry-wide enumeration are
// the same shape.
type NamedCounter = stats.NamedCounter

// Counters lists every counter in a fixed, deterministic order, for
// report output and the determinism regression test. The order is the
// registry's registration order, i.e. the bind list.
func (m *Metrics) Counters() []NamedCounter {
	return m.registry().Counters()
}

// Merge folds other into m (used to aggregate channels). Counters merge
// through the registries by name; latency trackers and histograms are
// merged bucket-wise.
func (m *Metrics) Merge(other *Metrics) {
	m.registry().Merge(other.registry())
	stats.MergeLatency(m.ReadLatency, other.ReadLatency)
	stats.MergeLatency(m.WriteLatency, other.WriteLatency)
	stats.MergeLatency(m.VerifyLatency, other.VerifyLatency)
	stats.MergeHistogram(m.DirtyWords, other.DirtyWords)
	// The bit histograms are nil on metrics decoded from a pre-DCA disk
	// cache; skip them rather than resurrecting empty ones.
	if m.SetBits != nil && other.SetBits != nil {
		stats.MergeHistogram(m.SetBits, other.SetBits)
	}
	if m.ResetBits != nil && other.ResetBits != nil {
		stats.MergeHistogram(m.ResetBits, other.ResetBits)
	}
	if other.HaveArrival {
		m.NoteArrival(other.FirstArrival)
	}
	m.NoteDone(other.LastDone)
}
