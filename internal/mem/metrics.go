package mem

import (
	"pcmap/internal/sim"
	"pcmap/internal/stats"
)

// Metrics aggregates everything the paper's evaluation section measures
// for one memory channel. The experiment harness merges channels.
type Metrics struct {
	Reads        stats.Counter
	Writes       stats.Counter
	SilentWrites stats.Counter // write-backs with zero essential words

	ReadLatency  *stats.LatencyTracker // arrival to data return
	WriteLatency *stats.LatencyTracker // arrival to final chip update

	ReadsDelayedByWrite stats.Counter // Figure 1 numerator

	DirtyWords *stats.Histogram // Figure 2: essential words per write

	IRLP *stats.IRLP // Figure 8

	RoWServed     stats.Counter // reads served by reconstruction
	RoWVerifies   stats.Counter
	RoWFaulty     stats.Counter // verifications that found bad data
	WoWOverlapped stats.Counter // writes issued while another write ongoing
	OverlapReads  stats.Counter // reads issued while a write was in service

	ECCCorrected stats.Counter // SECDED single-bit corrections on reads

	// Reliability path (fault injection + program-and-verify; the
	// counters cross-check against pcm.FaultModel's injection counts).
	SECDEDCorrected  stats.Counter         // read words repaired by SECDED (data bit)
	SECDEDCheckFixed stats.Counter         // check-word-only errors found by SECDED
	PCCRecovered     stats.Counter         // double-bit words rebuilt from PCC parity
	UncorrectedReads stats.Counter         // reads reported with a typed uncorrectable error
	WriteVerifies    stats.Counter         // writes that entered program-and-verify
	VerifyReads      stats.Counter         // verify read-back operations (initial + per retry)
	WriteRetries     stats.Counter         // re-program attempts after a verify mismatch
	WriteRemaps      stats.Counter         // lines remapped to the spare pool
	RemapFailures    stats.Counter         // remaps abandoned: spare pool exhausted
	VerifyLatency    *stats.LatencyTracker // verify/retry time appended past the write's program end

	DrainEntries stats.Counter
	WriteQStalls stats.Counter // enqueue attempts rejected: write queue full
	ReadQStalls  stats.Counter
	StatusPolls  stats.Counter
	WearMoves    stats.Counter // Start-Gap line copies
	WritePauses  stats.Counter // write-pausing segment interruptions

	FirstArrival sim.Time
	LastDone     sim.Time
	// HaveArrival distinguishes "no request observed" from a first
	// arrival at time zero. Exported so the whole block (and therefore
	// system.Results) serializes for the experiment runner's disk cache;
	// treat it as read-only outside NoteArrival/Merge/Reset.
	HaveArrival bool
}

// NewMetrics returns a zeroed metrics block.
func NewMetrics() *Metrics {
	return &Metrics{
		ReadLatency:   stats.NewLatencyTracker(),
		WriteLatency:  stats.NewLatencyTracker(),
		VerifyLatency: stats.NewLatencyTracker(),
		DirtyWords:    stats.NewHistogram(9),
		IRLP:          stats.NewIRLP(),
	}
}

// NoteArrival records the first request arrival (throughput window).
func (m *Metrics) NoteArrival(t sim.Time) {
	if !m.HaveArrival || t < m.FirstArrival {
		m.FirstArrival = t
		m.HaveArrival = true
	}
}

// NoteDone records a completion time (throughput window).
func (m *Metrics) NoteDone(t sim.Time) {
	if t > m.LastDone {
		m.LastDone = t
	}
}

// WriteThroughput returns completed writes per microsecond over the
// observed window (Figure 9's metric before normalization).
func (m *Metrics) WriteThroughput() float64 {
	window := m.LastDone - m.FirstArrival
	if window <= 0 {
		return 0
	}
	return float64(m.Writes.Value()) / window.Microseconds()
}

// Reset returns the metrics block to its freshly-constructed state.
// Used to discard warmup-phase measurements in place; every counter and
// tracker field must be cleared here (the pcmaplint metricscomplete
// analyzer enforces that no field is forgotten).
func (m *Metrics) Reset() {
	m.Reads = stats.Counter{}
	m.Writes = stats.Counter{}
	m.SilentWrites = stats.Counter{}
	m.ReadsDelayedByWrite = stats.Counter{}
	m.RoWServed = stats.Counter{}
	m.RoWVerifies = stats.Counter{}
	m.RoWFaulty = stats.Counter{}
	m.WoWOverlapped = stats.Counter{}
	m.OverlapReads = stats.Counter{}
	m.ECCCorrected = stats.Counter{}
	m.SECDEDCorrected = stats.Counter{}
	m.SECDEDCheckFixed = stats.Counter{}
	m.PCCRecovered = stats.Counter{}
	m.UncorrectedReads = stats.Counter{}
	m.WriteVerifies = stats.Counter{}
	m.VerifyReads = stats.Counter{}
	m.WriteRetries = stats.Counter{}
	m.WriteRemaps = stats.Counter{}
	m.RemapFailures = stats.Counter{}
	m.DrainEntries = stats.Counter{}
	m.WriteQStalls = stats.Counter{}
	m.ReadQStalls = stats.Counter{}
	m.StatusPolls = stats.Counter{}
	m.WearMoves = stats.Counter{}
	m.WritePauses = stats.Counter{}
	m.ReadLatency = stats.NewLatencyTracker()
	m.WriteLatency = stats.NewLatencyTracker()
	m.VerifyLatency = stats.NewLatencyTracker()
	m.DirtyWords = stats.NewHistogram(9)
	m.IRLP = stats.NewIRLP()
	m.FirstArrival = 0
	m.LastDone = 0
	m.HaveArrival = false
}

// NamedCounter is one row of the Counters report.
type NamedCounter struct {
	Name  string
	Value uint64
}

// Counters lists every counter in a fixed, deterministic order, for
// report output and the determinism regression test. Like Merge and
// Reset, it must enumerate every stats.Counter field.
func (m *Metrics) Counters() []NamedCounter {
	return []NamedCounter{
		{"reads", m.Reads.Value()},
		{"writes", m.Writes.Value()},
		{"silent_writes", m.SilentWrites.Value()},
		{"reads_delayed_by_write", m.ReadsDelayedByWrite.Value()},
		{"row_served", m.RoWServed.Value()},
		{"row_verifies", m.RoWVerifies.Value()},
		{"row_faulty", m.RoWFaulty.Value()},
		{"wow_overlapped", m.WoWOverlapped.Value()},
		{"overlap_reads", m.OverlapReads.Value()},
		{"ecc_corrected", m.ECCCorrected.Value()},
		{"secded_corrected", m.SECDEDCorrected.Value()},
		{"secded_check_fixed", m.SECDEDCheckFixed.Value()},
		{"pcc_recovered", m.PCCRecovered.Value()},
		{"uncorrected_reads", m.UncorrectedReads.Value()},
		{"write_verifies", m.WriteVerifies.Value()},
		{"verify_reads", m.VerifyReads.Value()},
		{"write_retries", m.WriteRetries.Value()},
		{"write_remaps", m.WriteRemaps.Value()},
		{"remap_failures", m.RemapFailures.Value()},
		{"drain_entries", m.DrainEntries.Value()},
		{"writeq_stalls", m.WriteQStalls.Value()},
		{"readq_stalls", m.ReadQStalls.Value()},
		{"status_polls", m.StatusPolls.Value()},
		{"wear_moves", m.WearMoves.Value()},
		{"write_pauses", m.WritePauses.Value()},
	}
}

// Merge folds other into m (used to aggregate channels). Latency
// trackers and histograms are merged bucket-wise.
func (m *Metrics) Merge(other *Metrics) {
	m.Reads.Add(other.Reads.Value())
	m.Writes.Add(other.Writes.Value())
	m.SilentWrites.Add(other.SilentWrites.Value())
	m.ReadsDelayedByWrite.Add(other.ReadsDelayedByWrite.Value())
	m.RoWServed.Add(other.RoWServed.Value())
	m.RoWVerifies.Add(other.RoWVerifies.Value())
	m.RoWFaulty.Add(other.RoWFaulty.Value())
	m.WoWOverlapped.Add(other.WoWOverlapped.Value())
	m.OverlapReads.Add(other.OverlapReads.Value())
	m.ECCCorrected.Add(other.ECCCorrected.Value())
	m.SECDEDCorrected.Add(other.SECDEDCorrected.Value())
	m.SECDEDCheckFixed.Add(other.SECDEDCheckFixed.Value())
	m.PCCRecovered.Add(other.PCCRecovered.Value())
	m.UncorrectedReads.Add(other.UncorrectedReads.Value())
	m.WriteVerifies.Add(other.WriteVerifies.Value())
	m.VerifyReads.Add(other.VerifyReads.Value())
	m.WriteRetries.Add(other.WriteRetries.Value())
	m.WriteRemaps.Add(other.WriteRemaps.Value())
	m.RemapFailures.Add(other.RemapFailures.Value())
	m.DrainEntries.Add(other.DrainEntries.Value())
	m.WriteQStalls.Add(other.WriteQStalls.Value())
	m.ReadQStalls.Add(other.ReadQStalls.Value())
	m.StatusPolls.Add(other.StatusPolls.Value())
	m.WearMoves.Add(other.WearMoves.Value())
	m.WritePauses.Add(other.WritePauses.Value())
	stats.MergeLatency(m.ReadLatency, other.ReadLatency)
	stats.MergeLatency(m.WriteLatency, other.WriteLatency)
	stats.MergeLatency(m.VerifyLatency, other.VerifyLatency)
	stats.MergeHistogram(m.DirtyWords, other.DirtyWords)
	if other.HaveArrival {
		m.NoteArrival(other.FirstArrival)
	}
	m.NoteDone(other.LastDone)
}
