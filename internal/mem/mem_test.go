package mem

import (
	"testing"
	"testing/quick"

	"pcmap/internal/sim"
)

// defaultGeometry mirrors config.Default().Memory's shape (Table I).
// Spelled out locally because mem cannot import config: config depends
// on this package for its unit types.
func defaultGeometry() Geometry {
	return Geometry{Channels: 4, Banks: 8, RowBytes: 8 << 10, CapacityBytes: 8 << 30}
}

func TestAddrMapRoundTrip(t *testing.T) {
	a, err := NewAddrMap(defaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(raw uint64) bool {
		addr := (raw % (8 << 30)) &^ 63 // line-aligned, in capacity
		c := a.Decode(addr)
		return a.Encode(c) == addr
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrMapChannelInterleave(t *testing.T) {
	a, _ := NewAddrMap(defaultGeometry())
	for i := uint64(0); i < 16; i++ {
		c := a.Decode(i * 64)
		if c.Channel != int(i%4) {
			t.Fatalf("line %d on channel %d, want %d", i, c.Channel, i%4)
		}
	}
}

func TestAddrMapRowLocality(t *testing.T) {
	a, _ := NewAddrMap(defaultGeometry())
	// Consecutive channel-local lines (stride = 4 lines) share a row
	// until the column bits wrap.
	base := a.Decode(0)
	for i := uint64(1); i < uint64(a.LinesPerRow()); i++ {
		c := a.Decode(i * 64 * 4)
		if c.Channel != base.Channel || c.Bank != base.Bank || c.Row != base.Row {
			t.Fatalf("channel-local line %d left the row: %+v vs %+v", i, c, base)
		}
		if c.Col != int(i) {
			t.Fatalf("column %d, want %d", c.Col, i)
		}
	}
	next := a.Decode(uint64(a.LinesPerRow()) * 64 * 4)
	if next.Bank == base.Bank && next.Row == base.Row {
		t.Fatal("row should change after LinesPerRow channel-local lines")
	}
}

func TestAddrMapRotIdxStrides(t *testing.T) {
	a, _ := NewAddrMap(defaultGeometry())
	// Successive channel-local lines must get successive rotation
	// indices so all 8 (and 10) rotation offsets occur.
	seen8 := map[uint64]bool{}
	seen10 := map[uint64]bool{}
	for i := uint64(0); i < 40; i++ {
		c := a.Decode(i * 64 * 4)
		seen8[c.RotIdx%8] = true
		seen10[c.RotIdx%10] = true
	}
	if len(seen8) != 8 || len(seen10) != 10 {
		t.Fatalf("rotation offsets covered: mod8=%d mod10=%d", len(seen8), len(seen10))
	}
}

func TestAddrMapUniqueLineIdx(t *testing.T) {
	a, _ := NewAddrMap(defaultGeometry())
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 100000; i++ {
		addr := i * 64
		c := a.Decode(addr)
		key := uint64(c.Channel)<<60 | c.LineIdx
		if prev, ok := seen[key]; ok {
			t.Fatalf("addresses %#x and %#x collide on channel-local line index", prev, addr)
		}
		seen[key] = addr
	}
}

func TestAddrMapRejectsBadGeometry(t *testing.T) {
	g := defaultGeometry()
	g.Channels = 3
	if _, err := NewAddrMap(g); err == nil {
		t.Fatal("non-power-of-two channels should be rejected")
	}
}

func TestBusSerializesAndTurnsAround(t *testing.T) {
	b := Bus{Turnaround: 10}
	s, e := b.Acquire(100, 40, false)
	if s != 100 || e != 140 {
		t.Fatalf("first acquire [%v,%v)", s, e)
	}
	// Same direction chains without turnaround.
	s, e = b.Acquire(100, 40, false)
	if s != 140 || e != 180 {
		t.Fatalf("second acquire [%v,%v)", s, e)
	}
	// Direction change adds turnaround.
	s, _ = b.Acquire(100, 40, true)
	if s != 190 {
		t.Fatalf("turnaround start %v, want 190", s)
	}
	if b.Busy != 120 {
		t.Fatalf("busy accumulation %v, want 120", b.Busy)
	}
}

func TestBusFirstUseNoTurnaround(t *testing.T) {
	b := Bus{Turnaround: 10}
	if s, _ := b.Acquire(0, 5, true); s != 0 {
		t.Fatalf("first use should not pay turnaround, start %v", s)
	}
}

func TestQueueFRFCFS(t *testing.T) {
	q := NewQueue(8)
	mk := func(addr uint64, arrive sim.Time) *Request {
		return &Request{Kind: Read, Addr: addr, Arrive: arrive}
	}
	r1, r2, r3 := mk(100, 1), mk(200, 2), mk(300, 3)
	for _, r := range []*Request{r1, r2, r3} {
		if !q.Push(r) {
			t.Fatal("push failed")
		}
	}
	ready := func(r *Request) bool { return r != r1 } // r1 blocked
	rowHit := func(r *Request) bool { return r == r3 }
	if got := q.SelectFRFCFS(ready, rowHit); got != r3 {
		t.Fatalf("FR-FCFS should pick the row hit, got %v", got.Addr)
	}
	noHit := func(*Request) bool { return false }
	if got := q.SelectFRFCFS(ready, noHit); got != r2 {
		t.Fatalf("without hits, oldest ready wins, got %v", got.Addr)
	}
}

func TestQueueCapacityAndRemove(t *testing.T) {
	q := NewQueue(2)
	a, b, c := &Request{}, &Request{}, &Request{}
	if !q.Push(a) || !q.Push(b) {
		t.Fatal("pushes within capacity must succeed")
	}
	if q.Push(c) {
		t.Fatal("push beyond capacity must fail")
	}
	if q.Occupancy() != 1.0 {
		t.Fatalf("occupancy %v", q.Occupancy())
	}
	q.Remove(a)
	if q.Len() != 1 || q.Oldest(nil) != b {
		t.Fatal("remove should preserve order")
	}
	q.Remove(a) // absent: no-op
	if q.Len() != 1 {
		t.Fatal("removing absent element changed the queue")
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Reads.Add(10)
	b.Reads.Add(5)
	a.ReadLatency.Add(sim.NS(100))
	b.ReadLatency.Add(sim.NS(300))
	a.DirtyWords.Add(1)
	b.DirtyWords.Add(3)
	a.NoteArrival(100)
	b.NoteArrival(50)
	a.NoteDone(500)
	b.NoteDone(900)
	a.Merge(b)
	if a.Reads.Value() != 15 {
		t.Fatalf("merged reads %d", a.Reads.Value())
	}
	if got := a.ReadLatency.MeanNS(); got != 200 {
		t.Fatalf("merged mean latency %v, want 200", got)
	}
	if a.DirtyWords.Total() != 2 {
		t.Fatalf("merged histogram total %d", a.DirtyWords.Total())
	}
	if a.FirstArrival != 50 || a.LastDone != 900 {
		t.Fatalf("window [%v,%v]", a.FirstArrival, a.LastDone)
	}
}

func TestWriteThroughput(t *testing.T) {
	m := NewMetrics()
	m.Writes.Add(100)
	m.NoteArrival(0)
	m.NoteDone(sim.Microsecond * 10)
	if got := m.WriteThroughput(); got != 10 {
		t.Fatalf("throughput %v writes/us, want 10", got)
	}
}
