package cache

import (
	"pcmap/internal/coherence"
	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/mem"
	"pcmap/internal/noc"
	"pcmap/internal/sim"
)

// Result classifies where an access was satisfied.
type Result int

const (
	// HitL1: satisfied by the core's private L1.
	HitL1 Result = iota
	// HitL2: satisfied by the shared L2.
	HitL2
	// HitLLC: satisfied by the DRAM cache.
	HitLLC
	// GoesToMemory: a PCM fetch is in flight; the caller's onDone runs
	// at fill time.
	GoesToMemory
	// Bypassed: a non-temporal store went straight to PCM without
	// allocating in the hierarchy.
	Bypassed
	// Stalled: no MSHR or the write-back backlog is full; retry after
	// OnUnstall fires.
	Stalled
)

func (r Result) String() string {
	switch r {
	case HitL1:
		return "l1-hit"
	case HitL2:
		return "l2-hit"
	case HitLLC:
		return "llc-hit"
	case GoesToMemory:
		return "memory"
	case Bypassed:
		return "nt-bypass"
	case Stalled:
		return "stalled"
	default:
		return "unknown"
	}
}

// fillWaiter names one coalesced load to notify at fill time: the
// issuing core's fill handler receives the load's sequence number.
// A plain value pair instead of a captured closure keeps the miss
// path allocation-free.
type fillWaiter struct {
	core int
	seq  uint64
}

// fetch is one outstanding below-L2 miss; concurrent requests to the
// same line coalesce onto it (the MSHR function). Fetches live on a
// per-hierarchy free list: the embedded memory request and the
// callbacks bound to it are built once per pooled object and recycled
// when the fetch completes (after the deferred RoW verification when
// the read was served by reconstruction — the verify fan-out reads
// f.cores).
type fetch struct {
	h         *Hierarchy
	addr      uint64
	waiters   []fillWaiter
	cores     []int // cores that coalesced (for verify fan-out)
	store     bool  // triggered by a store: dirty the line at fill time
	storeMask uint8 // changed words to apply to L2 once the fill lands
	bypass    bool  // streaming access: do not pollute the DRAM cache
	core      int
	req       mem.Request
	trySubmit func()
	next      *fetch // free-list link
}

// fetchDone is the fetch's pre-bound OnDone: land the fill, then
// recycle — unless the read was served by RoW reconstruction, in which
// case the deferred verification (OnVerify) still needs f.cores and
// performs the recycle itself.
func (f *fetch) fetchDone() {
	h := f.h
	h.finishFetch(f)
	if !f.req.Reconstructed {
		h.recycleFetch(f)
	}
}

// fetchVerified is the fetch's pre-bound OnVerify: fan the outcome out
// to every coalesced core, then recycle. The controller invokes
// OnVerify exactly once, only for reconstructed reads, and always
// after OnDone.
func (f *fetch) fetchVerified(rq *mem.Request, faulty bool) {
	h := f.h
	for _, c := range f.cores {
		if fn := h.verifyHandlers[c]; fn != nil {
			fn(faulty, rq.Done)
		}
	}
	h.recycleFetch(f)
}

// newFetch pops a recycled fetch or builds a fresh one with its
// callbacks pre-bound.
func (h *Hierarchy) newFetch() *fetch {
	f := h.fetchFree
	if f == nil {
		f = &fetch{h: h}
		f.req.OnDone = func(*mem.Request) { f.fetchDone() }
		f.req.OnVerify = func(rq *mem.Request, faulty bool) { f.fetchVerified(rq, faulty) }
		f.trySubmit = func() {
			if !f.h.Mem.Submit(&f.req) {
				f.h.Mem.OnSpace(mem.Read, f.req.Addr, f.trySubmit)
			}
		}
		return f
	}
	h.fetchFree = f.next
	f.next = nil
	return f
}

// recycleFetch clears the fetch (keeping slice capacity and the
// pre-bound callbacks) and pushes it on the free list.
func (h *Hierarchy) recycleFetch(f *fetch) {
	f.addr, f.core = 0, 0
	f.waiters = f.waiters[:0]
	f.cores = f.cores[:0]
	f.store, f.bypass = false, false
	f.storeMask = 0
	r := &f.req
	r.Mask, r.Data = 0, nil
	r.Arrive, r.Issue, r.Done = 0, 0, 0
	r.Started, r.Reconstructed, r.DelayedByWrite = false, false, false
	r.Err = nil
	f.next = h.fetchFree
	h.fetchFree = f
}

// wbReq is one pooled write-back request with its retry callback
// pre-bound (back-pressure re-submission), recycled when the write
// completes.
type wbReq struct {
	h     *Hierarchy
	req   mem.Request
	retry func()
	next  *wbReq
}

func (h *Hierarchy) newWB() *wbReq {
	w := h.wbFree
	if w == nil {
		w = &wbReq{h: h}
		w.req.OnDone = func(*mem.Request) { w.h.recycleWB(w) }
		w.retry = func() {
			if w.h.Mem.Submit(&w.req) {
				w.h.wbBacklog--
				w.h.notifyUnstall()
				return
			}
			w.h.Mem.OnSpace(mem.Write, w.req.Addr, w.retry)
		}
		return w
	}
	h.wbFree = w.next
	w.next = nil
	return w
}

func (h *Hierarchy) recycleWB(w *wbReq) {
	r := &w.req
	r.Mask, r.Data = 0, nil
	r.Arrive, r.Issue, r.Done = 0, 0, 0
	r.Started, r.Reconstructed, r.DelayedByWrite = false, false, false
	r.Err = nil
	w.next = h.wbFree
	h.wbFree = w
}

// Hierarchy wires the cache levels, the MOESI directory, the NoC and
// the PCM main memory together.
type Hierarchy struct {
	cfg  *config.Config
	eng  *sim.Engine
	Mem  *core.Memory
	Mesh *noc.Mesh
	Dir  *coherence.Directory

	L1  []*Cache // per-core L1D
	L2  *Cache
	LLC *Cache

	llcBankBusy []sim.Time
	llcBanks    int

	pending    map[uint64]*fetch
	pendingCap int
	wbBacklog  int
	wbCap      int
	unstall    []func()

	// Free lists for the per-miss and per-writeback request objects.
	fetchFree *fetch
	wbFree    *wbReq

	// verifyHandlers receive RoW verification outcomes per core (with
	// the load's completion time): the CPU model decides whether a
	// faulty outcome forces a rollback.
	verifyHandlers []func(faulty bool, loadDone sim.Time)

	// fillHandlers receive PCM fill completions per core: the sequence
	// number a core passed to Load comes back when the miss lands.
	fillHandlers []func(seq uint64)

	// Statistics.
	Loads, Stores            uint64
	L1Hits, L2Hits, LLCHits  uint64
	MemFetches, StoreFetches uint64
	WBToLLC, WBToPCM         uint64
	InvalidationsSent        uint64
	CoalescedMisses          uint64
	StallEvents              uint64
}

// NewHierarchy builds the hierarchy for cfg on top of memory.
func NewHierarchy(eng *sim.Engine, cfg *config.Config, memory *core.Memory) *Hierarchy {
	banks := cfg.DRAMLLC.Banks
	if banks == 0 {
		// Zero-value configs (hand-built in tests) get the historical
		// default; Validate enforces a power of two ≥ 1 otherwise.
		banks = 8
	}
	h := &Hierarchy{
		cfg:         cfg,
		eng:         eng,
		Mem:         memory,
		Mesh:        noc.New(cfg.NoC),
		Dir:         coherence.NewDirectory(),
		L2:          New("L2", cfg.L2),
		LLC:         New("LLC", cfg.DRAMLLC),
		llcBanks:    banks,
		llcBankBusy: make([]sim.Time, banks),
		pending:     make(map[uint64]*fetch),
		pendingCap:  cfg.L2.MSHRs,
		wbCap:       4 * cfg.Memory.Channels,
	}
	for i := 0; i < cfg.Cores; i++ {
		h.L1 = append(h.L1, New("L1D", cfg.L1D))
	}
	h.verifyHandlers = make([]func(bool, sim.Time), cfg.Cores)
	h.fillHandlers = make([]func(uint64), cfg.Cores)
	return h
}

// Release returns the cache levels' state arrays to the slab pool. The
// hierarchy must not be used afterwards. Experiment harnesses call it
// between runs so back-to-back systems of the same geometry reuse one
// LLC's worth of arrays instead of growing the heap per run.
func (h *Hierarchy) Release() {
	for _, l1 := range h.L1 {
		l1.Release()
	}
	h.L2.Release()
	h.LLC.Release()
}

// SetFillHandler registers the callback invoked when a PCM fill this
// core requested (via Load) lands, carrying the sequence number the
// core passed. One registration per core replaces a per-miss closure.
func (h *Hierarchy) SetFillHandler(corID int, fn func(seq uint64)) {
	h.fillHandlers[corID] = fn
}

// SetVerifyHandler registers the callback invoked when a RoW-served
// fetch this core consumed finishes its deferred SECDED verification.
func (h *Hierarchy) SetVerifyHandler(corID int, fn func(faulty bool, loadDone sim.Time)) {
	h.verifyHandlers[corID] = fn
}

// PrewarmLLC functionally installs a clean line in the DRAM cache
// (no timing, no PCM traffic). The experiment harness pre-warms the
// workloads' cache-resident reuse pools, standing in for the paper's
// 200M-instruction warmup, which our ~1000x shorter runs cannot
// reproduce by execution alone.
func (h *Hierarchy) PrewarmLLC(addr uint64) { h.LLC.Insert(line64(addr)) }

// PrewarmL2 functionally installs a clean line in the L2 (and LLC,
// keeping the lookup path consistent).
func (h *Hierarchy) PrewarmL2(addr uint64) {
	l := line64(addr)
	h.LLC.Insert(l)
	h.fillL2(l)
}

func line64(addr uint64) uint64 { return addr &^ 63 }

// OnUnstall registers a one-shot callback fired when a Stalled access
// may be retried.
func (h *Hierarchy) OnUnstall(fn func()) { h.unstall = append(h.unstall, fn) }

func (h *Hierarchy) notifyUnstall() {
	ws := h.unstall
	h.unstall = nil
	for _, fn := range ws {
		fn()
	}
}

// cpuCycles converts a CPU-cycle count to simulated time.
func cpuCycles(n int) sim.Time { return sim.CPUCycle.Times(n) }

// l2PathLatency is the NoC round trip from the core to the L2 bank
// owning addr plus the L2 hit time.
func (h *Hierarchy) l2PathLatency(corID int, addr uint64) sim.Time {
	bank := int(addr>>6) & 7
	from := h.Mesh.CoreNode(corID)
	to := h.Mesh.BankNode(bank)
	req := h.Mesh.Send(from, to, 16, h.eng.Now()) // address packet
	resp := h.Mesh.Latency(to, from, config.LineBytes)
	return (req - h.eng.Now()) + cpuCycles(h.cfg.L2.HitCycles) + resp
}

// llcLatency models the NUCA DRAM cache: bank queueing plus the fixed
// access latency.
func (h *Hierarchy) llcLatency(afterL2 sim.Time, addr uint64) sim.Time {
	bank := int(addr>>6) & (h.llcBanks - 1)
	arrive := h.eng.Now() + afterL2
	start := arrive
	if h.llcBankBusy[bank] > start {
		start = h.llcBankBusy[bank]
	}
	const bankOccupancyCycles = 50
	h.llcBankBusy[bank] = start + cpuCycles(bankOccupancyCycles)
	return (start - arrive) + afterL2 + cpuCycles(h.cfg.DRAMLLC.HitCycles)
}

// fillL1 inserts a line into a core's L1, handling coherence eviction
// bookkeeping (L1s are write-through, so victims are always clean).
func (h *Hierarchy) fillL1(corID int, addr uint64) {
	v, had := h.L1[corID].Insert(h.L1[corID].Align(addr))
	if !had {
		return
	}
	// Drop the directory's sharer bit once neither 32B half of the
	// 64B coherence unit remains in this L1.
	base := line64(v.Addr)
	other := base
	if v.Addr == base {
		other = base + uint64(h.L1[corID].LineBytes())
	}
	if !h.L1[corID].Present(other) {
		h.Dir.Evict(base, corID)
	}
}

// fillL2 inserts a line into the L2, writing back a dirty victim to the
// LLC (or straight to PCM when the LLC does not hold it — the LLC is
// write-around for write-backs, see DESIGN.md) and maintaining L1
// inclusion.
func (h *Hierarchy) fillL2(addr uint64) {
	v, had := h.L2.Insert(addr)
	if !had {
		return
	}
	// Inclusive L2: shoot down any L1 copies of the victim.
	if sh := h.Dir.Sharers(v.Addr); sh != 0 {
		for c := 0; c < h.cfg.Cores; c++ {
			if sh&(1<<uint(c)) == 0 {
				continue
			}
			h.L1[c].Invalidate(v.Addr)
			h.L1[c].Invalidate(v.Addr + uint64(h.cfg.L1D.LineBytes))
			h.Dir.Evict(v.Addr, c)
			h.InvalidationsSent++
		}
	}
	if !v.Dirty {
		return
	}
	if h.LLC.MarkDirty(v.Addr, v.EssMask) {
		h.WBToLLC++
		return
	}
	h.submitWriteback(v.Addr, v.EssMask)
}

// fillLLC inserts a line into the DRAM cache, pushing a dirty victim's
// essential words out to PCM.
func (h *Hierarchy) fillLLC(addr uint64) {
	v, had := h.LLC.Insert(addr)
	if had && v.Dirty {
		h.submitWriteback(v.Addr, v.EssMask)
	}
}

// submitWriteback sends a dirty line's essential words to PCM,
// buffering while the channel's write queue is full. Requests come
// from the write-back pool; the pre-bound OnDone recycles them at
// completion (every accepted write completes exactly once — the
// controller never merges queued writes).
func (h *Hierarchy) submitWriteback(addr uint64, essMask uint8) {
	h.WBToPCM++
	w := h.newWB()
	w.req.Kind, w.req.Addr, w.req.Mask, w.req.Core = mem.Write, addr, essMask, -1
	if h.Mem.Submit(&w.req) {
		return
	}
	h.wbBacklog++
	h.Mem.OnSpace(mem.Write, addr, w.retry)
}

// Load performs a demand load. For HitL1/HitL2/HitLLC the returned
// latency is the access time and no fill notification happens. For
// GoesToMemory, the core's registered fill handler (SetFillHandler)
// runs with seq when the PCM fill completes. For Stalled, nothing was
// done; retry after OnUnstall. Non-temporal (streaming) loads fill
// L1/L2 but bypass the DRAM cache.
func (h *Hierarchy) Load(corID int, addr uint64, nonTemporal bool, seq uint64) (Result, sim.Time) {
	h.Loads++
	if h.L1[corID].Lookup(addr) {
		h.L1Hits++
		return HitL1, cpuCycles(h.cfg.L1D.HitCycles)
	}
	l := line64(addr)
	act := h.Dir.Load(l, corID)
	var fwd sim.Time
	if act.ForwardFrom >= 0 {
		// Cache-to-cache transfer across the mesh.
		fwd = h.Mesh.Latency(h.Mesh.CoreNode(act.ForwardFrom), h.Mesh.CoreNode(corID), config.LineBytes)
	}
	l2lat := h.l2PathLatency(corID, l)
	if h.L2.Lookup(l) {
		h.L2Hits++
		h.fillL1(corID, addr)
		return HitL2, l2lat + fwd
	}
	if h.LLC.Lookup(l) {
		h.LLCHits++
		lat := h.llcLatency(l2lat, l)
		h.fillL2(l)
		h.fillL1(corID, addr)
		return HitLLC, lat + fwd
	}
	return h.startFetch(corID, addr, false, 0, nonTemporal, seq, true)
}

// Store performs a store: write-through past L1, write-allocate at L2.
// essMask marks the words whose values change (0 = silent store).
// nonTemporal stores bypass the hierarchy and stream straight to PCM.
// Stores never return a latency — they retire via the store buffer —
// but may return Stalled when no MSHR (or write-back backlog slot) is
// available.
func (h *Hierarchy) Store(corID int, addr uint64, essMask uint8, nonTemporal bool) Result {
	h.Stores++
	l := line64(addr)
	if nonTemporal && !h.L2.Present(l) && !h.LLC.Present(l) {
		// Streaming store to an uncached line: no allocation, direct
		// PCM write (with backpressure).
		if h.wbBacklog >= h.wbCap {
			h.StallEvents++
			return Stalled
		}
		h.invalidateForStore(corID, addr, h.Dir.Store(l, corID).Invalidate)
		h.submitWriteback(l, essMask)
		return Bypassed
	}
	act := h.Dir.Store(l, corID)
	h.invalidateForStore(corID, addr, act.Invalidate)
	// Write-through L1: refresh our own copy if present (no allocate).
	if h.L1[corID].Present(addr) {
		h.L1[corID].Lookup(addr)
	}
	if h.L2.MarkDirty(l, essMask) {
		return HitL2
	}
	// Write-allocate: fetch the line (from LLC or PCM), then dirty it.
	if h.LLC.Lookup(l) {
		h.LLCHits++
		h.llcLatency(0, l)
		h.fillL2(l)
		h.L2.MarkDirty(l, essMask)
		return HitLLC
	}
	res, _ := h.startFetch(corID, addr, true, essMask, false, 0, false)
	return res
}

// invalidateForStore shoots down remote L1 copies named by the
// directory (both 32B halves of the 64B coherence unit).
func (h *Hierarchy) invalidateForStore(corID int, addr uint64, mask uint16) {
	if mask == 0 {
		return
	}
	l := line64(addr)
	for c := 0; c < h.cfg.Cores; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		h.L1[c].Invalidate(l)
		h.L1[c].Invalidate(l + uint64(h.cfg.L1D.LineBytes))
		h.InvalidationsSent++
	}
}

// startFetch begins (or joins) a below-LLC miss. wantFill records the
// caller (a load) for a fill notification; store-initiated fetches
// pass false.
func (h *Hierarchy) startFetch(corID int, addr uint64, store bool, storeMask uint8, bypass bool, seq uint64, wantFill bool) (Result, sim.Time) {
	l := line64(addr)
	if f, ok := h.pending[l]; ok {
		h.CoalescedMisses++
		f.store = f.store || store
		f.storeMask |= storeMask
		f.cores = append(f.cores, corID)
		if wantFill {
			f.waiters = append(f.waiters, fillWaiter{core: corID, seq: seq})
		}
		return GoesToMemory, 0
	}
	if len(h.pending) >= h.pendingCap || h.wbBacklog >= h.wbCap {
		h.StallEvents++
		return Stalled, 0
	}
	f := h.newFetch()
	f.addr = l
	f.store, f.storeMask, f.bypass, f.core = store, storeMask, bypass, corID
	f.cores = append(f.cores, corID)
	if wantFill {
		f.waiters = append(f.waiters, fillWaiter{core: corID, seq: seq})
	}
	h.pending[l] = f
	h.MemFetches++
	if storeMask != 0 {
		h.StoreFetches++
	}
	f.req.Kind, f.req.Addr, f.req.Core = mem.Read, l, corID
	f.trySubmit()
	return GoesToMemory, 0
}

// finishFetch lands a PCM fill: LLC, L2 (with pending store dirt), L1,
// then wakes the coalesced waiters.
func (h *Hierarchy) finishFetch(f *fetch) {
	delete(h.pending, f.addr)
	if !f.bypass {
		h.fillLLC(f.addr)
	}
	h.fillL2(f.addr)
	if f.store {
		h.L2.MarkDirty(f.addr, f.storeMask)
	}
	h.fillL1(f.core, f.addr)
	for _, w := range f.waiters {
		if fn := h.fillHandlers[w.core]; fn != nil {
			fn(w.seq)
		}
	}
	h.notifyUnstall()
}
