// Package cache implements the three-level hierarchy of Table I: split
// write-through L1s, a shared write-back L2 with a MOESI directory, and
// a 256 MB DRAM LLC (NUCA, 8 banks), all in front of the PCM main
// memory. Caches track tags plus per-8B-word dirty masks — the masks
// are the paper's central measured quantity: they flow from the cores'
// stores through L2 and LLC write-backs into the PCM controller's
// essential-word machinery.
package cache

import (
	"fmt"
	"math/bits"

	"pcmap/internal/config"
)

// entry is one cache line's bookkeeping (tags only; functional data
// lives at the PCM store, see DESIGN.md).
type entry struct {
	tag   uint64
	lru   uint32
	valid bool
	dirty bool
	// essMask marks the 8B words whose values actually changed (the
	// "essential" words); dirty can be set with essMask == 0 — that is
	// a silent store, Figure 2's 0-word bucket.
	essMask uint8
}

// Victim describes a line evicted by an insertion.
type Victim struct {
	Addr    uint64
	Dirty   bool
	EssMask uint8
}

// Cache is a set-associative, true-LRU cache. Sets are allocated
// lazily so a 256 MB LLC costs memory proportional to its touched
// footprint.
type Cache struct {
	name      string
	sets      [][]entry
	ways      int
	lineBytes int
	lineShift uint
	setMask   uint64
	clock     uint32

	Hits, Misses, Evictions, Writebacks uint64
}

// New builds a cache from its configured geometry.
func New(name string, lvl config.CacheLevel) *Cache {
	numSets := lvl.SizeBytes / int64(lvl.Ways*lvl.LineBytes)
	c := &Cache{
		name:      name,
		sets:      make([][]entry, numSets),
		ways:      lvl.Ways,
		lineBytes: lvl.LineBytes,
		lineShift: uint(bits.TrailingZeros(uint(lvl.LineBytes))),
		setMask:   uint64(numSets - 1),
	}
	return c
}

// LineBytes returns the cache's line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Align returns addr rounded down to this cache's line size.
func (c *Cache) Align(addr uint64) uint64 { return addr &^ uint64(c.lineBytes-1) }

func (c *Cache) locate(addr uint64) (set []entry, tag uint64, idx uint64) {
	line := addr >> c.lineShift
	idx = line & c.setMask
	tag = line >> bits.TrailingZeros64(c.setMask+1)
	return c.sets[idx], tag, idx
}

func (c *Cache) find(addr uint64) *entry {
	set, tag, _ := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Lookup probes for addr's line, updating LRU on hit.
func (c *Cache) Lookup(addr uint64) bool {
	e := c.find(addr)
	if e == nil {
		c.Misses++
		return false
	}
	c.clock++
	e.lru = c.clock
	c.Hits++
	return true
}

// Present probes without touching LRU or hit/miss counters.
func (c *Cache) Present(addr uint64) bool { return c.find(addr) != nil }

// Insert fills addr's line, returning the evicted victim, if any. The
// line starts clean. Inserting an already-present line refreshes it.
func (c *Cache) Insert(addr uint64) (Victim, bool) {
	if e := c.find(addr); e != nil {
		c.clock++
		e.lru = c.clock
		return Victim{}, false
	}
	set, tag, idx := c.locate(addr)
	if set == nil {
		set = make([]entry, 0, c.ways)
		c.sets[idx] = set
	}
	c.clock++
	if len(set) < c.ways {
		c.sets[idx] = append(set, entry{tag: tag, valid: true, lru: c.clock})
		return Victim{}, false
	}
	// Evict the true-LRU way.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	v := Victim{
		Addr:    c.addrOf(set[vi].tag, idx),
		Dirty:   set[vi].dirty,
		EssMask: set[vi].essMask,
	}
	c.Evictions++
	if v.Dirty {
		c.Writebacks++
	}
	set[vi] = entry{tag: tag, valid: true, lru: c.clock}
	return v, true
}

func (c *Cache) addrOf(tag, idx uint64) uint64 {
	return (tag<<bits.TrailingZeros64(c.setMask+1) | idx) << c.lineShift
}

// MarkDirty records a write to addr's line: the line becomes dirty and
// essMask accumulates the changed words. It reports whether the line
// was present.
func (c *Cache) MarkDirty(addr uint64, essMask uint8) bool {
	e := c.find(addr)
	if e == nil {
		return false
	}
	c.clock++
	e.lru = c.clock
	e.dirty = true
	e.essMask |= essMask
	return true
}

// DirtyInfo returns the line's dirty state and essential mask.
func (c *Cache) DirtyInfo(addr uint64) (present, dirty bool, essMask uint8) {
	e := c.find(addr)
	if e == nil {
		return false, false, 0
	}
	return true, e.dirty, e.essMask
}

// Invalidate drops addr's line, returning its dirty state for the
// caller to write back.
func (c *Cache) Invalidate(addr uint64) (wasPresent, wasDirty bool, essMask uint8) {
	set, tag, _ := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			wasPresent, wasDirty, essMask = true, set[i].dirty, set[i].essMask
			set[i].valid = false
			return
		}
	}
	return
}

// MissRatio reports misses / accesses.
func (c *Cache) MissRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

func (c *Cache) String() string {
	return fmt.Sprintf("%s(%d sets x %d ways x %dB)", c.name, len(c.sets), c.ways, c.lineBytes)
}
