// Package cache implements the three-level hierarchy of Table I: split
// write-through L1s, a shared write-back L2 with a MOESI directory, and
// a 256 MB DRAM LLC (NUCA, 8 banks), all in front of the PCM main
// memory. Caches track tags plus per-8B-word dirty masks — the masks
// are the paper's central measured quantity: they flow from the cores'
// stores through L2 and LLC write-backs into the PCM controller's
// essential-word machinery.
package cache

import (
	"fmt"
	"math/bits"
	"sync"

	"pcmap/internal/config"
)

// Victim describes a line evicted by an insertion.
type Victim struct {
	Addr    uint64
	Dirty   bool
	EssMask uint8
}

// Cache is a set-associative, true-LRU cache. State is struct-of-arrays
// over set×way slots: four flat byte-scale arrays instead of a slice of
// per-set entry slices. The LLC's 4.2M slots cost ~30 MB this way
// (versus ~76 MB of pointer-chased entry slices before), the arrays
// come from a geometry-keyed slab pool (Release returns them), and the
// hot Insert/Lookup paths never allocate.
//
// LRU is kept as an explicit per-set recency list instead of per-entry
// clock stamps: order[set*ways+i] holds the way id at recency position
// i, position 0 being least recently used. Every touch moves a way to
// the back of its set's list, which reproduces exactly the ordering a
// global monotonic touch clock induces (each touch gets a unique
// stamp, so min-stamp == front of the list). Invalidate clears only
// the valid bit and leaves the slot's position, dirty bit, and mask in
// place — matching the previous representation, where an invalidated
// entry kept competing for eviction with its stale stamp.
type Cache struct {
	name      string
	tags      []uint32 // per slot: line >> (lineShift+setBits)
	meta      []uint8  // per slot: metaValid | metaDirty
	ess       []uint8  // per slot: essential-word mask
	order     []uint8  // per set: way ids in recency order, LRU first
	fill      []uint8  // per set: slots filled so far (append order)
	ways      int
	numSets   int
	lineBytes int
	lineShift uint
	setShift  uint // log2(number of sets)
	setMask   uint64

	Hits, Misses, Evictions, Writebacks uint64
}

const (
	metaValid = 1 << 0
	metaDirty = 1 << 1
)

// slab is one cache's worth of state arrays, recyclable across
// simulations of the same geometry.
type slab struct {
	tags  []uint32
	meta  []uint8
	ess   []uint8
	order []uint8
	fill  []uint8
}

type slabKey struct{ sets, ways int }

// slabPool recycles state arrays between systems (the experiment
// runner tears a machine down after every run and immediately builds
// the next). Guarded by a mutex because sweeps construct systems from
// a worker pool. Bounded per geometry so a wide parallel sweep cannot
// pin an unbounded number of retired LLCs.
var (
	slabMu   sync.Mutex
	slabPool = map[slabKey][]*slab{}
)

const slabPoolCap = 16

// acquireSlab returns zeroed-for-reuse state arrays for the geometry,
// recycling a released slab when one is available. Only fill must be
// cleared: every other array is written before first read (meta, ess,
// tags, and order are all set when a slot is filled, and scans are
// bounded by fill), so reuse is deterministic.
func acquireSlab(sets, ways int) *slab {
	key := slabKey{sets, ways}
	slabMu.Lock()
	if free := slabPool[key]; len(free) > 0 {
		s := free[len(free)-1]
		slabPool[key] = free[:len(free)-1]
		slabMu.Unlock()
		clear(s.fill)
		return s
	}
	slabMu.Unlock()
	slots := sets * ways
	return &slab{
		tags:  make([]uint32, slots),
		meta:  make([]uint8, slots),
		ess:   make([]uint8, slots),
		order: make([]uint8, slots),
		fill:  make([]uint8, sets),
	}
}

func releaseSlab(s *slab, sets, ways int) {
	key := slabKey{sets, ways}
	slabMu.Lock()
	if len(slabPool[key]) < slabPoolCap {
		slabPool[key] = append(slabPool[key], s)
	}
	slabMu.Unlock()
}

// New builds a cache from its configured geometry.
func New(name string, lvl config.CacheLevel) *Cache {
	numSets := int(lvl.SizeBytes / int64(lvl.Ways*lvl.LineBytes))
	if lvl.Ways < 1 || lvl.Ways > 255 {
		panic(fmt.Sprintf("cache: %s: %d ways out of range (order list stores way ids as bytes)", name, lvl.Ways))
	}
	s := acquireSlab(numSets, lvl.Ways)
	return &Cache{
		name:      name,
		tags:      s.tags,
		meta:      s.meta,
		ess:       s.ess,
		order:     s.order,
		fill:      s.fill,
		ways:      lvl.Ways,
		numSets:   numSets,
		lineBytes: lvl.LineBytes,
		lineShift: uint(bits.TrailingZeros(uint(lvl.LineBytes))),
		setShift:  uint(bits.TrailingZeros64(uint64(numSets))),
		setMask:   uint64(numSets - 1),
	}
}

// Release returns the cache's state arrays to the slab pool. The cache
// must not be used afterwards.
func (c *Cache) Release() {
	if c.tags == nil {
		return
	}
	releaseSlab(&slab{tags: c.tags, meta: c.meta, ess: c.ess, order: c.order, fill: c.fill},
		c.numSets, c.ways)
	c.tags, c.meta, c.ess, c.order, c.fill = nil, nil, nil, nil, nil
}

// LineBytes returns the cache's line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Align returns addr rounded down to this cache's line size.
func (c *Cache) Align(addr uint64) uint64 { return addr &^ uint64(c.lineBytes-1) }

// locate splits addr into the set's slot base and the stored tag.
func (c *Cache) locate(addr uint64) (base int, tag uint32, idx uint64) {
	line := addr >> c.lineShift
	idx = line & c.setMask
	t := line >> c.setShift
	if t > 0xffffffff {
		panic(fmt.Sprintf("cache: %s: address %#x tag overflows 32 bits", c.name, addr))
	}
	return int(idx) * c.ways, uint32(t), idx
}

// find scans addr's set for a valid matching slot, returning the way
// index or -1. Scan order is fill (append) order, like the previous
// entry-slice scan.
func (c *Cache) find(addr uint64) (base, way int, tag uint32, idx uint64) {
	base, tag, idx = c.locate(addr)
	n := int(c.fill[idx])
	for w := 0; w < n; w++ {
		if c.meta[base+w]&metaValid != 0 && c.tags[base+w] == tag {
			return base, w, tag, idx
		}
	}
	return base, -1, tag, idx
}

// touch moves way to the most-recently-used end of its set's recency
// list.
func (c *Cache) touch(idx uint64, base, way int) {
	n := int(c.fill[idx])
	ord := c.order[base : base+n]
	w := uint8(way)
	p := 0
	for ord[p] != w {
		p++
	}
	copy(ord[p:], ord[p+1:])
	ord[n-1] = w
}

// Lookup probes for addr's line, updating LRU on hit.
func (c *Cache) Lookup(addr uint64) bool {
	base, way, _, idx := c.find(addr)
	if way < 0 {
		c.Misses++
		return false
	}
	c.touch(idx, base, way)
	c.Hits++
	return true
}

// Present probes without touching LRU or hit/miss counters.
func (c *Cache) Present(addr uint64) bool {
	_, way, _, _ := c.find(addr)
	return way >= 0
}

// Insert fills addr's line, returning the evicted victim, if any. The
// line starts clean. Inserting an already-present line refreshes it.
func (c *Cache) Insert(addr uint64) (Victim, bool) {
	base, way, tag, idx := c.find(addr)
	if way >= 0 {
		c.touch(idx, base, way)
		return Victim{}, false
	}
	if n := c.fill[idx]; int(n) < c.ways {
		// Free slot: fill in append order (invalid slots are not
		// reclaimed early — they age out through LRU, as before).
		w := int(n)
		c.tags[base+w] = tag
		c.meta[base+w] = metaValid
		c.ess[base+w] = 0
		c.order[base+w] = n
		c.fill[idx] = n + 1
		return Victim{}, false
	}
	// Evict the true-LRU way: the front of the recency list.
	vi := int(c.order[base])
	v := Victim{
		Addr:    c.addrOf(uint64(c.tags[base+vi]), idx),
		Dirty:   c.meta[base+vi]&metaDirty != 0,
		EssMask: c.ess[base+vi],
	}
	c.Evictions++
	if v.Dirty {
		c.Writebacks++
	}
	c.tags[base+vi] = tag
	c.meta[base+vi] = metaValid
	c.ess[base+vi] = 0
	c.touch(idx, base, vi)
	return v, true
}

func (c *Cache) addrOf(tag, idx uint64) uint64 {
	return (tag<<c.setShift | idx) << c.lineShift
}

// MarkDirty records a write to addr's line: the line becomes dirty and
// essMask accumulates the changed words. It reports whether the line
// was present.
func (c *Cache) MarkDirty(addr uint64, essMask uint8) bool {
	base, way, _, idx := c.find(addr)
	if way < 0 {
		return false
	}
	c.touch(idx, base, way)
	c.meta[base+way] |= metaDirty
	c.ess[base+way] |= essMask
	return true
}

// DirtyInfo returns the line's dirty state and essential mask.
func (c *Cache) DirtyInfo(addr uint64) (present, dirty bool, essMask uint8) {
	base, way, _, _ := c.find(addr)
	if way < 0 {
		return false, false, 0
	}
	return true, c.meta[base+way]&metaDirty != 0, c.ess[base+way]
}

// Invalidate drops addr's line, returning its dirty state for the
// caller to write back. Only the valid bit is cleared: the slot keeps
// its recency position, tag, dirty bit, and mask until LRU replaces it
// (the historical semantics; L1s — the only level invalidated — are
// write-through and never dirty, so the stale state is inert).
func (c *Cache) Invalidate(addr uint64) (wasPresent, wasDirty bool, essMask uint8) {
	base, way, _, _ := c.find(addr)
	if way < 0 {
		return
	}
	wasPresent = true
	wasDirty = c.meta[base+way]&metaDirty != 0
	essMask = c.ess[base+way]
	c.meta[base+way] &^= metaValid
	return
}

// MissRatio reports misses / accesses.
func (c *Cache) MissRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

func (c *Cache) String() string {
	return fmt.Sprintf("%s(%d sets x %d ways x %dB)", c.name, c.numSets, c.ways, c.lineBytes)
}
