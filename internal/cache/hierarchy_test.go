package cache

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/sim"
)

func newHierarchy(t *testing.T) (*sim.Engine, *Hierarchy) {
	t.Helper()
	cfg := config.Default().WithVariant(config.RWoWRDE)
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewHierarchy(eng, cfg, m)
}

func TestLoadMissGoesToMemoryThenHitsL1(t *testing.T) {
	eng, h := newHierarchy(t)
	done := false
	h.SetFillHandler(0, func(uint64) { done = true })
	res, _ := h.Load(0, 0x100040, false, 0)
	if res != GoesToMemory {
		t.Fatalf("cold load result %v", res)
	}
	eng.Run()
	if !done {
		t.Fatal("fill callback never ran")
	}
	res, lat := h.Load(0, 0x100040, false, 1)
	if res != HitL1 {
		t.Fatalf("second load result %v, want L1 hit", res)
	}
	if lat != sim.CPUCycle {
		t.Fatalf("L1 hit latency %v", lat)
	}
}

func TestLoadHitsL2AfterOtherHalfFetched(t *testing.T) {
	eng, h := newHierarchy(t)
	h.Load(0, 0x200000, false, 0)
	eng.Run()
	// Same 64B line, other 32B half: misses L1 (32B lines), hits L2.
	res, lat := h.Load(0, 0x200020, false, 1)
	if res != HitL2 {
		t.Fatalf("result %v, want L2 hit", res)
	}
	if lat <= sim.CPUCycle {
		t.Fatalf("L2 hit latency %v too small", lat)
	}
}

func TestCoalescedMisses(t *testing.T) {
	eng, h := newHierarchy(t)
	count := 0
	h.SetFillHandler(0, func(uint64) { count++ })
	h.SetFillHandler(1, func(uint64) { count++ })
	h.Load(0, 0x300000, false, 0)
	h.Load(1, 0x300000, false, 0)
	if h.CoalescedMisses != 1 {
		t.Fatalf("coalesced %d, want 1", h.CoalescedMisses)
	}
	eng.Run()
	if count != 2 {
		t.Fatalf("%d callbacks, want 2", count)
	}
	if h.MemFetches != 1 {
		t.Fatalf("%d fetches, want 1 (coalesced)", h.MemFetches)
	}
}

func TestStoreDirtiesLineAndWritesBack(t *testing.T) {
	eng, h := newHierarchy(t)
	// Store misses everywhere: write-allocate fetch, then dirty.
	res := h.Store(0, 0x400000, 0b0011, false)
	if res != GoesToMemory {
		t.Fatalf("store result %v", res)
	}
	eng.Run()
	_, dirty, mask := h.L2.DirtyInfo(0x400000)
	if !dirty || mask != 0b0011 {
		t.Fatalf("L2 line dirty=%v mask=%b", dirty, mask)
	}
}

func TestStoreHitL2(t *testing.T) {
	eng, h := newHierarchy(t)
	h.Load(0, 0x500000, false, 0)
	eng.Run()
	if res := h.Store(0, 0x500000, 0b100, false); res != HitL2 {
		t.Fatalf("store to resident line: %v", res)
	}
}

func TestSilentStoreProducesZeroMaskWriteback(t *testing.T) {
	eng, h := newHierarchy(t)
	res := h.Store(0, 0x600000, 0, false) // silent store
	if res != GoesToMemory {
		t.Fatalf("res %v", res)
	}
	eng.Run()
	_, dirty, mask := h.L2.DirtyInfo(0x600000)
	if !dirty || mask != 0 {
		t.Fatalf("silent store: dirty=%v mask=%b", dirty, mask)
	}
}

func TestCoherenceInvalidationOnRemoteStore(t *testing.T) {
	eng, h := newHierarchy(t)
	h.Load(0, 0x700000, false, 0)
	eng.Run()
	if !h.L1[0].Present(0x700000) {
		t.Fatal("core 0 should cache the line")
	}
	h.Store(1, 0x700000, 1, false)
	eng.Run()
	if h.L1[0].Present(0x700000) {
		t.Fatal("remote store must invalidate core 0's L1 copy")
	}
	if h.InvalidationsSent == 0 {
		t.Fatal("no invalidations recorded")
	}
}

// TestLLCBankCountChangesContention pins the DRAMLLC.Banks wiring:
// NewHierarchy used to hardcode 8 banks regardless of configuration.
// Two back-to-back LLC hits on adjacent lines land in different banks
// with 8 banks (no queueing) but in the same bank with 1 bank, where
// the second access must wait out the first's occupancy window.
func TestLLCBankCountChangesContention(t *testing.T) {
	lat := func(banks int) sim.Time {
		t.Helper()
		cfg := config.Default().WithVariant(config.Baseline)
		cfg.DRAMLLC.Banks = banks
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		m, err := core.NewMemory(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := NewHierarchy(eng, cfg, m)
		h.PrewarmLLC(0)
		h.PrewarmLLC(64)
		if res, _ := h.Load(0, 0, false, 0); res != HitLLC {
			t.Fatalf("first load result %v, want LLC hit", res)
		}
		res, l := h.Load(0, 64, false, 1)
		if res != HitLLC {
			t.Fatalf("second load result %v, want LLC hit", res)
		}
		return l
	}
	if l1, l8 := lat(1), lat(8); l1 <= l8 {
		t.Fatalf("single-bank latency %v not above 8-bank latency %v", l1, l8)
	}
}

// TestLoadHitAllocFree pins the warm load fast path: an L1 hit costs
// zero heap allocations.
func TestLoadHitAllocFree(t *testing.T) {
	eng, h := newHierarchy(t)
	addr := uint64(0x880000)
	h.Load(0, addr, false, 0)
	eng.Run()
	var seq uint64
	if n := testing.AllocsPerRun(1000, func() {
		seq++
		if res, _ := h.Load(0, addr, false, seq); res != HitL1 {
			t.Fatalf("load result %v, want L1 hit", res)
		}
	}); n != 0 {
		t.Fatalf("L1-hit load allocated %.2f/op, want 0", n)
	}
}

// TestStartFetchCoalesceAllocFree pins the miss-coalescing path: once
// the pooled fetch's waiter slices have grown, joining an in-flight
// fetch allocates nothing.
func TestStartFetchCoalesceAllocFree(t *testing.T) {
	eng, h := newHierarchy(t)
	addr := uint64(0x900000)
	// Warm: grow the pooled fetch's waiter/core capacity past the
	// measurement count, then complete it so the fetch recycles with
	// capacity retained.
	h.Load(0, addr, false, 0)
	for i := 0; i < 1200; i++ {
		h.Load(1, addr, false, uint64(i))
	}
	eng.Run()
	// Measure: a fresh miss pops the recycled fetch; every further load
	// coalesces within the retained capacity.
	addr += 1 << 20
	h.Load(0, addr, false, 0)
	var seq uint64
	if n := testing.AllocsPerRun(1000, func() {
		seq++
		if res, _ := h.Load(1, addr, false, seq); res != GoesToMemory {
			t.Fatalf("load result %v, want coalesced miss", res)
		}
	}); n != 0 {
		t.Fatalf("coalescing load allocated %.2f/op, want 0", n)
	}
	eng.Run()
}

func TestWritebackReachesPCMWithMask(t *testing.T) {
	cfg := config.Default().WithVariant(config.Baseline)
	// Shrink L2 and LLC so evictions happen quickly.
	cfg.L2.SizeBytes = 8 << 10
	cfg.DRAMLLC.SizeBytes = 32 << 10
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHierarchy(eng, cfg, m)
	// Dirty many distinct lines to force eviction chains to PCM.
	for i := uint64(0); i < 4096; i++ {
		h.Store(0, i*64*4, 0b1, false)
		eng.Run()
	}
	met := m.Metrics()
	if met.Writes.Value() == 0 {
		t.Fatal("no PCM write-backs observed")
	}
	if met.DirtyWords.Total() == 0 || met.DirtyWords.Fraction(1) < 0.9 {
		t.Fatalf("write-back masks lost: %v", met.DirtyWords.Buckets())
	}
}

func TestHierarchyFiltersMemoryTraffic(t *testing.T) {
	eng, h := newHierarchy(t)
	// Re-touch a small working set: after warmup, no PCM traffic.
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 64; i++ {
			h.Load(0, i*64, false, i)
			eng.Run()
		}
	}
	if h.MemFetches != 64 {
		t.Fatalf("fetches %d, want 64 (one per distinct line)", h.MemFetches)
	}
	if h.L1Hits == 0 {
		t.Fatal("warm loads should hit L1")
	}
}
