package cache

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/sim"
)

func newHierarchy(t *testing.T) (*sim.Engine, *Hierarchy) {
	t.Helper()
	cfg := config.Default().WithVariant(config.RWoWRDE)
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, NewHierarchy(eng, cfg, m)
}

func TestLoadMissGoesToMemoryThenHitsL1(t *testing.T) {
	eng, h := newHierarchy(t)
	done := false
	res, _ := h.Load(0, 0x100040, false, func() { done = true })
	if res != GoesToMemory {
		t.Fatalf("cold load result %v", res)
	}
	eng.Run()
	if !done {
		t.Fatal("fill callback never ran")
	}
	res, lat := h.Load(0, 0x100040, false, nil)
	if res != HitL1 {
		t.Fatalf("second load result %v, want L1 hit", res)
	}
	if lat != sim.CPUCycle {
		t.Fatalf("L1 hit latency %v", lat)
	}
}

func TestLoadHitsL2AfterOtherHalfFetched(t *testing.T) {
	eng, h := newHierarchy(t)
	h.Load(0, 0x200000, false, func() {})
	eng.Run()
	// Same 64B line, other 32B half: misses L1 (32B lines), hits L2.
	res, lat := h.Load(0, 0x200020, false, nil)
	if res != HitL2 {
		t.Fatalf("result %v, want L2 hit", res)
	}
	if lat <= sim.CPUCycle {
		t.Fatalf("L2 hit latency %v too small", lat)
	}
}

func TestCoalescedMisses(t *testing.T) {
	eng, h := newHierarchy(t)
	count := 0
	h.Load(0, 0x300000, false, func() { count++ })
	h.Load(1, 0x300000, false, func() { count++ })
	if h.CoalescedMisses != 1 {
		t.Fatalf("coalesced %d, want 1", h.CoalescedMisses)
	}
	eng.Run()
	if count != 2 {
		t.Fatalf("%d callbacks, want 2", count)
	}
	if h.MemFetches != 1 {
		t.Fatalf("%d fetches, want 1 (coalesced)", h.MemFetches)
	}
}

func TestStoreDirtiesLineAndWritesBack(t *testing.T) {
	eng, h := newHierarchy(t)
	// Store misses everywhere: write-allocate fetch, then dirty.
	res := h.Store(0, 0x400000, 0b0011, false)
	if res != GoesToMemory {
		t.Fatalf("store result %v", res)
	}
	eng.Run()
	_, dirty, mask := h.L2.DirtyInfo(0x400000)
	if !dirty || mask != 0b0011 {
		t.Fatalf("L2 line dirty=%v mask=%b", dirty, mask)
	}
}

func TestStoreHitL2(t *testing.T) {
	eng, h := newHierarchy(t)
	h.Load(0, 0x500000, false, func() {})
	eng.Run()
	if res := h.Store(0, 0x500000, 0b100, false); res != HitL2 {
		t.Fatalf("store to resident line: %v", res)
	}
}

func TestSilentStoreProducesZeroMaskWriteback(t *testing.T) {
	eng, h := newHierarchy(t)
	res := h.Store(0, 0x600000, 0, false) // silent store
	if res != GoesToMemory {
		t.Fatalf("res %v", res)
	}
	eng.Run()
	_, dirty, mask := h.L2.DirtyInfo(0x600000)
	if !dirty || mask != 0 {
		t.Fatalf("silent store: dirty=%v mask=%b", dirty, mask)
	}
}

func TestCoherenceInvalidationOnRemoteStore(t *testing.T) {
	eng, h := newHierarchy(t)
	h.Load(0, 0x700000, false, func() {})
	eng.Run()
	if !h.L1[0].Present(0x700000) {
		t.Fatal("core 0 should cache the line")
	}
	h.Store(1, 0x700000, 1, false)
	eng.Run()
	if h.L1[0].Present(0x700000) {
		t.Fatal("remote store must invalidate core 0's L1 copy")
	}
	if h.InvalidationsSent == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestWritebackReachesPCMWithMask(t *testing.T) {
	cfg := config.Default().WithVariant(config.Baseline)
	// Shrink L2 and LLC so evictions happen quickly.
	cfg.L2.SizeBytes = 8 << 10
	cfg.DRAMLLC.SizeBytes = 32 << 10
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHierarchy(eng, cfg, m)
	// Dirty many distinct lines to force eviction chains to PCM.
	for i := uint64(0); i < 4096; i++ {
		h.Store(0, i*64*4, 0b1, false)
		eng.Run()
	}
	met := m.Metrics()
	if met.Writes.Value() == 0 {
		t.Fatal("no PCM write-backs observed")
	}
	if met.DirtyWords.Total() == 0 || met.DirtyWords.Fraction(1) < 0.9 {
		t.Fatalf("write-back masks lost: %v", met.DirtyWords.Buckets())
	}
}

func TestHierarchyFiltersMemoryTraffic(t *testing.T) {
	eng, h := newHierarchy(t)
	// Re-touch a small working set: after warmup, no PCM traffic.
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 64; i++ {
			h.Load(0, i*64, false, func() {})
			eng.Run()
		}
	}
	if h.MemFetches != 64 {
		t.Fatalf("fetches %d, want 64 (one per distinct line)", h.MemFetches)
	}
	if h.L1Hits == 0 {
		t.Fatal("warm loads should hit L1")
	}
}
