package cache

import (
	"testing"
	"testing/quick"

	"pcmap/internal/config"
)

func tiny() *Cache {
	// 4 sets x 2 ways x 64B = 512B.
	return New("t", config.CacheLevel{SizeBytes: 512, Ways: 2, LineBytes: 64})
}

func TestLookupMissThenHit(t *testing.T) {
	c := tiny()
	if c.Lookup(0x1000) {
		t.Fatal("cold cache should miss")
	}
	c.Insert(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("inserted line should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Three lines in the same set (set stride = 4*64 = 256B).
	a, b, d := uint64(0), uint64(1024), uint64(2048)
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a) // a becomes MRU
	v, had := c.Insert(d)
	if !had || v.Addr != b {
		t.Fatalf("should evict LRU line b, got %+v (had=%v)", v, had)
	}
	if !c.Present(a) || c.Present(b) || !c.Present(d) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyMaskAccumulates(t *testing.T) {
	c := tiny()
	c.Insert(0x40)
	if !c.MarkDirty(0x40, 0b0001) || !c.MarkDirty(0x40, 0b1000) {
		t.Fatal("MarkDirty on present line failed")
	}
	_, dirty, mask := c.DirtyInfo(0x40)
	if !dirty || mask != 0b1001 {
		t.Fatalf("dirty=%v mask=%b", dirty, mask)
	}
}

func TestSilentStoreDirtiesWithEmptyMask(t *testing.T) {
	c := tiny()
	c.Insert(0x80)
	c.MarkDirty(0x80, 0)
	_, dirty, mask := c.DirtyInfo(0x80)
	if !dirty || mask != 0 {
		t.Fatalf("silent store: dirty=%v mask=%b, want dirty with empty mask", dirty, mask)
	}
}

func TestEvictionCarriesMask(t *testing.T) {
	c := tiny()
	c.Insert(0)
	c.MarkDirty(0, 0b0110)
	c.Insert(1024)
	v, had := c.Insert(2048) // evicts line 0 (LRU)
	if !had || !v.Dirty || v.EssMask != 0b0110 {
		t.Fatalf("victim %+v", v)
	}
	if v.Addr != 0 {
		t.Fatalf("victim addr %#x", v.Addr)
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Insert(0x40)
	c.MarkDirty(0x40, 0xf)
	p, d, m := c.Invalidate(0x40)
	if !p || !d || m != 0xf {
		t.Fatalf("invalidate returned %v %v %b", p, d, m)
	}
	if c.Present(0x40) {
		t.Fatal("line still present after invalidate")
	}
	p, _, _ = c.Invalidate(0x40)
	if p {
		t.Fatal("double invalidate should report absent")
	}
}

func TestMarkDirtyMissReturnsFalse(t *testing.T) {
	c := tiny()
	if c.MarkDirty(0x999000, 1) {
		t.Fatal("MarkDirty on absent line must fail")
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	c := tiny()
	c.Insert(0)
	c.MarkDirty(0, 0xff)
	if _, had := c.Insert(0); had {
		t.Fatal("re-inserting a present line must not evict")
	}
	_, dirty, mask := c.DirtyInfo(0)
	if !dirty || mask != 0xff {
		t.Fatal("re-insert must keep dirty state")
	}
}

func TestSetIsolation(t *testing.T) {
	// Property: inserting lines never evicts a line from another set.
	if err := quick.Check(func(a, b uint32) bool {
		c := tiny()
		addrA, addrB := uint64(a)&^63, uint64(b)&^63
		c.Insert(addrA)
		v, had := c.Insert(addrB)
		if had && (v.Addr>>6)&3 != (addrB>>6)&3 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAlign(t *testing.T) {
	c := New("x", config.CacheLevel{SizeBytes: 1024, Ways: 2, LineBytes: 32})
	if c.Align(0x47) != 0x40 {
		t.Fatalf("align %#x", c.Align(0x47))
	}
}

func TestMissRatio(t *testing.T) {
	c := tiny()
	c.Lookup(0)
	c.Insert(0)
	c.Lookup(0)
	if got := c.MissRatio(); got != 0.5 {
		t.Fatalf("miss ratio %v", got)
	}
}

func TestLargeCacheFootprintBounded(t *testing.T) {
	// The 256MB LLC's SoA state must cost a small fixed fraction of
	// the cached capacity: 7 bytes per way slot plus 1 per set
	// (tags 4 + meta 1 + ess 1 + order 1, fill 1/set) — ~30 MB for
	// 4.2M slots, versus the 256 MB it indexes.
	lvl := config.Default().DRAMLLC
	sets := int(lvl.SizeBytes / int64(lvl.Ways*lvl.LineBytes))
	slots := sets * lvl.Ways
	c := New("llc", lvl)
	defer c.Release()
	got := len(c.tags)*4 + len(c.meta) + len(c.ess) + len(c.order) + len(c.fill)
	want := slots*7 + sets
	if got != want {
		t.Fatalf("SoA footprint %d bytes, want exactly %d", got, want)
	}
	if int64(got) > lvl.SizeBytes/8 {
		t.Fatalf("SoA state %d bytes exceeds 1/8 of the %d bytes cached", got, lvl.SizeBytes)
	}
}

func TestReleaseRecyclesSlabs(t *testing.T) {
	lvl := config.CacheLevel{SizeBytes: 1 << 20, Ways: 4, LineBytes: 64}
	a := New("a", lvl)
	a.Insert(0x40)
	a.MarkDirty(0x40, 0xff)
	tags := &a.tags[0]
	a.Release()
	if a.tags != nil {
		t.Fatal("Release must detach the arrays")
	}
	b := New("b", lvl)
	defer b.Release()
	if &b.tags[0] != tags {
		t.Fatal("same-geometry New after Release must reuse the slab")
	}
	// The recycled cache must be indistinguishable from a fresh one.
	if b.Present(0x40) {
		t.Fatal("recycled slab leaked residency")
	}
	if _, dirty, mask := b.DirtyInfo(0x40); dirty || mask != 0 {
		t.Fatal("recycled slab leaked dirty state")
	}
}

func TestInsertLookupAllocFree(t *testing.T) {
	c := New("a", config.CacheLevel{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64})
	defer c.Release()
	var addr uint64
	if n := testing.AllocsPerRun(1000, func() {
		c.Insert(addr)
		c.Lookup(addr)
		c.MarkDirty(addr, 1)
		addr += 64
	}); n != 0 {
		t.Fatalf("Insert/Lookup/MarkDirty allocated %.1f/op, want 0", n)
	}
}
