package pdes

import (
	"context"
	"fmt"
	"testing"

	"pcmap/internal/sim"
)

// The tests drive a synthetic machine shaped exactly like the real
// simulator's shard boundary: front-end events submit work to shards
// under the cross fence, shards run private completion chains (some
// events internal, the last one posting back), and the front-end
// handler may submit follow-up work. Run sequentially (one engine,
// posts executed inline) and sharded (Runtime), the observable log
// must be bit-identical.

type entry struct {
	at  sim.Time
	seq uint64
	id  int
}

type synthShard struct {
	eng *sim.Engine
	// pending mirrors the controllers' notePost bookkeeping: simulated
	// times of completion-chain events that will post.
	pending []sim.Time
	work    uint64 // shard-local state mutated by chain events
}

func (s *synthShard) horizon(next sim.Time) sim.Time {
	h := sim.Time(1<<62 - 1)
	for _, t := range s.pending {
		if t < h {
			h = t
		}
	}
	if next < h {
		h = next
	}
	return h
}

type synthMachine struct {
	fe     *sim.Engine
	shards []*synthShard
	rt     *Runtime // nil = sequential reference
	rng    *sim.RNG
	log    []entry
	left   int

	submitHook func(id int, at, d1, d2 sim.Time)
	finishHook func(id int, at sim.Time)
}

// postBack routes a completion to the front end: through the runtime
// in sharded mode, inline in the sequential reference — the same
// split core's post helpers make on rt == nil.
func (m *synthMachine) postBack(s int, fn func()) {
	sh := m.shards[s]
	if m.rt == nil {
		fn()
		return
	}
	m.rt.PostFE(s, sh.eng.Now(), sh.eng.CurSeq(), sh.eng.Seq(), fn)
}

// submit crosses the front-end/shard boundary under the fence and
// schedules a two-hop completion chain on the shard: an internal event
// at +d1 (touches shard state only), then the posting completion at
// +d1+d2. The post times are noted up front, mirroring notePost.
func (m *synthMachine) submit(id int, quantum sim.Time) {
	s := id % len(m.shards)
	sh := m.shards[s]
	if m.rt != nil {
		m.rt.BeginCross(s)
	}
	d1 := quantum.Times(1 + m.rng.Intn(40))
	d2 := quantum.Times(1 + m.rng.Intn(40))
	if m.submitHook != nil {
		m.submitHook(id, m.fe.Now(), d1, d2)
	}
	t1 := sh.eng.Now() + d1
	done := t1 + d2
	sh.pending = append(sh.pending, done)
	sh.eng.At(t1, func() {
		sh.work += uint64(id)*2654435761 + uint64(sh.eng.Now().Ticks())
		sh.eng.At(done, func() {
			for i, t := range sh.pending {
				if t == done {
					sh.pending[i] = sh.pending[len(sh.pending)-1]
					sh.pending = sh.pending[:len(sh.pending)-1]
					break
				}
			}
			sh.work ^= uint64(id)
			m.postBack(s, func() { m.finish(id, quantum) })
		})
	})
	if m.rt != nil {
		m.rt.EndCross(s)
	}
}

// finish runs in front-end context: it logs the completion under the
// engine's live clock and counter, and fans out follow-up submissions
// so cross-shard causality chains through several generations.
func (m *synthMachine) finish(id int, quantum sim.Time) {
	if m.finishHook != nil {
		m.finishHook(id, m.fe.Now())
	}
	m.log = append(m.log, entry{at: m.fe.Now(), seq: m.fe.AllocSeq(), id: id})
	m.left--
	if m.left > 0 && id%3 != 2 {
		next := id + 1000
		m.fe.Schedule(quantum.Times(m.rng.Intn(5)), func() {
			m.submit(next, quantum)
		})
	}
}

// buildSynth wires a machine with n initial submissions across parts
// partitions. sequential builds the reference: the same partitioning
// of state, but every partition lives on the one front-end engine and
// posts collapse to inline calls (no runtime).
func buildSynth(n, parts int, sequential bool, quantum sim.Time, seed uint64) *synthMachine {
	fe := sim.NewEngine()
	m := &synthMachine{fe: fe, rng: sim.NewRNG(seed), left: n + n} // initial + follow-ups upper bound
	var rshards []*Shard
	for i := 0; i < parts; i++ {
		sh := &synthShard{eng: fe}
		if !sequential {
			sh.eng = sim.NewEngine()
			rshards = append(rshards, &Shard{Eng: sh.eng, Horizon: sh.horizon})
		}
		m.shards = append(m.shards, sh)
	}
	if !sequential {
		m.rt = New(fe, rshards)
	}
	for i := 0; i < n; i++ {
		id := i
		fe.Schedule(quantum.Times(m.rng.Intn(50)), func() {
			m.submit(id, quantum)
		})
	}
	return m
}

func (m *synthMachine) run(t *testing.T) {
	t.Helper()
	if m.rt == nil {
		m.fe.Run()
		return
	}
	if err := m.rt.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// fingerprint captures everything observable about a run: the
// completion order, each completion's id and simulated time, and the
// shards' accumulated state. Raw sequence values are deliberately
// excluded — the sharded allocator hands out block-strided numbers, so
// only their relative order (the log order itself) is contractual.
func (m *synthMachine) fingerprint() string {
	s := fmt.Sprintf("log=%d", len(m.log))
	for _, e := range m.log {
		s += fmt.Sprintf(";%d@%d", e.id, e.at)
	}
	for i, sh := range m.shards {
		s += fmt.Sprintf(";w%d=%d", i, sh.work)
	}
	return s
}

// TestShardedMatchesSequential is the package's core claim: the same
// scripted workload produces an identical completion log — ids, times,
// and sequence numbers — whether it runs on one engine or sharded
// across private engines merged by the runtime.
func TestShardedMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xdead} {
		for _, shards := range []int{1, 2, 4} {
			ref := buildSynth(60, shards, true, sim.MemCycle, seed)
			ref.run(t)
			m := buildSynth(60, shards, false, sim.MemCycle, seed)
			m.run(t)
			if got, want := m.fingerprint(), ref.fingerprint(); got != want {
				t.Fatalf("seed %d shards %d diverged:\n got %.200s\nwant %.200s", seed, shards, got, want)
			}
			if m.rt.Posts() == 0 {
				t.Fatalf("seed %d shards %d: no cross-shard posts exercised", seed, shards)
			}
		}
	}
}

// TestWindowEdgeTies uses a single-tick quantum so completion times
// constantly collide across shards and with front-end events — every
// window boundary is a tie broken purely by sequence numbers, the
// hardest case for the block allocator.
func TestWindowEdgeTies(t *testing.T) {
	for _, shards := range []int{2, 4} {
		ref := buildSynth(80, shards, true, 1, 42)
		ref.run(t)
		m := buildSynth(80, shards, false, 1, 42)
		m.run(t)
		if got, want := m.fingerprint(), ref.fingerprint(); got != want {
			t.Fatalf("shards %d diverged on tie-heavy workload:\n got %.200s\nwant %.200s", shards, got, want)
		}
	}
}

// TestZeroLookahead drops the Horizon hook: the runtime must fall back
// to the conservative bound (a shard may post at its very next event)
// and still terminate with the exact sequential result.
func TestZeroLookahead(t *testing.T) {
	ref := buildSynth(40, 3, true, sim.MemCycle, 9)
	ref.run(t)
	m := buildSynth(40, 3, false, sim.MemCycle, 9)
	for _, sh := range m.rt.shards {
		sh.Horizon = nil
	}
	m.run(t)
	if got, want := m.fingerprint(), ref.fingerprint(); got != want {
		t.Fatalf("zero-lookahead run diverged:\n got %.200s\nwant %.200s", got, want)
	}
}

// TestRepeatedRuns reuses one runtime across Run calls (the system
// layer's warmup/measure split): the sequence allocator must stay
// monotone so phase-two keys never collide with phase one's.
func TestRepeatedRuns(t *testing.T) {
	m := buildSynth(30, 2, false, sim.MemCycle, 3)
	m.run(t)
	n := len(m.log)
	if n == 0 {
		t.Fatal("phase one produced no completions")
	}
	// Phase two: inject a fresh batch on the same engines and runtime.
	m.left = 20
	for i := 0; i < 10; i++ {
		id := 5000 + i
		m.fe.Schedule(sim.MemCycle.Times(m.rng.Intn(50)), func() {
			m.submit(id, sim.MemCycle)
		})
	}
	m.run(t)
	if len(m.log) <= n {
		t.Fatalf("phase two produced no completions (%d then %d)", n, len(m.log))
	}
	last := Key{}
	for _, e := range m.log {
		k := Key{At: e.at, Seq: e.seq}
		if k.Less(last) {
			t.Fatalf("completion log not monotone across Run calls at id %d", e.id)
		}
		last = k
	}
}

// TestCancellation verifies Run honors its context like the sequential
// step loop: it returns the context error and joins every worker (the
// race detector and goroutine-leak behavior under -race back this up).
func TestCancellation(t *testing.T) {
	m := buildSynth(200, 4, false, sim.MemCycle, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.rt.Run(ctx); err != context.Canceled {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
	// The same runtime runs again (workers are per-Run) and finishes
	// the workload.
	if err := m.rt.Run(context.Background()); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
}

// TestStress is the -race workhorse: many generations, several shard
// counts, tie-heavy timing — any unsynchronized access to an outbox,
// engine, or counter surfaces here.
func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for seed := uint64(0); seed < 6; seed++ {
		for _, shards := range []int{2, 3, 4} {
			m := buildSynth(120, shards, false, 3, 100+seed)
			m.run(t)
			ref := buildSynth(120, shards, true, 3, 100+seed)
			ref.run(t)
			if m.fingerprint() != ref.fingerprint() {
				t.Fatalf("seed %d shards %d diverged under stress", seed, shards)
			}
		}
	}
}
