// Package pdes is a conservative parallel discrete-event scheduler
// that shards one simulation across goroutines at the memory-channel
// boundary, producing bit-identical results to the single-threaded
// engine by construction.
//
// # Decomposition
//
// The front end (cores, caches, NoC, the memory facade) keeps the main
// engine and executes on the coordinator — the goroutine that calls
// Run. Each shard owns a private sim.Engine carrying one or more
// channel controllers, driven by a dedicated worker goroutine. The
// partition follows the paper's own parallelism argument: channels
// share nothing with each other, so all cross-shard traffic flows
// through the front end.
//
// # Why windows, and where lookahead comes from
//
// A shard may run ahead of the global clock only while nothing outside
// it can influence it and it cannot influence anything outside. The
// coordinator therefore dispatches bounded windows: a shard executes
// events with key strictly below the minimum over every other engine's
// next pending key and every in-flight window's post floor. The floor
// is the shard's lookahead — a lower bound on the earliest cross-shard
// message it could emit, derived from its already-scheduled completion
// times plus the channel's minimum service latency (a read posts no
// sooner than TCL after its scheduling pass, a write no sooner than
// TWL). The one genuinely zero-lookahead case, a fully silent
// write-back completing at its own issue instant, collapses the window
// and serializes that span exactly.
//
// # Why the merge is bit-identical
//
// The sequential engine orders events by (time, seq) with seq assigned
// by one monotone counter. The sharded run preserves that total order
// with sequence blocks: before executing or dispatching each event the
// coordinator hands it a fresh block of the global sequence space, and
// blocks are allocated in execution order. Any two events therefore
// compare exactly as their sequential counterparts would: relative
// order inside a block matches the spawn order, and across blocks the
// allocation order matches the sequential execution order. Synchronous
// front-end-to-shard calls (Submit, the post-completion kick) thread
// the live counter through the call via BeginCross/EndCross, and
// shard-to-front-end messages carry keys assigned on the shard and are
// merged with Engine.AtSeq. A posted message carries the key of the
// shard event that emitted it — on the shared engine its work would
// have run inline inside that event — and no engine is ever allowed
// past an in-flight window's floor, so every post is integrated before
// any engine reaches its key. The determinism harness verifies the
// result rather than assuming it: -shards N output is byte-compared
// against the single-threaded run.
package pdes

import (
	"context"
	"math"
	"sync"

	"pcmap/internal/sim"
)

// Key is an engine event key: the (time, sequence) pair the heap
// orders by. Seq is unique per engine run, so Key is a total order.
type Key struct {
	At  sim.Time
	Seq uint64
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	return k.At < o.At || (k.At == o.At && k.Seq < o.Seq)
}

// maxKey is the identity of min over keys.
var maxKey = Key{At: math.MaxInt64, Seq: math.MaxUint64}

// Post is one cross-shard message: a front-end callback stamped with
// the key of the shard event that emitted it (on a single shared
// engine the callback would have run inline within that event) and the
// counter value the callback's own scheduling resumes from.
type Post struct {
	At   sim.Time
	Seq  uint64
	Tail uint64
	Fn   func()
}

// Shard is one partition of the simulation.
type Shard struct {
	// Eng is the shard's private engine.
	Eng *sim.Engine
	// Horizon reports a lower bound on the simulated time of the
	// earliest front-end post the shard could emit, given that its
	// next pending event is at next. A nil Horizon means zero
	// lookahead (the bound is next itself).
	Horizon func(next sim.Time) sim.Time
}

// Sequence-block strides. A front-end event's spawns draw from a
// feStride-sized block; a dispatched window draws eventStride per
// executed event from a windowStride-sized range. The strides bound
// spawns per event at 2^20 and events per window at 2^12 — both far
// beyond anything the simulator produces, while total consumption
// stays far below 2^64 for any realizable run length.
const (
	feStride     = 1 << 20
	eventStride  = 1 << 20
	windowStride = 1 << 32
)

// dispatchMinWindow is the narrowest window (in simulated ticks) worth
// the channel round-trip to a worker goroutine; anything narrower runs
// inline on the coordinator. Two memory cycles is comfortably below
// the TCL/TWL lookahead that opens real windows, and comfortably above
// the degenerate zero-width windows of fenced same-instant traffic.
const dispatchMinWindow = 2 * sim.MemCycle

// window is one dispatched unit of work for a shard worker.
type window struct {
	limit Key
	base  uint64 // first sequence block of the window's range
	end   uint64 // exclusive end of the range
}

// report is a worker's account of a finished window.
type report struct {
	shard int
	posts []Post
}

// Runtime coordinates the front-end engine and the shard workers. It
// implements core.ShardRuntime. All exported methods are
// coordinator-context only, except PostFE (shard running context).
type Runtime struct {
	fe     *sim.Engine
	shards []*Shard

	// nextSeq is the global sequence-block allocator; strictly
	// monotone across the runtime's whole life, so keys never collide
	// between Run calls.
	nextSeq uint64

	// posts counts integrated cross-shard messages. Each is an extra
	// engine event the sequential run performs inline, so callers
	// subtract it when comparing event counts across modes.
	posts uint64

	// outbox[s] is the shard's inbox buffer toward the front end:
	// written by shard s's running context (its worker between window
	// receipt and report send, or the coordinator during an inline
	// window) and swapped by the coordinator while s is idle; the
	// windows/reports channel handoffs order every transfer of
	// ownership, so no access ever races.
	outbox [][]Post
	// spare holds each shard's other ping-pong outbox buffer.
	//pcmaplint:guardedby single-goroutine
	spare [][]Post

	inflight  []bool
	floors    []Key
	nInflight int

	//pcmaplint:chanowner windows[s] is written and closed by the
	// coordinator at the end of each Run; shard s's worker only reads.
	windows []chan window
	// reports is written by workers and read by the coordinator, which
	// joins every worker (WaitGroup) before Run returns, then discards
	// the channel — it is never closed.
	//pcmaplint:chanowner coordinator reads; workers joined before Run returns; never closed
	reports chan report
}

// New builds a runtime over the front-end engine and its shards. The
// sequence allocator starts above every key assigned during
// construction, so run-time blocks order after build-time events.
func New(fe *sim.Engine, shards []*Shard) *Runtime {
	r := &Runtime{fe: fe, shards: shards}
	r.nextSeq = fe.Seq() + 1
	for _, sh := range shards {
		if s := sh.Eng.Seq() + 1; s > r.nextSeq {
			r.nextSeq = s
		}
	}
	r.outbox = make([][]Post, len(shards))
	r.spare = make([][]Post, len(shards))
	r.inflight = make([]bool, len(shards))
	r.floors = make([]Key, len(shards))
	return r
}

// Posts returns the number of cross-shard messages integrated so far.
func (r *Runtime) Posts() uint64 { return r.posts }

// allocBlock reserves a sequence range of the given stride.
func (r *Runtime) allocBlock(stride uint64) uint64 {
	b := r.nextSeq
	r.nextSeq += stride
	return b
}

// head returns engine e's next pending key.
func head(e *sim.Engine) (Key, bool) {
	at, seq, ok := e.PeekNext()
	return Key{At: at, Seq: seq}, ok
}

// PostFE implements core.ShardRuntime: it appends one stamped message
// to the shard's current outbox. Called from the shard's running
// context; the buffer is single-writer by the ownership protocol
// documented on Runtime.outbox.
func (r *Runtime) PostFE(shard int, at sim.Time, seq, tailSeq uint64, fn func()) {
	r.outbox[shard] = append(r.outbox[shard], Post{At: at, Seq: seq, Tail: tailSeq, Fn: fn})
}

// BeginCross implements core.ShardRuntime: join the shard's in-flight
// window, then align its clock and hand it the live sequence counter
// so the synchronous call's scheduling is indistinguishable from the
// single-engine run.
func (r *Runtime) BeginCross(shard int) {
	for r.inflight[shard] {
		r.integrate(<-r.reports)
	}
	sh := r.shards[shard].Eng
	sh.SyncNow(r.fe.Now())
	sh.SetNextSeq(r.fe.Seq())
}

// EndCross implements core.ShardRuntime: return the counter.
func (r *Runtime) EndCross(shard int) {
	r.fe.SetNextSeq(r.shards[shard].Eng.Seq())
}

// integrate lands a finished window: marks the shard idle and merges
// its posts into the front-end heap under their shard-assigned keys.
// Every post's key is provably at or after the front end's current
// instant (the coordinator never executes past an in-flight floor), so
// the merge cannot schedule into the past. The wrapper resumes the
// emitting event's counter mid-block, so the tail's spawns slot into
// the sequence space exactly where the inline call would have put
// them — the remainder of the event's stride is its reserved room.
func (r *Runtime) integrate(rep report) {
	for _, p := range rep.posts {
		p := p
		r.fe.AtSeq(p.At, p.Seq, func() {
			r.fe.SetNextSeq(p.Tail)
			p.Fn()
		})
	}
	r.posts += uint64(len(rep.posts))
	r.spare[rep.shard] = rep.posts[:0]
	r.inflight[rep.shard] = false
	r.nInflight--
}

// runWindow executes one shard window: events strictly below the
// limit, each under a fresh sequence block, stopping early if the
// range runs dry (the coordinator simply re-dispatches from where the
// window left off) — or, crucially, immediately after any event that
// posts. The floor protocol keeps every OTHER engine below a pending
// post's key, but only stopping protects the shard from its own
// boomerang causality: the post's front-end tail may fence new events
// back into this very shard (a retried submit, a verify read-back) at
// keys above the post but below the window's limit, events a
// continuing window would wrongly run past. Runs in the shard's
// running context.
func (r *Runtime) runWindow(shard int, w window) {
	eng := r.shards[shard].Eng
	base := w.base
	for {
		k, ok := head(eng)
		if !ok || !k.Less(w.limit) || base+eventStride > w.end {
			return
		}
		eng.SetNextSeq(base)
		base += eventStride
		eng.Step()
		if len(r.outbox[shard]) > 0 {
			return
		}
	}
}

// horizonKey computes a dispatch-time lower bound on every key the
// shard's window could post. A post carries its emitting event's key,
// so it is bounded below both by the window's start m and by the
// shard's Horizon time (posts at the horizon instant can carry any
// tie-breaker, hence sequence zero).
func (r *Runtime) horizonKey(shard int, m Key) Key {
	sh := r.shards[shard]
	h := m.At
	if sh.Horizon != nil {
		h = sh.Horizon(m.At)
	}
	if h <= m.At {
		return m
	}
	return Key{At: h, Seq: 0}
}

// minFloor is the least in-flight post floor.
func (r *Runtime) minFloor() Key {
	m := maxKey
	for i, f := range r.floors {
		if r.inflight[i] && f.Less(m) {
			m = f
		}
	}
	return m
}

// cancelCheckInterval matches the single-threaded runner's cadence of
// context checks per executed event.
const cancelCheckInterval = 8192

// Run drives every engine until no events remain anywhere, honoring
// ctx like the single-threaded engine loop does. Workers live for the
// duration of one Run call: they are joined (and their last windows
// integrated) before Run returns, on success, cancellation, or panic,
// so no goroutine outlives the simulation it belongs to.
func (r *Runtime) Run(ctx context.Context) error {
	// Construction and between-run scheduling (workload phase starts)
	// draw from the engines' live counters; blocks must start above
	// everything already assigned.
	if s := r.fe.Seq() + 1; s > r.nextSeq {
		r.nextSeq = s
	}
	for _, sh := range r.shards {
		if s := sh.Eng.Seq() + 1; s > r.nextSeq {
			r.nextSeq = s
		}
	}

	var wg sync.WaitGroup
	r.windows = make([]chan window, len(r.shards))
	r.reports = make(chan report, len(r.shards))
	for i := range r.shards {
		ch := make(chan window, 1)
		r.windows[i] = ch
		wg.Add(1)
		go func(shard int, windows <-chan window) {
			defer wg.Done()
			for w := range windows {
				r.runWindow(shard, w)
				r.reports <- report{shard: shard, posts: r.outbox[shard]}
			}
		}(i, ch)
	}
	defer func() {
		for r.nInflight > 0 {
			r.integrate(<-r.reports)
		}
		for _, ch := range r.windows {
			close(ch)
		}
		wg.Wait()
	}()

	cancellable := ctx != nil && ctx.Done() != nil
	if cancellable {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	checks := 0
	for {
		if cancellable {
			if checks++; checks >= cancelCheckInterval {
				checks = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}

		// Global minimum over idle engines' heads; -1 names the front
		// end.
		best := -2
		m := maxKey
		if k, ok := head(r.fe); ok {
			m, best = k, -1
		}
		for i, sh := range r.shards {
			if r.inflight[i] {
				continue
			}
			if k, ok := head(sh.Eng); ok && k.Less(m) {
				m, best = k, i
			}
		}

		if best == -2 && r.nInflight == 0 {
			return nil // every heap drained, nothing in flight
		}
		if best == -2 || !m.Less(r.minFloor()) {
			// Nothing safely below an in-flight window's possible
			// posts: wait for a report.
			r.integrate(<-r.reports)
			continue
		}

		if best == -1 {
			// Front-end event: execute inline under a fresh block. Any
			// fence it performs joins the target shard first, and every
			// in-flight window's limit is provably at or below this
			// key, so the fence can never observe a shard beyond it.
			r.fe.SetNextSeq(r.allocBlock(feStride))
			r.fe.Step()
			continue
		}

		// Shard window: bounded by every other engine's next key and
		// every in-flight floor.
		limit := r.minFloor()
		if k, ok := head(r.fe); ok && k.Less(limit) {
			limit = k
		}
		for i, sh := range r.shards {
			if i == best || r.inflight[i] {
				continue
			}
			if k, ok := head(sh.Eng); ok && k.Less(limit) {
				limit = k
			}
		}
		base := r.allocBlock(windowStride)
		w := window{limit: limit, base: base, end: base + windowStride}
		r.outbox[best] = r.spare[best][:0]
		r.spare[best] = nil
		if limit.At-m.At >= dispatchMinWindow {
			r.floors[best] = r.horizonKey(best, m)
			r.inflight[best] = true
			r.nInflight++
			r.windows[best] <- w
		} else {
			// Degenerate window: not worth a goroutine round-trip.
			r.runWindow(best, w)
			r.integrate(report{shard: best, posts: r.outbox[best]})
			r.nInflight++ // integrate undoes this; keep the count exact
		}
	}
}
