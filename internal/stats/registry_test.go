package stats

import (
	"reflect"
	"testing"
)

func TestRegistryRegisterAndCounters(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	r.Register("reads", &a)
	r.Register("writes", &b)
	a.Add(3)
	b.Inc()
	got := r.Counters()
	want := []NamedCounter{{"reads", 3}, {"writes", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Counters() = %v, want %v", got, want)
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	// Registration order, not name order, is the contract.
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n)
	}
	got := r.Counters()
	if got[0].Name != "zeta" || got[1].Name != "alpha" || got[2].Name != "mid" {
		t.Fatalf("registration order not preserved: %v", got)
	}
}

func TestRegistryCollisionPanics(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	r.Register("reads", &a)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Register("reads", &b)
}

func TestRegistryNilCounterPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("nil counter registration must panic")
		}
	}()
	r.Register("reads", nil)
}

func TestRegistrySubNamespacing(t *testing.T) {
	root := NewRegistry()
	cpu := root.Sub("cpu").Sub("core0")
	var stall Counter
	cpu.Register("stall", &stall)
	stall.Add(7)

	if _, ok := root.Lookup("cpu.core0.stall"); !ok {
		t.Fatal("root must see the full dotted name")
	}
	if c, ok := cpu.Lookup("stall"); !ok || c.Value() != 7 {
		t.Fatal("sub view must resolve relative names")
	}
	got := root.Counters()
	if len(got) != 1 || got[0].Name != "cpu.core0.stall" || got[0].Value != 7 {
		t.Fatalf("root Counters() = %v", got)
	}
	sub := cpu.Counters()
	if len(sub) != 1 || sub[0].Name != "stall" {
		t.Fatalf("sub Counters() = %v", sub)
	}
}

func TestRegistrySubIsolation(t *testing.T) {
	root := NewRegistry()
	a := root.Sub("a")
	b := root.Sub("b")
	a.Counter("x").Add(1)
	b.Counter("x").Add(2)
	if a.Counter("x").Value() != 1 || b.Counter("x").Value() != 2 {
		t.Fatal("sibling subs must not share counters")
	}
	if got := a.Len(); got != 1 {
		t.Fatalf("a.Len() = %d, want 1", got)
	}
	// Reset through one view touches only its subtree.
	a.Reset()
	if a.Counter("x").Value() != 0 || b.Counter("x").Value() != 2 {
		t.Fatal("Reset on a sub view must be scoped to its prefix")
	}
}

func TestRegistryResetZeroesInPlace(t *testing.T) {
	r := NewRegistry()
	var a Counter
	r.Register("reads", &a)
	a.Add(9)
	r.Reset()
	if a.Value() != 0 {
		t.Fatal("Reset must zero externally registered counters through their pointers")
	}
	a.Inc()
	if got := r.Counters()[0].Value; got != 1 {
		t.Fatalf("counter detached after reset: %d", got)
	}
}

func TestRegistryMergeAddsAndAdopts(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("reads").Add(1)
	src.Counter("reads").Add(2)
	src.Counter("writes").Add(5)
	dst.Merge(src)
	got := dst.Counters()
	want := []NamedCounter{{"reads", 3}, {"writes", 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after merge: %v, want %v", got, want)
	}
	// Merging again must keep adding, not re-adopt.
	dst.Merge(src)
	if v := dst.Counter("writes").Value(); v != 10 {
		t.Fatalf("second merge: writes = %d, want 10", v)
	}
}

// TestRegistryRoundTrip is the Reset/Merge/Counters round-trip
// property: merging N copies of a registry into a fresh one multiplies
// every value by N, and a Reset returns it to all zeros with the name
// set intact.
func TestRegistryRoundTrip(t *testing.T) {
	src := NewRegistry()
	names := []string{"a", "b.c", "b.d", "z"}
	for i, n := range names {
		src.Counter(n).Add(uint64(i + 1))
	}
	agg := NewRegistry()
	const n = 3
	for i := 0; i < n; i++ {
		agg.Merge(src)
	}
	for i, nc := range agg.Counters() {
		if nc.Name != names[i] {
			t.Fatalf("order changed through merge: %v", agg.Counters())
		}
		if nc.Value != uint64(n*(i+1)) {
			t.Fatalf("%s = %d, want %d", nc.Name, nc.Value, n*(i+1))
		}
	}
	agg.Reset()
	for _, nc := range agg.Counters() {
		if nc.Value != 0 {
			t.Fatalf("after reset %s = %d", nc.Name, nc.Value)
		}
	}
	if got := agg.Len(); got != len(names) {
		t.Fatalf("reset must keep the name set: len %d", got)
	}
}

func TestRegistrySortedNames(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		r.Counter(n)
	}
	got := r.SortedNames()
	if !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("SortedNames() = %v", got)
	}
}

func TestRegistrySubEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub(\"\") must panic")
		}
	}()
	NewRegistry().Sub("")
}
