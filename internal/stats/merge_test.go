package stats

import (
	"reflect"
	"testing"

	"pcmap/internal/sim"
)

// histWith builds a histogram with n buckets and the given samples.
func histWith(n int, samples ...int) *Histogram {
	h := NewHistogram(n)
	for _, s := range samples {
		h.Add(s)
	}
	return h
}

// TestMergeHistogramClamps is the table-driven edge-case guard for the
// destination-size mismatches that used to panic: an empty (zero-value)
// dst indexed bucket -1, and a shorter dst indexed past its end.
func TestMergeHistogramClamps(t *testing.T) {
	cases := []struct {
		name        string
		dst, src    *Histogram
		wantBuckets []uint64
		wantTotal   uint64
	}{
		{"equal sizes", histWith(3, 0, 1), histWith(3, 1, 2), []uint64{1, 2, 1}, 4},
		{"empty zero-value dst adopts src size", &Histogram{}, histWith(3, 0, 2, 2), []uint64{1, 0, 2}, 3},
		{"empty src is a no-op", histWith(2, 1), &Histogram{}, []uint64{0, 1}, 1},
		{"both empty", &Histogram{}, &Histogram{}, nil, 0},
		{"shorter dst clamps overflow into last bucket", histWith(2, 0), histWith(5, 1, 3, 4, 4), []uint64{1, 4}, 5},
		{"longer dst keeps src positions", histWith(5, 4), histWith(2, 0, 1, 1), []uint64{1, 2, 0, 0, 1}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			MergeHistogram(tc.dst, tc.src)
			if !reflect.DeepEqual(tc.dst.buckets, tc.wantBuckets) {
				t.Errorf("buckets = %v, want %v", tc.dst.buckets, tc.wantBuckets)
			}
			if tc.dst.total != tc.wantTotal {
				t.Errorf("total = %d, want %d", tc.dst.total, tc.wantTotal)
			}
		})
	}
}

// latWith builds a tracker with n one-ns buckets and the given samples.
func latWith(n int, samplesNS ...int) *LatencyTracker {
	l := &LatencyTracker{buckets: make([]uint64, n)}
	for _, s := range samplesNS {
		l.Add(sim.Nanosecond.Times(s))
	}
	return l
}

// TestMergeLatencyGrows covers the size-mismatch matrix for
// LatencyTracker: a dst physically shorter than src (including the
// empty zero value) grows rather than clamping, so every sample keeps
// its exact bucket position after the merge.
func TestMergeLatencyGrows(t *testing.T) {
	cases := []struct {
		name      string
		dst, src  *LatencyTracker
		wantAt    map[int]uint64 // expected counts by bucket index
		wantTotal uint64
	}{
		{"equal sizes", latWith(10, 3, 9), latWith(10, 9),
			map[int]uint64{3: 1, 9: 2}, 3},
		{"empty zero-value dst grows to cover src", &LatencyTracker{}, latWith(10, 4, 9),
			map[int]uint64{4: 1, 9: 1}, 2},
		{"shorter dst grows, samples keep positions", latWith(5, 4), latWith(10, 7, 9, 9),
			map[int]uint64{4: 1, 7: 1, 9: 2}, 4},
		{"empty src is a no-op", latWith(5, 4), &LatencyTracker{},
			map[int]uint64{4: 1}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srcLen := len(tc.src.buckets)
			MergeLatency(tc.dst, tc.src)
			if tc.dst.total != tc.wantTotal {
				t.Errorf("total = %d, want %d", tc.dst.total, tc.wantTotal)
			}
			if len(tc.dst.buckets) < srcLen {
				t.Errorf("dst len %d < src len %d after merge", len(tc.dst.buckets), srcLen)
			}
			for i, want := range tc.wantAt {
				if got := tc.dst.buckets[i]; got != want {
					t.Errorf("bucket[%d] = %d, want %d", i, got, want)
				}
			}
		})
	}
}

// TestMergeLatencyStats checks the scalar summary fields merge too.
func TestMergeLatencyStats(t *testing.T) {
	dst, src := latWith(100, 10), latWith(100, 20, 30)
	MergeLatency(dst, src)
	if dst.Count() != 3 {
		t.Errorf("count = %d, want 3", dst.Count())
	}
	if got := dst.MeanNS(); got < 19.9 || got > 20.1 {
		t.Errorf("mean = %g, want 20", got)
	}
	if got := dst.MaxNS(); got < 29.9 || got > 30.1 {
		t.Errorf("max = %g, want 30", got)
	}
}
