package stats

import (
	"encoding/json"
	"reflect"
	"testing"

	"pcmap/internal/sim"
)

// roundTrip marshals v, unmarshals into fresh, and fails on error.
func roundTrip(t *testing.T, v, fresh any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := json.Unmarshal(data, fresh); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}

func TestCounterRoundTrip(t *testing.T) {
	var c Counter
	c.Add(41)
	c.Inc()
	var got Counter
	roundTrip(t, c, &got)
	if got.Value() != 42 {
		t.Fatalf("count = %d, want 42", got.Value())
	}
}

func TestHistogramRoundTrip(t *testing.T) {
	h := NewHistogram(9)
	for _, v := range []int{0, 1, 1, 8, 12, -3} {
		h.Add(v)
	}
	var got Histogram
	roundTrip(t, h, &got)
	if !reflect.DeepEqual(&got, h) {
		t.Fatalf("histogram did not round-trip: %+v vs %+v", got, *h)
	}
	// The zero value must round-trip too (it is a valid merge target).
	var zero, gotZero Histogram
	roundTrip(t, &zero, &gotZero)
	if !reflect.DeepEqual(&gotZero, &zero) {
		t.Fatal("zero-value histogram did not round-trip")
	}
}

func TestLatencyTrackerRoundTrip(t *testing.T) {
	l := NewLatencyTracker()
	for _, ns := range []int{3, 3, 250, 99999, 1 << 20} {
		l.Add(sim.Nanosecond.Times(ns))
	}
	var got LatencyTracker
	roundTrip(t, l, &got)
	if !reflect.DeepEqual(&got, l) {
		t.Fatal("latency tracker did not round-trip")
	}
	// The report-facing accessors must be bit-identical, since cached
	// results feed byte-identical report output.
	//pcmaplint:ignore floatcmp round-trip fidelity means bit-identical floats; an epsilon would mask codec drift
	if got.MeanNS() != l.MeanNS() || got.MaxNS() != l.MaxNS() || got.PercentileNS(95) != l.PercentileNS(95) {
		t.Fatalf("accessors drifted: mean %v vs %v", got.MeanNS(), l.MeanNS())
	}
}

func TestLatencyTrackerRejectsOutOfRangeSample(t *testing.T) {
	var got LatencyTracker
	if err := json.Unmarshal([]byte(`{"bucketCount":4,"samples":[[9,1]]}`), &got); err == nil {
		t.Fatal("out-of-range sample bucket must be rejected")
	}
}

func TestIRLPRoundTrip(t *testing.T) {
	x := NewIRLP()
	x.AddWriteWindow(10, 50)
	x.AddChipService(10, 30)
	x.AddChipService(20, 50)

	// Unfinalized: the deltas themselves must survive.
	var raw IRLP
	roundTrip(t, x, &raw)
	if !reflect.DeepEqual(&raw, x) {
		t.Fatal("unfinalized IRLP did not round-trip")
	}

	// Finalized: the summary must survive and Finalize stay idempotent.
	x.Finalize(8)
	var fin IRLP
	roundTrip(t, x, &fin)
	if !reflect.DeepEqual(&fin, x) {
		t.Fatal("finalized IRLP did not round-trip")
	}
	fin.Finalize(8)
	//pcmaplint:ignore floatcmp round-trip of a stored value, no arithmetic in between
	if fin.Average() != x.Average() || fin.MaxBusy() != x.MaxBusy() || fin.WriteBusyTime() != x.WriteBusyTime() {
		t.Fatalf("finalized summary drifted: avg %v vs %v", fin.Average(), x.Average())
	}
}
