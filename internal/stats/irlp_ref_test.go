package stats

import (
	"math"
	"testing"

	"pcmap/internal/sim"
)

// refIRLP is a brute-force reference: discretize the timeline at unit
// resolution and average the clamped busy-chip count over instants
// covered by at least one write window.
func refIRLP(writes, chips [][2]sim.Time, maxChips int) (avg float64, busy sim.Time, maxBusy int) {
	var lo, hi sim.Time
	first := true
	for _, w := range append(append([][2]sim.Time{}, writes...), chips...) {
		if first || w[0] < lo {
			lo = w[0]
		}
		if first || w[1] > hi {
			hi = w[1]
		}
		first = false
	}
	var integral float64
	for t := lo; t < hi; t++ {
		inWrite := false
		for _, w := range writes {
			if t >= w[0] && t < w[1] {
				inWrite = true
				break
			}
		}
		if !inWrite {
			continue
		}
		n := 0
		for _, c := range chips {
			if t >= c[0] && t < c[1] {
				n++
			}
		}
		if n > maxChips {
			n = maxChips
		}
		integral += float64(n)
		busy++
		if n > maxBusy {
			maxBusy = n
		}
	}
	if busy > 0 {
		avg = integral / float64(busy.Ticks())
	}
	return avg, busy, maxBusy
}

// TestIRLPMatchesBruteForce cross-checks the sweep implementation
// against the discretized reference on many random interval sets.
func TestIRLPMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(123)
	for trial := 0; trial < 200; trial++ {
		var writes, chips [][2]sim.Time
		x := NewIRLP()
		for i := 0; i < 1+rng.Intn(6); i++ {
			s := sim.Time(rng.Intn(80))
			e := s + sim.Time(1+rng.Intn(40))
			writes = append(writes, [2]sim.Time{s, e})
			x.AddWriteWindow(s, e)
		}
		for i := 0; i < rng.Intn(12); i++ {
			s := sim.Time(rng.Intn(120))
			e := s + sim.Time(1+rng.Intn(30))
			chips = append(chips, [2]sim.Time{s, e})
			x.AddChipService(s, e)
		}
		x.Finalize(8)
		wantAvg, wantBusy, wantMax := refIRLP(writes, chips, 8)
		if x.WriteBusyTime() != wantBusy {
			t.Fatalf("trial %d: busy %v, reference %v", trial, x.WriteBusyTime(), wantBusy)
		}
		if math.Abs(x.Average()-wantAvg) > 1e-9 {
			t.Fatalf("trial %d: avg %v, reference %v", trial, x.Average(), wantAvg)
		}
		if x.MaxBusy() != wantMax {
			t.Fatalf("trial %d: max %d, reference %d", trial, x.MaxBusy(), wantMax)
		}
	}
}
