package stats

import (
	"sort"

	"pcmap/internal/sim"
)

// IRLP measures intra-rank-level parallelism during writes, the paper's
// central metric (Section I footnote 2): over the union of time windows
// in which at least one write is in service on the rank, the
// time-average number of chips concurrently serving data words (reads or
// essential-word writes). ECC/PCC bookkeeping updates are modeled for
// contention but do not count as data service, which keeps the metric's
// maximum at the paper's 8.0 for an 8-data-chip rank.
//
// Components report service intervals as they are scheduled (ends may
// lie in the future); the tracker sorts the resulting deltas once at
// Finalize time and sweeps the timeline.
type IRLP struct {
	deltas    []irlpDelta
	finalized bool
	avg       float64
	maxBusy   int
	busyTime  sim.Time
}

type irlpDelta struct {
	at    sim.Time
	write int8 // +1 / -1 when a write enters / leaves service
	chip  int8 // +1 / -1 when a chip begins / ends data service
}

// NewIRLP returns an empty tracker.
func NewIRLP() *IRLP { return &IRLP{} }

// Reset empties the tracker in place, keeping the delta array's
// capacity so warmup-discard resets do not reallocate it.
func (x *IRLP) Reset() {
	x.deltas = x.deltas[:0]
	x.finalized = false
	x.avg, x.maxBusy, x.busyTime = 0, 0, 0
}

// AddWriteWindow records that a write request is in service on the rank
// during [start, end).
func (x *IRLP) AddWriteWindow(start, end sim.Time) {
	if end <= start {
		return
	}
	x.deltas = append(x.deltas,
		irlpDelta{at: start, write: 1},
		irlpDelta{at: end, write: -1})
}

// AddChipService records that one chip is busy serving data during
// [start, end). Overlapping intervals for the same chip are fine; the
// sweep counts a chip once per concurrent service (each service is real
// work on a distinct bank, so concurrent services on one chip still
// represent one physically busy chip; callers should therefore report
// per-chip, non-overlapping service where possible — the memory model
// serializes per chip-bank, and cross-bank overlap on one chip is rare
// enough that counting it twice would bias IRLP upward; we guard by
// clamping in Finalize).
func (x *IRLP) AddChipService(start, end sim.Time) {
	if end <= start {
		return
	}
	x.deltas = append(x.deltas,
		irlpDelta{at: start, chip: 1},
		irlpDelta{at: end, chip: -1})
}

// Finalize sweeps the recorded intervals. It is idempotent.
func (x *IRLP) Finalize(maxChips int) {
	if x.finalized {
		return
	}
	x.finalized = true
	sort.Slice(x.deltas, func(i, j int) bool { return x.deltas[i].at < x.deltas[j].at })
	var (
		writes, chips int
		last          sim.Time
		integral      float64
		busy          sim.Time
	)
	for _, d := range x.deltas {
		if dt := d.at - last; writes > 0 && dt > 0 {
			busy += dt
			c := chips
			if c > maxChips {
				c = maxChips
			}
			integral += float64(dt.Ticks()) * float64(c)
			if c > x.maxBusy {
				x.maxBusy = c
			}
		}
		last = d.at
		writes += int(d.write)
		chips += int(d.chip)
	}
	x.busyTime = busy
	if busy > 0 {
		x.avg = integral / float64(busy.Ticks())
	}
	x.deltas = nil
}

// Average returns the time-average IRLP during write-busy windows.
// Finalize must have been called.
func (x *IRLP) Average() float64 { return x.avg }

// MaxBusy returns the maximum instantaneous chip parallelism observed
// inside write-busy windows.
func (x *IRLP) MaxBusy() int { return x.maxBusy }

// WriteBusyTime returns the total length of the write-busy windows.
func (x *IRLP) WriteBusyTime() sim.Time { return x.busyTime }
