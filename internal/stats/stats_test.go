package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pcmap/internal/sim"
)

// approx compares floats the way the floatcmp analyzer demands even in
// tests: the expected values here are exactly representable, but the
// epsilon keeps the assertions robust to refactorings that reassociate
// the arithmetic.
func approx(got, want float64) bool {
	return math.Abs(got-want) <= 1e-9
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(9)
	for i := 0; i < 5; i++ {
		h.Add(1)
	}
	for i := 0; i < 5; i++ {
		h.Add(4)
	}
	if h.Total() != 10 || h.Count(1) != 5 || h.Count(4) != 5 {
		t.Fatalf("histogram counts wrong: %v", h.Buckets())
	}
	if !approx(h.Fraction(1), 0.5) {
		t.Fatalf("fraction %v", h.Fraction(1))
	}
	if !approx(h.MeanValue(), 2.5) {
		t.Fatalf("mean %v", h.MeanValue())
	}
	if !approx(h.CumulativeFraction(3), 0.5) {
		t.Fatalf("cumulative %v", h.CumulativeFraction(3))
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(4)
	h.Add(-5)
	h.Add(100)
	if h.Count(0) != 1 || h.Count(3) != 1 {
		t.Fatal("out-of-range samples must clamp")
	}
}

func TestLatencyTracker(t *testing.T) {
	l := NewLatencyTracker()
	for ns := 1; ns <= 100; ns++ {
		l.Add(sim.NS(float64(ns)))
	}
	if l.Count() != 100 {
		t.Fatalf("count %d", l.Count())
	}
	if got := l.MeanNS(); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("mean %v, want 50.5", got)
	}
	if got := l.PercentileNS(50); got < 49 || got > 51 {
		t.Fatalf("p50 %v", got)
	}
	if got := l.PercentileNS(99); got < 98 || got > 100 {
		t.Fatalf("p99 %v", got)
	}
	if !approx(l.MaxNS(), 100) {
		t.Fatalf("max %v", l.MaxNS())
	}
}

func TestIRLPSingleWrite(t *testing.T) {
	x := NewIRLP()
	// One write [100,300) with 2 chips serving the whole window.
	x.AddWriteWindow(100, 300)
	x.AddChipService(100, 300)
	x.AddChipService(100, 300)
	x.Finalize(8)
	if got := x.Average(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("IRLP %v, want 2", got)
	}
	if x.MaxBusy() != 2 {
		t.Fatalf("max busy %d", x.MaxBusy())
	}
	if x.WriteBusyTime() != 200 {
		t.Fatalf("busy time %v", x.WriteBusyTime())
	}
}

func TestIRLPReadOverlapRaisesParallelism(t *testing.T) {
	x := NewIRLP()
	x.AddWriteWindow(0, 200)
	x.AddChipService(0, 200) // the write's one essential chip
	// A read served on 7 chips during the first half of the write.
	for i := 0; i < 7; i++ {
		x.AddChipService(0, 100)
	}
	x.Finalize(8)
	// First half: 8 busy, second half: 1 busy -> average 4.5.
	if got := x.Average(); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("IRLP %v, want 4.5", got)
	}
	if x.MaxBusy() != 8 {
		t.Fatalf("max %d, want 8", x.MaxBusy())
	}
}

func TestIRLPServiceOutsideWriteWindowIgnored(t *testing.T) {
	x := NewIRLP()
	x.AddWriteWindow(100, 200)
	x.AddChipService(0, 100)   // entirely before
	x.AddChipService(200, 400) // entirely after
	x.AddChipService(100, 200) // inside
	x.Finalize(8)
	if got := x.Average(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("IRLP %v, want 1 (outside-window service must not count)", got)
	}
}

func TestIRLPClampsToMaxChips(t *testing.T) {
	x := NewIRLP()
	x.AddWriteWindow(0, 100)
	for i := 0; i < 12; i++ {
		x.AddChipService(0, 100)
	}
	x.Finalize(8)
	if got := x.Average(); !approx(got, 8) {
		t.Fatalf("IRLP %v, want clamp at 8", got)
	}
}

func TestIRLPOverlappingWrites(t *testing.T) {
	x := NewIRLP()
	// Two writes overlapping: union window is [0, 300).
	x.AddWriteWindow(0, 200)
	x.AddWriteWindow(100, 300)
	x.AddChipService(0, 300)
	x.Finalize(8)
	if x.WriteBusyTime() != 300 {
		t.Fatalf("union window %v, want 300", x.WriteBusyTime())
	}
	if math.Abs(x.Average()-1) > 1e-9 {
		t.Fatalf("average %v", x.Average())
	}
}

func TestIRLPProperty(t *testing.T) {
	// Property: IRLP average is bounded by the clamp and by the peak
	// number of concurrently recorded services.
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		x := NewIRLP()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			s := sim.Time(rng.Intn(1000))
			x.AddWriteWindow(s, s+sim.Time(1+rng.Intn(200)))
			for j := 0; j < rng.Intn(4); j++ {
				cs := sim.Time(rng.Intn(1200))
				x.AddChipService(cs, cs+sim.Time(1+rng.Intn(100)))
			}
		}
		x.Finalize(8)
		return x.Average() >= 0 && x.Average() <= 8 && x.MaxBusy() <= 8
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,2\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestMeans(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean %v", got)
	}
	if got := ArithMean([]float64{1, 2, 3}); !approx(got, 2) {
		t.Fatalf("arithmean %v", got)
	}
	if !approx(GeoMean(nil), 0) || !approx(ArithMean(nil), 0) {
		t.Fatal("empty input should give 0")
	}
	var m Mean
	m.Add(10)
	m.Add(20)
	if !approx(m.Value(), 15) || m.Count() != 2 {
		t.Fatalf("mean %v/%d", m.Value(), m.Count())
	}
}

func TestMergeIRLPPanicsAfterFinalize(t *testing.T) {
	a, b := NewIRLP(), NewIRLP()
	a.Finalize(8)
	defer func() {
		if recover() == nil {
			t.Fatal("merge after finalize must panic")
		}
	}()
	MergeIRLP(a, b)
}
