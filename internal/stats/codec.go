package stats

import (
	"encoding/json"
	"fmt"

	"pcmap/internal/sim"
)

// JSON codecs for the measurement types, so a *system.Results (and the
// mem.Metrics block inside it) round-trips through encoding/json with
// full fidelity. The experiment runner's disk-backed result cache
// depends on this: a resumed sweep must reproduce byte-identical report
// output from cached results, so every count, bucket, and float must
// survive the trip exactly. encoding/json emits float64 in the shortest
// form that parses back to the same bits, so sums and means stored here
// are exact, not approximations.

// MarshalJSON encodes the counter as its bare count.
func (c Counter) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.n)
}

// UnmarshalJSON decodes a bare count.
func (c *Counter) UnmarshalJSON(data []byte) error {
	return json.Unmarshal(data, &c.n)
}

// histogramJSON is Histogram's wire form: the dense bucket slice (these
// histograms are small — Figure 2's has nine buckets) plus the sample
// total.
type histogramJSON struct {
	Buckets []uint64 `json:"buckets"`
	Total   uint64   `json:"total"`
}

// MarshalJSON encodes the histogram's buckets and total.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Buckets: h.buckets, Total: h.total})
}

// UnmarshalJSON decodes a histogram produced by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.buckets, h.total = w.Buckets, w.Total
	return nil
}

// latencyJSON is LatencyTracker's wire form. The bucket array is large
// (100k one-nanosecond buckets) and almost entirely zero, so it is
// encoded sparsely as [bucket, count] pairs in ascending bucket order.
type latencyJSON struct {
	BucketCount int          `json:"bucketCount"`
	Samples     [][2]uint64  `json:"samples,omitempty"`
	Total       uint64       `json:"total"`
	SumNS       float64      `json:"sumNS"`
	MaxNS       float64      `json:"maxNS"`
}

// MarshalJSON encodes the tracker sparsely.
func (l *LatencyTracker) MarshalJSON() ([]byte, error) {
	w := latencyJSON{BucketCount: len(l.buckets), Total: l.total, SumNS: l.sumNS, MaxNS: l.maxNS}
	for i, n := range l.buckets {
		if n != 0 {
			w.Samples = append(w.Samples, [2]uint64{uint64(i), n})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a tracker produced by MarshalJSON.
func (l *LatencyTracker) UnmarshalJSON(data []byte) error {
	var w latencyJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	l.buckets = nil
	if w.BucketCount > 0 {
		l.buckets = make([]uint64, w.BucketCount)
	}
	for _, s := range w.Samples {
		i := s[0]
		if i >= uint64(len(l.buckets)) {
			return fmt.Errorf("stats: latency sample bucket %d out of range %d", i, len(l.buckets))
		}
		l.buckets[i] = s[1]
	}
	l.total, l.sumNS, l.maxNS = w.Total, w.SumNS, w.MaxNS
	return nil
}

// irlpJSON is IRLP's wire form: the finalized summary plus any
// unfinalized interval deltas as [at, write, chip] triples.
type irlpJSON struct {
	Finalized bool       `json:"finalized"`
	Avg       float64    `json:"avg"`
	MaxBusy   int        `json:"maxBusy"`
	BusyTime  sim.Time   `json:"busyTime"`
	Deltas    [][3]int64 `json:"deltas,omitempty"`
}

// MarshalJSON encodes the tracker, finalized or not.
func (x *IRLP) MarshalJSON() ([]byte, error) {
	w := irlpJSON{Finalized: x.finalized, Avg: x.avg, MaxBusy: x.maxBusy, BusyTime: x.busyTime}
	for _, d := range x.deltas {
		w.Deltas = append(w.Deltas, [3]int64{d.at.Ticks(), int64(d.write), int64(d.chip)})
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a tracker produced by MarshalJSON.
func (x *IRLP) UnmarshalJSON(data []byte) error {
	var w irlpJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	x.finalized, x.avg, x.maxBusy, x.busyTime = w.Finalized, w.Avg, w.MaxBusy, w.BusyTime
	x.deltas = nil
	for _, d := range w.Deltas {
		x.deltas = append(x.deltas, irlpDelta{at: sim.Time(d[0]), write: int8(d[1]), chip: int8(d[2])})
	}
	return nil
}
