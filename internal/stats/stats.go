// Package stats collects the measurements the paper reports: intra-rank
// level parallelism (IRLP) during writes, effective read latency, write
// throughput, dirty-word distributions, and IPC, plus generic counters
// and histograms and a small table renderer for paper-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pcmap/internal/sim"
)

// Counter is a named monotonically increasing count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Mean accumulates a running arithmetic mean.
type Mean struct {
	sum float64
	n   uint64
}

// Add folds a sample into the mean.
func (m *Mean) Add(x float64) { m.sum += x; m.n++ }

// AddN folds a pre-aggregated sum of n samples into the mean.
func (m *Mean) AddN(sum float64, n uint64) { m.sum += sum; m.n += n }

// Value returns the mean, or zero when no samples were added.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count returns the number of samples folded in.
func (m *Mean) Count() uint64 { return m.n }

// Sum returns the raw accumulated sum.
func (m *Mean) Sum() float64 { return m.sum }

// Histogram is a fixed-bucket integer histogram over [0, len(buckets)).
// Samples outside the range clamp to the nearest bucket.
type Histogram struct {
	buckets []uint64
	total   uint64
}

// NewHistogram returns a histogram with n buckets for values 0..n-1.
func NewHistogram(n int) *Histogram { return &Histogram{buckets: make([]uint64, n)} }

// Add records one occurrence of value v.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of samples equal to v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Fraction returns the share of samples equal to v, in [0,1].
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// CumulativeFraction returns the share of samples <= v.
func (h *Histogram) CumulativeFraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for i := 0; i <= v && i < len(h.buckets); i++ {
		c += h.buckets[i]
	}
	return float64(c) / float64(h.total)
}

// MeanValue returns the average sample value.
func (h *Histogram) MeanValue() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, n := range h.buckets {
		s += float64(v) * float64(n)
	}
	return s / float64(h.total)
}

// Buckets returns a copy of the raw bucket counts.
func (h *Histogram) Buckets() []uint64 { return append([]uint64(nil), h.buckets...) }

// Reset empties the histogram in place, keeping the bucket array.
func (h *Histogram) Reset() {
	clear(h.buckets)
	h.total = 0
}

// LatencyTracker accumulates request latencies and reports mean and
// selected percentiles. It stores samples compactly in nanosecond
// buckets (1 ns resolution up to 100 us, which is ample for memory
// request latencies). The bucket array grows on demand up to that
// range: memory request latencies cluster in the low hundreds of
// nanoseconds, so the physical array stays a few KB instead of the
// 800 KB a fully materialized range would cost — per channel, and
// rebuilt on every warmup reset, that difference dominated the
// simulator's own heap churn.
type LatencyTracker struct {
	buckets []uint64 // 1 ns resolution, grown on demand
	total   uint64
	sumNS   float64
	maxNS   float64
}

const latencyBucketCount = 100000

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{}
}

// Add records one latency.
func (l *LatencyTracker) Add(d sim.Time) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := int(ns)
	if i >= latencyBucketCount {
		i = latencyBucketCount - 1
	}
	if i >= len(l.buckets) {
		l.grow(i)
	}
	l.buckets[i]++
	l.total++
	l.sumNS += ns
	if ns > l.maxNS {
		l.maxNS = ns
	}
}

// grow extends the physical bucket array to cover index i, doubling so
// repeated growth stays amortized-constant.
func (l *LatencyTracker) grow(i int) {
	n := len(l.buckets) * 2
	if n < 1024 {
		n = 1024
	}
	for n <= i {
		n *= 2
	}
	if n > latencyBucketCount {
		n = latencyBucketCount
	}
	nb := make([]uint64, n)
	copy(nb, l.buckets)
	l.buckets = nb
}

// Reset empties the tracker in place, keeping the grown bucket array
// so steady-state reuse (warmup-discard resets) does not reallocate.
func (l *LatencyTracker) Reset() {
	clear(l.buckets)
	l.total, l.sumNS, l.maxNS = 0, 0, 0
}

// Count returns the number of samples.
func (l *LatencyTracker) Count() uint64 { return l.total }

// MeanNS returns the mean latency in nanoseconds.
func (l *LatencyTracker) MeanNS() float64 {
	if l.total == 0 {
		return 0
	}
	return l.sumNS / float64(l.total)
}

// MaxNS returns the maximum recorded latency in nanoseconds.
func (l *LatencyTracker) MaxNS() float64 { return l.maxNS }

// PercentileNS returns the p-th percentile (0<p<100) in nanoseconds.
func (l *LatencyTracker) PercentileNS(p float64) float64 {
	if l.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(l.total) * p / 100))
	var c uint64
	for i, n := range l.buckets {
		c += n
		if c >= target {
			return float64(i)
		}
	}
	return float64(latencyBucketCount - 1)
}

// Table is a minimal result-table builder that renders Markdown or CSV,
// used by the experiment harness to print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; cells in
// this project never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, strings.Join(t.Headers, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(&b, strings.Join(r, ","))
	}
	return b.String()
}

// F formats a float for table cells.
func F(x float64) string { return fmt.Sprintf("%.2f", x) }

// Pct formats a ratio as a percentage for table cells.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// N formats an integer count for table cells.
func N(x uint64) string { return fmt.Sprintf("%d", x) }

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	var s float64
	var n int
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// ArithMean returns the arithmetic mean of xs (zero for empty input).
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
