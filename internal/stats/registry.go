package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Registry is the hierarchical counter namespace shared by the metrics
// blocks, the timeline tracer, and the report/codec layers: every
// counter registers exactly once under a dotted name ("reads",
// "cpu.core3.stall.read_latency", ...) and the registry is then the
// single source of truth for enumeration (Counters), lifecycle
// (Reset), and aggregation (Merge).
//
// Registration order is the iteration order. Construction of a
// simulated system is deterministic code, so the order — and therefore
// every report rendered from a registry — is deterministic too, which
// the end-to-end determinism regression tests rely on.
//
// A Registry is not safe for concurrent use, matching the rest of the
// simulator: one system, one goroutine.
type Registry struct {
	// prefix is "" at the root; "mem." for Sub("mem") views.
	//pcmaplint:guardedby single-goroutine
	prefix string
	//pcmaplint:guardedby single-goroutine
	shared *regState
}

// regState is the storage shared by a root registry and all its Sub
// views. Like the registry itself it is single-goroutine: concurrent
// users (the serve layer's aggregate) must wrap every touch in their
// own lock.
type regState struct {
	// order holds full dotted names, in registration order.
	//pcmaplint:guardedby single-goroutine
	order []string
	// index maps full dotted name -> counter.
	//pcmaplint:guardedby single-goroutine
	index map[string]*Counter
	// owned holds the counters allocated by the registry itself.
	//pcmaplint:guardedby single-goroutine
	owned map[string]*Counter
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{shared: &regState{index: map[string]*Counter{}}}
}

// Sub returns a namespaced view: registrations and lookups through the
// view prepend name plus a dot. Views share storage with the root, so
// Counters on the root enumerates every subtree.
func (r *Registry) Sub(name string) *Registry {
	if name == "" {
		panic("stats: Sub with empty name")
	}
	return &Registry{prefix: r.prefix + name + ".", shared: r.shared}
}

// Register adds c under name (relative to the registry's prefix). It
// panics on a nil counter, an empty name, or a name collision — a
// collision means two components believe they own the same statistic,
// which would silently double-count.
func (r *Registry) Register(name string, c *Counter) {
	if c == nil {
		panic(fmt.Sprintf("stats: Register(%q) with nil counter", name))
	}
	if name == "" {
		panic("stats: Register with empty name")
	}
	full := r.prefix + name
	s := r.shared
	if _, dup := s.index[full]; dup {
		panic(fmt.Sprintf("stats: duplicate counter registration %q", full))
	}
	s.index[full] = c
	s.order = append(s.order, full)
}

// Counter returns the counter registered under name, allocating and
// registering a registry-owned counter on first use. An existing
// counter (owned or externally registered) is returned as-is, which is
// what hierarchical aggregation call sites want.
func (r *Registry) Counter(name string) *Counter {
	full := r.prefix + name
	s := r.shared
	if c, ok := s.index[full]; ok {
		return c
	}
	c := &Counter{}
	s.index[full] = c
	s.order = append(s.order, full)
	if s.owned == nil {
		s.owned = map[string]*Counter{}
	}
	s.owned[full] = c
	return c
}

// Lookup returns the counter under name, or (nil, false).
func (r *Registry) Lookup(name string) (*Counter, bool) {
	c, ok := r.shared.index[r.prefix+name]
	return c, ok
}

// Len returns the number of counters visible from this registry (the
// whole tree for a root, the subtree for a Sub view).
func (r *Registry) Len() int {
	n := 0
	for _, full := range r.shared.order {
		if strings.HasPrefix(full, r.prefix) {
			n++
		}
	}
	return n
}

// Reset zeroes every counter visible from this registry in place.
// Counters registered from struct fields are zeroed through their
// pointers, so the owning structs observe the reset.
func (r *Registry) Reset() {
	for _, full := range r.shared.order {
		if strings.HasPrefix(full, r.prefix) {
			*r.shared.index[full] = Counter{}
		}
	}
}

// Counters lists every visible counter in registration order, names
// relative to the registry's prefix. The order is deterministic, which
// report output and the determinism regression tests depend on.
func (r *Registry) Counters() []NamedCounter {
	out := make([]NamedCounter, 0, r.Len())
	for _, full := range r.shared.order {
		if strings.HasPrefix(full, r.prefix) {
			out = append(out, NamedCounter{
				Name:  full[len(r.prefix):],
				Value: r.shared.index[full].Value(),
			})
		}
	}
	return out
}

// Merge folds other's visible counters into r by relative name. Names
// present in both registries add; names missing from r are adopted as
// registry-owned counters (appended in other's registration order), so
// merging per-channel registries into a fresh aggregate just works.
func (r *Registry) Merge(other *Registry) {
	for _, nc := range other.Counters() {
		r.Counter(nc.Name).Add(nc.Value)
	}
}

// NamedCounter is one row of a Counters report.
type NamedCounter struct {
	Name  string
	Value uint64
}

// SortedNames returns the visible counter names in sorted order, for
// callers that want set semantics rather than registration order.
func (r *Registry) SortedNames() []string {
	names := make([]string, 0, r.Len())
	for _, full := range r.shared.order {
		if strings.HasPrefix(full, r.prefix) {
			names = append(names, full[len(r.prefix):])
		}
	}
	sort.Strings(names)
	return names
}
