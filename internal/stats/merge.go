package stats

// MergeHistogram folds src's buckets into dst. Bucket counts beyond
// dst's range clamp into dst's last bucket.
func MergeHistogram(dst, src *Histogram) {
	for v, n := range src.buckets {
		if n == 0 {
			continue
		}
		i := v
		if i >= len(dst.buckets) {
			i = len(dst.buckets) - 1
		}
		dst.buckets[i] += n
		dst.total += n
	}
}

// MergeLatency folds src's samples into dst.
func MergeLatency(dst, src *LatencyTracker) {
	for i, n := range src.buckets {
		dst.buckets[i] += n
	}
	dst.total += src.total
	dst.sumNS += src.sumNS
	if src.maxNS > dst.maxNS {
		dst.maxNS = src.maxNS
	}
}

// MergeIRLP folds src's recorded intervals into dst. Both must not yet
// be finalized. Channels have independent ranks, so experiment-level
// IRLP is reported per rank and averaged; this helper exists for tools
// that want a combined sweep anyway.
func MergeIRLP(dst, src *IRLP) {
	if dst.finalized || src.finalized {
		panic("stats: MergeIRLP after Finalize")
	}
	dst.deltas = append(dst.deltas, src.deltas...)
}
