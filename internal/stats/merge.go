package stats

// MergeHistogram folds src's buckets into dst. Bucket counts beyond
// dst's range clamp into dst's last bucket. A dst with no buckets (the
// zero value) adopts src's bucket count first, so merging into a
// zero-value histogram behaves like merging into an equal-sized one.
func MergeHistogram(dst, src *Histogram) {
	if len(src.buckets) == 0 {
		return
	}
	if len(dst.buckets) == 0 {
		dst.buckets = make([]uint64, len(src.buckets))
	}
	for v, n := range src.buckets {
		if n == 0 {
			continue
		}
		i := v
		if i >= len(dst.buckets) {
			i = len(dst.buckets) - 1
		}
		dst.buckets[i] += n
		dst.total += n
	}
}

// MergeLatency folds src's samples into dst. Trackers grow their
// bucket arrays on demand, so a dst physically shorter than src grows
// to src's length rather than clamping — every sample keeps its exact
// bucket and percentile results match a tracker that saw all samples
// directly.
func MergeLatency(dst, src *LatencyTracker) {
	if len(src.buckets) > len(dst.buckets) {
		dst.grow(len(src.buckets) - 1)
	}
	for i, n := range src.buckets {
		if n == 0 {
			continue
		}
		dst.buckets[i] += n
	}
	dst.total += src.total
	dst.sumNS += src.sumNS
	if src.maxNS > dst.maxNS {
		dst.maxNS = src.maxNS
	}
}

// MergeIRLP folds src's recorded intervals into dst. Both must not yet
// be finalized. Channels have independent ranks, so experiment-level
// IRLP is reported per rank and averaged; this helper exists for tools
// that want a combined sweep anyway.
func MergeIRLP(dst, src *IRLP) {
	if dst.finalized || src.finalized {
		panic("stats: MergeIRLP after Finalize")
	}
	dst.deltas = append(dst.deltas, src.deltas...)
}
