package noc

import (
	"testing"
	"testing/quick"

	"pcmap/internal/config"
	"pcmap/internal/sim"
)

func mesh() *Mesh { return New(config.Default().NoC) }

func TestHopCount(t *testing.T) {
	m := mesh() // 2x4
	cases := []struct{ from, to, hops int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1}, // straight down
		{0, 7, 4}, // 3 east + 1 south
		{3, 4, 4},
	}
	for _, c := range cases {
		if got := m.HopCount(c.from, c.to); got != c.hops {
			t.Fatalf("hops(%d,%d) = %d, want %d", c.from, c.to, got, c.hops)
		}
	}
}

func TestHopCountSymmetric(t *testing.T) {
	m := mesh()
	if err := quick.Check(func(a, b uint8) bool {
		f, to := int(a)%8, int(b)%8
		return m.HopCount(f, to) == m.HopCount(to, f)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSendIsFree(t *testing.T) {
	m := mesh()
	if got := m.Send(3, 3, 64, 100); got != 100 {
		t.Fatalf("local send arrived at %v, want 100", got)
	}
}

func TestUnloadedLatency(t *testing.T) {
	m := mesh()
	// 1 hop, single flit: router(1cy) + link(1cy) = 2 CPU cycles.
	if got := m.Latency(0, 1, 8); got != 2*sim.CPUCycle {
		t.Fatalf("1-hop latency %v", got)
	}
	// A 64B message is 4 flits of 16B: 3 extra link cycles.
	if got := m.Latency(0, 1, 64); got != 5*sim.CPUCycle {
		t.Fatalf("1-hop 64B latency %v", got)
	}
}

func TestSendMatchesUnloadedWhenIdle(t *testing.T) {
	m := mesh()
	want := sim.Time(1000) + m.Latency(0, 7, 64)
	if got := m.Send(0, 7, 64, 1000); got != want {
		t.Fatalf("idle send %v, want %v", got, want)
	}
}

func TestLinkContentionQueues(t *testing.T) {
	m := mesh()
	a := m.Send(0, 1, 64, 0)
	b := m.Send(0, 1, 64, 0) // same link, same instant
	if b <= a {
		t.Fatalf("second message should queue: %v vs %v", b, a)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	m := mesh()
	a := m.Send(0, 1, 8, 0)
	b := m.Send(4, 5, 8, 0) // other row, disjoint links
	if a != b {
		t.Fatalf("disjoint paths should be independent: %v vs %v", a, b)
	}
}

func TestSendMonotoneInTime(t *testing.T) {
	m := mesh()
	if err := quick.Check(func(a, b uint8, d uint16) bool {
		from, to := int(a)%8, int(b)%8
		arr := m.Send(from, to, 16, sim.Time(d))
		return arr >= sim.Time(d)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := mesh()
	m.Send(0, 7, 64, 0)
	m.Send(0, 7, 64, 0)
	if m.Messages.Count() != 2 {
		t.Fatalf("messages %d", m.Messages.Count())
	}
	if m.Hops.Mean() != 4 {
		t.Fatalf("mean hops %v, want 4", m.Hops.Mean())
	}
}
