// Package noc models the on-chip interconnect of Table I: a 2x4
// packet-switched mesh with XY (dimension-ordered) routing, a 1-cycle
// router and 1-cycle link per hop. Cores and cache banks are placed on
// the mesh nodes; the model provides per-message latency plus light
// per-link serialization so hot links queue.
package noc

import (
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/obs"
	"pcmap/internal/sim"
)

// Mesh is the interconnect. One Mesh instance serves a whole chip.
type Mesh struct {
	rows, cols int
	router     sim.Time // per-hop router traversal
	link       sim.Time // per-hop link traversal
	flitBytes  int

	// linkFree[l] is when directed link l is next free; links are
	// indexed by (fromNode, direction).
	linkFree []sim.Time

	Messages stats64
	Hops     stats64

	// Timeline instrumentation (nil when tracing is off): each message
	// becomes one span from departure to arrival on the mesh track.
	trace *obs.Tracer
	track obs.TrackID
	nmMsg obs.NameID
}

type stats64 struct{ n, sum uint64 }

func (s *stats64) add(v int) { s.n++; s.sum += uint64(v) }

// Count returns the number of recorded samples.
func (s *stats64) Count() uint64 { return s.n }

// Mean returns the average sample.
func (s *stats64) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.n)
}

const numDirs = 4 // E, W, N, S

// New builds the mesh from the configuration.
func New(cfg config.NoC) *Mesh {
	return &Mesh{
		rows:      cfg.Rows,
		cols:      cfg.Cols,
		router:    sim.CPUCycle.Times(cfg.RouterCycles),
		link:      sim.CPUCycle.Times(cfg.LinkCycles),
		flitBytes: cfg.FlitBytes,
		linkFree:  make([]sim.Time, cfg.Rows*cfg.Cols*numDirs),
	}
}

// Instrument attaches the mesh to a timeline track. A nil tracer
// leaves the mesh untraced.
func (m *Mesh) Instrument(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	m.trace = tr
	m.track = tr.Track("noc", "mesh")
	m.nmMsg = tr.Name("message")
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.rows * m.cols }

// coord splits a node id into (row, col).
func (m *Mesh) coord(node int) (int, int) { return node / m.cols, node % m.cols }

// HopCount returns the XY-routing hop count between two nodes.
func (m *Mesh) HopCount(from, to int) int {
	fr, fc := m.coord(from)
	tr, tc := m.coord(to)
	return abs(fr-tr) + abs(fc-tc)
}

// Send books a message of size bytes from node from to node to,
// departing no earlier than depart. It returns the arrival time,
// accounting router+link latency per hop, flit serialization, and
// queueing on each traversed link. from == to costs nothing.
//
// The XY path is walked inline — column hops east/west, then row hops
// south/north — rather than through a per-hop visitor callback; Send is
// on the per-message hot path and the closure the old visitor pattern
// captured its booking state in escaped to the heap on every call.
func (m *Mesh) Send(from, to int, bytes int, depart sim.Time) sim.Time {
	if from == to {
		return depart
	}
	flits := (bytes + m.flitBytes - 1) / m.flitBytes
	if flits < 1 {
		flits = 1
	}
	serialization := m.link.Times(flits - 1)
	t := depart
	hops := 0
	book := m.router + m.link
	r, c := m.coord(from)
	tr, tc := m.coord(to)
	for c != tc {
		dir := 0 // east
		if c > tc {
			dir = 1 // west
		}
		idx := (r*m.cols+c)*numDirs + dir
		if m.linkFree[idx] > t {
			t = m.linkFree[idx]
		}
		t += book
		m.linkFree[idx] = t - m.link + serialization
		hops++
		if dir == 0 {
			c++
		} else {
			c--
		}
	}
	for r != tr {
		dir := 2 // south
		if r > tr {
			dir = 3 // north
		}
		idx := (r*m.cols+c)*numDirs + dir
		if m.linkFree[idx] > t {
			t = m.linkFree[idx]
		}
		t += book
		m.linkFree[idx] = t - m.link + serialization
		hops++
		if dir == 2 {
			r++
		} else {
			r--
		}
	}
	t += serialization
	m.Messages.add(1)
	m.Hops.add(hops)
	m.trace.Span(m.track, m.nmMsg, depart, t-depart)
	return t
}

// Latency returns the unloaded latency for a message (no booking).
func (m *Mesh) Latency(from, to int, bytes int) sim.Time {
	hops := m.HopCount(from, to)
	flits := (bytes + m.flitBytes - 1) / m.flitBytes
	if flits < 1 {
		flits = 1
	}
	return (m.router + m.link).Times(hops) + m.link.Times(flits-1)
}

// CoreNode maps core i to its mesh node (cores fill the mesh row-major).
func (m *Mesh) CoreNode(core int) int { return core % m.Nodes() }

// BankNode maps cache bank b to its mesh node (banks co-located with
// nodes round-robin, the usual tiled layout).
func (m *Mesh) BankNode(bank int) int { return bank % m.Nodes() }

func (m *Mesh) String() string { return fmt.Sprintf("mesh(%dx%d)", m.rows, m.cols) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
