package ecc

import (
	"math/bits"
	"testing"
)

// FuzzSECDEDRoundTrip drives Check64 with 0, 1 or 2 bit errors injected
// into an encoded (data, check) pair at fuzzer-chosen positions and
// asserts the SECDED contract: clean words check OK, any single-bit
// error (data or check, including the overall parity bit) is corrected
// with the original data recovered, and any double-bit error is
// detected — never miscorrected into a different word that passes.
func FuzzSECDEDRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0))
	f.Add(uint64(0xdeadbeefcafef00d), uint8(1), uint8(0))
	f.Add(^uint64(0), uint8(71), uint8(72))
	f.Add(uint64(0x8000000000000001), uint8(64), uint8(70))
	f.Fuzz(func(t *testing.T, data uint64, posA, posB uint8) {
		check := Encode64(data)

		// The table-driven encoder must agree with the retained scalar
		// reference on every fuzzed word.
		if ref := encode64Ref(data); check != ref {
			t.Fatalf("Encode64(%#x) = %#08b, scalar reference %#08b", data, check, ref)
		}

		// flip applies one bit error: positions 0-63 hit the data word,
		// 64-71 hit the stored check byte.
		flip := func(d uint64, c uint8, pos uint8) (uint64, uint8) {
			pos %= 72
			if pos < 64 {
				return d ^ 1<<pos, c
			}
			return d, c ^ 1<<(pos-64)
		}

		// Zero errors: must check clean and return the data unchanged.
		if got, st := Check64(data, check); st != OK || got != data {
			t.Fatalf("clean word: got %x status %v", got, st)
		}

		// One error at posA: must correct back to the original data.
		d1, c1 := flip(data, check, posA)
		got, st := Check64(d1, c1)
		if got != data {
			t.Fatalf("single error at %d: data %x not recovered (got %x, status %v)",
				posA%72, data, got, st)
		}
		if posA%72 < 64 {
			if st != CorrectedData {
				t.Fatalf("single data-bit error at %d: status %v", posA%72, st)
			}
		} else if st != CorrectedCheck {
			t.Fatalf("single check-bit error at %d: status %v", posA%72, st)
		}

		// The table-driven decoder must agree with the scalar reference
		// on the corrupted word too.
		if refD, refS := check64Ref(d1, c1); got != refD || st != refS {
			t.Fatalf("Check64 single @%d: table (%#x,%v) != scalar reference (%#x,%v)",
				posA%72, got, st, refD, refS)
		}

		// Two distinct errors: must be detected, and never silently
		// returned as a clean or "corrected" word.
		if posA%72 == posB%72 {
			return
		}
		d2, c2 := flip(d1, c1, posB)
		if _, st := Check64(d2, c2); st != DetectedDouble {
			t.Fatalf("double error at %d,%d: status %v (want detected-double)",
				posA%72, posB%72, st)
		}
		if g1, s1 := Check64(d2, c2); true {
			if g2, s2 := check64Ref(d2, c2); g1 != g2 || s1 != s2 {
				t.Fatalf("Check64 double @%d,%d: table (%#x,%v) != scalar reference (%#x,%v)",
					posA%72, posB%72, g1, s1, g2, s2)
			}
		}

		// Sanity: the injected double really differs in exactly two
		// codeword positions.
		if bits.OnesCount64(d2^data)+bits.OnesCount8(c2^check) != 2 {
			t.Fatalf("error injection broken: %d bits differ",
				bits.OnesCount64(d2^data)+bits.OnesCount8(c2^check))
		}
	})
}
