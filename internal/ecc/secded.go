// Package ecc implements the two error codes the PCMap DIMM stores
// alongside data (Section II-A and IV-B of the paper):
//
//   - SECDED: a Hamming(72,64) code — 7 Hamming check bits plus one
//     overall parity bit per 64-bit word — providing single-bit error
//     correction and double-bit error detection. One x8 ECC chip holds
//     the 8 check bits of each of a cache line's eight words.
//
//   - PCC (Parity Correction Code): a RAID-4/5 style XOR of the eight
//     data words of a cache line, held on a tenth x8 chip. During RoW,
//     the word resident on a chip that is busy writing is reconstructed
//     by XOR-ing the other seven data words with the PCC word.
//
// The codec is bit-accurate: the simulator really encodes, corrupts,
// reconstructs, checks and corrects stored bytes. It is also hot: the
// controller encodes or decodes every stored word of every access, so
// the kernels are table-driven — seven precomputed column masks folded
// with bits.OnesCount64 — rather than per-bit scalar loops. The scalar
// forms are retained (unexported, *Ref) as reference oracles for the
// exhaustive equivalence tests.
package ecc

import "math/bits"

// Status is the outcome of a SECDED check.
type Status int

const (
	// OK means the word checked clean.
	OK Status = iota
	// CorrectedData means a single-bit error in the data was corrected.
	CorrectedData
	// CorrectedCheck means a single-bit error in the stored check bits
	// was detected (the data itself was clean).
	CorrectedCheck
	// DetectedDouble means an uncorrectable double-bit error was found.
	DetectedDouble
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case DetectedDouble:
		return "double-error"
	default:
		return "unknown"
	}
}

// codeword layout: positions 1..71 hold the Hamming code; positions
// 1,2,4,8,16,32,64 are the seven check bits, every other position holds
// one data bit (64 of them). Position 0 conceptually holds the overall
// parity bit. dataPos[i] is the codeword position of data bit i.
var dataPos [64]int

// colMask[k] selects the data bits covered by check bit k: bit i is set
// iff codeword position dataPos[i] has bit k set. hamming folds each
// mask with one popcount instead of walking all 64 data bits.
var colMask [7]uint64

// posToBit inverts dataPos: the data bit index stored at a codeword
// position, or -1 for check-bit positions and positions outside the
// code. Check64 uses it to turn a syndrome into a bit flip in O(1).
var posToBit [128]int8

func init() {
	i := 0
	for pos := 1; pos <= 71; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit
			continue
		}
		dataPos[i] = pos
		i++
	}
	for p := range posToBit {
		posToBit[p] = -1
	}
	for i, pos := range dataPos {
		for k := 0; k < 7; k++ {
			if pos&(1<<k) != 0 {
				colMask[k] |= 1 << uint(i)
			}
		}
		posToBit[pos] = int8(i)
	}
}

// hamming computes the 7 Hamming check bits for data (bit k of the
// result is the parity covered by codeword position 2^k): one masked
// popcount per column.
func hamming(data uint64) uint8 {
	h := uint(bits.OnesCount64(data&colMask[0])) & 1
	h |= (uint(bits.OnesCount64(data&colMask[1])) & 1) << 1
	h |= (uint(bits.OnesCount64(data&colMask[2])) & 1) << 2
	h |= (uint(bits.OnesCount64(data&colMask[3])) & 1) << 3
	h |= (uint(bits.OnesCount64(data&colMask[4])) & 1) << 4
	h |= (uint(bits.OnesCount64(data&colMask[5])) & 1) << 5
	h |= (uint(bits.OnesCount64(data&colMask[6])) & 1) << 6
	return uint8(h)
}

// hammingRef is the original per-bit scalar implementation, retained as
// the reference oracle the equivalence tests check hamming against.
func hammingRef(data uint64) uint8 {
	var syndrome int
	for i := 0; i < 64; i++ {
		if data&(1<<uint(i)) != 0 {
			syndrome ^= dataPos[i]
		}
	}
	return uint8(syndrome)
}

// Encode64 returns the 8 SECDED check bits for a 64-bit word: the seven
// Hamming bits in the low bits and the overall (data+check) parity in
// bit 7.
func Encode64(data uint64) uint8 {
	h := hamming(data) & 0x7f
	parity := uint(bits.OnesCount64(data)+bits.OnesCount8(h)) & 1
	return h | uint8(parity<<7)
}

// encode64Ref is Encode64 over the scalar reference hamming.
func encode64Ref(data uint64) uint8 {
	h := hammingRef(data) & 0x7f
	parity := uint(bits.OnesCount64(data)+bits.OnesCount8(h)) & 1
	return h | uint8(parity<<7)
}

// Check64 validates data against its stored check byte. It returns the
// (possibly corrected) data word and the check status.
func Check64(data uint64, check uint8) (uint64, Status) {
	expected := hamming(data) & 0x7f
	stored := check & 0x7f
	syndrome := expected ^ stored
	parityOK := uint(bits.OnesCount64(data)+bits.OnesCount8(check))&1 == 0

	switch {
	case syndrome == 0 && parityOK:
		return data, OK
	case syndrome == 0 && !parityOK:
		// The overall parity bit itself flipped.
		return data, CorrectedCheck
	case !parityOK:
		// Single-bit error at codeword position `syndrome`.
		if syndrome&(syndrome-1) == 0 {
			// Error in one of the stored Hamming bits.
			return data, CorrectedCheck
		}
		if bit := posToBit[syndrome]; bit >= 0 {
			return data ^ (1 << uint(bit)), CorrectedData
		}
		// Syndrome points outside the codeword: treat as uncorrectable.
		return data, DetectedDouble
	default:
		// Non-zero syndrome with good parity: double-bit error.
		return data, DetectedDouble
	}
}

// check64Ref mirrors Check64 on top of the scalar reference kernels,
// including the original linear syndrome-to-position search.
func check64Ref(data uint64, check uint8) (uint64, Status) {
	expected := hammingRef(data) & 0x7f
	stored := check & 0x7f
	syndrome := expected ^ stored
	parityOK := uint(bits.OnesCount64(data)+bits.OnesCount8(check))&1 == 0

	switch {
	case syndrome == 0 && parityOK:
		return data, OK
	case syndrome == 0 && !parityOK:
		return data, CorrectedCheck
	case !parityOK:
		if syndrome&(syndrome-1) == 0 {
			return data, CorrectedCheck
		}
		for i, pos := range dataPos {
			if pos == int(syndrome) {
				return data ^ (1 << uint(i)), CorrectedData
			}
		}
		return data, DetectedDouble
	default:
		return data, DetectedDouble
	}
}
