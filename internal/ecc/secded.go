// Package ecc implements the two error codes the PCMap DIMM stores
// alongside data (Section II-A and IV-B of the paper):
//
//   - SECDED: a Hamming(72,64) code — 7 Hamming check bits plus one
//     overall parity bit per 64-bit word — providing single-bit error
//     correction and double-bit error detection. One x8 ECC chip holds
//     the 8 check bits of each of a cache line's eight words.
//
//   - PCC (Parity Correction Code): a RAID-4/5 style XOR of the eight
//     data words of a cache line, held on a tenth x8 chip. During RoW,
//     the word resident on a chip that is busy writing is reconstructed
//     by XOR-ing the other seven data words with the PCC word.
//
// The codec is bit-accurate: the simulator really encodes, corrupts,
// reconstructs, checks and corrects stored bytes.
package ecc

import "math/bits"

// Status is the outcome of a SECDED check.
type Status int

const (
	// OK means the word checked clean.
	OK Status = iota
	// CorrectedData means a single-bit error in the data was corrected.
	CorrectedData
	// CorrectedCheck means a single-bit error in the stored check bits
	// was detected (the data itself was clean).
	CorrectedCheck
	// DetectedDouble means an uncorrectable double-bit error was found.
	DetectedDouble
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case DetectedDouble:
		return "double-error"
	default:
		return "unknown"
	}
}

// codeword layout: positions 1..71 hold the Hamming code; positions
// 1,2,4,8,16,32,64 are the seven check bits, every other position holds
// one data bit (64 of them). Position 0 conceptually holds the overall
// parity bit. dataPos[i] is the codeword position of data bit i.
var dataPos [64]int

func init() {
	i := 0
	for pos := 1; pos <= 71; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit
			continue
		}
		dataPos[i] = pos
		i++
	}
}

// hamming computes the 7 Hamming check bits for data (bit k of the
// result is the parity covered by codeword position 2^k).
func hamming(data uint64) uint8 {
	var syndrome int
	for i := 0; i < 64; i++ {
		if data&(1<<uint(i)) != 0 {
			syndrome ^= dataPos[i]
		}
	}
	return uint8(syndrome)
}

// Encode64 returns the 8 SECDED check bits for a 64-bit word: the seven
// Hamming bits in the low bits and the overall (data+check) parity in
// bit 7.
func Encode64(data uint64) uint8 {
	h := hamming(data) & 0x7f
	parity := uint(bits.OnesCount64(data)+bits.OnesCount8(h)) & 1
	return h | uint8(parity<<7)
}

// Check64 validates data against its stored check byte. It returns the
// (possibly corrected) data word and the check status.
func Check64(data uint64, check uint8) (uint64, Status) {
	expected := hamming(data) & 0x7f
	stored := check & 0x7f
	syndrome := expected ^ stored
	parityOK := uint(bits.OnesCount64(data)+bits.OnesCount8(check))&1 == 0

	switch {
	case syndrome == 0 && parityOK:
		return data, OK
	case syndrome == 0 && !parityOK:
		// The overall parity bit itself flipped.
		return data, CorrectedCheck
	case !parityOK:
		// Single-bit error at codeword position `syndrome`.
		if syndrome&(syndrome-1) == 0 {
			// Error in one of the stored Hamming bits.
			return data, CorrectedCheck
		}
		for i, pos := range dataPos {
			if pos == int(syndrome) {
				return data ^ (1 << uint(i)), CorrectedData
			}
		}
		// Syndrome points outside the codeword: treat as uncorrectable.
		return data, DetectedDouble
	default:
		// Non-zero syndrome with good parity: double-bit error.
		return data, DetectedDouble
	}
}
