package ecc

import "encoding/binary"

// WordBytes is the per-chip sub-block size of a cache line.
const WordBytes = 8

// WordsPerLine is the number of 8-byte words in a 64-byte line.
const WordsPerLine = 8

// LineBytes is the cache line size.
const LineBytes = WordBytes * WordsPerLine

// Word extracts data word w (0..7) of a 64-byte line as a uint64.
func Word(line *[LineBytes]byte, w int) uint64 {
	return binary.LittleEndian.Uint64(line[w*WordBytes:])
}

// SetWord stores a uint64 into word w of a 64-byte line.
func SetWord(line *[LineBytes]byte, w int, v uint64) {
	binary.LittleEndian.PutUint64(line[w*WordBytes:], v)
}

// EncodeLine computes the eight SECDED check bytes for a line, one per
// 8-byte word; this is what the ECC chip stores.
func EncodeLine(line *[LineBytes]byte) [WordsPerLine]byte {
	var out [WordsPerLine]byte
	for w := 0; w < WordsPerLine; w++ {
		out[w] = Encode64(Word(line, w))
	}
	return out
}

// PCCLine computes the XOR parity word of a line's eight data words;
// this is what the PCC chip stores. Laid out as 8 bytes so each byte
// lane of the x8 PCC chip carries the parity of the matching byte lanes.
//
// XOR is bytewise, so folding the line as eight uint64 loads is
// bit-identical to the bytewise scalar form (pccLineRef) at an eighth
// of the loop iterations.
func PCCLine(line *[LineBytes]byte) [WordBytes]byte {
	var acc uint64
	for w := 0; w < WordsPerLine; w++ {
		acc ^= binary.LittleEndian.Uint64(line[w*WordBytes:])
	}
	var out [WordBytes]byte
	binary.LittleEndian.PutUint64(out[:], acc)
	return out
}

// pccLineRef is the original bytewise implementation, retained as the
// reference oracle for the equivalence tests.
func pccLineRef(line *[LineBytes]byte) [WordBytes]byte {
	var out [WordBytes]byte
	for w := 0; w < WordsPerLine; w++ {
		for b := 0; b < WordBytes; b++ {
			out[b] ^= line[w*WordBytes+b]
		}
	}
	return out
}

// UpdatePCC incrementally updates a PCC word after data word w changes
// from old to new (XOR cancels the old contribution and adds the new
// one) — the controller uses this so a single-word write needs only the
// old word, the new word, and the old parity.
func UpdatePCC(pcc [WordBytes]byte, oldWord, newWord uint64) [WordBytes]byte {
	acc := binary.LittleEndian.Uint64(pcc[:]) ^ oldWord ^ newWord
	var out [WordBytes]byte
	binary.LittleEndian.PutUint64(out[:], acc)
	return out
}

// ReconstructWord rebuilds the data word at index missing by XOR-ing the
// other seven data words of the line with the PCC word. This is the RoW
// read path: the chip holding `missing` is busy with a write and its
// word is recovered "as if the chip were faulty" (Section IV-B).
func ReconstructWord(line *[LineBytes]byte, missing int, pcc [WordBytes]byte) uint64 {
	acc := binary.LittleEndian.Uint64(pcc[:])
	for w := 0; w < WordsPerLine; w++ {
		if w == missing {
			continue
		}
		acc ^= binary.LittleEndian.Uint64(line[w*WordBytes:])
	}
	return acc
}

// reconstructWordRef is the original bytewise implementation, retained
// as the reference oracle for the equivalence tests.
func reconstructWordRef(line *[LineBytes]byte, missing int, pcc [WordBytes]byte) uint64 {
	acc := pcc
	for w := 0; w < WordsPerLine; w++ {
		if w == missing {
			continue
		}
		for b := 0; b < WordBytes; b++ {
			acc[b] ^= line[w*WordBytes+b]
		}
	}
	return binary.LittleEndian.Uint64(acc[:])
}
