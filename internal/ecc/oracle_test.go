package ecc

import (
	"testing"
	"testing/quick"

	"pcmap/internal/sim"
)

// flipAt applies one bit error to a (data, check) pair: codeword
// positions 0-63 hit the data word, 64-71 hit the stored check byte.
func flipAt(d uint64, c uint8, pos int) (uint64, uint8) {
	if pos < 64 {
		return d ^ 1<<uint(pos), c
	}
	return d, c ^ 1<<uint(pos-64)
}

// TestEncodeMatchesReference proves the table-driven encoder equals the
// retained scalar oracle, on structured corners and a wide random sweep.
func TestEncodeMatchesReference(t *testing.T) {
	words := []uint64{0, 1, ^uint64(0), 0xdeadbeefcafebabe, 0x8000000000000001}
	for b := 0; b < 64; b++ {
		words = append(words, 1<<uint(b)) // every single-bit word
	}
	rng := sim.NewRNG(101)
	for i := 0; i < 10000; i++ {
		words = append(words, rng.Uint64())
	}
	for _, w := range words {
		if got, want := Encode64(w), encode64Ref(w); got != want {
			t.Fatalf("Encode64(%#x) = %#08b, reference %#08b", w, got, want)
		}
		if got, want := hamming(w), hammingRef(w); got != want {
			t.Fatalf("hamming(%#x) = %#08b, reference %#08b", w, got, want)
		}
	}
}

// TestDecodeMatchesReferenceExhaustive proves table-driven decode equals
// the scalar oracle for every single-bit error position and every
// distinct double-bit error position pair of the 72-bit codeword, over
// a set of random data words. This is the guarantee that the kernel
// swap cannot change any simulated reliability outcome.
func TestDecodeMatchesReferenceExhaustive(t *testing.T) {
	rng := sim.NewRNG(202)
	words := []uint64{0, ^uint64(0)}
	for i := 0; i < 16; i++ {
		words = append(words, rng.Uint64())
	}
	for _, data := range words {
		check := Encode64(data)

		// Zero errors.
		if d1, s1 := Check64(data, check); true {
			d2, s2 := check64Ref(data, check)
			if d1 != d2 || s1 != s2 {
				t.Fatalf("clean %#x: table (%#x,%v) != ref (%#x,%v)", data, d1, s1, d2, s2)
			}
			if s1 != OK || d1 != data {
				t.Fatalf("clean %#x: status %v data %#x", data, s1, d1)
			}
		}

		// Every single-bit error position (and the single-error contract).
		for p := 0; p < 72; p++ {
			d, c := flipAt(data, check, p)
			g1, s1 := Check64(d, c)
			g2, s2 := check64Ref(d, c)
			if g1 != g2 || s1 != s2 {
				t.Fatalf("word %#x single @%d: table (%#x,%v) != ref (%#x,%v)",
					data, p, g1, s1, g2, s2)
			}
			if g1 != data {
				t.Fatalf("word %#x single @%d: not recovered (got %#x)", data, p, g1)
			}
		}

		// Every distinct double-bit error position pair (and the
		// detection contract).
		for a := 0; a < 72; a++ {
			for b := a + 1; b < 72; b++ {
				d, c := flipAt(data, check, a)
				d, c = flipAt(d, c, b)
				g1, s1 := Check64(d, c)
				g2, s2 := check64Ref(d, c)
				if g1 != g2 || s1 != s2 {
					t.Fatalf("word %#x double @%d,%d: table (%#x,%v) != ref (%#x,%v)",
						data, a, b, g1, s1, g2, s2)
				}
				if s1 != DetectedDouble {
					t.Fatalf("word %#x double @%d,%d: status %v", data, a, b, s1)
				}
			}
		}
	}
}

// TestDecodeMatchesReferenceRandomNoise compares the two decoders on
// arbitrary (data, check) pairs — including garbage check bytes that
// never came from the encoder — so the equivalence holds outside the
// well-formed error model too.
func TestDecodeMatchesReferenceRandomNoise(t *testing.T) {
	if err := quick.Check(func(data uint64, check uint8) bool {
		g1, s1 := Check64(data, check)
		g2, s2 := check64Ref(data, check)
		return g1 == g2 && s1 == s2
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestLineKernelsMatchReference proves the word-wide PCC kernels equal
// their retained bytewise oracles.
func TestLineKernelsMatchReference(t *testing.T) {
	rng := sim.NewRNG(303)
	for i := 0; i < 2000; i++ {
		var line [LineBytes]byte
		for b := range line {
			line[b] = byte(rng.Uint64())
		}
		if got, want := PCCLine(&line), pccLineRef(&line); got != want {
			t.Fatalf("PCCLine: %x != ref %x (line %x)", got, want, line)
		}
		pcc := PCCLine(&line)
		for missing := 0; missing < WordsPerLine; missing++ {
			got := ReconstructWord(&line, missing, pcc)
			want := reconstructWordRef(&line, missing, pcc)
			if got != want {
				t.Fatalf("ReconstructWord(%d): %#x != ref %#x", missing, got, want)
			}
		}
		w := rng.Intn(WordsPerLine)
		newVal := rng.Uint64()
		got := UpdatePCC(pcc, Word(&line, w), newVal)
		// Reference: bytewise cancel-and-add, as the original implemented.
		want := pcc
		var ob, nb [WordBytes]byte
		putWordLE(&ob, Word(&line, w))
		putWordLE(&nb, newVal)
		for b := 0; b < WordBytes; b++ {
			want[b] ^= ob[b] ^ nb[b]
		}
		if got != want {
			t.Fatalf("UpdatePCC: %x != ref %x", got, want)
		}
	}
}

// putWordLE stores v little-endian into an 8-byte buffer (test helper
// mirroring the original UpdatePCC serialization).
func putWordLE(buf *[WordBytes]byte, v uint64) {
	for b := 0; b < WordBytes; b++ {
		buf[b] = byte(v >> uint(8*b))
	}
}
