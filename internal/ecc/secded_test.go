package ecc

import (
	"testing"
	"testing/quick"

	"pcmap/internal/sim"
)

func TestCheckCleanWord(t *testing.T) {
	for _, data := range []uint64{0, 1, ^uint64(0), 0xdeadbeefcafebabe} {
		got, st := Check64(data, Encode64(data))
		if st != OK || got != data {
			t.Fatalf("clean word %#x: status %v data %#x", data, st, got)
		}
	}
}

func TestSingleBitCorrectionAllPositions(t *testing.T) {
	data := uint64(0x0123456789abcdef)
	check := Encode64(data)
	for bit := 0; bit < 64; bit++ {
		corrupt := data ^ (1 << uint(bit))
		got, st := Check64(corrupt, check)
		if st != CorrectedData {
			t.Fatalf("bit %d: status %v, want CorrectedData", bit, st)
		}
		if got != data {
			t.Fatalf("bit %d: corrected to %#x, want %#x", bit, got, data)
		}
	}
}

func TestCheckBitErrorDetected(t *testing.T) {
	data := uint64(0xfeedface12345678)
	check := Encode64(data)
	for bit := 0; bit < 8; bit++ {
		got, st := Check64(data, check^(1<<uint(bit)))
		if st != CorrectedCheck {
			t.Fatalf("check bit %d: status %v, want CorrectedCheck", bit, st)
		}
		if got != data {
			t.Fatalf("check bit %d: data changed to %#x", bit, got)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	rng := sim.NewRNG(77)
	misses := 0
	const n = 5000
	for i := 0; i < n; i++ {
		data := rng.Uint64()
		check := Encode64(data)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		for b2 == b1 {
			b2 = rng.Intn(64)
		}
		corrupt := data ^ (1 << uint(b1)) ^ (1 << uint(b2))
		_, st := Check64(corrupt, check)
		if st != DetectedDouble {
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("%d/%d double-bit errors not detected", misses, n)
	}
}

func TestEncodeProperty(t *testing.T) {
	// Property: for any word and any single flipped data bit, SECDED
	// recovers the original word.
	if err := quick.Check(func(data uint64, bit uint8) bool {
		b := int(bit) % 64
		check := Encode64(data)
		got, st := Check64(data^(1<<uint(b)), check)
		return st == CorrectedData && got == data
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWordRoundTrip(t *testing.T) {
	var line [LineBytes]byte
	for w := 0; w < WordsPerLine; w++ {
		SetWord(&line, w, uint64(w)*0x0101010101010101)
	}
	for w := 0; w < WordsPerLine; w++ {
		if got := Word(&line, w); got != uint64(w)*0x0101010101010101 {
			t.Fatalf("word %d = %#x", w, got)
		}
	}
}

func TestPCCReconstructionAllWords(t *testing.T) {
	rng := sim.NewRNG(5)
	var line [LineBytes]byte
	for i := range line {
		line[i] = byte(rng.Uint64())
	}
	pcc := PCCLine(&line)
	for missing := 0; missing < WordsPerLine; missing++ {
		got := ReconstructWord(&line, missing, pcc)
		want := Word(&line, missing)
		if got != want {
			t.Fatalf("reconstruct word %d: got %#x want %#x", missing, got, want)
		}
	}
}

func TestPCCIncrementalUpdate(t *testing.T) {
	// Property: incrementally updating the PCC word after a word write
	// matches recomputing it from scratch.
	if err := quick.Check(func(seed uint64, w uint8, newVal uint64) bool {
		rng := sim.NewRNG(seed)
		var line [LineBytes]byte
		for i := range line {
			line[i] = byte(rng.Uint64())
		}
		word := int(w) % WordsPerLine
		pcc := PCCLine(&line)
		old := Word(&line, word)
		pcc = UpdatePCC(pcc, old, newVal)
		SetWord(&line, word, newVal)
		return pcc == PCCLine(&line)
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLineCodesAreZero(t *testing.T) {
	var line [LineBytes]byte
	if e := EncodeLine(&line); e != ([WordsPerLine]byte{}) {
		t.Fatalf("zero line ECC = %x, want zero", e)
	}
	if p := PCCLine(&line); p != ([WordBytes]byte{}) {
		t.Fatalf("zero line PCC = %x, want zero", p)
	}
}

func TestReconstructionDetectsCorruption(t *testing.T) {
	// If another (present) word is corrupted, the reconstructed missing
	// word is wrong — exactly the failure RoW's deferred verification
	// catches.
	var line [LineBytes]byte
	for i := range line {
		line[i] = byte(i * 7)
	}
	pcc := PCCLine(&line)
	clean := ReconstructWord(&line, 3, pcc)
	line[0] ^= 0x10 // corrupt word 0
	dirty := ReconstructWord(&line, 3, pcc)
	if clean == dirty {
		t.Fatal("corruption of a sibling word should change the reconstruction")
	}
}
