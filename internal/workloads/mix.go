package workloads

import (
	"fmt"
	"sort"
)

// Mix is one evaluated workload: what each of the 8 cores runs.
type Mix struct {
	Name string
	// PerCore names the profile each core executes (length = cores).
	PerCore []string
	// Multithreaded marks the PARSEC/STREAM workloads whose threads
	// share an address region (coherence traffic).
	Multithreaded bool
}

func mt(name string, cores int) Mix {
	pc := make([]string, cores)
	for i := range pc {
		pc[i] = name
	}
	return Mix{Name: name, PerCore: pc, Multithreaded: true}
}

func mp(name string, pairs ...string) Mix {
	var pc []string
	for _, p := range pairs {
		pc = append(pc, p, p) // "2x" each program, Table II
	}
	return Mix{Name: name, PerCore: pc}
}

// mixes are the Table II workloads plus every PARSEC program (for the
// Average(MT) aggregate) and STREAM.
var mixes = func() map[string]Mix {
	m := map[string]Mix{}
	for _, name := range PARSECNames() {
		m[name] = mt(name, 8)
	}
	m["stream"] = mt("stream", 8)
	m["MP1"] = mp("MP1", "mcf", "gemsFDTD", "astar", "sphinx3")
	m["MP2"] = mp("MP2", "mcf", "gromacs", "gemsFDTD", "h264ref")
	m["MP3"] = mp("MP3", "gromacs", "h264ref", "astar", "sphinx3")
	m["MP4"] = mp("MP4", "astar", "astar", "astar", "astar")
	m["MP5"] = mp("MP5", "gemsFDTD", "gemsFDTD", "gemsFDTD", "gemsFDTD")
	m["MP6"] = mp("MP6", "cactusADM", "soplex", "gemsFDTD", "astar")
	return m
}()

// MixByName returns a defined workload mix. A bare SPEC profile name
// resolves to a rate-mode mix of 8 copies (how Figures 1 and 2 run
// individual programs on the 8-core machine).
func MixByName(name string) (Mix, bool) {
	if m, ok := mixes[name]; ok {
		return m, true
	}
	if _, ok := profiles[name]; ok {
		m := mt(name, 8)
		m.Multithreaded = false // independent copies, no shared region
		return m, true
	}
	return Mix{}, false
}

// MustMix returns the mix or panics; for static experiment tables.
func MustMix(name string) Mix {
	m, ok := mixes[name]
	if !ok {
		panic(fmt.Sprintf("workloads: unknown mix %q", name))
	}
	return m
}

// MixNames lists all defined mixes, sorted.
func MixNames() []string {
	out := make([]string, 0, len(mixes))
	for n := range mixes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableIIMT lists the six multithreaded workloads of Table II, in the
// paper's order.
func TableIIMT() []string {
	return []string{"canneal", "dedup", "facesim", "fluidanimate", "freqmine", "streamcluster"}
}

// TableIIMP lists the six multiprogrammed mixes of Table II.
func TableIIMP() []string {
	return []string{"MP1", "MP2", "MP3", "MP4", "MP5", "MP6"}
}

// EvaluationSet is the 12-workload set of Figures 8-11.
func EvaluationSet() []string {
	return append(append([]string{}, TableIIMT()...), TableIIMP()...)
}

// Profiles resolves the mix's per-core profiles.
func (m Mix) Profiles() []Profile {
	out := make([]Profile, len(m.PerCore))
	for i, n := range m.PerCore {
		out[i] = MustByName(n)
	}
	return out
}

// AggregateRPKIWPKI returns the mix's paper-target request intensity
// (the arithmetic mean over cores, matching Table II's per-workload
// figures for homogeneous mixes).
func (m Mix) AggregateRPKIWPKI() (rpki, wpki float64) {
	ps := m.Profiles()
	for _, p := range ps {
		rpki += p.RPKI
		wpki += p.WPKI
	}
	n := float64(len(ps))
	return rpki / n, wpki / n
}
