package workloads

import (
	"math"
	"testing"

	"pcmap/internal/sim"
)

func TestAllProfilesWellFormed(t *testing.T) {
	for _, name := range Names() {
		p := MustByName(name)
		if p.Name != name {
			t.Fatalf("%s: name mismatch %q", name, p.Name)
		}
		if p.MemOpsPerKI <= 0 || p.MemOpsPerKI >= 1000 {
			t.Fatalf("%s: MemOpsPerKI %v out of range", name, p.MemOpsPerKI)
		}
		if p.StoreFrac <= 0 || p.StoreFrac >= 1 {
			t.Fatalf("%s: StoreFrac %v", name, p.StoreFrac)
		}
		if p.BaseCPI < 0.25 {
			t.Fatalf("%s: BaseCPI %v below issue-width floor", name, p.BaseCPI)
		}
		var sum float64
		for _, f := range p.DirtyWordDist {
			if f < 0 {
				t.Fatalf("%s: negative dirty-word probability", name)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: dirty-word distribution sums to %v", name, sum)
		}
		if p.FootprintLines == 0 {
			t.Fatalf("%s: zero footprint", name)
		}
		if p.RPKI <= 0 || p.WPKI <= 0 {
			t.Fatalf("%s: non-positive intensity targets", name)
		}
	}
}

func TestFigure2Anchors(t *testing.T) {
	// The paper's two quoted anchors.
	cactus := MustByName("cactusADM")
	if f := cactus.DirtyWordDist[1]; f < 0.45 || f > 0.55 {
		t.Fatalf("cactusADM 1-word fraction %.2f, want ~0.52", f)
	}
	omnet := MustByName("omnetpp")
	if f := omnet.DirtyWordDist[1]; f < 0.10 || f > 0.18 {
		t.Fatalf("omnetpp 1-word fraction %.2f, want ~0.14", f)
	}
	// "77-99% of write-backs have fewer than 4 words dirty" — check a
	// representative majority, counting silent write-backs like the
	// paper's Figure 2 does.
	for _, name := range SPECNames() {
		p := MustByName(name)
		var under4 float64
		for k := 0; k <= 3; k++ {
			under4 += p.DirtyWordDist[k]
		}
		if under4 < 0.5 {
			t.Fatalf("%s: under-4-words mass %.2f implausibly low", name, under4)
		}
	}
}

func TestGeneratorGapRate(t *testing.T) {
	p := MustByName("astar")
	g := NewGenerator(p, 0, sim.NewRNG(1), nil)
	var ops, instrs uint64
	var op Op
	for i := 0; i < 200000; i++ {
		g.Next(&op)
		ops++
		instrs += uint64(op.Gap) + 1
	}
	memPerKI := float64(ops) / float64(instrs) * 1000
	// RFO follow-ups add a few ops beyond MemOpsPerKI.
	if memPerKI < p.MemOpsPerKI*0.95 || memPerKI > p.MemOpsPerKI*1.25 {
		t.Fatalf("mem ops per KI %.1f, profile says %.1f", memPerKI, p.MemOpsPerKI)
	}
}

func TestGeneratorPCMRates(t *testing.T) {
	// The op stream's PCM-bound rates should track the RPKI/WPKI
	// targets before any cache effects.
	for _, name := range []string{"canneal", "astar", "freqmine", "mcf"} {
		p := MustByName(name)
		g := NewGenerator(p, 0, sim.NewRNG(7), nil)
		var instrs, ntWrites, memReads uint64
		var op Op
		for i := 0; i < 500000; i++ {
			g.Next(&op)
			instrs += uint64(op.Gap) + 1
			if op.Store && op.NonTemporal {
				ntWrites++
			}
			if !op.Store && op.NonTemporal {
				memReads++
			}
		}
		ki := float64(instrs) / 1000
		wpki := float64(ntWrites) / ki
		rpki := float64(memReads) / ki
		if wpki < p.WPKI*0.7 || wpki > p.WPKI*1.3 {
			t.Fatalf("%s: generated WPKI %.2f, target %.2f", name, wpki, p.WPKI)
		}
		if rpki < p.RPKI*0.7 || rpki > p.RPKI*1.3 {
			t.Fatalf("%s: generated RPKI %.2f, target %.2f", name, rpki, p.RPKI)
		}
	}
}

func TestGeneratorDirtyWordDistribution(t *testing.T) {
	p := MustByName("cactusADM")
	g := NewGenerator(p, 0, sim.NewRNG(3), nil)
	counts := make([]int, 9)
	var op Op
	n := 0
	for i := 0; i < 3_000_000 && n < 20000; i++ {
		g.Next(&op)
		if op.Store && op.NonTemporal {
			counts[popcount8(op.EssMask)]++
			n++
		}
	}
	if n < 5000 {
		t.Fatalf("too few PCM writes generated: %d", n)
	}
	oneWord := float64(counts[1]) / float64(n)
	if oneWord < 0.42 || oneWord > 0.62 {
		t.Fatalf("cactusADM 1-word write-backs %.2f, want ~0.52", oneWord)
	}
}

func popcount8(x uint8) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestPatternStability(t *testing.T) {
	p := MustByName("astar")
	g := NewGenerator(p, 0, sim.NewRNG(9), nil)
	m1 := g.patternFor(0x1000)
	m2 := g.patternFor(0x1000)
	if m1 != m2 {
		t.Fatal("pattern for a line must be stable")
	}
}

func TestOffsetSkewBiasesLowWords(t *testing.T) {
	p := MustByName("astar")
	g := NewGenerator(p, 0, sim.NewRNG(11), nil)
	low, high := 0, 0
	for i := 0; i < 20000; i++ {
		off := g.sampleOffset()
		if off < 4 {
			low++
		} else {
			high++
		}
	}
	if low <= high*2 {
		t.Fatalf("offset skew too weak: low=%d high=%d", low, high)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := MustByName("canneal")
	g1 := NewGenerator(p, 0, sim.NewRNG(5), nil)
	g2 := NewGenerator(p, 0, sim.NewRNG(5), nil)
	var a, b Op
	for i := 0; i < 10000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("streams diverged at op %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestPatternMapCapBounded pins the 64K-entry bound of the per-line
// write-pattern memo: crossing it must reset the map (patterns
// re-sample) without ever letting it grow past the cap.
func TestPatternMapCapBounded(t *testing.T) {
	p := MustByName("canneal")
	g := NewGenerator(p, 0, sim.NewRNG(23), nil)
	for line := uint64(0); line < 3<<16; line++ {
		g.patternFor(line)
		if len(g.patterns) > 1<<16 {
			t.Fatalf("pattern map grew past the 64K cap: %d entries", len(g.patterns))
		}
	}
	// The reset map must still memoize.
	m1 := g.patternFor(99)
	if m2 := g.patternFor(99); m2 != m1 {
		t.Fatalf("pattern not remembered after cap reset: %#x then %#x", m1, m2)
	}
}

// TestDeterministicAcrossPatternCap drives two identically-seeded
// generators through the pattern-map cap boundary and far beyond it:
// the memo reset must never perturb the op stream.
func TestDeterministicAcrossPatternCap(t *testing.T) {
	p := MustByName("canneal")
	g1 := NewGenerator(p, 0, sim.NewRNG(31), nil)
	g2 := NewGenerator(p, 0, sim.NewRNG(31), nil)
	for line := uint64(0); line < 2<<16; line++ {
		if a, b := g1.patternFor(line), g2.patternFor(line); a != b {
			t.Fatalf("pattern streams diverged at line %d: %#x vs %#x", line, a, b)
		}
	}
	var a, b Op
	for i := 0; i < 5000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("op streams diverged at op %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestPatternForAllocFreeWarm pins the steady-state mask path: looking
// up an already-sampled line's pattern allocates nothing.
func TestPatternForAllocFreeWarm(t *testing.T) {
	p := MustByName("canneal")
	g := NewGenerator(p, 0, sim.NewRNG(37), nil)
	for line := uint64(0); line < 1024; line++ {
		g.patternFor(line)
	}
	var line uint64
	if n := testing.AllocsPerRun(1000, func() {
		g.patternFor(line & 1023)
		line++
	}); n != 0 {
		t.Fatalf("warm patternFor allocated %.1f/op, want 0", n)
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	for _, name := range Names() {
		p := MustByName(name)
		for core := 0; core < 8; core++ {
			g := NewGenerator(p, core, sim.NewRNG(1), nil)
			base, lines := g.LLCPoolRange()
			end := base + uint64(lines)*64
			nextBase := uint64(core+2) << 29
			if end > nextBase {
				t.Fatalf("%s core %d: region [%#x,%#x) spills into core %d's base %#x",
					name, core, g.base, end, core+1, nextBase)
			}
		}
	}
}

func TestMixDefinitions(t *testing.T) {
	for _, n := range EvaluationSet() {
		m := MustMix(n)
		if len(m.PerCore) != 8 {
			t.Fatalf("%s: %d cores", n, len(m.PerCore))
		}
		for _, pn := range m.PerCore {
			if _, ok := ByName(pn); !ok {
				t.Fatalf("%s references unknown profile %s", n, pn)
			}
		}
	}
	mt := MustMix("canneal")
	if !mt.Multithreaded {
		t.Fatal("canneal must be multithreaded")
	}
	mp := MustMix("MP1")
	if mp.Multithreaded {
		t.Fatal("MP1 must not be multithreaded")
	}
	if mp.PerCore[0] != "mcf" || mp.PerCore[1] != "mcf" || mp.PerCore[2] != "gemsFDTD" {
		t.Fatalf("MP1 composition wrong: %v", mp.PerCore)
	}
}

func TestHomogeneousMixFallback(t *testing.T) {
	m, ok := MixByName("lbm")
	if !ok {
		t.Fatal("profile name should resolve to a rate-mode mix")
	}
	if m.Multithreaded {
		t.Fatal("fallback mixes are independent copies")
	}
	if len(m.PerCore) != 8 {
		t.Fatalf("%d cores", len(m.PerCore))
	}
	if _, ok := MixByName("not-a-workload"); ok {
		t.Fatal("unknown name should not resolve")
	}
}

func TestAggregateRPKIWPKI(t *testing.T) {
	m := MustMix("MP4") // 8x astar
	rp, wp := m.AggregateRPKIWPKI()
	astar := MustByName("astar")
	if math.Abs(rp-astar.RPKI) > 1e-9 || math.Abs(wp-astar.WPKI) > 1e-9 {
		t.Fatalf("homogeneous aggregate (%.2f,%.2f) != profile (%.2f,%.2f)", rp, wp, astar.RPKI, astar.WPKI)
	}
}
