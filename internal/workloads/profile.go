// Package workloads provides calibrated synthetic models of the
// paper's benchmark programs (SPEC CPU 2006, PARSEC-2, STREAM). The
// real suites are proprietary binaries run under Gem5 in the paper;
// per the substitution methodology in DESIGN.md we model each program
// as a statistical memory-request generator reproducing its published
// observable properties:
//
//   - PCM read/write intensity (RPKI/WPKI, Table II),
//   - the dirty-word distribution of its write-backs (Figure 2,
//     including the silent 0-word bucket),
//   - the 32%-average same-offset correlation between successive
//     write-backs (Section IV-C2),
//   - row-buffer locality and footprint.
//
// Everything a PCMap mechanism reacts to is in those properties.
package workloads

import (
	"fmt"
	"sort"
)

// Profile is one application's statistical model.
type Profile struct {
	Name string

	// MemOpsPerKI is the number of loads+stores per 1000 instructions
	// reaching the L1 (the rest are the instruction "gap").
	MemOpsPerKI float64
	// StoreFrac is the fraction of memory ops that are stores.
	StoreFrac float64
	// BaseCPI is the cycles-per-instruction of the non-memory
	// instruction stream on the 4-wide core (>= 0.25).
	BaseCPI float64

	// RPKI/WPKI are the Table II calibration targets: PCM reads and
	// write-backs per kilo-instruction.
	RPKI, WPKI float64

	// Locality mixture: the remaining probability mass (after the
	// PCM-bound shares derived from RPKI/WPKI) splits between the L1,
	// L2 and LLC reuse pools in these relative weights.
	L1Weight, L2Weight, LLCWeight float64

	// FootprintLines is the size of the streamed main-memory region in
	// cache lines.
	FootprintLines uint64
	// RowLocality is the probability a PCM-bound access continues
	// sequentially (row-buffer friendly) rather than jumping.
	RowLocality float64

	// DirtyWordDist[k] is the probability a write-back changed exactly
	// k 8-byte words (k=0 is a silent store), Figure 2.
	DirtyWordDist [9]float64
	// SameOffsetCorr is the probability that a new line's write
	// pattern starts at the same word offset as the previous one.
	SameOffsetCorr float64
	// OffsetSkew in (0,1] shapes where write patterns start within the
	// line: P(offset k) proportional to OffsetSkew^k. Real programs
	// cluster updates at low offsets (headers, counters, struct
	// prefixes) — the clustering the paper's data rotation spreads
	// (Section IV-C2). 1 means uniform.
	OffsetSkew float64

	// SharedFrac is the fraction of accesses hitting the
	// process-shared region (multithreaded programs only).
	SharedFrac float64
}

// dist builds a normalized 9-bucket dirty-word distribution.
func dist(p0, p1, p2, p3, p4, p5, p6, p7, p8 float64) [9]float64 {
	d := [9]float64{p0, p1, p2, p3, p4, p5, p6, p7, p8}
	var sum float64
	for _, v := range d {
		sum += v
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

// MeanDirtyWords returns the distribution's expected dirty-word count.
func (p Profile) MeanDirtyWords() float64 {
	var m float64
	for k, f := range p.DirtyWordDist {
		m += float64(k) * f
	}
	return m
}

// profiles is the application table. RPKI/WPKI for the six Table II
// multithreaded programs and the solo programs recoverable from the
// homogeneous mixes (MP4 => astar, MP5 => gemsFDTD) are the paper's
// numbers; the remaining programs carry representative literature
// values (the paper does not publish them) — EXPERIMENTS.md reports
// what our models actually measure next to these targets.
var profiles = map[string]Profile{
	// --- SPEC CPU 2006 (multiprogrammed mixes, Figures 1-2) ---
	"mcf": {
		Name: "mcf", MemOpsPerKI: 350, StoreFrac: 0.26, BaseCPI: 2.35,
		RPKI: 10.2, WPKI: 3.2, L1Weight: 0.72, L2Weight: 0.16, LLCWeight: 0.12,
		FootprintLines: 3 << 20, RowLocality: 0.35,
		DirtyWordDist:  dist(14, 30, 16, 8, 12, 6, 3, 3, 8),
		SameOffsetCorr: 0.30, OffsetSkew: 0.55,
	},
	"gemsFDTD": {
		Name: "gemsFDTD", MemOpsPerKI: 320, StoreFrac: 0.30, BaseCPI: 2.1,
		RPKI: 4.15, WPKI: 2.6, L1Weight: 0.70, L2Weight: 0.18, LLCWeight: 0.12,
		FootprintLines: 4 << 20, RowLocality: 0.75,
		DirtyWordDist:  dist(12, 26, 15, 8, 15, 6, 3, 3, 12),
		SameOffsetCorr: 0.38, OffsetSkew: 0.55,
	},
	"astar": {
		Name: "astar", MemOpsPerKI: 340, StoreFrac: 0.32, BaseCPI: 2.2,
		RPKI: 8.05, WPKI: 5.65, L1Weight: 0.70, L2Weight: 0.17, LLCWeight: 0.13,
		FootprintLines: 2 << 20, RowLocality: 0.45,
		DirtyWordDist:  dist(16, 34, 15, 7, 10, 5, 2, 2, 9),
		SameOffsetCorr: 0.33, OffsetSkew: 0.55,
	},
	"sphinx3": {
		Name: "sphinx3", MemOpsPerKI: 300, StoreFrac: 0.22, BaseCPI: 2.0,
		RPKI: 3.4, WPKI: 1.0, L1Weight: 0.74, L2Weight: 0.16, LLCWeight: 0.10,
		FootprintLines: 1 << 20, RowLocality: 0.60,
		DirtyWordDist:  dist(18, 32, 14, 7, 10, 5, 2, 2, 10),
		SameOffsetCorr: 0.30, OffsetSkew: 0.55,
	},
	"gromacs": {
		Name: "gromacs", MemOpsPerKI: 280, StoreFrac: 0.28, BaseCPI: 1.85,
		RPKI: 1.2, WPKI: 0.5, L1Weight: 0.78, L2Weight: 0.14, LLCWeight: 0.08,
		FootprintLines: 512 << 10, RowLocality: 0.70,
		DirtyWordDist:  dist(20, 28, 14, 8, 10, 5, 3, 3, 9),
		SameOffsetCorr: 0.28, OffsetSkew: 0.55,
	},
	"h264ref": {
		Name: "h264ref", MemOpsPerKI: 310, StoreFrac: 0.30, BaseCPI: 1.9,
		RPKI: 1.5, WPKI: 0.6, L1Weight: 0.78, L2Weight: 0.14, LLCWeight: 0.08,
		FootprintLines: 512 << 10, RowLocality: 0.80,
		DirtyWordDist:  dist(15, 25, 16, 9, 13, 6, 3, 3, 10),
		SameOffsetCorr: 0.35, OffsetSkew: 0.55,
	},
	"cactusADM": {
		Name: "cactusADM", MemOpsPerKI: 330, StoreFrac: 0.34, BaseCPI: 2.5,
		RPKI: 5.0, WPKI: 2.2, L1Weight: 0.70, L2Weight: 0.18, LLCWeight: 0.12,
		FootprintLines: 3 << 20, RowLocality: 0.80,
		// The paper's Figure 2 anchor: 52% of write-backs dirty one word.
		DirtyWordDist:  dist(10, 52, 12, 5, 8, 4, 2, 2, 5),
		SameOffsetCorr: 0.40, OffsetSkew: 0.55,
	},
	"soplex": {
		Name: "soplex", MemOpsPerKI: 320, StoreFrac: 0.24, BaseCPI: 2.3,
		RPKI: 4.8, WPKI: 2.0, L1Weight: 0.71, L2Weight: 0.17, LLCWeight: 0.12,
		FootprintLines: 2 << 20, RowLocality: 0.55,
		DirtyWordDist:  dist(14, 30, 16, 8, 11, 5, 3, 3, 10),
		SameOffsetCorr: 0.32, OffsetSkew: 0.55,
	},
	"omnetpp": {
		Name: "omnetpp", MemOpsPerKI: 340, StoreFrac: 0.30, BaseCPI: 2.4,
		RPKI: 6.0, WPKI: 2.8, L1Weight: 0.70, L2Weight: 0.18, LLCWeight: 0.12,
		FootprintLines: 2 << 20, RowLocality: 0.30,
		// Figure 2 anchor: only 14% of write-backs dirty one word.
		DirtyWordDist:  dist(12, 14, 17, 11, 16, 8, 5, 5, 12),
		SameOffsetCorr: 0.25, OffsetSkew: 0.55,
	},
	"milc": {
		Name: "milc", MemOpsPerKI: 330, StoreFrac: 0.28, BaseCPI: 2.1,
		RPKI: 7.5, WPKI: 3.0, L1Weight: 0.70, L2Weight: 0.17, LLCWeight: 0.13,
		FootprintLines: 4 << 20, RowLocality: 0.65,
		DirtyWordDist:  dist(12, 24, 15, 9, 14, 7, 4, 4, 11),
		SameOffsetCorr: 0.30, OffsetSkew: 0.55,
	},
	"lbm": {
		Name: "lbm", MemOpsPerKI: 360, StoreFrac: 0.38, BaseCPI: 2.0,
		RPKI: 11.0, WPKI: 6.5, L1Weight: 0.68, L2Weight: 0.17, LLCWeight: 0.15,
		FootprintLines: 6 << 20, RowLocality: 0.85,
		DirtyWordDist:  dist(8, 22, 16, 10, 16, 8, 5, 4, 11),
		SameOffsetCorr: 0.45, OffsetSkew: 0.55,
	},
	"libquantum": {
		Name: "libquantum", MemOpsPerKI: 300, StoreFrac: 0.22, BaseCPI: 1.75,
		RPKI: 9.0, WPKI: 2.5, L1Weight: 0.72, L2Weight: 0.16, LLCWeight: 0.12,
		FootprintLines: 2 << 20, RowLocality: 0.90,
		DirtyWordDist:  dist(14, 36, 16, 8, 9, 4, 2, 2, 9),
		SameOffsetCorr: 0.35, OffsetSkew: 0.55,
	},

	// --- PARSEC-2 (multithreaded, Table II where published) ---
	"canneal": {
		Name: "canneal", MemOpsPerKI: 350, StoreFrac: 0.28, BaseCPI: 2.6,
		RPKI: 15.19, WPKI: 7.13, L1Weight: 0.66, L2Weight: 0.18, LLCWeight: 0.16,
		FootprintLines: 6 << 20, RowLocality: 0.25,
		DirtyWordDist:  dist(13, 31, 15, 8, 11, 5, 3, 3, 11),
		SameOffsetCorr: 0.30, OffsetSkew: 0.55, SharedFrac: 0.25,
	},
	"dedup": {
		Name: "dedup", MemOpsPerKI: 320, StoreFrac: 0.30, BaseCPI: 2.2,
		RPKI: 3.04, WPKI: 2.072, L1Weight: 0.73, L2Weight: 0.16, LLCWeight: 0.11,
		FootprintLines: 2 << 20, RowLocality: 0.55,
		DirtyWordDist:  dist(12, 28, 16, 9, 12, 6, 3, 3, 11),
		SameOffsetCorr: 0.33, OffsetSkew: 0.55, SharedFrac: 0.30,
	},
	"facesim": {
		Name: "facesim", MemOpsPerKI: 330, StoreFrac: 0.26, BaseCPI: 2.1,
		RPKI: 6.66, WPKI: 1.26, L1Weight: 0.71, L2Weight: 0.17, LLCWeight: 0.12,
		FootprintLines: 3 << 20, RowLocality: 0.70,
		DirtyWordDist:  dist(16, 30, 15, 8, 10, 5, 3, 3, 10),
		SameOffsetCorr: 0.31, OffsetSkew: 0.55, SharedFrac: 0.20,
	},
	"fluidanimate": {
		Name: "fluidanimate", MemOpsPerKI: 310, StoreFrac: 0.28, BaseCPI: 2.0,
		RPKI: 5.54, WPKI: 1.51, L1Weight: 0.72, L2Weight: 0.17, LLCWeight: 0.11,
		FootprintLines: 2 << 20, RowLocality: 0.65,
		DirtyWordDist:  dist(15, 29, 16, 8, 11, 5, 3, 3, 10),
		SameOffsetCorr: 0.34, OffsetSkew: 0.55, SharedFrac: 0.22,
	},
	"freqmine": {
		Name: "freqmine", MemOpsPerKI: 300, StoreFrac: 0.34, BaseCPI: 2.1,
		RPKI: 0.78, WPKI: 3.33, L1Weight: 0.76, L2Weight: 0.15, LLCWeight: 0.09,
		FootprintLines: 1 << 20, RowLocality: 0.50,
		DirtyWordDist:  dist(14, 30, 16, 8, 11, 5, 3, 3, 10),
		SameOffsetCorr: 0.30, OffsetSkew: 0.55, SharedFrac: 0.28,
	},
	"streamcluster": {
		Name: "streamcluster", MemOpsPerKI: 320, StoreFrac: 0.24, BaseCPI: 1.9,
		RPKI: 5.19, WPKI: 2.13, L1Weight: 0.72, L2Weight: 0.16, LLCWeight: 0.12,
		FootprintLines: 3 << 20, RowLocality: 0.80,
		DirtyWordDist:  dist(13, 31, 16, 8, 11, 5, 3, 3, 10),
		SameOffsetCorr: 0.35, OffsetSkew: 0.55, SharedFrac: 0.18,
	},
	"blackscholes": {
		Name: "blackscholes", MemOpsPerKI: 270, StoreFrac: 0.22, BaseCPI: 1.7,
		RPKI: 0.6, WPKI: 0.2, L1Weight: 0.80, L2Weight: 0.13, LLCWeight: 0.07,
		FootprintLines: 256 << 10, RowLocality: 0.85,
		DirtyWordDist:  dist(18, 30, 15, 8, 10, 5, 2, 2, 10),
		SameOffsetCorr: 0.30, OffsetSkew: 0.55, SharedFrac: 0.10,
	},
	"bodytrack": {
		Name: "bodytrack", MemOpsPerKI: 290, StoreFrac: 0.25, BaseCPI: 1.9,
		RPKI: 1.8, WPKI: 0.7, L1Weight: 0.77, L2Weight: 0.14, LLCWeight: 0.09,
		FootprintLines: 512 << 10, RowLocality: 0.70,
		DirtyWordDist:  dist(16, 29, 15, 8, 11, 5, 3, 3, 10),
		SameOffsetCorr: 0.31, OffsetSkew: 0.55, SharedFrac: 0.20,
	},
	"ferret": {
		Name: "ferret", MemOpsPerKI: 330, StoreFrac: 0.27, BaseCPI: 2.2,
		RPKI: 4.2, WPKI: 1.9, L1Weight: 0.72, L2Weight: 0.17, LLCWeight: 0.11,
		FootprintLines: 2 << 20, RowLocality: 0.50,
		DirtyWordDist:  dist(14, 30, 15, 8, 11, 5, 3, 3, 11),
		SameOffsetCorr: 0.32, OffsetSkew: 0.55, SharedFrac: 0.30,
	},
	"raytrace": {
		Name: "raytrace", MemOpsPerKI: 300, StoreFrac: 0.20, BaseCPI: 2.0,
		RPKI: 2.5, WPKI: 0.8, L1Weight: 0.76, L2Weight: 0.15, LLCWeight: 0.09,
		FootprintLines: 1 << 20, RowLocality: 0.45,
		DirtyWordDist:  dist(17, 30, 15, 8, 10, 5, 2, 2, 11),
		SameOffsetCorr: 0.29, OffsetSkew: 0.55, SharedFrac: 0.15,
	},
	"swaptions": {
		Name: "swaptions", MemOpsPerKI: 260, StoreFrac: 0.21, BaseCPI: 1.6,
		RPKI: 0.4, WPKI: 0.15, L1Weight: 0.82, L2Weight: 0.12, LLCWeight: 0.06,
		FootprintLines: 128 << 10, RowLocality: 0.80,
		DirtyWordDist:  dist(18, 31, 15, 8, 10, 4, 2, 2, 10),
		SameOffsetCorr: 0.30, OffsetSkew: 0.55, SharedFrac: 0.08,
	},
	"vips": {
		Name: "vips", MemOpsPerKI: 310, StoreFrac: 0.29, BaseCPI: 2.0,
		RPKI: 3.1, WPKI: 1.4, L1Weight: 0.74, L2Weight: 0.15, LLCWeight: 0.11,
		FootprintLines: 2 << 20, RowLocality: 0.75,
		DirtyWordDist:  dist(13, 28, 16, 9, 12, 5, 3, 3, 11),
		SameOffsetCorr: 0.34, OffsetSkew: 0.55, SharedFrac: 0.18,
	},
	"x264": {
		Name: "x264", MemOpsPerKI: 320, StoreFrac: 0.30, BaseCPI: 1.9,
		RPKI: 2.9, WPKI: 1.1, L1Weight: 0.75, L2Weight: 0.15, LLCWeight: 0.10,
		FootprintLines: 1 << 20, RowLocality: 0.70,
		DirtyWordDist:  dist(14, 27, 16, 9, 12, 6, 3, 3, 10),
		SameOffsetCorr: 0.33, OffsetSkew: 0.55, SharedFrac: 0.22,
	},

	// --- STREAM (Section V mentions it among the multithreaded set) ---
	"stream": {
		Name: "stream", MemOpsPerKI: 380, StoreFrac: 0.34, BaseCPI: 1.6,
		RPKI: 12.0, WPKI: 6.0, L1Weight: 0.66, L2Weight: 0.16, LLCWeight: 0.18,
		FootprintLines: 4 << 20, RowLocality: 0.95,
		DirtyWordDist:  dist(2, 10, 12, 10, 18, 12, 8, 8, 20),
		SameOffsetCorr: 0.60, OffsetSkew: 0.55, SharedFrac: 0.05,
	},
}

// ByName returns the profile for one application.
func ByName(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// MustByName returns the profile or panics; for static tables.
func MustByName(name string) Profile {
	p, ok := profiles[name]
	if !ok {
		panic(fmt.Sprintf("workloads: unknown profile %q", name))
	}
	return p
}

// Names lists all known application profiles, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SPECNames lists the SPEC CPU 2006 models (Figures 1 and 2).
func SPECNames() []string {
	return []string{"mcf", "gemsFDTD", "astar", "sphinx3", "gromacs", "h264ref",
		"cactusADM", "soplex", "omnetpp", "milc", "lbm", "libquantum"}
}

// PARSECNames lists the 13 PARSEC-2 models (Average(MT) in Section VI).
func PARSECNames() []string {
	return []string{"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
		"ferret", "fluidanimate", "freqmine", "raytrace", "streamcluster",
		"swaptions", "vips", "x264"}
}
