package workloads

import (
	"pcmap/internal/sim"
)

// Op is one memory operation emitted by a workload stream, preceded by
// Gap non-memory instructions.
type Op struct {
	Gap         int
	Store       bool
	Addr        uint64
	EssMask     uint8 // stores: words whose values change (0 = silent)
	NonTemporal bool  // stores: bypass allocation (streaming store)
}

// SharedRegion is the address region an MT program's threads share.
// All generators of one workload reference the same instance, so
// stores from one core hit lines other cores have cached — the
// coherence traffic source.
type SharedRegion struct {
	Base  uint64
	Lines uint64
}

// Generator produces one core's memory-operation stream for a profile.
type Generator struct {
	P    Profile
	rng  *sim.RNG
	core int

	// Derived per-op probabilities (see calibration note below).
	pMemLoad  float64 // load goes to the streamed PCM-bound region
	pMemStore float64 // store goes to the PCM-bound region
	allocFrac float64 // PCM-bound stores that write-allocate (vs NT)
	meanGap   float64

	base     uint64 // private region base
	poolBase uint64 // reuse pools (set-skewed per core)
	memPtr   uint64
	recent   [16]uint64
	nRecent  int

	// queued holds a follow-up op (the RFO read of a write-allocated
	// streaming store) emitted on the next call.
	queued    Op
	hasQueued bool

	patterns   map[uint64]uint8
	lastOffset int

	shared *SharedRegion

	// Counters for calibration checks.
	Ops, StoresGen, MemLoads, MemStores uint64
}

// Region geometry (lines): the reuse pools behind the derived bucket
// probabilities. The L2 pool fits comfortably in one core's L2 share;
// the LLC pool fits the DRAM cache but not the L2.
const (
	l2PoolLines  = 6 << 10  // 384 KB per core
	llcPoolLines = 64 << 10 // 4 MB per core
	sharedLines  = 32 << 10 // 2 MB hot shared set

	// poolSkewLines staggers each core's pool region so different
	// cores' pools map to different cache sets (the private-region
	// bases differ only above the set-index bits; without the skew all
	// eight pools would pile onto the same sets and fill them
	// completely, turning every other fill into a thrash chain).
	poolSkewLines = l2PoolLines + llcPoolLines + 1<<10
)

// NewGenerator builds the stream for one core. Cores of a
// multiprogrammed mix pass shared == nil; threads of a multithreaded
// program share one SharedRegion.
func NewGenerator(p Profile, core int, rng *sim.RNG, shared *SharedRegion) *Generator {
	g := &Generator{
		P:        p,
		rng:      rng,
		core:     core,
		base:     uint64(core+1) << 29, // 512 MB apart, private
		patterns: make(map[uint64]uint8),
		shared:   shared,
	}
	g.poolBase = g.base + (p.FootprintLines+uint64(core)*poolSkewLines)*64
	// Calibration: with L loads and S stores per kilo-instruction,
	// write-allocated PCM-bound stores produce one RFO read and one
	// eventual write-back each, so
	//
	//	RPKI = L*pMemLoad + allocFrac*S*pMemStore
	//	WPKI = S*pMemStore
	//
	// When the paper's RPKI >= WPKI all PCM-bound stores allocate and
	// loads supply the difference; when WPKI > RPKI (freqmine) most
	// PCM-bound stores are modeled as non-temporal streaming stores.
	l := p.MemOpsPerKI * (1 - p.StoreFrac)
	s := p.MemOpsPerKI * p.StoreFrac
	if s > 0 {
		g.pMemStore = clamp01(p.WPKI / s)
	}
	if p.RPKI >= p.WPKI {
		g.allocFrac = 1
		if l > 0 {
			g.pMemLoad = clamp01((p.RPKI - p.WPKI) / l)
		}
	} else {
		if p.WPKI > 0 {
			g.allocFrac = clamp01(0.3 * p.RPKI / p.WPKI)
		}
		if l > 0 {
			g.pMemLoad = clamp01(0.7 * p.RPKI / l)
		}
	}
	g.meanGap = (1000 - p.MemOpsPerKI) / p.MemOpsPerKI
	if g.meanGap < 0 {
		g.meanGap = 0
	}
	return g
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Next fills op with the stream's next operation.
//
// PCM-bound stores are modeled as streaming (non-temporal) writes so
// the write-back rate is independent of simulated length (the paper
// runs 1B instructions, long enough for LLC eviction steady state; our
// runs are ~1000x shorter, so waiting for a 256 MB LLC to age dirty
// lines out would silence WPKI entirely — see DESIGN.md). When the
// profile's calibration says the store would have write-allocated, the
// read-for-ownership is emitted explicitly as a follow-up load, which
// preserves the paper's read traffic.
func (g *Generator) Next(op *Op) {
	g.Ops++
	if g.hasQueued {
		*op = g.queued
		g.hasQueued = false
		return
	}
	*op = Op{Gap: int(g.rng.Exp(g.meanGap) + 0.5)}
	op.Store = g.rng.Bool(g.P.StoreFrac)

	pMem := g.pMemLoad
	if op.Store {
		g.StoresGen++
		pMem = g.pMemStore
	}
	if g.rng.Float64() < pMem {
		op.Addr = g.nextStreamAddr()
		if op.Store {
			g.MemStores++
			op.NonTemporal = true
			if g.rng.Bool(g.allocFrac) {
				// Write-allocate traffic: the RFO read (streaming too).
				g.queued = Op{Addr: op.Addr, NonTemporal: true}
				g.hasQueued = true
			}
		} else {
			g.MemLoads++
			op.NonTemporal = true
		}
	} else {
		op.Addr = g.nextReuseAddr()
		// Only reuse-pool lines enter the recency ring: streamed lines
		// are touched once by construction (that is what makes them
		// PCM-bound), so remembering them would synthesize bogus reuse
		// of lines the hierarchy deliberately bypassed.
		g.remember(op.Addr)
	}
	if op.Store {
		op.EssMask = g.patternFor(op.Addr &^ 63)
	}
}

// L2PoolRange returns the address range of the L2-resident reuse pool
// (for functional cache pre-warming).
func (g *Generator) L2PoolRange() (base uint64, lines int) {
	return g.poolBase, l2PoolLines
}

// LLCPoolRange returns the address range of the DRAM-cache-resident
// reuse pool.
func (g *Generator) LLCPoolRange() (base uint64, lines int) {
	return g.poolBase + l2PoolLines*64, llcPoolLines
}

// Shared returns the program's shared region (nil for multiprogrammed
// workloads).
func (g *Generator) Shared() *SharedRegion { return g.shared }

// nextStreamAddr walks the PCM-bound footprint: sequential with
// probability RowLocality, random jump otherwise.
func (g *Generator) nextStreamAddr() uint64 {
	if !g.rng.Bool(g.P.RowLocality) {
		g.memPtr = uint64(g.rng.Intn(int(g.P.FootprintLines)))
	}
	addr := g.base + (g.memPtr%g.P.FootprintLines)*64
	g.memPtr++
	return addr
}

// nextReuseAddr picks from the cache-resident pools (and, for MT
// programs, the shared hot set).
func (g *Generator) nextReuseAddr() uint64 {
	if g.shared != nil && g.rng.Bool(g.P.SharedFrac) {
		return g.shared.Base + uint64(g.rng.Intn(int(g.shared.Lines)))*64
	}
	total := g.P.L1Weight + g.P.L2Weight + g.P.LLCWeight
	x := g.rng.Float64() * total
	switch {
	case x < g.P.L1Weight && g.nRecent > 0:
		return g.recent[g.rng.Intn(g.nRecent)]
	case x < g.P.L1Weight+g.P.L2Weight:
		return g.poolBase + uint64(g.rng.Intn(l2PoolLines))*64
	default:
		return g.poolBase + (l2PoolLines+uint64(g.rng.Intn(llcPoolLines)))*64
	}
}

func (g *Generator) remember(addr uint64) {
	if g.nRecent < len(g.recent) {
		g.recent[g.nRecent] = addr
		g.nRecent++
		return
	}
	g.recent[g.rng.Intn(len(g.recent))] = addr
}

// patternFor returns the line's write pattern, sampling it on first
// touch: a dirty-word count from the Figure 2 distribution placed at a
// word offset that repeats the previous line's offset with probability
// SameOffsetCorr (Section IV-C2's observation).
func (g *Generator) patternFor(line uint64) uint8 {
	if m, ok := g.patterns[line]; ok {
		return m
	}
	k := g.rng.Pick(g.P.DirtyWordDist[:])
	base := g.lastOffset
	if !g.rng.Bool(g.P.SameOffsetCorr) {
		base = g.sampleOffset()
	}
	g.lastOffset = base
	var mask uint8
	for i := 0; i < k; i++ {
		mask |= 1 << uint((base+i)%8)
	}
	if len(g.patterns) >= 1<<16 {
		// Bounded memory; patterns re-sample. Clearing keeps the map's
		// grown bucket array instead of handing a 64K-entry allocation
		// to the GC every time the cap is hit.
		clear(g.patterns)
	}
	g.patterns[line] = mask
	return mask
}

// sampleOffset draws a pattern base offset from the profile's skewed
// distribution: P(k) ~ OffsetSkew^k (uniform when OffsetSkew >= 1 or
// unset).
func (g *Generator) sampleOffset() int {
	s := g.P.OffsetSkew
	if s <= 0 || s >= 1 {
		return g.rng.Intn(8)
	}
	var w [8]float64
	p := 1.0
	for i := range w {
		w[i] = p
		p *= s
	}
	return g.rng.Pick(w[:])
}

// NewSharedRegion places an MT program's shared hot set well above the
// private regions.
func NewSharedRegion() *SharedRegion {
	return &SharedRegion{Base: 7 << 30, Lines: sharedLines}
}
