package dimm

import (
	"testing"
	"testing/quick"
)

func TestLayoutNoRotation(t *testing.T) {
	l := Layout{}
	for idx := uint64(0); idx < 20; idx++ {
		for w := 0; w < 8; w++ {
			if got := l.DataChip(idx, w); got != w {
				t.Fatalf("line %d word %d -> chip %d, want %d", idx, w, got, w)
			}
		}
		if l.ECCChip(idx) != ECCSlot || l.PCCChip(idx) != PCCSlot {
			t.Fatalf("ECC/PCC must be fixed without rotation")
		}
	}
}

func TestLayoutDataRotation(t *testing.T) {
	l := Layout{RotateData: true}
	// Successive lines shift word 0 across the eight data chips
	// (Figure 6) and never touch the code chips.
	seen := map[int]bool{}
	for idx := uint64(0); idx < 8; idx++ {
		c := l.DataChip(idx, 0)
		if c >= 8 {
			t.Fatalf("data word on code chip %d", c)
		}
		seen[c] = true
		if l.ECCChip(idx) != ECCSlot || l.PCCChip(idx) != PCCSlot {
			t.Fatal("data rotation must not move ECC/PCC")
		}
	}
	if len(seen) != 8 {
		t.Fatalf("word 0 visited %d chips over 8 lines, want 8", len(seen))
	}
}

func TestLayoutECCRotationCoversAllChips(t *testing.T) {
	l := Layout{RotateECC: true}
	eccSeen := map[int]bool{}
	pccSeen := map[int]bool{}
	for idx := uint64(0); idx < 10; idx++ {
		eccSeen[l.ECCChip(idx)] = true
		pccSeen[l.PCCChip(idx)] = true
	}
	if len(eccSeen) != 10 || len(pccSeen) != 10 {
		t.Fatalf("rotation over 10 lines should visit all 10 chips: ecc=%d pcc=%d", len(eccSeen), len(pccSeen))
	}
}

func TestLayoutSlotsDisjoint(t *testing.T) {
	// Property: for any line and layout, the 8 data chips, the ECC chip
	// and the PCC chip are 10 distinct chips.
	if err := quick.Check(func(idx uint64, rd, re bool) bool {
		l := Layout{RotateData: rd, RotateECC: re}
		used := map[int]bool{}
		for w := 0; w < 8; w++ {
			used[l.DataChip(idx, w)] = true
		}
		used[l.ECCChip(idx)] = true
		used[l.PCCChip(idx)] = true
		return len(used) == 10
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordOnChipInverse(t *testing.T) {
	if err := quick.Check(func(idx uint64, w8 uint8, rd, re bool) bool {
		w := int(w8) % 8
		l := Layout{RotateData: rd, RotateECC: re}
		chip := l.DataChip(idx, w)
		return l.WordOnChip(idx, chip) == w
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordOnChipCodeChips(t *testing.T) {
	l := Layout{RotateECC: true}
	for idx := uint64(0); idx < 30; idx++ {
		if l.WordOnChip(idx, l.ECCChip(idx)) != -1 {
			t.Fatal("ECC chip must not hold a data word")
		}
		if l.WordOnChip(idx, l.PCCChip(idx)) != -1 {
			t.Fatal("PCC chip must not hold a data word")
		}
	}
}

func TestDataChipsMask(t *testing.T) {
	l := Layout{}
	if m := l.DataChips(0); m != 0xff {
		t.Fatalf("mask %#x, want 0xff", m)
	}
	l = Layout{RotateECC: true}
	for idx := uint64(0); idx < 10; idx++ {
		m := l.DataChips(idx)
		if popcount16(m) != 8 {
			t.Fatalf("line %d data mask %#x has wrong popcount", idx, m)
		}
		if m&(1<<uint(l.ECCChip(idx))) != 0 || m&(1<<uint(l.PCCChip(idx))) != 0 {
			t.Fatalf("line %d data mask overlaps code chips", idx)
		}
	}
}

func popcount16(x uint16) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestRankStatusFlags(t *testing.T) {
	r := NewRank(8, Layout{})
	if f := r.StatusFlags(0, 0); f != 0 {
		t.Fatalf("fresh rank busy flags %#x", f)
	}
	r.Chips[3].Reserve(0, 10, 100)
	r.Chips[9].Reserve(0, 10, 100)
	f := r.StatusFlags(0, 50)
	if f != (1<<3 | 1<<9) {
		t.Fatalf("flags %#x, want chips 3 and 9 busy", f)
	}
	if r.StatusFlags(1, 50) != 0 {
		t.Fatal("other banks must be unaffected")
	}
	if r.StatusFlags(0, 110) != 0 {
		t.Fatal("flags should clear after the reservation ends")
	}
	if !r.FreeForAll(1<<2|1<<4, 0, 50) {
		t.Fatal("chips 2 and 4 are free")
	}
	if r.FreeForAll(1<<3, 0, 50) {
		t.Fatal("chip 3 is busy")
	}
}

func TestBusyChipsAcrossBanks(t *testing.T) {
	r := NewRank(4, Layout{})
	r.Chips[1].Reserve(2, 0, 100)
	if m := r.BusyChips(50); m != 1<<1 {
		t.Fatalf("BusyChips = %#x", m)
	}
}
