// Package dimm models the PCMap DIMM of Section IV-D: a rank of ten x8
// PCM chips (eight data words, one SECDED ECC word, one PCC parity word
// per cache line), 8-way rank subsetting so each chip is independently
// addressable (Ahn et al. style buffered DIMM), and the DIMM register
// that demultiplexes commands and exposes per-bank chip busy/idle
// status flags that the controller polls with the Status command.
package dimm

import (
	"fmt"

	"pcmap/internal/obs"
	"pcmap/internal/pcm"
	"pcmap/internal/sim"
)

// Chip indices by conventional (non-rotated) role.
const (
	// ECCSlot is the layout slot holding the SECDED check bytes.
	ECCSlot = 8
	// PCCSlot is the layout slot holding the XOR parity word.
	PCCSlot = 9
	// Slots is the number of per-line slots and also chips per rank.
	Slots = 10
)

// Layout maps a cache line's ten slots (eight data words, ECC, PCC)
// onto the rank's ten chips, implementing the paper's two rotation
// schemes. The mapping is a pure function of the line index, so the
// controller needs no book-keeping state (Section IV-C2).
type Layout struct {
	// RotateData rotates the eight data words across the eight data
	// chips by lineIdx mod 8 (Figure 6). ECC and PCC stay on their
	// dedicated chips.
	RotateData bool
	// RotateECC rotates all ten slots across all ten chips by
	// lineIdx mod 10, spreading ECC/PCC updates like RAID-5 parity.
	// When set it subsumes data rotation.
	RotateECC bool
}

// DataChip returns the chip holding data word w (0..7) of the line.
func (l Layout) DataChip(lineIdx uint64, w int) int {
	switch {
	case l.RotateECC:
		return int((uint64(w) + lineIdx) % Slots)
	case l.RotateData:
		return int((uint64(w) + lineIdx) % 8)
	default:
		return w
	}
}

// ECCChip returns the chip holding the line's SECDED check bytes.
func (l Layout) ECCChip(lineIdx uint64) int {
	if l.RotateECC {
		return int((ECCSlot + lineIdx) % Slots)
	}
	return ECCSlot
}

// PCCChip returns the chip holding the line's PCC parity word.
func (l Layout) PCCChip(lineIdx uint64) int {
	if l.RotateECC {
		return int((PCCSlot + lineIdx) % Slots)
	}
	return PCCSlot
}

// DataChips returns the set of chips holding the line's eight data
// words as a bitmask over the rank's ten chips.
func (l Layout) DataChips(lineIdx uint64) uint16 {
	var m uint16
	for w := 0; w < 8; w++ {
		m |= 1 << uint(l.DataChip(lineIdx, w))
	}
	return m
}

// WordOnChip returns which data word of the line chip holds, or -1 if
// the chip holds the line's ECC or PCC word (or, without ECC rotation,
// is a dedicated code chip).
func (l Layout) WordOnChip(lineIdx uint64, chip int) int {
	for w := 0; w < 8; w++ {
		if l.DataChip(lineIdx, w) == chip {
			return w
		}
	}
	return -1
}

// Rank is one rank of a PCMap DIMM: ten chips plus the DIMM register.
type Rank struct {
	Chips  []*pcm.Chip
	Store  *pcm.Store
	Layout Layout
	banks  int
	parts  int
}

// NewRank builds a rank with the given bank count and layout, with
// monolithic (unpartitioned) banks.
func NewRank(banks int, layout Layout) *Rank {
	return NewRankParts(banks, 1, layout)
}

// NewRankParts builds a rank whose chips split every bank into parts
// independently schedulable partitions (PALP). parts <= 1 is identical
// to NewRank.
func NewRankParts(banks, parts int, layout Layout) *Rank {
	if parts < 1 {
		parts = 1
	}
	r := &Rank{Store: pcm.NewStore(), Layout: layout, banks: banks, parts: parts}
	for i := 0; i < Slots; i++ {
		r.Chips = append(r.Chips, pcm.NewChipParts(i, banks, parts))
	}
	return r
}

// Banks returns the number of banks per chip.
func (r *Rank) Banks() int { return r.banks }

// Partitions returns the partitions-per-bank count (1 = monolithic).
func (r *Rank) Partitions() int { return r.parts }

// Instrument attaches every chip-bank of the rank to timeline tracks
// grouped under "pcm chan<channel>". A nil tracer is a no-op.
func (r *Rank) Instrument(tr *obs.Tracer, channel int) {
	if tr == nil {
		return
	}
	process := fmt.Sprintf("pcm chan%d", channel)
	for _, c := range r.Chips {
		c.Instrument(tr, process)
	}
}

// StatusFlags implements the DIMM register's per-bank status word: bit
// i is set when chip i is busy in the given bank at time t. The memory
// controller obtains this by issuing the Status command (the polling
// cost is charged by the controller, not here).
func (r *Rank) StatusFlags(bank int, t sim.Time) uint16 {
	var m uint16
	for i, c := range r.Chips {
		if !c.FreeAt(bank, t) {
			m |= 1 << uint(i)
		}
	}
	return m
}

// BusyChips returns the status flags across all banks OR-ed together:
// bit i set when chip i is busy in any bank at time t.
func (r *Rank) BusyChips(t sim.Time) uint16 {
	var m uint16
	for i, c := range r.Chips {
		for b := 0; b < r.banks; b++ {
			if !c.FreeAt(b, t) {
				m |= 1 << uint(i)
				break
			}
		}
	}
	return m
}

// FreeForAll reports whether every chip in mask is idle in the given
// bank at time t.
func (r *Rank) FreeForAll(mask uint16, bank int, t sim.Time) bool {
	return r.StatusFlags(bank, t)&mask == 0
}

// TotalWordWrites sums the programming operations across chips, for
// wear-balance reporting (PCMap's rotation spreads writes; the
// Section IV-C2 lifetime argument).
func (r *Rank) TotalWordWrites() (total uint64, perChip []uint64) {
	perChip = make([]uint64, len(r.Chips))
	for i, c := range r.Chips {
		perChip[i] = c.WordWrites
		total += c.WordWrites
	}
	return total, perChip
}
