// Package cpu implements the processor side of the evaluation as an
// interval-model out-of-order core (the standard methodology for
// memory-system studies): a 192-instruction window, 4-wide issue and
// MSHR-limited memory-level parallelism. The model captures exactly
// the couplings the paper measures — PCM read latency stalling the
// window, PCM write throughput throttling eviction-blocked fills, and
// the cost of RoW verification rollbacks (Table IV).
package cpu

import (
	"fmt"

	"pcmap/internal/cache"
	"pcmap/internal/config"
	"pcmap/internal/obs"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
	"pcmap/internal/workloads"
)

// quantum bounds how far a core's local clock runs ahead of the global
// engine inside one scheduling event.
const quantum = 1000 * sim.CPUCycle

// load tracks one in-flight (or timed, not-yet-passed) load.
type load struct {
	seq  uint64   // instruction sequence number at issue
	done sim.Time // completion time; 0 while unknown (PCM fetch pending)
}

// Core is one interval-model core executing a workload stream.
type Core struct {
	ID   int
	eng  *sim.Engine
	cfg  config.Core
	hier *cache.Hierarchy
	gen  *workloads.Generator
	rng  *sim.RNG

	budget uint64 // instruction budget; a zero budget finishes immediately

	// stepTimer re-arms the scheduling loop; pre-binding step once
	// means the per-cycle wakeups on the hot path allocate nothing.
	stepTimer *sim.Timer
	// unstallFn is the pre-bound OnUnstall callback, for the same
	// reason: stall/retry cycles are hot in write-bound phases.
	unstallFn func()

	now     sim.Time // local clock, >= engine time when running
	instrs  uint64
	pending []load // in program order
	current *workloads.Op
	haveOp  bool

	waitingFill    bool // blocked on an unknown-latency PCM load
	waitingUnstall bool
	finished       bool
	onFinish       func()

	// Rollback model (Section IV-B3): each load completing at time t
	// commits at t + commitDelay; a faulty RoW verification arriving
	// after commit forces a rollback.
	commitMin      sim.Time
	commitMean     float64
	pendingPenalty sim.Time

	// Measurement window (reset after warmup).
	instrs0 uint64
	time0   sim.Time

	// Counters.
	Loads, Stores, Rollbacks, VerifiesSeen, FaultyVerifies uint64
	StallFillTime                                          sim.Time

	// Stall-cause accounting (observability layer): one episode per
	// stall, bucketed by what blocked issue. The buckets register into
	// the system stats registry under cpu.coreN.stall.* and, when a
	// tracer is attached, each episode also emits an instant on the
	// core's timeline track. Plain counter increments keep the
	// no-tracer hot path allocation-free.
	StallReadLatency  stats.Counter // window blocked on an unknown-latency PCM fill
	StallMSHRFull     stats.Counter // all data MSHRs in flight
	StallWriteQFull   stats.Counter // store rejected: write queue back-pressure
	StallBankConflict stats.Counter // load rejected below the caches

	trace                                            *obs.Tracer
	track                                            obs.TrackID
	nmReadLat, nmMSHRFull, nmWriteQFull, nmBankConfl obs.NameID
}

// NewCore builds a core running gen on hier.
func NewCore(eng *sim.Engine, cfg *config.Config, id int, hier *cache.Hierarchy, gen *workloads.Generator, rng *sim.RNG) *Core {
	c := &Core{
		ID:         id,
		eng:        eng,
		cfg:        cfg.Core,
		hier:       hier,
		gen:        gen,
		rng:        rng,
		commitMin:  100 * sim.CPUCycle,
		commitMean: float64((2000 * sim.CPUCycle).Ticks()),
	}
	c.stepTimer = eng.NewTimer(c.step)
	c.unstallFn = func() {
		c.waitingUnstall = false
		c.stepTimer.Schedule(0)
	}
	c.pending = make([]load, 0, cfg.Core.WindowSize)
	hier.SetVerifyHandler(id, c.onVerify)
	hier.SetFillHandler(id, c.fillArrived)
	return c
}

// Instrument registers the core's stall-cause counters into reg (under
// relative names stall.read_latency, stall.mshr_full,
// stall.writeq_full, stall.bank_conflict) and, when tr is non-nil,
// attaches a timeline track that receives one instant per stall
// episode. Call once, before Start.
func (c *Core) Instrument(tr *obs.Tracer, reg *stats.Registry) {
	if reg != nil {
		reg.Register("stall.read_latency", &c.StallReadLatency)
		reg.Register("stall.mshr_full", &c.StallMSHRFull)
		reg.Register("stall.writeq_full", &c.StallWriteQFull)
		reg.Register("stall.bank_conflict", &c.StallBankConflict)
	}
	if tr != nil {
		c.trace = tr
		c.track = tr.Track("cpu", fmt.Sprintf("core%d", c.ID))
		c.nmReadLat = tr.Name("stall.read_latency")
		c.nmMSHRFull = tr.Name("stall.mshr_full")
		c.nmWriteQFull = tr.Name("stall.writeq_full")
		c.nmBankConfl = tr.Name("stall.bank_conflict")
	}
}

// Start begins execution of up to budget instructions; onFinish runs
// when the budget is reached.
func (c *Core) Start(budget uint64, onFinish func()) {
	c.budget = budget
	c.onFinish = onFinish
	c.now = c.eng.Now()
	c.stepTimer.Schedule(0)
}

// Continue extends a finished core's budget by extra instructions
// (used to run the measurement phase after warmup).
func (c *Core) Continue(extra uint64, onFinish func()) {
	c.budget += extra
	c.finished = false
	c.onFinish = onFinish
	c.stepTimer.Schedule(0)
}

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.instrs }

// Finished reports whether the budget was consumed.
func (c *Core) Finished() bool { return c.finished }

// LocalTime returns the core's clock.
func (c *Core) LocalTime() sim.Time { return c.now }

// ResetWindow starts a fresh measurement window at the current state
// (drops warmup from IPC).
func (c *Core) ResetWindow() {
	c.instrs0 = c.instrs
	c.time0 = c.now
}

// IPC returns instructions per cycle over the measurement window.
func (c *Core) IPC() float64 {
	cycles := (c.now - c.time0).CPUCycles()
	if cycles <= 0 {
		return 0
	}
	return float64(c.instrs-c.instrs0) / cycles
}

// onVerify receives a deferred RoW verification outcome for a load
// that completed at loadDone.
func (c *Core) onVerify(faulty bool, loadDone sim.Time) {
	c.VerifiesSeen++
	if !faulty {
		return
	}
	c.FaultyVerifies++
	// Did the consuming load commit before the check? The commit point
	// trails completion by the window-drain delay (older instructions
	// retiring first — long in memory-bound phases, which is why the
	// paper sees only ~1.3% of RoW lines committed before the check).
	commitAt := loadDone + c.commitMin + sim.Time(c.rng.Exp(c.commitMean))
	if commitAt < c.eng.Now() {
		// Committed with bad data: squash and re-execute from the
		// faulting load (Section IV-B3).
		c.Rollbacks++
		c.pendingPenalty += sim.CPUCycle.Times(c.cfg.RollbackPen) + (c.eng.Now() - commitAt)
	}
	// Not yet committed: the controller resends corrected data before
	// the CPU uses it; no cost.
}

// step is the core's scheduling loop: process operations, advancing
// the local clock, until blocked or a quantum boundary.
func (c *Core) step() {
	if c.finished {
		return
	}
	if c.now < c.eng.Now() {
		c.now = c.eng.Now()
	}
	if c.pendingPenalty > 0 {
		c.now += c.pendingPenalty
		c.pendingPenalty = 0
	}
	deadline := c.eng.Now() + quantum
	for c.now < deadline {
		if c.instrs >= c.budget {
			c.finish()
			return
		}
		if !c.haveOp {
			if c.current == nil {
				c.current = new(workloads.Op)
			}
			c.gen.Next(c.current)
			c.haveOp = true
			// The gap instructions execute at the base CPI.
			c.instrs += uint64(c.current.Gap)
			c.now += sim.CPUCycle.Scale(float64(c.current.Gap) * c.gen.P.BaseCPI)
		}
		c.retireCompleted()
		// Window limit: cannot run more than WindowSize instructions
		// past the oldest incomplete load.
		if !c.advancePastWindow() {
			return // waiting on a PCM fill
		}
		// MSHR limit.
		if !c.advancePastMSHR() {
			return
		}
		op := c.current
		if op.Store {
			if !c.doStore(op) {
				return // stalled; OnUnstall resumes
			}
			c.Stores++
		} else {
			if !c.doLoad(op) {
				return
			}
			c.Loads++
		}
		// The memory instruction itself occupies an issue slot.
		c.instrs++
		c.now += sim.CPUCycle / sim.Time(c.cfg.IssueWidth)
		c.haveOp = false
	}
	// Quantum boundary: yield to the rest of the system.
	c.stepTimer.At(c.now)
}

// retireCompleted drops loads whose completion time has passed.
func (c *Core) retireCompleted() {
	i := 0
	for _, l := range c.pending {
		if l.done != 0 && l.done <= c.now {
			continue
		}
		c.pending[i] = l
		i++
	}
	c.pending = c.pending[:i]
}

// advancePastWindow enforces the reorder window. It returns false when
// the core must sleep for a PCM fill (resumed by callback).
func (c *Core) advancePastWindow() bool {
	for len(c.pending) > 0 && c.instrs >= c.pending[0].seq+uint64(c.cfg.WindowSize) {
		head := c.pending[0]
		if head.done == 0 {
			// Unknown completion: a PCM fetch. Sleep.
			c.waitingFill = true
			c.StallReadLatency.Inc()
			c.trace.Instant(c.track, c.nmReadLat, c.now)
			return false
		}
		if head.done > c.now {
			c.StallFillTime += head.done - c.now
			c.now = head.done
		}
		c.retireCompleted()
	}
	return true
}

// advancePastMSHR enforces the outstanding-load limit.
func (c *Core) advancePastMSHR() bool {
	stalled := false
	for c.outstanding() >= c.cfg.DataMSHRs {
		if !stalled {
			// Count one episode however many completions it takes to
			// free an MSHR.
			stalled = true
			c.StallMSHRFull.Inc()
			c.trace.Instant(c.track, c.nmMSHRFull, c.now)
		}
		// Wait for the earliest known completion; if none is known,
		// sleep for a fill.
		var earliest sim.Time
		for _, l := range c.pending {
			if l.done != 0 && (earliest == 0 || l.done < earliest) {
				earliest = l.done
			}
		}
		if earliest == 0 {
			c.waitingFill = true
			return false
		}
		if earliest > c.now {
			c.now = earliest
		}
		c.retireCompleted()
	}
	return true
}

func (c *Core) outstanding() int {
	n := 0
	for _, l := range c.pending {
		if l.done == 0 || l.done > c.now {
			n++
		}
	}
	return n
}

// doLoad issues a load; false means stalled (retry via OnUnstall).
func (c *Core) doLoad(op *workloads.Op) bool {
	entrySeq := c.instrs
	res, lat := c.hier.Load(c.ID, op.Addr, op.NonTemporal, entrySeq)
	switch res {
	case cache.HitL1:
		// Covered by issue width; no window entry needed.
		return true
	case cache.HitL2, cache.HitLLC:
		c.pending = append(c.pending, load{seq: entrySeq, done: c.now + lat})
		return true
	case cache.GoesToMemory:
		c.pending = append(c.pending, load{seq: entrySeq, done: 0})
		return true
	case cache.Stalled:
		c.StallBankConflict.Inc()
		c.trace.Instant(c.track, c.nmBankConfl, c.now)
		c.waitUnstall()
		return false
	default:
		panic(fmt.Sprintf("cpu: unexpected load result %v", res))
	}
}

// fillArrived marks the matching pending load complete and wakes the
// core if it slept on the fill.
func (c *Core) fillArrived(seq uint64) {
	c.markDone(seq, c.eng.Now())
	if c.waitingFill {
		c.waitingFill = false
		c.stepTimer.Schedule(0)
	}
}

func (c *Core) markDone(seq uint64, t sim.Time) {
	for i := range c.pending {
		if c.pending[i].seq == seq && c.pending[i].done == 0 {
			c.pending[i].done = t
			return
		}
	}
}

// doStore issues a store; false means stalled.
func (c *Core) doStore(op *workloads.Op) bool {
	res := c.hier.Store(c.ID, op.Addr, op.EssMask, op.NonTemporal)
	if res == cache.Stalled {
		c.StallWriteQFull.Inc()
		c.trace.Instant(c.track, c.nmWriteQFull, c.now)
		c.waitUnstall()
		return false
	}
	// Stores retire through the store buffer; no window entry.
	return true
}

func (c *Core) waitUnstall() {
	if c.waitingUnstall {
		return
	}
	c.waitingUnstall = true
	c.hier.OnUnstall(c.unstallFn)
}

func (c *Core) finish() {
	c.finished = true
	if c.onFinish != nil {
		c.onFinish()
	}
}
