package cpu

import (
	"testing"

	"pcmap/internal/cache"
	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/sim"
	"pcmap/internal/workloads"
)

func buildOne(t *testing.T, profile string, cfg *config.Config) (*sim.Engine, *Core, *cache.Hierarchy) {
	t.Helper()
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := cache.NewHierarchy(eng, cfg, m)
	p := workloads.MustByName(profile)
	gen := workloads.NewGenerator(p, 0, sim.NewRNG(1), nil)
	c := NewCore(eng, cfg, 0, h, gen, sim.NewRNG(2))
	return eng, c, h
}

func TestCoreReachesBudget(t *testing.T) {
	cfg := config.Default()
	eng, c, _ := buildOne(t, "astar", cfg)
	finished := false
	c.Start(50_000, func() { finished = true })
	eng.Run()
	if !finished || !c.Finished() {
		t.Fatal("core never finished its budget")
	}
	if c.Instructions() < 50_000 {
		t.Fatalf("retired %d instructions, want >= 50000", c.Instructions())
	}
	if c.Loads == 0 || c.Stores == 0 {
		t.Fatalf("no memory activity: loads=%d stores=%d", c.Loads, c.Stores)
	}
}

func TestCoreIPCBounded(t *testing.T) {
	cfg := config.Default()
	eng, c, _ := buildOne(t, "gromacs", cfg)
	c.Start(50_000, nil)
	eng.Run()
	ipc := c.IPC()
	if ipc <= 0 {
		t.Fatalf("IPC %v not positive", ipc)
	}
	// Cannot beat the blend of gap instructions at BaseCPI and memory
	// instructions at one issue slot each.
	p := workloads.MustByName("gromacs")
	gap := (1000 - p.MemOpsPerKI) / p.MemOpsPerKI
	minCPI := (gap*p.BaseCPI + 1/float64(cfg.Core.IssueWidth)) / (gap + 1)
	if ipc > 1/minCPI+0.01 {
		t.Fatalf("IPC %.3f exceeds the %.3f bound", ipc, 1/minCPI)
	}
}

func TestMemoryIntensityLowersIPC(t *testing.T) {
	run := func(profile string) float64 {
		cfg := config.Default()
		eng, c, _ := buildOne(t, profile, cfg)
		c.Start(60_000, nil)
		eng.Run()
		return c.IPC()
	}
	light := run("swaptions") // RPKI 0.4
	heavy := run("canneal")   // RPKI 15.19
	if heavy >= light {
		t.Fatalf("memory-bound canneal IPC %.3f should be below swaptions %.3f", heavy, light)
	}
}

func TestContinueExtendsBudget(t *testing.T) {
	cfg := config.Default()
	eng, c, _ := buildOne(t, "astar", cfg)
	c.Start(10_000, nil)
	eng.Run()
	first := c.Instructions()
	c.Continue(10_000, nil)
	eng.Run()
	if c.Instructions() <= first {
		t.Fatal("Continue did not extend execution")
	}
}

func TestResetWindowIsolatesMeasurement(t *testing.T) {
	cfg := config.Default()
	eng, c, _ := buildOne(t, "astar", cfg)
	c.Start(20_000, nil)
	eng.Run()
	c.ResetWindow()
	if got := c.IPC(); got != 0 {
		t.Fatalf("IPC right after reset should be 0, got %v", got)
	}
	c.Continue(20_000, nil)
	eng.Run()
	if c.IPC() <= 0 {
		t.Fatal("post-reset IPC not measured")
	}
}

func TestFasterMemoryRaisesIPC(t *testing.T) {
	run := func(v config.Variant) float64 {
		cfg := config.Default().WithVariant(v)
		eng := sim.NewEngine()
		m, err := core.NewMemory(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := cache.NewHierarchy(eng, cfg, m)
		p := workloads.MustByName("canneal")
		var cores []*Core
		for i := 0; i < cfg.Cores; i++ {
			gen := workloads.NewGenerator(p, i, sim.NewRNG(uint64(i+1)), nil)
			cores = append(cores, NewCore(eng, cfg, i, h, gen, sim.NewRNG(uint64(100+i))))
		}
		for _, c := range cores {
			c.Start(20_000, nil)
		}
		eng.Run()
		var sum float64
		for _, c := range cores {
			sum += c.IPC()
		}
		return sum
	}
	base := run(config.Baseline)
	pcmap := run(config.RWoWRDE)
	if pcmap <= base {
		t.Fatalf("PCMap IPC %.3f should beat baseline %.3f on canneal", pcmap, base)
	}
}

func TestRollbackModelAlwaysFaulty(t *testing.T) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	cfg.Memory.FaultMode = "always"
	eng, c, _ := buildOne(t, "canneal", cfg)
	c.Start(120_000, nil)
	eng.Run()
	if c.VerifiesSeen == 0 {
		t.Skip("no RoW-served loads in this run")
	}
	if c.FaultyVerifies != c.VerifiesSeen {
		t.Fatalf("always-faulty mode: %d faulty of %d", c.FaultyVerifies, c.VerifiesSeen)
	}
	// Rollbacks happen only for loads committed before the check — a
	// small minority (the paper measures at most 5.8%).
	if c.Rollbacks > c.VerifiesSeen/2 {
		t.Fatalf("implausibly many rollbacks: %d of %d", c.Rollbacks, c.VerifiesSeen)
	}
}

func TestNoVerifiesWithoutRoW(t *testing.T) {
	cfg := config.Default() // baseline
	eng, c, _ := buildOne(t, "canneal", cfg)
	c.Start(60_000, nil)
	eng.Run()
	if c.VerifiesSeen != 0 || c.Rollbacks != 0 {
		t.Fatalf("baseline must not see RoW verifications (%d) or rollbacks (%d)",
			c.VerifiesSeen, c.Rollbacks)
	}
}
