// Package cli is the shared flag vocabulary of the pcmap command-line
// tools. A concept that appears in more than one binary — the workload
// mix, the system variant, the simulation seed, a tool's main input or
// output file — must be spelled the same way everywhere, so each such
// flag has exactly one constructor here. Commands define their flags
// through these constructors and pin the resulting surface with a
// TestFlagSurface regression test (see Surface), which turns a rename
// or a drive-by addition into a visible test diff instead of a silent
// interface change.
package cli

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"pcmap/internal/config"
)

// Workload defines the canonical -workload flag selecting the workload
// mix to simulate (Table II names; see internal/workloads).
func Workload(fs *flag.FlagSet, def string) *string {
	return fs.String("workload", def, "workload mix to simulate (e.g. MP4, stream, canneal)")
}

// Variant defines the canonical -variant flag selecting the system
// variant. The help text lists the registry's names, so a newly
// registered variant shows up in every tool's -help without edits.
func Variant(fs *flag.FlagSet, def string) *string {
	return fs.String("variant", def,
		"system variant ("+strings.Join(config.VariantNames(), ", ")+")")
}

// ListVariants defines the canonical -list-variants flag: print the
// variant registry (names and capability sets) and exit.
func ListVariants(fs *flag.FlagSet) *bool {
	return fs.Bool("list-variants", false, "list the registered system variants and exit")
}

// PrintVariants renders the variant registry, one line per variant:
// the canonical -variant name followed by its capability summary.
func PrintVariants() string {
	var b strings.Builder
	for _, v := range config.AllVariants {
		fmt.Fprintf(&b, "%-9s %s\n", v, v.Features().Summary())
	}
	return b.String()
}

// Seed defines the canonical -seed flag overriding the simulation's
// base random seed. Commands that treat 0 as "keep the config default"
// say so in their own documentation.
func Seed(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("seed", def, "simulation seed (0 = config default)")
}

// Shards defines the canonical -shards flag selecting how many
// goroutines a simulation is sharded across at the memory-channel
// boundary (see internal/pdes). 1 is the classic single-threaded
// engine; any value produces bit-identical outputs.
func Shards(fs *flag.FlagSet) *int {
	return fs.Int("shards", 1, "shard each simulation across N goroutines at the channel boundary (outputs are bit-identical)")
}

// Timeout defines the canonical -timeout flag bounding how long a
// command may run. The value is plumbed as a context deadline: work
// stops cooperatively (simulations halt between engine events) and the
// command reports a timeout error. 0 means no deadline.
func Timeout(fs *flag.FlagSet, def time.Duration) *time.Duration {
	return fs.Duration("timeout", def, "abort after this long, e.g. 30s or 5m (0 = no deadline)")
}

// In defines the canonical -in flag naming a tool's input file. The
// help string states what the file is, since that differs per tool.
func In(fs *flag.FlagSet, def, help string) *string {
	return fs.String("in", def, help)
}

// Out defines the canonical -out flag naming a tool's output file.
func Out(fs *flag.FlagSet, def, help string) *string {
	return fs.String("out", def, help)
}

// Surface returns the sorted names of every flag defined on fs. Flag-
// surface regression tests compare it against a literal list: the list
// in the test is the reviewed interface of the command.
func Surface(fs *flag.FlagSet) []string {
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	return names
}
