package cli

import (
	"flag"
	"reflect"
	"testing"
)

// TestCanonicalNames pins the vocabulary itself: each constructor must
// define exactly the flag name it is the canonical source of.
func TestCanonicalNames(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	Workload(fs, "MP4")
	Variant(fs, "Baseline")
	Seed(fs, 0)
	In(fs, "a", "input")
	Out(fs, "b", "output")
	want := []string{"in", "out", "seed", "variant", "workload"}
	if got := Surface(fs); !reflect.DeepEqual(got, want) {
		t.Errorf("vocabulary changed:\n got %v\nwant %v", got, want)
	}
}

func TestDefaultsRespected(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	w := Workload(fs, "canneal")
	s := Seed(fs, 7)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *w != "canneal" || *s != 7 {
		t.Errorf("defaults not respected: workload=%q seed=%d", *w, *s)
	}
}
