// Package trace records and replays PCM-level memory request streams.
// A trace captures what the cache hierarchy emitted toward main memory
// — reads and masked write-backs with timestamps — so controller
// variants can be compared on identical request sequences (open-loop),
// complementing the closed-loop full-system runs.
//
// The binary format is a 16-byte magic header followed by fixed
// 24-byte little-endian records.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pcmap/internal/core"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// Record is one traced request.
type Record struct {
	At   sim.Time // arrival time
	Addr uint64   // line-aligned physical address
	Kind mem.Kind
	Mask uint8 // essential-word mask (writes)
	Core int8
}

var magic = [16]byte{'P', 'C', 'M', 'A', 'P', '-', 'T', 'R', 'A', 'C', 'E', '-', 'v', '1', 0, 0}

const recordBytes = 24

// Writer streams records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	wrote bool
}

// NewWriter returns a trace writer (header written lazily).
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (t *Writer) Write(r Record) error {
	if !t.wrote {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.wrote = true
	}
	var buf [recordBytes]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.At.Ticks()))
	binary.LittleEndian.PutUint64(buf[8:], r.Addr)
	buf[16] = byte(r.Kind)
	buf[17] = r.Mask
	buf[18] = byte(r.Core)
	if _, err := t.w.Write(buf[:]); err != nil {
		return err
	}
	t.n++
	return nil
}

// Count returns how many records were written.
func (t *Writer) Count() uint64 { return t.n }

// Flush flushes buffered records; call before closing the underlying
// writer.
func (t *Writer) Flush() error {
	if !t.wrote {
		if _, err := t.w.Write(magic[:]); err != nil {
			return err
		}
		t.wrote = true
	}
	return t.w.Flush()
}

// Reader streams records from an io.Reader.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader returns a trace reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Read returns the next record; io.EOF at the end.
func (t *Reader) Read() (Record, error) {
	if !t.header {
		var h [16]byte
		if _, err := io.ReadFull(t.r, h[:]); err != nil {
			return Record{}, fmt.Errorf("trace: reading header: %w", err)
		}
		if h != magic {
			return Record{}, errors.New("trace: bad magic (not a PCMap trace)")
		}
		t.header = true
	}
	var buf [recordBytes]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	return Record{
		At:   sim.Time(binary.LittleEndian.Uint64(buf[0:])),
		Addr: binary.LittleEndian.Uint64(buf[8:]),
		Kind: mem.Kind(buf[16]),
		Mask: buf[17],
		Core: int8(buf[18]),
	}, nil
}

// ReadAll drains the reader.
func (t *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := t.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
}

// Attach records every request submitted to memory into w. It returns
// a detach function.
func Attach(memory *core.Memory, w *Writer) (detach func()) {
	prev := memory.OnSubmit
	memory.OnSubmit = func(r *mem.Request) {
		_ = w.Write(Record{At: memory.Eng.Now(), Addr: r.Addr, Kind: r.Kind, Mask: r.Mask, Core: int8(r.Core)})
		if prev != nil {
			prev(r)
		}
	}
	return func() { memory.OnSubmit = prev }
}

// ReplayStats summarizes a replay.
type ReplayStats struct {
	Submitted uint64
	Completed uint64
	Deferred  uint64 // submissions delayed by a full queue
}

// Replay feeds records into memory at their recorded timestamps
// (open-loop); full queues defer a record until space frees, shifting
// it later in time. Run the engine to completion afterwards; stats are
// final once the engine drains.
func Replay(eng *sim.Engine, memory *core.Memory, records []Record) *ReplayStats {
	st := &ReplayStats{}
	base := eng.Now()
	for i := range records {
		rec := records[i]
		req := &mem.Request{
			Kind: rec.Kind,
			Addr: rec.Addr,
			Mask: rec.Mask,
			Core: int(rec.Core),
			OnDone: func(*mem.Request) {
				st.Completed++
			},
		}
		var submit func()
		submit = func() {
			if memory.Submit(req) {
				st.Submitted++
				return
			}
			st.Deferred++
			memory.OnSpace(req.Kind, req.Addr, submit)
		}
		eng.At(base+rec.At, submit)
	}
	return st
}
