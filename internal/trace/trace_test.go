package trace

import (
	"bytes"
	"io"
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

func sampleRecords(n int) []Record {
	rng := sim.NewRNG(1)
	out := make([]Record, n)
	for i := range out {
		kind := mem.Read
		var mask uint8
		if rng.Bool(0.5) {
			kind = mem.Write
			mask = uint8(rng.Uint64())
		}
		out[i] = Record{
			At:   sim.NS(20).Times(i),
			Addr: uint64(rng.Intn(1<<20)) * 64,
			Kind: kind,
			Mask: mask,
			Core: int8(rng.Intn(8)),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	recs := sampleRecords(500)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("count %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	buf := bytes.NewBufferString("this is not a trace file at all")
	if _, err := NewReader(buf).Read(); err == nil {
		t.Fatal("bad magic should error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(sampleRecords(1)[0])
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated record should be a hard error, got %v", err)
	}
}

func TestEmptyTraceReadsEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Flush() // header only
	if _, err := NewReader(&buf).Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestAttachRecordsSubmissions(t *testing.T) {
	cfg := config.Default()
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	detach := Attach(m, w)
	m.Submit(&mem.Request{Kind: mem.Write, Addr: 0x40, Mask: 3})
	m.Submit(&mem.Request{Kind: mem.Read, Addr: 0x80})
	eng.Run()
	detach()
	m.Submit(&mem.Request{Kind: mem.Read, Addr: 0xc0})
	eng.Run()
	w.Flush()
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recorded %d, want 2 (detach must stop recording)", len(got))
	}
	if got[0].Kind != mem.Write || got[0].Mask != 3 || got[1].Kind != mem.Read {
		t.Fatalf("records wrong: %+v", got)
	}
}

func TestReplayCompletesAll(t *testing.T) {
	recs := sampleRecords(300)
	cfg := config.Default().WithVariant(config.RWoWRDE)
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Replay(eng, m, recs)
	eng.Run()
	if st.Submitted != 300 || st.Completed != 300 {
		t.Fatalf("submitted=%d completed=%d, want 300/300", st.Submitted, st.Completed)
	}
}

func TestReplayIsVariantComparable(t *testing.T) {
	// The whole point of the trace tool: identical request streams,
	// different controllers — PCMap should finish the writes sooner.
	recs := make([]Record, 0, 1200)
	rng := sim.NewRNG(9)
	for i := 0; i < 1200; i++ {
		kind := mem.Write
		mask := uint8(1) << uint(rng.Intn(8))
		if i%4 == 0 {
			kind = mem.Read
			mask = 0
		}
		recs = append(recs, Record{
			At:   sim.NS(14).Times(i),
			Addr: uint64(rng.Intn(1<<16)) * 64,
			Kind: kind,
			Mask: mask,
		})
	}
	measure := func(v config.Variant) (readNS, writeNS float64) {
		cfg := config.Default().WithVariant(v)
		eng := sim.NewEngine()
		m, err := core.NewMemory(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		Replay(eng, m, recs)
		eng.Run()
		met := m.Metrics()
		return met.ReadLatency.MeanNS(), met.WriteLatency.MeanNS()
	}
	baseR, baseW := measure(config.Baseline)
	pcmR, pcmW := measure(config.RWoWRDE)
	// On a saturated stream PCMap's win is read service during writes:
	// reads must improve dramatically without writes degrading much.
	if pcmR >= baseR/2 {
		t.Fatalf("PCMap read latency %.1fns should be far below baseline %.1fns", pcmR, baseR)
	}
	if pcmW > baseW*1.25 {
		t.Fatalf("PCMap write latency %.1fns degraded too far from baseline %.1fns", pcmW, baseW)
	}
}
