// Package system assembles the full simulated machine of Table I —
// cores, cache hierarchy, NoC, directory, and PCM main memory — and
// runs workload mixes on it with a warmup/measure protocol.
package system

import (
	"context"
	"fmt"

	"pcmap/internal/cache"
	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/cpu"
	"pcmap/internal/energy"
	"pcmap/internal/mem"
	"pcmap/internal/obs"
	"pcmap/internal/pdes"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
	"pcmap/internal/workloads"
)

// System is one fully assembled machine.
type System struct {
	Eng   *sim.Engine
	Cfg   *config.Config
	Mem   *core.Memory
	Hier  *cache.Hierarchy
	Cores []*cpu.Core
	Mix   workloads.Mix

	// Stats is the system-wide counter registry: every component's
	// counters live under a dotted subtree (mem.chan0.reads,
	// cpu.core3.stall.mshr_full, ...). Populated by New.
	Stats *stats.Registry
	// Tracer is the attached timeline tracer, nil when tracing is off.
	Tracer *obs.Tracer

	// Shards is the PDES shard count (1 = classic single-threaded
	// engine). With Shards > 1 each group of memory channels scheduled
	// on one of ShardEngs runs on its own goroutine, coordinated by
	// PDES; outputs are bit-identical to the single-threaded run.
	Shards    int
	PDES      *pdes.Runtime
	ShardEngs []*sim.Engine
}

// Build constructs a machine for cfg running the named workload mix.
// It is the positional-argument compatibility wrapper over New.
func Build(cfg *config.Config, mixName string) (*System, error) {
	return New(WithConfig(cfg), WithWorkload(mixName))
}

// assemble builds the machine proper: engine, memory, hierarchy, cores,
// generators, prewarm. Instrumentation is layered on afterwards by New.
// shards > 1 partitions the memory channels round-robin across private
// shard engines driven by the PDES runtime; everything else (including
// every RNG fork order) is constructed identically, so enabling
// sharding perturbs no randomness stream.
func assemble(cfg *config.Config, mix workloads.Mix, shards int) (*System, error) {
	if shards < 1 {
		shards = 1
	}
	eng := sim.NewEngine()
	var shardEngs []*sim.Engine
	var chanEng []*sim.Engine
	if shards > 1 {
		for i := 0; i < shards; i++ {
			shardEngs = append(shardEngs, sim.NewEngine())
		}
		chanEng = make([]*sim.Engine, cfg.Memory.Channels)
		for ch := range chanEng {
			chanEng[ch] = shardEngs[ch%shards]
		}
	}
	memory, err := core.NewMemorySharded(eng, chanEng, cfg)
	if err != nil {
		return nil, err
	}
	hier := cache.NewHierarchy(eng, cfg, memory)
	s := &System{Eng: eng, Cfg: cfg, Mem: memory, Hier: hier, Mix: mix,
		Shards: shards, ShardEngs: shardEngs}
	if shards > 1 {
		var pshards []*pdes.Shard
		for i, se := range shardEngs {
			var ctrls []*core.Controller
			for ch, ctrl := range memory.Ctrls {
				if ch%shards == i {
					ctrls = append(ctrls, ctrl)
				}
			}
			pshards = append(pshards, &pdes.Shard{Eng: se, Horizon: shardHorizon(ctrls)})
		}
		s.PDES = pdes.New(eng, pshards)
		memory.SetShardRuntime(s.PDES, func(ch int) int { return ch % shards })
	}

	var shared *workloads.SharedRegion
	if mix.Multithreaded {
		shared = workloads.NewSharedRegion()
	}
	rng := sim.NewRNG(cfg.Seed ^ 0x5eedbeef00c0ffee)
	var gens []*workloads.Generator
	for i, pname := range mix.PerCore {
		p := workloads.MustByName(pname)
		gen := workloads.NewGenerator(p, i, rng.Fork(), shared)
		gens = append(gens, gen)
		s.Cores = append(s.Cores, cpu.NewCore(eng, cfg, i, hier, gen, rng.Fork()))
	}
	prewarm(hier, gens, shared)
	return s, nil
}

// shardHorizon folds the shard's controllers' post horizons into the
// single lookahead bound the PDES coordinator consumes: the earliest
// front-end post any channel on the shard could emit.
func shardHorizon(ctrls []*core.Controller) func(next sim.Time) sim.Time {
	return func(next sim.Time) sim.Time {
		h := ctrls[0].PostHorizon(next)
		for _, c := range ctrls[1:] {
			if hh := c.PostHorizon(next); hh < h {
				h = hh
			}
		}
		return h
	}
}

// prewarm functionally installs the workloads' cache-resident reuse
// pools (DESIGN.md: stands in for the paper's 200M-instruction warmup).
func prewarm(hier *cache.Hierarchy, gens []*workloads.Generator, shared *workloads.SharedRegion) {
	for _, g := range gens {
		base, lines := g.LLCPoolRange()
		for i := 0; i < lines; i++ {
			hier.PrewarmLLC(base + uint64(i)*64)
		}
		base, lines = g.L2PoolRange()
		for i := 0; i < lines; i++ {
			hier.PrewarmL2(base + uint64(i)*64)
		}
	}
	if shared != nil {
		for i := uint64(0); i < shared.Lines; i++ {
			hier.PrewarmLLC(shared.Base + i*64)
		}
	}
}

// Results carries everything the experiment harness reports for one run.
type Results struct {
	Workload string
	Variant  config.Variant

	IPCPerCore []float64
	IPCSum     float64

	Mem     *mem.Metrics
	IRLPAvg float64
	IRLPMax int
	WearCV  float64

	Instructions uint64
	RPKI, WPKI   float64

	// Events is the number of engine events executed by this run
	// (warmup and measurement), the denominator of the harness's
	// events/sec throughput reporting.
	Events uint64

	Rollbacks, RoWVerifies uint64
	MaxRollbackPct         float64 // rollbacks / RoW reads (Table IV's "% of max rollbacks")

	L2MissRatio, LLCMissRatio float64

	// InjectedStuck and InjectedDrift count the fault model's injected
	// errors over the whole run (injection state is cumulative, unlike
	// the windowed metrics); zero when fault injection is off.
	InjectedStuck, InjectedDrift uint64

	// Energy is the measured-phase PCM energy breakdown (rendered).
	Energy string
}

// Release returns the system's pooled resources — the cache levels'
// slab-backed state arrays — for reuse by the next System of the same
// geometry. Call it once after the final Run; the system must not be
// used afterwards. Sweeps that build many systems sequentially (the
// figure experiments, benchmarks) recycle tens of MB per run this way.
func (s *System) Release() {
	if s.Hier != nil {
		s.Hier.Release()
		s.Hier = nil
	}
}

// Run executes warmup instructions per core, resets statistics, then
// runs measure instructions per core and collects results. It returns
// an error if the simulation wedges (requests or cores stuck).
func (s *System) Run(warmup, measure uint64) (*Results, error) {
	return s.RunCtx(context.Background(), warmup, measure)
}

// cancelCheckInterval is how many engine events execute between
// context-cancellation checks in RunCtx. Checking is off the hot path
// (one ctx.Err() per interval), and an interval this small still bounds
// the latency of honoring a deadline to well under a millisecond of
// wall time at the engine's measured event rates.
const cancelCheckInterval = 8192

// RunCtx is Run with cooperative cancellation: when ctx carries a
// deadline or is cancelled, the simulation stops between events (every
// cancelCheckInterval steps) and returns ctx's error. A background
// context takes the exact same single-call engine path as Run, so
// uncancelled runs stay bit-identical. A cancelled run returns no
// Results — partial simulation state is not a meaningful measurement.
func (s *System) RunCtx(ctx context.Context, warmup, measure uint64) (*Results, error) {
	steps0 := s.totalSteps()
	posts0 := s.postCount()
	if err := s.runPhase(ctx, warmup); err != nil {
		return nil, fmt.Errorf("system: warmup: %w", err)
	}
	s.Mem.ResetMetrics()
	var instr0 uint64
	for _, c := range s.Cores {
		c.ResetWindow()
		instr0 += c.Instructions()
	}
	roll0, ver0 := s.rollbackCounts()
	if err := s.continuePhase(ctx, measure); err != nil {
		return nil, fmt.Errorf("system: measure: %w", err)
	}

	r := &Results{Workload: s.Mix.Name, Variant: s.Cfg.Variant}
	for _, c := range s.Cores {
		ipc := c.IPC()
		r.IPCPerCore = append(r.IPCPerCore, ipc)
		r.IPCSum += ipc
		r.Instructions += c.Instructions()
	}
	r.Instructions -= instr0
	r.Mem = s.Mem.Metrics()
	r.IRLPAvg, r.IRLPMax = s.Mem.IRLP()
	r.WearCV = s.Mem.WearImbalance()
	if r.Instructions > 0 {
		ki := float64(r.Instructions) / 1000
		r.RPKI = float64(r.Mem.Reads.Value()) / ki
		r.WPKI = float64(r.Mem.Writes.Value()) / ki
	}
	roll1, ver1 := s.rollbackCounts()
	r.Rollbacks = roll1 - roll0
	r.RoWVerifies = ver1 - ver0
	if r.RoWVerifies > 0 {
		r.MaxRollbackPct = float64(r.Rollbacks) / float64(r.RoWVerifies)
	}
	r.L2MissRatio = s.Hier.L2.MissRatio()
	r.LLCMissRatio = s.Hier.LLC.MissRatio()
	r.InjectedStuck, r.InjectedDrift = s.Mem.FaultCounts()
	// Every cross-shard post is one extra front-end event the sequential
	// run performs inline; subtracting restores an event count equal to
	// the single-threaded run's.
	r.Events = s.totalSteps() - steps0 - (s.postCount() - posts0)
	r.Energy = s.Mem.Energy(energy.Default()).String()
	return r, nil
}

// totalSteps sums executed events across the front-end and all shard
// engines.
func (s *System) totalSteps() uint64 {
	n := s.Eng.Steps()
	for _, e := range s.ShardEngs {
		n += e.Steps()
	}
	return n
}

// postCount reports the cumulative cross-shard messages merged so far
// (zero on the single-threaded path).
func (s *System) postCount() uint64 {
	if s.PDES == nil {
		return 0
	}
	return s.PDES.Posts()
}

func (s *System) rollbackCounts() (rollbacks, verifies uint64) {
	for _, c := range s.Cores {
		rollbacks += c.Rollbacks
		verifies += c.VerifiesSeen
	}
	return
}

func (s *System) runPhase(ctx context.Context, budget uint64) error {
	remaining := len(s.Cores)
	for _, c := range s.Cores {
		c.Start(budget, func() { remaining-- })
	}
	if err := s.runEngine(ctx); err != nil {
		return err
	}
	if remaining != 0 {
		return fmt.Errorf("%d cores wedged (deadlock?)", remaining)
	}
	return nil
}

func (s *System) continuePhase(ctx context.Context, extra uint64) error {
	remaining := len(s.Cores)
	for _, c := range s.Cores {
		c.Continue(extra, func() { remaining-- })
	}
	if err := s.runEngine(ctx); err != nil {
		return err
	}
	if remaining != 0 {
		return fmt.Errorf("%d cores wedged (deadlock?)", remaining)
	}
	return nil
}

// runEngine drives the engine until no events remain, honoring ctx. A
// context that can never be cancelled (Done() == nil, e.g.
// context.Background) takes the plain Run path so the uncancellable
// case pays nothing and behaves exactly as before.
func (s *System) runEngine(ctx context.Context) error {
	if s.PDES != nil {
		return s.PDES.Run(ctx)
	}
	if ctx == nil || ctx.Done() == nil {
		s.Eng.Run()
		return nil
	}
	for {
		for i := 0; i < cancelCheckInterval; i++ {
			if !s.Eng.Step() {
				return nil
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}
