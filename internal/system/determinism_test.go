package system

import (
	"testing"

	"pcmap/internal/config"
)

// TestDeterminism: two builds of the same configuration must produce
// bit-identical results — the foundation of the reproduction claim.
func TestDeterminism(t *testing.T) {
	run := func() *Results {
		cfg := config.Default().WithVariant(config.RWoWRDE)
		s, err := Build(cfg, "MP6")
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(10_000, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.IPCSum != b.IPCSum {
		t.Fatalf("IPC diverged: %v vs %v", a.IPCSum, b.IPCSum)
	}
	if a.IRLPAvg != b.IRLPAvg {
		t.Fatalf("IRLP diverged: %v vs %v", a.IRLPAvg, b.IRLPAvg)
	}
	if a.Mem.Reads.Value() != b.Mem.Reads.Value() ||
		a.Mem.Writes.Value() != b.Mem.Writes.Value() {
		t.Fatal("request counts diverged")
	}
	if a.Mem.ReadLatency.MeanNS() != b.Mem.ReadLatency.MeanNS() {
		t.Fatal("latencies diverged")
	}
}

// TestSeedChangesResults: different seeds must explore different
// stochastic paths (guards against a frozen RNG wiring bug).
func TestSeedChangesResults(t *testing.T) {
	run := func(seed uint64) float64 {
		cfg := config.Default()
		cfg.Seed = seed
		s, err := Build(cfg, "MP4")
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(5_000, 40_000)
		if err != nil {
			t.Fatal(err)
		}
		return r.Mem.ReadLatency.MeanNS()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical latency profiles")
	}
}

// TestMultithreadedCoherenceTraffic: MT workloads share lines, so the
// directory must see invalidations; MP mixes must see none (disjoint
// address spaces).
func TestMultithreadedCoherenceTraffic(t *testing.T) {
	run := func(mix string) (uint64, uint64) {
		s, err := Build(config.Default(), mix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(5_000, 50_000); err != nil {
			t.Fatal(err)
		}
		return s.Hier.Dir.Invalidations, s.Hier.Dir.Forwards
	}
	mtInv, _ := run("canneal")
	if mtInv == 0 {
		t.Fatal("multithreaded run produced no invalidations")
	}
	mpInv, _ := run("MP3")
	if mpInv != 0 {
		t.Fatalf("multiprogrammed run produced %d invalidations across disjoint spaces", mpInv)
	}
}

// TestAllVariantsRunAllMixes is the wide smoke matrix at tiny budgets.
func TestAllVariantsRunAllMixes(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke skipped in -short")
	}
	for _, mix := range []string{"canneal", "freqmine", "MP1", "MP4", "stream"} {
		for _, v := range config.Variants {
			s, err := Build(config.Default().WithVariant(v), mix)
			if err != nil {
				t.Fatalf("%s/%s: %v", mix, v, err)
			}
			r, err := s.Run(2_000, 15_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", mix, v, err)
			}
			if r.IPCSum <= 0 {
				t.Fatalf("%s/%s: no progress", mix, v)
			}
		}
	}
}

// TestWearLevelingFullSystem: Start-Gap under a full workload keeps the
// system live and reduces wear imbalance relative to no leveling on
// the baseline (where fixed roles concentrate writes).
func TestWearLevelingFullSystem(t *testing.T) {
	run := func(psi uint64) (float64, uint64) {
		cfg := config.Default() // baseline: no rotation, worst imbalance
		cfg.Memory.WearLevelPsi = psi
		s, err := Build(cfg, "MP4")
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(5_000, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return r.WearCV, r.Mem.WearMoves.Value()
	}
	_, moves0 := run(0)
	if moves0 != 0 {
		t.Fatal("moves recorded with leveling off")
	}
	_, movesOn := run(50)
	if movesOn == 0 {
		t.Fatal("no gap moves with leveling on")
	}
}
