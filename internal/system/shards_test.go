package system

import (
	"reflect"
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/obs"
)

// runSharded builds and runs the given variant/mix at the given shard
// count and returns the full Results struct.
func runSharded(t *testing.T, v config.Variant, mix string, shards int, warmup, measure uint64) *Results {
	t.Helper()
	cfg := config.Default().WithVariant(v)
	s, err := New(WithConfig(cfg), WithWorkload(mix), WithShards(shards))
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	if s.Shards != shards {
		t.Fatalf("built %d shards, asked for %d", s.Shards, shards)
	}
	if (shards > 1) != (s.PDES != nil) {
		t.Fatalf("shards=%d but PDES=%v", shards, s.PDES)
	}
	r, err := s.Run(warmup, measure)
	if err != nil {
		t.Fatalf("shards=%d run: %v", shards, err)
	}
	return r
}

// TestShardsBitIdentical is the PR's central acceptance claim at the
// system level: the complete Results struct — every counter, latency
// histogram, IPC, IRLP, energy string — is identical whether the
// machine runs on one engine or sharded across 2 or 4 goroutines. The
// RWoWRDE variant exercises the hardest completion paths (RoW
// reconstruction with deferred verify, write verify chains).
func TestShardsBitIdentical(t *testing.T) {
	for _, v := range []config.Variant{config.Baseline, config.RWoWRDE} {
		ref := runSharded(t, v, "MP6", 1, 5_000, 40_000)
		for _, shards := range []int{2, 4} {
			got := runSharded(t, v, "MP6", shards, 5_000, 40_000)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s shards=%d results differ from single-threaded run:\nref %+v\ngot %+v", v, shards, ref, got)
			}
		}
	}
}

// TestShardsBitIdenticalMultithreaded covers the coherence-heavy path:
// shared lines mean directory invalidations and recalls interleave with
// memory completions on the front end.
func TestShardsBitIdenticalMultithreaded(t *testing.T) {
	ref := runSharded(t, config.RWoWNR, "canneal", 1, 4_000, 30_000)
	got := runSharded(t, config.RWoWNR, "canneal", 4, 4_000, 30_000)
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("multithreaded sharded run diverged:\nref %+v\ngot %+v", ref, got)
	}
}

// TestShardsWithFaultInjection runs the stochastic fault model sharded:
// per-channel RNG streams are forked in construction order on both
// paths, so injected faults (and their corrections) must land
// identically. The budget-of-one endurance and high drift probability
// exist to make injection dense enough to observe in a short run —
// drift only strikes lines that were previously written.
func TestShardsWithFaultInjection(t *testing.T) {
	run := func(shards int) *Results {
		cfg := config.Default().WithVariant(config.RWoWRDE)
		s, err := New(WithConfig(cfg), WithWorkload("MP4"), WithShards(shards),
			WithFaultModel(1, 0.5))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		r, err := s.Run(4_000, 300_000)
		if err != nil {
			t.Fatalf("shards=%d run: %v", shards, err)
		}
		return r
	}
	ref := run(1)
	if ref.InjectedStuck+ref.InjectedDrift == 0 {
		t.Fatal("fault model injected nothing; test exercises no fault paths")
	}
	if got := run(4); !reflect.DeepEqual(ref, got) {
		t.Errorf("fault-injected sharded run diverged:\nref %+v\ngot %+v", ref, got)
	}
}

// TestShardsOptionValidation pins the option's error surface.
func TestShardsOptionValidation(t *testing.T) {
	if _, err := New(WithShards(0)); err == nil {
		t.Error("WithShards(0) accepted")
	}
	if _, err := New(WithShards(100)); err == nil {
		t.Error("shard count beyond channel count accepted")
	}
	if _, err := New(WithShards(2), WithTracer(obs.New(0, 1))); err == nil {
		t.Error("tracer with shards > 1 accepted")
	}
	if _, err := New(WithShards(2), WithWorkload("MP4")); err != nil {
		t.Errorf("valid sharded build rejected: %v", err)
	}
}
