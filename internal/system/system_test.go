package system

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/pcm"
)

func TestSmokeRunBaseline(t *testing.T) {
	cfg := config.Default()
	s, err := Build(cfg, "canneal")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPCSum <= 0 {
		t.Fatal("no progress")
	}
	if r.Mem.Reads.Value() == 0 || r.Mem.Writes.Value() == 0 {
		t.Fatalf("no PCM traffic: reads=%d writes=%d", r.Mem.Reads.Value(), r.Mem.Writes.Value())
	}
	t.Logf("IPCsum=%.2f RPKI=%.2f WPKI=%.2f IRLP=%.2f readLat=%.0fns",
		r.IPCSum, r.RPKI, r.WPKI, r.IRLPAvg, r.Mem.ReadLatency.MeanNS())
}

func TestSmokeRunPCMap(t *testing.T) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	s, err := Build(cfg, "MP4")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPCSum <= 0 {
		t.Fatal("no progress")
	}
	t.Logf("IPCsum=%.2f RPKI=%.2f WPKI=%.2f IRLP=%.2f RoW=%d WoW=%d",
		r.IPCSum, r.RPKI, r.WPKI, r.IRLPAvg,
		r.Mem.RoWServed.Value(), r.Mem.WoWOverlapped.Value())
}

// TestZeroLineSurvivesFaultyRun runs a full simulation with endurance
// wearout, drift injection and program-and-verify enabled — the paths
// that read never-written lines through the store's shared zero line —
// and asserts the shared line is still all-zero afterwards. Before
// Peek returned copies, any caller mutating a never-written line's
// content would silently corrupt every other never-written address.
func TestZeroLineSurvivesFaultyRun(t *testing.T) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	cfg.Memory.VerifyWrites = true
	cfg.Memory.EnduranceBudget = 50
	cfg.Memory.DriftProb = 0.001
	s, err := Build(cfg, "canneal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000, 10000); err != nil {
		t.Fatal(err)
	}
	if !pcm.ZeroLineIntact() {
		t.Fatal("simulation mutated the shared never-written zero line")
	}
}

func TestUnknownMix(t *testing.T) {
	if _, err := Build(config.Default(), "nope"); err == nil {
		t.Fatal("unknown mix should error")
	}
}
