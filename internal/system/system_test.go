package system

import (
	"testing"

	"pcmap/internal/config"
)

func TestSmokeRunBaseline(t *testing.T) {
	cfg := config.Default()
	s, err := Build(cfg, "canneal")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPCSum <= 0 {
		t.Fatal("no progress")
	}
	if r.Mem.Reads.Value() == 0 || r.Mem.Writes.Value() == 0 {
		t.Fatalf("no PCM traffic: reads=%d writes=%d", r.Mem.Reads.Value(), r.Mem.Writes.Value())
	}
	t.Logf("IPCsum=%.2f RPKI=%.2f WPKI=%.2f IRLP=%.2f readLat=%.0fns",
		r.IPCSum, r.RPKI, r.WPKI, r.IRLPAvg, r.Mem.ReadLatency.MeanNS())
}

func TestSmokeRunPCMap(t *testing.T) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	s, err := Build(cfg, "MP4")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPCSum <= 0 {
		t.Fatal("no progress")
	}
	t.Logf("IPCsum=%.2f RPKI=%.2f WPKI=%.2f IRLP=%.2f RoW=%d WoW=%d",
		r.IPCSum, r.RPKI, r.WPKI, r.IRLPAvg,
		r.Mem.RoWServed.Value(), r.Mem.WoWOverlapped.Value())
}

func TestUnknownMix(t *testing.T) {
	if _, err := Build(config.Default(), "nope"); err == nil {
		t.Fatal("unknown mix should error")
	}
}
