package system

import (
	"errors"
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/obs"
)

func TestNewDefaults(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mix.Name != "MP4" {
		t.Fatalf("default mix = %q, want MP4", s.Mix.Name)
	}
	if s.Stats == nil {
		t.Fatal("New must populate the stats registry")
	}
	if s.Tracer != nil {
		t.Fatal("tracing must default to off")
	}
	// Every core's stall buckets and every channel's metrics must be in
	// the tree.
	for _, name := range []string{"cpu.core0.stall.read_latency", "mem.chan0.reads", "mem.chan0.write_pauses"} {
		if _, ok := s.Stats.Lookup(name); !ok {
			t.Errorf("registry missing %s", name)
		}
	}
}

func TestNewTypedErrors(t *testing.T) {
	cases := []struct {
		label string
		opts  []Option
		opt   string
	}{
		{"nil config", []Option{WithConfig(nil)}, "WithConfig"},
		{"empty workload", []Option{WithWorkload("")}, "WithWorkload"},
		{"unknown workload", []Option{WithWorkload("no-such-mix")}, "WithWorkload"},
		{"nil tracer", []Option{WithTracer(nil)}, "WithTracer"},
		{"bad drift", []Option{WithFaultModel(0, 1.5)}, "WithFaultModel"},
		{"negative drift", []Option{WithFaultModel(0, -0.1)}, "WithFaultModel"},
	}
	for _, tc := range cases {
		_, err := New(tc.opts...)
		if err == nil {
			t.Errorf("%s: New succeeded, want error", tc.label)
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v is not an *OptionError", tc.label, err)
			continue
		}
		if oe.Option != tc.opt {
			t.Errorf("%s: blamed option %q, want %q", tc.label, oe.Option, tc.opt)
		}
	}
}

func TestNewDoesNotMutateCallerConfig(t *testing.T) {
	cfg := config.Default()
	seed0, end0 := cfg.Seed, cfg.Memory.EnduranceBudget
	if _, err := New(WithConfig(cfg), WithSeed(99), WithFaultModel(1000, 0.01)); err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != seed0 || cfg.Memory.EnduranceBudget != end0 {
		t.Fatal("New mutated the caller's Config")
	}
}

func TestNewAppliesOverrides(t *testing.T) {
	s, err := New(WithSeed(7), WithFaultModel(123, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Seed != 7 {
		t.Fatalf("seed override lost: %d", s.Cfg.Seed)
	}
	if s.Cfg.Memory.EnduranceBudget != 123 || s.Cfg.Memory.DriftProb != 0.5 {
		t.Fatal("fault model override lost")
	}
}

func TestNewWithTracerAttachesEverywhere(t *testing.T) {
	tr := obs.New(1<<16, 1)
	s, err := New(WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer != tr {
		t.Fatal("tracer not retained")
	}
	if _, err := s.Run(500, 2_000); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
}

// TestTracedRunResultsIdentical is the observer-effect guard at the
// library level: a traced run must produce exactly the results of an
// untraced one.
func TestTracedRunResultsIdentical(t *testing.T) {
	run := func(opts ...Option) *Results {
		s, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(500, 2_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := run()
	traced := run(WithTracer(obs.New(1<<16, 1)))
	a, err := EncodeResults(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResults(traced)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("tracing changed simulation results")
	}
}
