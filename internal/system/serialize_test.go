package system

import (
	"fmt"
	"reflect"
	"testing"

	"pcmap/internal/config"
)

// runSmall executes one short simulation and returns its Results.
func runSmall(t *testing.T, variant config.Variant, mutate func(*config.Config)) *Results {
	t.Helper()
	cfg := config.Default().WithVariant(variant)
	if mutate != nil {
		mutate(cfg)
	}
	s, err := Build(cfg, "MP4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(2_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResultsRoundTrip is the disk-cache fidelity guard: a Results must
// survive encode/decode exactly, including the nested metrics block —
// reflect.DeepEqual covers every field, exported or not, so a codec
// that silently drops a bucket or counter fails here.
func TestResultsRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		variant config.Variant
		mutate  func(*config.Config)
	}{
		{"baseline", config.Baseline, nil},
		{"full-pcmap", config.RWoWRDE, nil},
		{"verify-path", config.RWoWRDE, func(c *config.Config) {
			c.Memory.VerifyWrites = true
			c.Memory.EnduranceBudget = 2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runSmall(t, tc.variant, tc.mutate)
			data, err := EncodeResults(res)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeResults(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, res) {
				t.Fatalf("Results did not round-trip\n got: %+v\nwant: %+v", got, res)
			}

			// The derived report values the figures read must be
			// bit-identical too (formatting them exercises the floats).
			pairs := [][2]string{
				{fmt.Sprintf("%v", got.Mem.ReadLatency.MeanNS()), fmt.Sprintf("%v", res.Mem.ReadLatency.MeanNS())},
				{fmt.Sprintf("%v", got.Mem.ReadLatency.PercentileNS(95)), fmt.Sprintf("%v", res.Mem.ReadLatency.PercentileNS(95))},
				{fmt.Sprintf("%v", got.Mem.WriteThroughput()), fmt.Sprintf("%v", res.Mem.WriteThroughput())},
				{fmt.Sprintf("%v", got.Mem.DirtyWords.MeanValue()), fmt.Sprintf("%v", res.Mem.DirtyWords.MeanValue())},
				{fmt.Sprintf("%v", got.IPCSum), fmt.Sprintf("%v", res.IPCSum)},
			}
			for i, p := range pairs {
				if p[0] != p[1] {
					t.Errorf("derived value %d drifted: %s vs %s", i, p[0], p[1])
				}
			}
		})
	}
}

// TestDecodeResultsRejectsGarbage covers the cache's corrupted-file
// path: garbage must return an error, never a half-built Results.
func TestDecodeResultsRejectsGarbage(t *testing.T) {
	for _, data := range []string{"", "{", "null", "{}", `{"Workload":"x"}`} {
		if _, err := DecodeResults([]byte(data)); err == nil {
			t.Errorf("DecodeResults(%q) = nil error, want failure", data)
		}
	}
}
