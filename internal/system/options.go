package system

import (
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/obs"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
	"pcmap/internal/workloads"
)

// OptionError is the typed error New returns when an option carries an
// invalid value. Callers can errors.As on it to learn which option was
// at fault.
type OptionError struct {
	Option string // constructor name, e.g. "WithConfig"
	Err    error
}

func (e *OptionError) Error() string { return fmt.Sprintf("system: %s: %v", e.Option, e.Err) }

// Unwrap exposes the underlying cause.
func (e *OptionError) Unwrap() error { return e.Err }

// settings accumulates option values before construction. Overrides
// are tri-state (set/unset) so New can apply them to a private copy of
// the configuration without mutating the caller's.
type settings struct {
	cfg      *config.Config
	workload string
	tracer   *obs.Tracer

	seedSet bool
	seed    uint64

	faultSet  bool
	endurance uint64
	drift     float64

	shards int
}

// Option configures New. Options are applied in order; later options
// win where they overlap.
type Option func(*settings) error

// WithConfig selects the machine configuration. New copies the
// top-level struct before applying other overrides, so the caller's
// Config is never mutated.
func WithConfig(cfg *config.Config) Option {
	return func(st *settings) error {
		if cfg == nil {
			return &OptionError{Option: "WithConfig", Err: fmt.Errorf("nil config")}
		}
		st.cfg = cfg
		return nil
	}
}

// WithWorkload selects the workload mix by name (see
// internal/workloads). Default: MP4.
func WithWorkload(name string) Option {
	return func(st *settings) error {
		if name == "" {
			return &OptionError{Option: "WithWorkload", Err: fmt.Errorf("empty workload name")}
		}
		st.workload = name
		return nil
	}
}

// WithTracer attaches a timeline tracer to every instrumented layer
// (engine, cores, controllers, buses, banks, NoC). Pass the tracer that
// will later be serialized with WriteJSON. A nil tracer is rejected;
// simply omit the option to run untraced.
func WithTracer(tr *obs.Tracer) Option {
	return func(st *settings) error {
		if tr == nil {
			return &OptionError{Option: "WithTracer", Err: fmt.Errorf("nil tracer (omit the option to disable tracing)")}
		}
		st.tracer = tr
		return nil
	}
}

// WithSeed overrides the configuration's base random seed.
func WithSeed(seed uint64) Option {
	return func(st *settings) error {
		st.seedSet = true
		st.seed = seed
		return nil
	}
}

// WithFaultModel enables PCM fault injection: each cell fails stuck-at
// after enduranceBudget writes on average, and each read word flips a
// drifted bit with probability driftProb. Zero values disable the
// respective mechanism.
func WithFaultModel(enduranceBudget uint64, driftProb float64) Option {
	return func(st *settings) error {
		if driftProb < 0 || driftProb >= 1 {
			return &OptionError{Option: "WithFaultModel", Err: fmt.Errorf("drift probability %v outside [0,1)", driftProb)}
		}
		st.faultSet = true
		st.endurance = enduranceBudget
		st.drift = driftProb
		return nil
	}
}

// WithShards splits the simulation across n goroutines at the
// memory-channel boundary (see internal/pdes): channel ch schedules on
// shard engine ch%n. n must be at least 1; 1 (the default) runs the
// classic single-threaded engine. A sharded run's outputs are
// bit-identical to the single-threaded run's — the scheduler merges
// cross-shard events back into the engine's exact (time, seq) total
// order. n may not exceed the configured channel count, and tracing
// (WithTracer) requires n == 1.
func WithShards(n int) Option {
	return func(st *settings) error {
		if n < 1 {
			return &OptionError{Option: "WithShards", Err: fmt.Errorf("shard count %d < 1", n)}
		}
		st.shards = n
		return nil
	}
}

// New assembles a machine from functional options — the constructor
// behind Build and every command-line entry point. With no options it
// builds the paper's Table I default machine running the MP4 mix.
//
// Construction validates the resolved configuration and returns typed
// errors (*OptionError for bad option values); it never mutates a
// Config passed via WithConfig.
func New(opts ...Option) (*System, error) {
	st := settings{cfg: config.Default(), workload: "MP4", shards: 1}
	for _, opt := range opts {
		if err := opt(&st); err != nil {
			return nil, err
		}
	}
	cfg := st.cfg
	if st.seedSet || st.faultSet {
		copied := *cfg
		cfg = &copied
		if st.seedSet {
			cfg.Seed = st.seed
		}
		if st.faultSet {
			cfg.Memory.EnduranceBudget = st.endurance
			cfg.Memory.DriftProb = st.drift
		}
	}

	mix, ok := workloads.MixByName(st.workload)
	if !ok {
		return nil, &OptionError{Option: "WithWorkload", Err: fmt.Errorf("unknown workload %q", st.workload)}
	}
	if len(mix.PerCore) != cfg.Cores {
		return nil, &OptionError{Option: "WithWorkload", Err: fmt.Errorf("mix %s defines %d cores, config has %d",
			st.workload, len(mix.PerCore), cfg.Cores)}
	}
	if st.shards > cfg.Memory.Channels {
		return nil, &OptionError{Option: "WithShards", Err: fmt.Errorf("%d shards exceed the %d memory channels (one channel is the finest partition)",
			st.shards, cfg.Memory.Channels)}
	}
	if st.shards > 1 && st.tracer != nil {
		return nil, &OptionError{Option: "WithShards", Err: fmt.Errorf("tracing requires a single shard (the tracer observes one engine's step stream)")}
	}
	s, err := assemble(cfg, mix, st.shards)
	if err != nil {
		return nil, err
	}
	s.instrument(st.tracer)
	return s, nil
}

// instrument wires the observability layer: every component registers
// its counters into the system registry, and — when a tracer is
// attached — its timeline tracks. Track registration order is
// construction order, so traced runs serialize deterministically.
func (s *System) instrument(tr *obs.Tracer) {
	s.Tracer = tr
	s.Stats = stats.NewRegistry()
	cpuReg := s.Stats.Sub("cpu")
	for i, c := range s.Cores {
		c.Instrument(tr, cpuReg.Sub(fmt.Sprintf("core%d", i)))
	}
	memReg := s.Stats.Sub("mem")
	for ch, ctrl := range s.Mem.Ctrls {
		ctrl.Instrument(tr, memReg.Sub(fmt.Sprintf("chan%d", ch)))
	}
	s.Hier.Mesh.Instrument(tr)
	if tr != nil {
		track := tr.Track("engine", "events")
		pending := tr.Name("pending")
		s.Eng.SetStepHook(func(now sim.Time, n int) {
			tr.Count(track, pending, now, int64(n))
		})
	}
}
