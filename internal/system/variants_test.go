package system

import (
	"testing"

	"pcmap/internal/config"
)

// TestPALPSmokeRun runs the PALP variant end-to-end on a write-heavy
// mix and asserts the partition machinery actually fires: partition
// overlaps are the accesses served only because the conflicting work
// sat in a different partition of the same bank, so on a write-heavy
// workload they must be strictly positive — and PALP must see at least
// as many read/write overlaps as the whole-bank RWoW-RDE scheduler.
func TestPALPSmokeRun(t *testing.T) {
	rde, err := Build(config.Default().WithVariant(config.RWoWRDE), "MP6")
	if err != nil {
		t.Fatal(err)
	}
	rdeRes, err := rde.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(config.Default().WithVariant(config.PALP), "MP6")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPCSum <= 0 {
		t.Fatal("no progress")
	}
	parts := r.Mem.PartOverlapReads.Value() + r.Mem.PartOverlapWrites.Value()
	if parts == 0 {
		t.Fatal("PALP on a write-heavy mix must record partition overlaps")
	}
	if got, base := r.Mem.OverlapReads.Value(), rdeRes.Mem.OverlapReads.Value(); got < base {
		t.Fatalf("PALP overlap reads %d < RWoW-RDE's %d", got, base)
	}
	t.Logf("IPCsum=%.2f partOverlapReads=%d partOverlapWrites=%d (RDE overlapReads=%d, PALP=%d)",
		r.IPCSum, r.Mem.PartOverlapReads.Value(), r.Mem.PartOverlapWrites.Value(),
		rdeRes.Mem.OverlapReads.Value(), r.Mem.OverlapReads.Value())
}

// TestPaperVariantsNeverPartition asserts the six paper variants never
// record a partition overlap: their banks are monolithic, so the
// partition-granular scheduler must reduce exactly to the whole-bank
// one (the structural half of the byte-identity guarantee).
func TestPaperVariantsNeverPartition(t *testing.T) {
	for _, v := range config.Variants {
		s, err := Build(config.Default().WithVariant(v), "MP6")
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(5000, 40000)
		if err != nil {
			t.Fatal(err)
		}
		if n := r.Mem.PartOverlapReads.Value() + r.Mem.PartOverlapWrites.Value(); n != 0 {
			t.Fatalf("%s recorded %d partition overlaps; paper variants must have none", v, n)
		}
	}
}

// TestDCASmokeRun runs the content-aware variant end-to-end: the
// SET/RESET histograms must populate, and because the DCA programming
// time never exceeds the worst-case WriteLatency, write throughput
// must not fall below RWoW-RDE's on the same workload and budgets.
func TestDCASmokeRun(t *testing.T) {
	rde, err := Build(config.Default().WithVariant(config.RWoWRDE), "MP6")
	if err != nil {
		t.Fatal(err)
	}
	rdeRes, err := rde.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(config.Default().WithVariant(config.RWoWDCA), "MP6")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPCSum <= 0 {
		t.Fatal("no progress")
	}
	if r.Mem.SetBits == nil || r.Mem.SetBits.Total() == 0 {
		t.Fatal("DCA run must populate the SET-bit histogram")
	}
	if r.Mem.SetBits.Total() != r.Mem.ResetBits.Total() {
		t.Fatalf("histograms out of step: %d SET samples, %d RESET samples",
			r.Mem.SetBits.Total(), r.Mem.ResetBits.Total())
	}
	if got, base := r.Mem.WriteThroughput(), rdeRes.Mem.WriteThroughput(); got < base*0.99 {
		t.Fatalf("DCA write throughput %.2f/us below RWoW-RDE's %.2f/us", got, base)
	}
	t.Logf("IPCsum=%.2f meanSET=%.1f meanRESET=%.1f writeTput=%.2f/us (RDE %.2f/us)",
		r.IPCSum, r.Mem.SetBits.MeanValue(), r.Mem.ResetBits.MeanValue(),
		r.Mem.WriteThroughput(), rdeRes.Mem.WriteThroughput())
}

// TestPaperVariantsSkipDCAHistograms asserts the six paper variants
// never sample the content-aware histograms (the observation itself is
// gated on the capability, keeping their hot path untouched).
func TestPaperVariantsSkipDCAHistograms(t *testing.T) {
	s, err := Build(config.Default().WithVariant(config.RWoWRDE), "MP6")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(5000, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.SetBits.Total() != 0 || r.Mem.ResetBits.Total() != 0 {
		t.Fatal("non-ContentAware variants must not sample the bit histograms")
	}
}
