// Results serialization for the experiment runner's disk-backed result
// cache. A Results round-trips through EncodeResults/DecodeResults with
// full fidelity: every counter, latency bucket, and float is restored
// bit-identically (encoding/json emits float64 in shortest-round-trip
// form), so report output rendered from a decoded Results is
// byte-identical to output rendered from the original run.
package system

import (
	"encoding/json"
	"fmt"
)

// EncodeResults serializes r to JSON.
func EncodeResults(r *Results) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("system: encode nil Results")
	}
	return json.Marshal(r)
}

// DecodeResults deserializes a Results produced by EncodeResults.
func DecodeResults(data []byte) (*Results, error) {
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("system: decode Results: %w", err)
	}
	if r.Mem == nil {
		return nil, fmt.Errorf("system: decoded Results has no memory metrics")
	}
	// JSON carries only the exported fields; rebuild the counter
	// registry so a decoded Metrics is indistinguishable from a live one
	// (the round-trip test compares them with reflect.DeepEqual).
	r.Mem.Registry()
	return &r, nil
}
