package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pcmap/internal/config"
	"pcmap/internal/exp"
	"pcmap/internal/mem"
	"pcmap/internal/system"
)

// newTestServer builds a started Server plus an httptest front end.
// Cleanup tears both down.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logf = t.Logf
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJob submits one job and returns the status code and body.
func postJob(t *testing.T, url string, req JobRequest) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// decodeErrorKind extracts the error taxonomy kind from an error body.
func decodeErrorKind(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error errorBody `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q is not the documented JSON shape: %v", body, err)
	}
	return e.Error.Kind
}

// stubResults builds a minimal but encodable Results.
func stubResults(workload string) *system.Results {
	return &system.Results{Workload: workload, IPCSum: 1, Mem: mem.NewMetrics()}
}

// TestServeByteIdenticalToCLI runs a real (small) simulation through
// the HTTP path and requires the response body to be byte-identical to
// the same spec executed directly through the exp.Runner — the CLI's
// path. The service must be a transport, never a transformation.
func TestServeByteIdenticalToCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	_, ts := newTestServer(t, Config{Workers: 2, DefaultWarmup: 200, DefaultMeasure: 2000})

	status, body := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "Baseline"})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}

	ref := exp.NewRunner()
	ref.Warmup, ref.Measure = 200, 2000
	res, err := ref.Run(exp.Spec{Workload: "MP4", Variant: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	want, err := system.EncodeResults(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("served Results differ from the direct run:\n got %d bytes\nwant %d bytes", len(body), len(want))
	}
}

// TestServeCoalescesIdenticalJobs pins the single-flight contract at
// the service layer: N concurrent identical specs must execute exactly
// one simulation and all get the same answer.
func TestServeCoalescesIdenticalJobs(t *testing.T) {
	var mu sync.Mutex
	executions := 0
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(_ context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			mu.Lock()
			executions++
			mu.Unlock()
			time.Sleep(30 * time.Millisecond) // widen the coalescing window
			return stubResults(workload), nil
		})
	}
	_, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 16, tune: tune})

	const callers = 8
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "RWoW-RDE", Seed: 7})
			if status != http.StatusOK {
				t.Errorf("caller %d: status %d body %s", i, status, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	mu.Lock()
	n := executions
	mu.Unlock()
	if n != 1 {
		t.Errorf("%d executions for %d identical jobs, want 1 (single-flight)", n, callers)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("caller %d body differs from caller 0", i)
		}
	}
}

// TestServeOverloadReturns429 fills the worker and the bounded queue,
// then requires the next job to be rejected with 429 + Retry-After —
// never queued without bound.
func TestServeOverloadReturns429(t *testing.T) {
	release := make(chan struct{})
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(ctx context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResults(workload), nil
		})
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, tune: tune})

	// Occupy the worker, then the queue slot. Distinct seeds so the
	// jobs do not coalesce.
	results := make(chan int, 2)
	for seed := 1; seed <= 2; seed++ {
		go func(seed int) {
			status, _ := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "Baseline", Seed: uint64(seed)})
			results <- status
		}(seed)
	}
	// Wait until both jobs are admitted (accepted counter, not timing).
	deadline := time.After(5 * time.Second)
	for {
		if m := scrapeMetrics(t, ts.URL); m["serve_jobs_accepted"] == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("jobs were not admitted in time")
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"MP4","variant":"Baseline","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
	if kind := decodeErrorKind(t, body); kind != "overloaded" {
		t.Errorf("error kind %q, want overloaded", kind)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("blocked job finished with %d, want 200", status)
		}
	}
}

// TestServePanicIsolation pins the core robustness contract: a
// panicking job answers a structured 500 while the pool keeps serving
// subsequent jobs.
func TestServePanicIsolation(t *testing.T) {
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(_ context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			if workload == "stream" {
				panic("pathological job")
			}
			return stubResults(workload), nil
		})
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, tune: tune})

	status, body := postJob(t, ts.URL, JobRequest{Workload: "stream", Variant: "Baseline"})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking job: status %d, want 500; body %s", status, body)
	}
	if kind := decodeErrorKind(t, body); kind != "panic" {
		t.Errorf("error kind %q, want panic", kind)
	}
	if !strings.Contains(string(body), "pathological job") {
		t.Errorf("error body %s does not carry the panic value", body)
	}

	// The same worker must serve the next job.
	status, body = postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "Baseline"})
	if status != http.StatusOK {
		t.Fatalf("healthy job after a panic: status %d body %s", status, body)
	}
	if m := scrapeMetrics(t, ts.URL); m["serve_jobs_panicked"] != 1 {
		t.Errorf("serve_jobs_panicked = %d, want 1", m["serve_jobs_panicked"])
	}
}

// TestServeDeadline requires a client-requested deadline to abort a
// long job with the timeout taxonomy.
func TestServeDeadline(t *testing.T) {
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(ctx context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			<-ctx.Done() // a long job honoring cooperative cancellation
			return nil, ctx.Err()
		})
	}
	_, ts := newTestServer(t, Config{Workers: 1, tune: tune})

	status, body := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "Baseline", TimeoutMS: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", status, body)
	}
	if kind := decodeErrorKind(t, body); kind != "timeout" {
		t.Errorf("error kind %q, want timeout", kind)
	}
	if m := scrapeMetrics(t, ts.URL); m["serve_jobs_timed_out"] != 1 {
		t.Errorf("serve_jobs_timed_out = %d, want 1", m["serve_jobs_timed_out"])
	}
}

// TestServeRetryBackoff: transient failures are retried with backoff
// up to the budget; the job then succeeds.
func TestServeRetryBackoff(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(_ context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n <= 2 {
				return nil, fmt.Errorf("transient environmental failure %d", n)
			}
			return stubResults(workload), nil
		})
	}
	_, ts := newTestServer(t, Config{Workers: 1, Retries: 2, RetryBase: time.Millisecond, tune: tune})

	status, body := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "Baseline"})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 after retries; body %s", status, body)
	}
	mu.Lock()
	n := attempts
	mu.Unlock()
	if n != 3 {
		t.Errorf("%d attempts, want 3", n)
	}
	if m := scrapeMetrics(t, ts.URL); m["serve_jobs_retried"] != 2 {
		t.Errorf("serve_jobs_retried = %d, want 2", m["serve_jobs_retried"])
	}
}

// TestServeInvalidJobs pins the 400 taxonomy for malformed and invalid
// submissions.
func TestServeInvalidJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{{{`},
		{"unknown field", `{"workload":"MP4","variant":"Baseline","bogus":1}`},
		{"missing workload", `{"variant":"Baseline"}`},
		{"unknown workload", `{"workload":"nope","variant":"Baseline"}`},
		{"unknown variant", `{"workload":"MP4","variant":"nope"}`},
		{"bad fault mode", `{"workload":"MP4","variant":"Baseline","fault_mode":"sometimes"}`},
		{"bad drift", `{"workload":"MP4","variant":"Baseline","drift_prob":1.5}`},
		{"negative timeout", `{"workload":"MP4","variant":"Baseline","timeout_ms":-1}`},
		{"budget over cap", `{"workload":"MP4","variant":"Baseline","measure":99000000}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			if kind := decodeErrorKind(t, body); kind != "invalid" {
				t.Errorf("error kind %q, want invalid", kind)
			}
		})
	}
}

// TestServeHealthAndDrainEndpoints covers the probe endpoints across
// the drain transition, and that draining rejects new jobs with 503.
func TestServeHealthAndDrainEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	s.BeginDrain()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	// Liveness stays green while draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz = %d, want 200", resp.StatusCode)
	}

	status, body := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "Baseline"})
	if status != http.StatusServiceUnavailable {
		t.Errorf("job while draining: status %d, want 503", status)
	}
	if kind := decodeErrorKind(t, body); kind != "draining" {
		t.Errorf("error kind %q, want draining", kind)
	}
}

// TestServeMetricsExposition checks the /metrics surface: service
// counters plus aggregated simulation registry rows.
func TestServeMetricsExposition(t *testing.T) {
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(_ context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			res := stubResults(workload)
			res.Mem.Reads.Add(42)
			return res, nil
		})
	}
	_, ts := newTestServer(t, Config{Workers: 1, tune: tune})

	if status, body := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: "Baseline"}); status != 200 {
		t.Fatalf("job failed: %d %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m := parseMetrics(t, string(text))
	for name, want := range map[string]int64{
		"serve_jobs_accepted":  1,
		"serve_jobs_completed": 1,
		"serve_sims_executed":  1,
		"serve_workers":        1,
		"sim_reads":            42,
	} {
		if m[name] != want {
			t.Errorf("%s = %d, want %d\nfull exposition:\n%s", name, m[name], want, text)
		}
	}
}

// scrapeMetrics fetches and parses /metrics into a name -> value map.
func scrapeMetrics(t *testing.T, url string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, string(text))
}

func parseMetrics(t *testing.T, text string) map[string]int64 {
	t.Helper()
	m := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		var name string
		var value int64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &value); err != nil {
			t.Fatalf("unparseable metrics line %q: %v", line, err)
		}
		m[name] = value
	}
	return m
}

// TestServeAcceptsRegisteredVariants pins the open-registry contract on
// the wire: every name the variant registry exposes — the paper's six
// plus the follow-on systems (PALP, RWoW-DCA) — is a valid job spec,
// with no serve-side allowlist to fall out of date.
func TestServeAcceptsRegisteredVariants(t *testing.T) {
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(_ context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			return stubResults(workload), nil
		})
	}
	_, ts := newTestServer(t, Config{Workers: 2, tune: tune})

	names := config.VariantNames()
	if len(names) < 8 {
		t.Fatalf("registry lists %d variants, want the six paper systems plus PALP and RWoW-DCA", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			status, body := postJob(t, ts.URL, JobRequest{Workload: "MP4", Variant: name})
			if status != http.StatusOK {
				t.Errorf("variant %q rejected: status %d, body %s", name, status, body)
			}
		})
	}
}
