package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"pcmap/internal/stats"
)

// svcCounters are the service-level counters, separate from the
// simulation's stats.Registry because HTTP handlers and workers touch
// them concurrently (stats counters are single-goroutine by design).
type svcCounters struct {
	accepted         atomic.Uint64
	rejectedQueue    atomic.Uint64
	rejectedDraining atomic.Uint64
	rejectedInvalid  atomic.Uint64
	completed        atomic.Uint64
	failed           atomic.Uint64
	panicked         atomic.Uint64
	timedOut         atomic.Uint64
	retried          atomic.Uint64
	busy             atomic.Int64
}

// handleMetrics is GET /metrics: a flat text exposition (Prometheus
// style, name value per line) of the service counters followed by the
// simulation counters aggregated over every completed job.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Snapshot the registry and runner totals under mu; render after.
	s.mu.Lock()
	sims, hits := s.retiredSims, s.retiredHits
	for _, r := range s.runners {
		n, _, _ := r.Totals()
		sims += n
		hits += r.CacheHits()
	}
	agg := s.agg.Counters()
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rows := []struct {
		name  string
		value int64
	}{
		{"serve_jobs_accepted", int64(s.met.accepted.Load())},
		{"serve_jobs_rejected_queue_full", int64(s.met.rejectedQueue.Load())},
		{"serve_jobs_rejected_draining", int64(s.met.rejectedDraining.Load())},
		{"serve_jobs_rejected_invalid", int64(s.met.rejectedInvalid.Load())},
		{"serve_jobs_completed", int64(s.met.completed.Load())},
		{"serve_jobs_failed", int64(s.met.failed.Load())},
		{"serve_jobs_panicked", int64(s.met.panicked.Load())},
		{"serve_jobs_timed_out", int64(s.met.timedOut.Load())},
		{"serve_jobs_retried", int64(s.met.retried.Load())},
		{"serve_queue_depth", int64(len(s.queue))},
		{"serve_queue_capacity", int64(cap(s.queue))},
		{"serve_workers", int64(s.cfg.Workers)},
		{"serve_workers_busy", s.met.busy.Load()},
		{"serve_sims_executed", int64(sims)},
		{"serve_cache_hits", int64(hits)},
		{"serve_draining", boolMetric(s.draining.Load())},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%s %d\n", row.name, row.value)
	}
	writeRegistry(w, agg)
}

// writeRegistry renders aggregated simulation counters as
// sim_<name> rows. The slice is in registration order (deterministic),
// never map order.
func writeRegistry(w http.ResponseWriter, rows []stats.NamedCounter) {
	for _, nc := range rows {
		fmt.Fprintf(w, "sim_%s %d\n", metricName(nc.Name), nc.Value)
	}
}

// metricName flattens a dotted registry name into the conventional
// [a-zA-Z0-9_] metric charset.
func metricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

func boolMetric(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
