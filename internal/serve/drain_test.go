package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pcmap/internal/config"
	"pcmap/internal/exp"
	"pcmap/internal/system"
)

// TestGracefulDrainOnSIGTERM is the end-to-end drain contract, run
// with real simulations and a real SIGTERM under -race:
//
//   - jobs accepted before the signal all complete with 200;
//   - a request arriving while draining gets an orderly 503;
//   - served Results are byte-identical to the same specs run directly
//     through the exp.Runner (the CLI path);
//   - Main returns exit code 0 after a clean drain.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations and signals")
	}

	// Budgets sized so each job runs long enough that several are still
	// in flight when the signal lands and while the late request below
	// makes its round trip — the drain window this test observes is
	// real wall-clock time, so it must outlast an HTTP exchange even as
	// the simulator gets faster.
	const warmup, measure = 1000, 40000
	s := New(Config{Workers: 2, QueueDepth: 8,
		DefaultWarmup: warmup, DefaultMeasure: measure, Logf: t.Logf})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	// Real signal plumbing: Notify first, so the raised SIGTERM reaches
	// Main's channel instead of killing the test process.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM)
	defer signal.Stop(sig)

	exit := make(chan int, 1)
	go func() { exit <- s.Main(ln, sig, 30*time.Second) }()
	waitServing(t, base)

	// Load the pool: more jobs than workers so some are still queued
	// when the signal lands. Distinct seeds keep them from coalescing.
	const jobs = 6
	type answer struct {
		seed   uint64
		status int
		body   []byte
	}
	answers := make([]answer, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := uint64(i + 1)
			payload := fmt.Sprintf(`{"workload":"MP4","variant":"RWoW-RDE","seed":%d}`, seed)
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(payload))
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			answers[i] = answer{seed: seed, status: resp.StatusCode, body: body}
		}(i)
	}

	// Wait for every job to be admitted (observable, not timing-based),
	// then deliver the signal while several are still in flight.
	waitMetric(t, base, "serve_jobs_accepted", jobs)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The drain is observable at /readyz; the listener must stay open
	// so late requests get an orderly 503, not a connection reset.
	waitReadyz503(t, base)
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"MP4","variant":"RWoW-RDE","seed":99}`))
	if err != nil {
		t.Fatalf("late request during drain: %v", err)
	}
	lateBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("late request: status %d, want 503; body %s", resp.StatusCode, lateBody)
	}
	var e struct {
		Error errorBody `json:"error"`
	}
	if err := json.Unmarshal(lateBody, &e); err != nil || e.Error.Kind != "draining" {
		t.Errorf("late request error body %s, want kind draining (%v)", lateBody, err)
	}

	// Every in-flight job completes, and Main exits 0.
	wg.Wait()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("Main returned %d, want 0 after a clean drain", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Main did not exit after the drain")
	}

	// Byte-identity: replay every spec through a direct runner — the
	// CLI path — and compare the exact bytes the service answered with.
	ref := exp.NewRunner()
	ref.Warmup, ref.Measure = warmup, measure
	for _, a := range answers {
		if a.status != http.StatusOK {
			t.Errorf("seed %d: status %d, want 200 (in-flight jobs must complete); body %s",
				a.seed, a.status, a.body)
			continue
		}
		res, err := ref.Run(exp.Spec{Workload: "MP4", Variant: config.RWoWRDE, Seed: a.seed})
		if err != nil {
			t.Fatal(err)
		}
		want, err := system.EncodeResults(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.body, want) {
			t.Errorf("seed %d: served Results are not byte-identical to the direct run", a.seed)
		}
	}
}

// TestForcedExitOnSecondSignal: a drain that cannot finish (a job
// blocks forever) is cut short by a second signal, returning 130.
func TestForcedExitOnSecondSignal(t *testing.T) {
	tune := func(r *exp.Runner) {
		r.SetSimulate(func(ctx context.Context, _ *config.Config, workload string, _, _ uint64) (*system.Results, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		})
	}
	s := New(Config{Workers: 1, DefaultTimeout: time.Minute, Logf: t.Logf, tune: tune})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	sig := make(chan os.Signal, 2)
	exit := make(chan int, 1)
	go func() { exit <- s.Main(ln, sig, time.Minute) }()
	waitServing(t, base)

	go func() {
		// The job blocks its worker until the minute-long deadline; the
		// response does not matter here.
		resp, err := http.Post(base+"/v1/jobs", "application/json",
			strings.NewReader(`{"workload":"MP4","variant":"Baseline"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitMetric(t, base, "serve_jobs_accepted", 1)

	sig <- syscall.SIGTERM // begin drain; the stuck job never finishes
	waitReadyz503(t, base)
	sig <- syscall.SIGTERM // force

	select {
	case code := <-exit:
		if code != 130 {
			t.Fatalf("Main returned %d, want 130 on a forced second signal", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Main did not force-exit on the second signal")
	}
	s.Close() // unblock the stuck worker via baseCancel
}

// waitServing polls /healthz until the listener answers.
func waitServing(t *testing.T, base string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatal("server never came up")
		case <-time.After(time.Millisecond):
		}
	}
}

// waitMetric polls /metrics until name reaches at least want.
func waitMetric(t *testing.T, base string, name string, want int64) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if m := scrapeMetrics(t, base); m[name] >= want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("%s never reached %d", name, want)
		case <-time.After(time.Millisecond):
		}
	}
}

// waitReadyz503 polls /readyz until the drain is observable.
func waitReadyz503(t *testing.T, base string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatal("readyz never reported draining")
		case <-time.After(time.Millisecond):
		}
	}
}
