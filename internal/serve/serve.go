// Package serve turns the one-shot simulator into a hardened,
// long-running simulation service: an HTTP front end (stdlib net/http
// only) that accepts simulation jobs as JSON, executes them on a
// bounded worker pool layered on the exp.Runner orchestrator, and
// answers with the same Results JSON the disk cache stores
// (system.EncodeResults), byte-identical to a one-shot run of the same
// spec.
//
// The robustness surface is the point:
//
//   - admission control: a bounded queue; when it is full the job is
//     rejected with 429 and a Retry-After hint instead of growing an
//     unbounded backlog, and while draining new jobs get 503;
//   - per-job deadlines: every accepted job runs under a context
//     deadline (server default, client-settable up to a server cap)
//     that the simulation engine honors between events;
//   - panic isolation: a crashing job answers with a typed error while
//     the pool keeps serving (exp.JobPanicError carries the stack);
//   - bounded retry: transient failures (exp.IsRetryable) re-attempt
//     with exponential backoff plus deterministic jitter;
//   - graceful drain: BeginDrain stops admission, Drain waits for
//     in-flight jobs up to a deadline, and Main wires the whole
//     lifecycle to SIGTERM/SIGINT (second signal forces exit 130).
//
// Concurrent identical specs coalesce through the runner's
// single-flight path, and when a disk cache is configured repeated
// traffic is answered from it without re-simulating.
package serve

import (
	"context"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pcmap/internal/exp"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
	"pcmap/internal/system"
)

// Config tunes the service. Zero values mean "use the documented
// default"; New normalizes them.
type Config struct {
	// Workers is the simulation worker-pool size (<= 0: NumCPU).
	Workers int
	// QueueDepth bounds the admission queue; a full queue answers 429
	// (<= 0: 2x Workers).
	QueueDepth int

	// DefaultWarmup and DefaultMeasure are the per-core instruction
	// budgets used when a job does not set its own (<= 0: the
	// exp.NewRunner defaults, 40k/400k).
	DefaultWarmup, DefaultMeasure uint64
	// MaxBudget caps a job's warmup and measure budgets; a job asking
	// for more is rejected as invalid rather than monopolizing a worker
	// (<= 0: 5M instructions per core).
	MaxBudget uint64

	// DefaultTimeout is the per-job deadline applied when the client
	// does not request one (<= 0: 60s). MaxTimeout caps client-requested
	// deadlines (<= 0: 5m); requests beyond the cap are clamped.
	DefaultTimeout, MaxTimeout time.Duration

	// Retries bounds re-attempts of retryable-classified failures
	// (exp.IsRetryable); RetryBase is the first backoff step, doubling
	// per attempt with jitter (<= 0: 50ms).
	Retries   int
	RetryBase time.Duration
	// JitterSeed seeds the backoff jitter stream (deterministic, like
	// every other random source in this repository).
	JitterSeed uint64

	// MemoLimit bounds the per-runner in-memory memo; past it the
	// runner is retired and replaced, so a long-running service does
	// not accumulate every Result it ever computed (<= 0: 1024 specs).
	MemoLimit int

	// Cache, when non-nil, persists and serves completed runs
	// content-addressed on disk: repeated traffic gets cached answers.
	Cache *exp.DiskCache

	// Logf receives operational log lines (nil: silent). It must be
	// safe for concurrent use; log.Printf and testing.T.Logf are.
	Logf func(format string, a ...any)

	// tune, when non-nil, is applied to every runner the server
	// creates — a test seam for substituting the simulation (see
	// exp.Runner.SetSimulate).
	tune func(*exp.Runner)
}

// withDefaults returns cfg with zero values normalized.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	def := exp.NewRunner()
	if c.DefaultWarmup == 0 {
		c.DefaultWarmup = def.Warmup
	}
	if c.DefaultMeasure == 0 {
		c.DefaultMeasure = def.Measure
	}
	if c.MaxBudget == 0 {
		c.MaxBudget = 5_000_000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DefaultTimeout > c.MaxTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.MemoLimit <= 0 {
		c.MemoLimit = 1024
	}
	return c
}

// maxBackoff caps one backoff sleep regardless of attempt count.
const maxBackoff = 2 * time.Second

// budgets keys one runner: the memo and single-flight maps inside
// exp.Runner assume runner-wide instruction budgets, so jobs with
// different budgets must not share a runner (their Specs would collide
// in the memo while describing different computations).
type budgets struct {
	warmup, measure uint64
}

// task is one accepted job travelling from admission to a worker and
// back to the waiting handler.
type task struct {
	spec            exp.Spec
	warmup, measure uint64

	ctx    context.Context
	cancel context.CancelFunc

	res  *system.Results
	err  error
	done chan struct{} // closed by the worker once res/err are set
}

// Server is the simulation service. Create with New, install Handler
// on an http.Server (or use Main for the full signal-driven
// lifecycle), and call Start to launch the worker pool.
type Server struct {
	cfg Config
	mux *http.ServeMux

	//pcmaplint:chanowner never closed; workers exit via stop, queued tasks are cancelled by baseCancel
	queue chan *task
	stop  chan struct{}
	once  sync.Once // guards close(stop)

	// admitMu fences admission against BeginDrain: admits hold the read
	// side across the draining check and the enqueue, so a drain either
	// sees the task in pending or the task sees draining.
	admitMu  sync.RWMutex
	draining atomic.Bool
	pending  sync.WaitGroup // accepted tasks not yet answered
	workers  sync.WaitGroup

	// baseCtx parents every job context; Close cancels it so handlers
	// blocked on abandoned queued tasks unblock at forced shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	met svcCounters

	// mu guards the runner table, the aggregate registry (including
	// lazy materialization of per-result registries), and the jitter
	// stream.
	mu sync.Mutex
	//pcmaplint:guardedby mu
	runners map[budgets]*exp.Runner
	// retiredSims/retiredHits are totals folded in from retired runners.
	//pcmaplint:guardedby mu
	retiredSims uint64
	//pcmaplint:guardedby mu
	retiredHits uint64
	//pcmaplint:guardedby mu
	agg *stats.Registry
	//pcmaplint:guardedby mu
	jitter *sim.RNG
}

// New builds a Server from cfg (zero values defaulted, see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		queue:      make(chan *task, cfg.QueueDepth),
		stop:       make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
		runners:    map[budgets]*exp.Runner{},
		agg:        stats.NewRegistry(),
		jitter:     sim.NewRNG(cfg.JitterSeed),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler: the job, health, and
// metrics endpoints behind a panic-isolating wrapper (a handler bug
// answers 500 instead of tearing down the connection).
func (s *Server) Handler() http.Handler {
	return recoverHandler(s.mux)
}

// Start launches the worker pool. Call once, before serving traffic.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
}

// BeginDrain stops admission: from its return, readyz answers 503 and
// new jobs are rejected with 503. Already-accepted jobs (queued or
// executing) keep running.
func (s *Server) BeginDrain() {
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
}

// Drain blocks until every accepted job has been answered, or until
// ctx expires (returning its error). Call after BeginDrain.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the worker pool and cancels every outstanding job
// context so handlers blocked on abandoned tasks unblock. Safe to call
// more than once.
func (s *Server) Close() {
	s.once.Do(func() { close(s.stop) })
	s.baseCancel()
	s.workers.Wait()
}

// logf emits one operational log line when logging is configured.
func (s *Server) logf(format string, a ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, a...)
	}
}

// Main runs the full service lifecycle and returns the process exit
// code: serve on ln until a signal arrives on sig, then stop admission,
// drain in-flight jobs up to drainTimeout, shut the listener down, and
// return 0. A second signal while draining forces an immediate 130
// (the conventional fatal-signal status). The caller owns sig (wire it
// with signal.Notify for SIGTERM/SIGINT) and ln.
func (s *Server) Main(ln net.Listener, sig <-chan os.Signal, drainTimeout time.Duration) int {
	hs := &http.Server{Handler: s.Handler()}
	s.Start()
	//pcmaplint:chanowner buffered single-shot; Serve's goroutine sends once and exits, nobody closes it
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	s.logf("serving on %s", ln.Addr())

	select {
	case err := <-serveErr:
		// The listener failed under us — not a drain, an outage.
		s.logf("listener failed: %v", err)
		s.Close()
		return 1
	case <-sig:
	}

	s.logf("signal received: draining in-flight jobs (deadline %s; second signal forces exit)", drainTimeout)
	s.BeginDrain()
	//pcmaplint:chanowner buffered single-shot; the drain goroutine sends once and exits, nobody closes it
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := s.Drain(ctx)
		// The listener stays open during the drain so late requests get
		// an orderly 503 instead of a connection refused; it closes only
		// once in-flight work is done (or abandoned at the deadline).
		shctx, shcancel := context.WithTimeout(context.Background(), time.Second)
		defer shcancel()
		_ = hs.Shutdown(shctx)
		drained <- err
	}()
	select {
	case err := <-drained:
		s.Close()
		if err != nil {
			s.logf("drain deadline exceeded; abandoning queued jobs")
		} else {
			s.logf("drained cleanly")
		}
		return 0
	case <-sig:
		s.logf("second signal: forcing exit")
		return 130
	}
}

// admit decides one task's fate: 0 to run it, or the HTTP status to
// reject it with (503 draining, 429 queue full). An admitted task is
// counted in pending before it becomes visible to workers, which is
// what makes Drain's accounting exact.
func (s *Server) admit(t *task) int {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		s.met.rejectedDraining.Add(1)
		return http.StatusServiceUnavailable
	}
	s.pending.Add(1)
	select {
	case s.queue <- t:
		s.met.accepted.Add(1)
		return 0
	default:
		s.pending.Done()
		s.met.rejectedQueue.Add(1)
		return http.StatusTooManyRequests
	}
}

// worker executes queued tasks until Close.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.stop:
			return
		case t := <-s.queue:
			s.met.busy.Add(1)
			s.runTask(t)
			s.met.busy.Add(-1)
			s.pending.Done()
		}
	}
}

// runTask executes one job with bounded backoff retry. Panics inside
// the simulation are already converted to *exp.JobPanicError by the
// runner; classification into an HTTP answer happens in the handler.
func (s *Server) runTask(t *task) {
	defer close(t.done)
	defer t.cancel()
	r := s.runnerFor(t.warmup, t.measure)
	for attempt := 0; ; attempt++ {
		t.res, t.err = r.RunCtx(t.ctx, t.spec)
		if t.err == nil || attempt >= s.cfg.Retries || !exp.IsRetryable(t.err) {
			break
		}
		s.met.retried.Add(1)
		if !s.backoff(t.ctx, attempt) {
			break // job deadline expired mid-backoff
		}
	}
	if t.err == nil {
		s.aggregate(t.res)
	}
	s.maybeRetire(r, budgets{t.warmup, t.measure})
}

// backoff sleeps before retry attempt+1: exponential in the attempt
// number, capped, with the top half jittered so synchronized failures
// do not retry in lockstep. Returns false if the job deadline expired
// while sleeping.
func (s *Server) backoff(ctx context.Context, attempt int) bool {
	d := s.cfg.RetryBase << uint(attempt)
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	s.mu.Lock()
	jitter := time.Duration(s.jitter.Uint64() % uint64(d/2+1))
	s.mu.Unlock()
	timer := time.NewTimer(d/2 + jitter)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// runnerFor returns (creating on first use) the runner for one budget
// pair. Budget-distinct runners keep the memo sound; they share the
// disk cache, whose keys already encode the budgets.
func (s *Server) runnerFor(warmup, measure uint64) *exp.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := budgets{warmup, measure}
	if r, ok := s.runners[key]; ok {
		return r
	}
	r := exp.NewRunner()
	r.Warmup, r.Measure = warmup, measure
	r.Cache = s.cfg.Cache
	// Unlike a sweep, a service always reads the cache: repeated
	// traffic must get cached answers, not re-simulations.
	r.Resume = s.cfg.Cache != nil
	if s.cfg.tune != nil {
		s.cfg.tune(r)
	}
	s.runners[key] = r
	return r
}

// maybeRetire drops a runner whose memo outgrew the budget, folding
// its throughput totals into the service counters first. In-flight
// calls on the retired runner finish normally; later identical jobs
// fall back to the disk cache.
func (s *Server) maybeRetire(r *exp.Runner, key budgets) {
	if r.MemoLen() <= s.cfg.MemoLimit {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runners[key] != r {
		return // already replaced
	}
	sims, _, _ := r.Totals()
	s.retiredSims += sims
	s.retiredHits += r.CacheHits()
	delete(s.runners, key)
	s.logf("retired runner for budgets %d/%d (memo exceeded %d specs)",
		key.warmup, key.measure, s.cfg.MemoLimit)
}

// aggregate folds one completed job's simulation counters into the
// service-wide registry served at /metrics. The per-result registry is
// lazily materialized, so every touch happens under mu — two handlers
// answering the same memoized Results must not race its construction.
func (s *Server) aggregate(res *system.Results) {
	if res == nil || res.Mem == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agg.Merge(res.Mem.Registry())
}

// recoverHandler isolates handler panics: the offending request gets a
// structured 500 and the server keeps serving.
func recoverHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				writeError(w, http.StatusInternalServerError, errorBody{
					Kind: "panic", Message: "internal handler panic", Retryable: false})
			}
		}()
		next.ServeHTTP(w, r)
	})
}
