package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"pcmap/internal/config"
	"pcmap/internal/exp"
	"pcmap/internal/system"
	"pcmap/internal/workloads"
)

// maxJobBytes bounds a job request body. A spec is a few hundred bytes;
// anything larger is a client bug or abuse, rejected before parsing.
const maxJobBytes = 1 << 16

// JobRequest is the wire format of one simulation job. Field semantics
// mirror the pcmapsim adhoc flags; zero values mean "server default"
// for budgets and timeout and "off" for the knobs.
type JobRequest struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`

	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`

	WriteToReadRatio float64 `json:"write_to_read_ratio,omitempty"`
	Symmetric        bool    `json:"symmetric,omitempty"`
	FaultMode        string  `json:"fault_mode,omitempty"`
	WritePausing     bool    `json:"write_pausing,omitempty"`
	EnduranceBudget  uint64  `json:"endurance_budget,omitempty"`
	DriftProb        float64 `json:"drift_prob,omitempty"`
	VerifyWrites     bool    `json:"verify_writes,omitempty"`

	// TimeoutMS requests a per-job deadline in milliseconds; 0 takes
	// the server default and values above the server cap are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// errorBody is the JSON error answer:
//
//	{"error": {"kind": "timeout", "message": "...", "retryable": false}}
//
// Kind is the stable, machine-matchable taxonomy: invalid | overloaded
// | draining | timeout | panic | failed. Retryable tells the client
// whether re-submitting the identical job can help.
type errorBody struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

func writeError(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error errorBody `json:"error"`
	}{body})
}

// parseJob validates one request into an executable task. Validation
// errors come back as an errorBody (always kind "invalid", status 400)
// rather than an error: the taxonomy is part of the wire contract.
func (s *Server) parseJob(req JobRequest) (*task, *errorBody) {
	invalid := func(format string, a ...any) (*task, *errorBody) {
		return nil, &errorBody{Kind: "invalid", Message: fmt.Sprintf(format, a...)}
	}
	if req.Workload == "" {
		return invalid("missing workload")
	}
	if _, ok := workloads.MixByName(req.Workload); !ok {
		return invalid("unknown workload %q", req.Workload)
	}
	variant, err := lookupVariant(req.Variant)
	if err != nil {
		return invalid("%v", err)
	}
	switch req.FaultMode {
	case "", "always", "never":
	default:
		return invalid("unknown fault_mode %q (want empty, always, or never)", req.FaultMode)
	}
	if req.WriteToReadRatio < 0 {
		return invalid("write_to_read_ratio %g must be >= 0", req.WriteToReadRatio)
	}
	if req.DriftProb < 0 || req.DriftProb >= 1 {
		return invalid("drift_prob %g must be in [0,1)", req.DriftProb)
	}
	if req.TimeoutMS < 0 {
		return invalid("timeout_ms %d must be >= 0", req.TimeoutMS)
	}
	warmup, measure := req.Warmup, req.Measure
	if warmup == 0 {
		warmup = s.cfg.DefaultWarmup
	}
	if measure == 0 {
		measure = s.cfg.DefaultMeasure
	}
	if warmup > s.cfg.MaxBudget || measure > s.cfg.MaxBudget {
		return invalid("budgets %d/%d exceed the server cap of %d instructions per core",
			warmup, measure, s.cfg.MaxBudget)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	t := &task{
		spec: exp.Spec{
			Workload:         req.Workload,
			Variant:          variant,
			WriteToReadRatio: req.WriteToReadRatio,
			Symmetric:        req.Symmetric,
			FaultMode:        req.FaultMode,
			WritePausing:     req.WritePausing,
			EnduranceBudget:  req.EnduranceBudget,
			DriftProb:        req.DriftProb,
			VerifyWrites:     req.VerifyWrites,
			Seed:             req.Seed,
		},
		warmup:  warmup,
		measure: measure,
		done:    make(chan struct{}),
	}
	// The deadline covers queue wait plus execution: a job that sat
	// queued past its deadline answers timeout without ever simulating.
	t.ctx, t.cancel = context.WithTimeout(s.baseCtx, timeout)
	return t, nil
}

// lookupVariant resolves a variant name against the variant registry
// (the paper's six plus the registered follow-on systems).
func lookupVariant(name string) (config.Variant, error) {
	if v, ok := config.VariantByName(name); ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want one of %s)", name, strings.Join(config.VariantNames(), ", "))
}

// handleJob is POST /v1/jobs: parse, admit, wait, answer.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, errorBody{
			Kind: "invalid", Message: fmt.Sprintf("bad job JSON: %v", err)})
		return
	}
	t, berr := s.parseJob(req)
	if berr != nil {
		s.met.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, *berr)
		return
	}

	switch status := s.admit(t); status {
	case 0: // admitted
	case http.StatusTooManyRequests:
		t.cancel()
		// Retry-After is a hint, not a promise: one default job-time.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.DefaultTimeout)))
		writeError(w, status, errorBody{Kind: "overloaded",
			Message: "admission queue full; retry later", Retryable: true})
		return
	default: // draining
		t.cancel()
		writeError(w, status, errorBody{Kind: "draining",
			Message: "server is draining; submit to another instance", Retryable: true})
		return
	}

	// The worker owns t.done; the job context deadline (which also
	// covers queue wait, and which Close cancels at forced shutdown)
	// bounds how long this handler can block.
	select {
	case <-t.done:
	case <-t.ctx.Done():
	}
	s.answer(w, t)
}

// answer classifies one finished (or abandoned) task into the HTTP
// response and the service counters.
func (s *Server) answer(w http.ResponseWriter, t *task) {
	var err error
	select {
	case <-t.done:
		err = t.err // t.res/t.err writes happen-before close(t.done)
	default:
		// The job context ended before a worker finished the task (it
		// may never have been picked up): the deadline is the answer,
		// and t.res/t.err must not be touched — the worker may still be
		// writing them.
		err = t.ctx.Err()
	}
	if err == nil {
		data, encErr := system.EncodeResults(t.res)
		if encErr != nil {
			s.met.failed.Add(1)
			writeError(w, http.StatusInternalServerError, errorBody{
				Kind: "failed", Message: encErr.Error()})
			return
		}
		s.met.completed.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
		return
	}

	var pe *exp.JobPanicError
	switch {
	case errors.As(err, &pe):
		s.met.panicked.Add(1)
		writeError(w, http.StatusInternalServerError, errorBody{
			Kind: "panic", Message: pe.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timedOut.Add(1)
		writeError(w, http.StatusGatewayTimeout, errorBody{
			Kind: "timeout", Message: "job deadline exceeded"})
	case errors.Is(err, context.Canceled):
		// Only forced shutdown cancels job contexts.
		s.met.failed.Add(1)
		writeError(w, http.StatusServiceUnavailable, errorBody{
			Kind: "draining", Message: "job abandoned at shutdown", Retryable: true})
	default:
		s.met.failed.Add(1)
		writeError(w, http.StatusInternalServerError, errorBody{
			Kind: "failed", Message: err.Error(), Retryable: exp.IsRetryable(err)})
	}
}

// retryAfterSeconds renders a Retry-After hint, at least one second.
func retryAfterSeconds(d time.Duration) int {
	s := int(d / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing new work here while in-flight jobs finish.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
