package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixture(t *testing.T, content string) string {
	t.Helper()
	name := filepath.Join(t.TempDir(), "f.go")
	if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

func diagWithEdits(file string, edits ...FileEdit) Diagnostic {
	return Diagnostic{
		Analyzer: "test",
		Message:  "m",
		Fixes:    []SuggestedFix{{Message: "fix", Edits: edits}},
	}
}

func TestApplyFixesSplices(t *testing.T) {
	name := writeFixture(t, "abcdef")
	changed, skipped, err := ApplyFixes([]Diagnostic{
		diagWithEdits(name,
			FileEdit{Filename: name, Offset: 1, End: 3, NewText: "XY"},
			FileEdit{Filename: name, Offset: 5, End: 5, NewText: "+"},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(changed) != 1 {
		t.Fatalf("changed=%v skipped=%d", changed, skipped)
	}
	got, _ := os.ReadFile(name)
	if string(got) != "aXYde+f" {
		t.Errorf("got %q, want %q", got, "aXYde+f")
	}
}

// Two diagnostics emitting the same insertion (the import-addition
// case) must apply it once, not twice.
func TestApplyFixesDedupesIdenticalEdits(t *testing.T) {
	name := writeFixture(t, "abc")
	ins := FileEdit{Filename: name, Offset: 0, End: 0, NewText: "Z"}
	_, skipped, err := ApplyFixes([]Diagnostic{
		diagWithEdits(name, ins),
		diagWithEdits(name, ins),
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped=%d, want 0", skipped)
	}
	got, _ := os.ReadFile(name)
	if string(got) != "Zabc" {
		t.Errorf("got %q, want %q", got, "Zabc")
	}
}

// Conflicting overlaps keep the first edit in position order and report
// the rest as skipped, leaving the file parseable for a second run.
func TestApplyFixesSkipsOverlaps(t *testing.T) {
	name := writeFixture(t, "abcdef")
	_, skipped, err := ApplyFixes([]Diagnostic{
		diagWithEdits(name, FileEdit{Filename: name, Offset: 0, End: 4, NewText: "1"}),
		diagWithEdits(name, FileEdit{Filename: name, Offset: 2, End: 5, NewText: "2"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped=%d, want 1", skipped)
	}
	got, _ := os.ReadFile(name)
	if string(got) != "1ef" {
		t.Errorf("got %q, want %q", got, "1ef")
	}
}

func TestApplyFixesRejectsEditPastEOF(t *testing.T) {
	name := writeFixture(t, "ab")
	_, _, err := ApplyFixes([]Diagnostic{
		diagWithEdits(name, FileEdit{Filename: name, Offset: 0, End: 99, NewText: "x"}),
	})
	if err == nil {
		t.Fatal("expected an error for an edit past EOF")
	}
}
