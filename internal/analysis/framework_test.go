package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"pcmap/internal/analysis"
	"pcmap/internal/analysis/analysistest"
)

// frametest flags every function whose name starts with "Bad" — a
// minimal analyzer for exercising the harness itself.
var frametest = &analysis.Analyzer{
	Name: "frametest",
	Doc:  "reports functions named Bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fn.Name.Name, "Bad") {
					pass.Reportf(fn.Pos(), "function %s", fn.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestFrameworkWantMatchingAndSuppression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), frametest, "framework")
}

func TestMalformedIgnoreDirective(t *testing.T) {
	pkg, err := analysis.LoadFromSource("testdata/src", "badreason")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{frametest})
	if err != nil {
		t.Fatal(err)
	}
	var malformed int
	var sawBad, sawBadBare, sawSuppressed bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs analyzer name(s) and a reason") {
			malformed++
		}
		switch d.Message {
		case "function Bad":
			sawBad = true // a reasonless directive must not suppress
		case "function BadBare":
			sawBadBare = true // nor a bare one
		case "function BadSuppressed":
			sawSuppressed = true // a well-formed directive must
		}
	}
	if malformed != 2 || !sawBad || !sawBadBare || sawSuppressed {
		t.Fatalf("want 2 malformed-directive reports, unsuppressed Bad and BadBare, suppressed BadSuppressed; got:\n%s", analysistest.Fprint(diags))
	}
}

// TestLoadModulePackages loads real module packages through the
// go list / export data path, including an in-package test merge and an
// external test package.
func TestLoadModulePackages(t *testing.T) {
	pkgs, err := analysis.Load("../..", "pcmap/internal/sim", "pcmap/internal/energy")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	sim := byPath["pcmap/internal/sim"]
	if sim == nil {
		t.Fatal("pcmap/internal/sim not loaded")
	}
	if sim.Types.Scope().Lookup("Time") == nil {
		t.Error("sim.Time not in loaded package scope")
	}
	// engine_test.go is an in-package test file; its syntax must be
	// merged into the sim package.
	found := false
	for _, f := range sim.Syntax {
		if strings.HasSuffix(sim.Fset.Position(f.Pos()).Filename, "engine_test.go") {
			found = true
		}
	}
	if !found {
		t.Error("in-package test file engine_test.go not merged into sim package")
	}
	if byPath["pcmap/internal/energy_test"] == nil {
		t.Error("external test package energy_test not loaded")
	}
}
