// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest with
// only the standard library.
//
// An expectation is a comment of the form
//
//	// want "regexp"
//	// want "regexp1" "regexp2"
//
// on the line the diagnostic is reported at. Every diagnostic must
// match a want on its line, and every want must be matched by a
// diagnostic, or the test fails.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pcmap/internal/analysis"
)

// TestData returns the test data directory for the caller's package:
// ./testdata, resolved to an absolute path.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads each fixture package (a directory under dir/src named by
// its import path) and applies the analyzer, comparing diagnostics with
// the // want comments in the fixture source.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		pkg, err := analysis.LoadFromSource(filepath.Join(dir, "src"), pkgPath)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pkgPath, err)
			continue
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkgPath, err)
			continue
		}
		checkExpectations(t, pkg, diags)
	}
}

// wantKey identifies one expectation site.
type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*want{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{file: pos.Filename, line: pos.Line}
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, arg := range args {
					pattern := arg[1] // backquoted form
					if pattern == "" && arg[2] != "" {
						pattern = strings.ReplaceAll(arg[2], `\"`, `"`)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, arg[1], err)
						continue
					}
					wants[key] = append(wants[key], &want{re: re, raw: arg[1]})
				}
			}
		}
	}

	for _, d := range diags {
		key := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		if !claim(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.raw)
			}
		}
	}
}

// claim marks the first unmatched want whose pattern matches msg.
func claim(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fprint is a debugging helper: it formats diagnostics one per line.
func Fprint(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}
