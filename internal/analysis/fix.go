package analysis

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by diags to the files
// on disk and returns the filenames that changed (sorted) plus the
// number of edits skipped because they overlapped an earlier edit.
// Identical edits (same range, same replacement) from different
// diagnostics are coalesced; genuinely conflicting overlaps keep the
// first edit in position order and skip the rest, so one -fix run is
// always safe and a second run picks up whatever remains.
func ApplyFixes(diags []Diagnostic) (changed []string, skipped int, err error) {
	byFile := map[string][]FileEdit{}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				if e.Filename == "" || e.Offset < 0 || e.End < e.Offset {
					return nil, 0, fmt.Errorf("analysis: malformed edit %+v", e)
				}
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
		}
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, name := range files {
		edits := dedupeEdits(byFile[name])
		kept := edits[:0]
		lastEnd := -1
		for _, e := range edits {
			if e.Offset < lastEnd {
				skipped++
				continue
			}
			kept = append(kept, e)
			lastEnd = e.End
		}
		if len(kept) == 0 {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, skipped, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		if end := kept[len(kept)-1].End; end > len(src) {
			return nil, skipped, fmt.Errorf("analysis: edit end %d past EOF of %s (%d bytes); file changed since analysis?", end, name, len(src))
		}
		out := make([]byte, 0, len(src))
		prev := 0
		for _, e := range kept {
			out = append(out, src[prev:e.Offset]...)
			out = append(out, e.NewText...)
			prev = e.End
		}
		out = append(out, src[prev:]...)
		info, err := os.Stat(name)
		if err != nil {
			return nil, skipped, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		if err := os.WriteFile(name, out, info.Mode().Perm()); err != nil {
			return nil, skipped, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		changed = append(changed, name)
	}
	return changed, skipped, nil
}

// dedupeEdits sorts edits by position and drops exact duplicates (the
// same insertion emitted once per diagnostic, e.g. an import addition).
func dedupeEdits(edits []FileEdit) []FileEdit {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Offset != edits[j].Offset {
			return edits[i].Offset < edits[j].Offset
		}
		if edits[i].End != edits[j].End {
			return edits[i].End < edits[j].End
		}
		return edits[i].NewText < edits[j].NewText
	})
	out := edits[:0]
	for i, e := range edits {
		if i > 0 && e == edits[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}
