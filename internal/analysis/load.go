package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. For
// module packages the in-package test files are merged into Syntax (Go
// forbids an in-package test file from importing a dependent of its own
// package, so the merge cannot create a cycle); external test packages
// (package foo_test) are returned as a separate Package.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	DepOnly      bool
	Standard     bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns (go list syntax, e.g.
// "./...") in the module rooted at dir, type-checks each from source
// with its in-package test files merged, and returns them sorted by
// import path. External test packages follow the package they test.
//
// Dependencies are imported from compiler export data discovered via
// `go list -export`, so the module must build; Load reports the
// compiler's errors otherwise.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	// Test files may import packages outside the non-test dependency
	// graph (testing, os/exec, ...); fetch their export data too.
	extra := map[string]bool{}
	for _, p := range targets {
		for _, imp := range append(append([]string{}, p.TestImports...), p.XTestImports...) {
			if imp != "C" && exports[imp] == "" {
				extra[imp] = true
			}
		}
	}
	if len(extra) > 0 {
		paths := make([]string, 0, len(extra))
		for p := range extra {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		more, err := goList(dir, append([]string{"-deps"}, paths...))
		if err != nil {
			return nil, err
		}
		for _, p := range more {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which this loader does not support", t.ImportPath)
		}
		inPkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, append(append([]string{}, t.GoFiles...), t.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, inPkg)
		if len(t.XTestGoFiles) > 0 {
			xt, err := checkFiles(fset, imp, t.ImportPath+"_test", t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

// goList runs `go list -e -export -json` with the given arguments and
// decodes the JSON stream.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f := exports[path]
		if f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkFiles parses and type-checks one set of files as a package.
func checkFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		max := len(typeErrs)
		if max > 10 {
			max = 10
		}
		return nil, fmt.Errorf("analysis: %s does not type-check:\n\t%s", pkgPath, strings.Join(typeErrs[:max], "\n\t"))
	}
	name := ""
	if len(syntax) > 0 {
		name = syntax[0].Name.Name
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      name,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// LoadFromSource type-checks the single package rooted at pkgDir,
// resolving imports first against sibling directories under srcRoot
// (fixture packages), then against the standard library's export data.
// The analysistest fixture runner uses it; the import path of each
// fixture package is its path relative to srcRoot.
func LoadFromSource(srcRoot, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	std := map[string]string{}
	ldr := &sourceLoader{
		srcRoot: srcRoot,
		fset:    fset,
		std:     std,
		cache:   map[string]*Package{},
	}
	ldr.stdImp = exportImporter(fset, std)
	return ldr.load(pkgPath)
}

type sourceLoader struct {
	srcRoot string
	fset    *token.FileSet
	std     map[string]string // std import path -> export file
	stdImp  types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

func (l *sourceLoader) load(pkgPath string) (*Package, error) {
	if p, ok := l.cache[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", pkgPath)
	}
	if l.loading == nil {
		l.loading = map[string]bool{}
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture package %q: %v", pkgPath, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture package %q has no Go files", pkgPath)
	}

	// Pre-resolve imports so fixture packages load (recursively) before
	// the type checker asks for them.
	imports, err := scanImports(dir, files)
	if err != nil {
		return nil, err
	}
	var stdNeeded []string
	for _, imp := range imports {
		if fi, statErr := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(imp))); statErr == nil && fi.IsDir() {
			if _, err := l.load(imp); err != nil {
				return nil, err
			}
		} else if l.std[imp] == "" {
			stdNeeded = append(stdNeeded, imp)
		}
	}
	if len(stdNeeded) > 0 {
		listed, err := goList(l.srcRoot, append([]string{"-deps"}, stdNeeded...))
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				l.std[p.ImportPath] = p.Export
			}
		}
	}

	pkg, err := checkFiles(l.fset, importerFunc(func(path string) (*types.Package, error) {
		if p, ok := l.cache[path]; ok {
			return p.Types, nil
		}
		return l.stdImp.Import(path)
	}), pkgPath, dir, files)
	if err != nil {
		return nil, err
	}
	l.cache[pkgPath] = pkg
	return pkg, nil
}

// scanImports parses just the import clauses of files in dir.
func scanImports(dir string, files []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
