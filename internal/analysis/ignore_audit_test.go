package analysis_test

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ignoreBudget pins the number of //pcmaplint:ignore directives in the
// repository (fixtures under testdata excluded). Suppressions are debt:
// each one is a finding the analyzers would report that we have decided
// to live with. Adding one is sometimes right — but it should show up
// in review as this number changing, not slip in silently. Update the
// count when you add or remove a directive, and keep the reason text
// honest.
const ignoreBudget = 9

// TestIgnoreDirectiveAudit walks the repository, checks every ignore
// directive is well-formed (analyzer names and a reason), and compares
// the total against ignoreBudget.
func TestIgnoreDirectiveAudit(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var sites []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if !strings.HasPrefix(trimmed, "//pcmaplint:ignore") {
				continue
			}
			rel, _ := filepath.Rel(root, path)
			site := fmt.Sprintf("%s:%d", rel, i+1)
			sites = append(sites, site)
			// Well-formedness: "//pcmaplint:ignore analyzers reason...".
			// The framework reports reasonless directives at lint time;
			// this assert keeps the contract visible in the test suite
			// too.
			if len(strings.Fields(strings.TrimPrefix(trimmed, "//pcmaplint:ignore"))) < 2 {
				t.Errorf("%s: ignore directive without analyzer names and a reason: %s", site, trimmed)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != ignoreBudget {
		t.Errorf("repository has %d //pcmaplint:ignore directives, budget is %d; "+
			"if the new count is deliberate, update ignoreBudget\n%s",
			len(sites), ignoreBudget, strings.Join(sites, "\n"))
	}
}
