// Package analysis is a small, dependency-free static-analysis
// framework in the style of golang.org/x/tools/go/analysis. The
// canonical framework is not vendored here (the build must stand on the
// standard library alone), so this package reimplements the slice of it
// that pcmaplint needs: an Analyzer abstraction, a Pass carrying the
// loaded syntax and type information for one package, positioned
// Diagnostics, and an in-source suppression directive.
//
// Suppression: a comment of the form
//
//	//pcmaplint:ignore name1,name2 reason text
//
// on the same line as, or the line immediately above, a diagnostic
// suppresses findings from the named analyzers. The reason text is
// mandatory; a directive without one is itself reported. This keeps
// every suppression auditable (grep for pcmaplint:ignore).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one check. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, used in output and directives
	Doc  string // one-paragraph description of what it reports
	Run  func(*Pass) error
}

// Pass carries the per-package inputs to an Analyzer's Run and collects
// its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // syntax of the package under analysis
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at one position. Fixes, when present,
// carry mechanical rewrites that resolve the finding; pcmaplint -fix
// applies them (see ApplyFixes).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// SuggestedFix is one mechanical rewrite resolving a diagnostic. Every
// edit is expressed as a resolved byte range so the driver can apply it
// without re-loading the package.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []FileEdit `json:"edits"`
}

// FileEdit replaces the byte range [Offset, End) of Filename with
// NewText. Offset == End is an insertion.
type FileEdit struct {
	Filename string `json:"file"`
	Offset   int    `json:"offset"`
	End      int    `json:"end"`
	NewText  string `json:"newText"`
}

// TextEdit is the token.Pos form analyzers report fixes in; ReportFix
// resolves it to a FileEdit. Pos == End inserts NewText at Pos.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// String formats the diagnostic like a compiler error.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying one suggested fix. Edits
// are resolved against the pass's FileSet at report time; a suppressed
// diagnostic takes its fix with it, so -fix never edits an ignored
// site.
func (p *Pass) ReportFix(pos token.Pos, fixMessage string, edits []TextEdit, format string, args ...any) {
	fix := SuggestedFix{Message: fixMessage}
	for _, e := range edits {
		start := p.Fset.Position(e.Pos)
		end := p.Fset.Position(e.End)
		fix.Edits = append(fix.Edits, FileEdit{
			Filename: start.Filename,
			Offset:   start.Offset,
			End:      end.Offset,
			NewText:  e.NewText,
		})
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// Run applies each analyzer to the package, filters suppressed
// findings, and returns the surviving diagnostics sorted by position.
// Analyzer errors (not findings) abort the run.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.PkgPath, a.Name, err)
		}
	}
	diags = append(diags, sup.malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept, nil
}

// sortDiagnostics orders findings by file, line, column, analyzer,
// message — a total, deterministic order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

const ignoreDirective = "//pcmaplint:ignore"

// suppressions indexes ignore directives by (file, line, analyzer).
type suppressions struct {
	byLine    map[string]map[int][]string // file -> line -> analyzer names
	malformed []Diagnostic
}

func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line and the next line
	// (the "immediately preceding comment" form).
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]string{}}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "pcmaplint",
						Message:  "pcmaplint:ignore directive needs analyzer name(s) and a reason",
					})
					continue
				}
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = map[int][]string{}
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						s.byLine[pos.Filename][pos.Line] = append(s.byLine[pos.Filename][pos.Line], name)
					}
				}
			}
		}
	}
	return s
}
