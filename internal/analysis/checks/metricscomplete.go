package checks

import (
	"go/ast"
	"go/types"

	"pcmap/internal/analysis"
)

// MetricsComplete guards the most common silent-corruption bug in the
// metrics pipeline: adding a counter field to a Metrics struct and
// forgetting to thread it through aggregation. A forgotten field makes
// multi-channel runs under-report (Merge), leak warmup measurements
// into the measured window (Reset), or vanish from reports (Counters)
// — none of which fails a test on its own.
//
// The analyzer supports two lifecycle styles.
//
// Registry style (current): the Metrics type has one or more bind
// methods — methods taking a *stats.Registry parameter — that register
// every counter field by pointer; Merge, Reset, and Counters then
// delegate to the registry. Here the registration site is the single
// point of truth, so:
//
//   - each stats.Counter field must be referenced in at least one bind
//     method (an unregistered counter is invisible to every consumer);
//   - each pointer field whose element type is defined in the stats
//     package (LatencyTracker, Histogram, IRLP, ...) must still be
//     referenced in Reset — trackers are not registry-managed;
//   - the Merge, Reset, and Counters methods must exist.
//
// Legacy style (no bind method): each stats.Counter field must be
// referenced in the Merge, Reset, and Counters methods directly, and
// tracker fields in Reset, as above.
//
// Atomic counter blocks (the serve layer's service counters): a struct
// with two or more atomic.Uint64/Int64/Uint32/Int32 fields is a
// counters block maintained outside the registry because concurrent
// HTTP handlers touch it. The same forgotten-field bug applies with
// different spelling: every field must have a write site (Add, Store,
// Swap, CompareAndSwap) and a read site (Load) somewhere in the
// package, or it is either never incremented or never exposed.
var MetricsComplete = &analysis.Analyzer{
	Name: "metricscomplete",
	Doc:  "reports Metrics counter fields missing from registry binding or the Merge/Reset/Counters lifecycle",
	Run:  runMetricsComplete,
}

func runMetricsComplete(pass *analysis.Pass) error {
	checkAtomicCounterBlocks(pass)
	return checkMetricsLifecycle(pass)
}

// atomicCounterTypes are the sync/atomic numeric counters.
var atomicCounterTypes = map[string]bool{
	"Uint64": true, "Int64": true, "Uint32": true, "Int32": true,
}

// checkAtomicCounterBlocks finds structs made of atomic counters and
// requires every field to be both written and read in the package.
func checkAtomicCounterBlocks(pass *analysis.Pass) {
	var blocks [][]*types.Var
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var counters []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			t := f.Type()
			if n, isNamed := t.(*types.Named); isNamed {
				obj := n.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicCounterTypes[obj.Name()] {
					counters = append(counters, f)
				}
			}
		}
		if len(counters) >= 2 {
			blocks = append(blocks, counters)
		}
	}
	if len(blocks) == 0 {
		return
	}

	written := map[*types.Var]bool{}
	read := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fieldSel, ok := sel.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fs := pass.TypesInfo.Selections[fieldSel]
			if fs == nil || fs.Kind() != types.FieldVal {
				return true
			}
			v, ok := fs.Obj().(*types.Var)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Add", "Store", "Swap", "CompareAndSwap":
				written[v] = true
			case "Load":
				read[v] = true
			}
			return true
		})
	}
	for _, counters := range blocks {
		for _, f := range counters {
			if !written[f] {
				pass.Reportf(f.Pos(), "atomic counter field %s is never written (no Add/Store call in the package)", f.Name())
			}
			if !read[f] {
				pass.Reportf(f.Pos(), "atomic counter field %s is never exposed (no Load call in the package)", f.Name())
			}
		}
	}
}

func checkMetricsLifecycle(pass *analysis.Pass) error {
	obj := pass.Pkg.Scope().Lookup("Metrics")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	var counters, trackers []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if namedIn(f.Type(), "stats", "Counter") {
			counters = append(counters, f)
			continue
		}
		if ptr, ok := f.Type().(*types.Pointer); ok {
			// The registry index itself is lifecycle infrastructure,
			// not a measurement, so it is exempt.
			if namedIn(ptr.Elem(), "stats", "Registry") {
				continue
			}
			if n, ok := ptr.Elem().(*types.Named); ok {
				if p := n.Obj().Pkg(); p != nil && pkgLast(p.Path()) == "stats" {
					trackers = append(trackers, f)
				}
			}
		}
	}
	if len(counters) == 0 {
		return nil // not a metrics block in this package's sense
	}

	methods := map[string]*ast.FuncDecl{}
	var binders []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if recvNamed(pass, fd.Recv.List[0].Type) != tn {
				continue
			}
			methods[fd.Name.Name] = fd
			if isBindMethod(pass, fd) {
				binders = append(binders, fd)
			}
		}
	}

	// Registry style: counters are complete when registered in a bind
	// method; Merge/Reset/Counters delegate, so only their existence
	// (and tracker handling in Reset) is checked.
	required := map[string][]*types.Var{
		"Merge":    counters,
		"Reset":    append(append([]*types.Var{}, counters...), trackers...),
		"Counters": counters,
	}
	if len(binders) > 0 {
		bound := map[*types.Var]bool{}
		for _, fd := range binders {
			for v := range fieldsReferenced(pass, fd) {
				bound[v] = true
			}
		}
		for _, f := range counters {
			if !bound[f] {
				pass.Reportf(f.Pos(), "field %s is not registered in any (%s) bind method", f.Name(), tn.Name())
			}
		}
		required = map[string][]*types.Var{
			"Merge":    nil,
			"Reset":    trackers,
			"Counters": nil,
		}
	}
	for _, name := range []string{"Merge", "Reset", "Counters"} {
		m := methods[name]
		if m == nil {
			pass.Reportf(tn.Pos(), "Metrics has counter fields but no %s method; the full lifecycle is Merge/Reset/Counters", name)
			continue
		}
		used := fieldsReferenced(pass, m)
		for _, f := range required[name] {
			if !used[f] {
				pass.Reportf(f.Pos(), "field %s is not handled in (%s).%s", f.Name(), tn.Name(), name)
			}
		}
	}
	return nil
}

// isBindMethod reports whether fd takes a *stats.Registry parameter —
// the shape of a registry bind method.
func isBindMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		t := pass.TypesInfo.Types[p.Type].Type
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		if namedIn(ptr.Elem(), "stats", "Registry") {
			return true
		}
	}
	return false
}

// recvNamed resolves a method receiver type expression to its type
// name, unwrapping the pointer if present.
func recvNamed(pass *analysis.Pass, expr ast.Expr) *types.TypeName {
	t := pass.TypesInfo.Types[expr].Type
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// fieldsReferenced collects the struct fields selected anywhere in the
// method body.
func fieldsReferenced(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	used := map[*types.Var]bool{}
	if fd.Body == nil {
		return used
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel := pass.TypesInfo.Selections[se]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				used[v] = true
			}
		}
		return true
	})
	return used
}
