package checks

import (
	"go/ast"
	"go/types"

	"pcmap/internal/analysis"
)

// MetricsComplete guards the most common silent-corruption bug in the
// metrics pipeline: adding a counter field to a Metrics struct and
// forgetting to thread it through aggregation. A forgotten field makes
// multi-channel runs under-report (Merge), leak warmup measurements
// into the measured window (Reset), or vanish from reports (Counters)
// — none of which fails a test on its own.
//
// For any struct type named "Metrics" that has stats.Counter fields:
//
//   - each stats.Counter field must be referenced in the Merge, Reset,
//     and Counters methods;
//   - each pointer field whose element type is defined in the stats
//     package (LatencyTracker, Histogram, IRLP, ...) must be referenced
//     in Reset (Merge policy for trackers is type-specific, so only
//     lifecycle completeness is enforced for them);
//   - the three methods must exist.
var MetricsComplete = &analysis.Analyzer{
	Name: "metricscomplete",
	Doc:  "reports Metrics fields missing from the Merge/Reset/Counters lifecycle",
	Run:  runMetricsComplete,
}

func runMetricsComplete(pass *analysis.Pass) error {
	obj := pass.Pkg.Scope().Lookup("Metrics")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	var counters, trackers []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if namedIn(f.Type(), "stats", "Counter") {
			counters = append(counters, f)
			continue
		}
		if ptr, ok := f.Type().(*types.Pointer); ok {
			if n, ok := ptr.Elem().(*types.Named); ok {
				if p := n.Obj().Pkg(); p != nil && pkgLast(p.Path()) == "stats" {
					trackers = append(trackers, f)
				}
			}
		}
	}
	if len(counters) == 0 {
		return nil // not a metrics block in this package's sense
	}

	methods := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if recvNamed(pass, fd.Recv.List[0].Type) == tn {
				methods[fd.Name.Name] = fd
			}
		}
	}

	required := map[string][]*types.Var{
		"Merge":    counters,
		"Reset":    append(append([]*types.Var{}, counters...), trackers...),
		"Counters": counters,
	}
	for _, name := range []string{"Merge", "Reset", "Counters"} {
		m := methods[name]
		if m == nil {
			pass.Reportf(tn.Pos(), "Metrics has counter fields but no %s method; the full lifecycle is Merge/Reset/Counters", name)
			continue
		}
		used := fieldsReferenced(pass, m)
		for _, f := range required[name] {
			if !used[f] {
				pass.Reportf(f.Pos(), "field %s is not handled in (%s).%s", f.Name(), tn.Name(), name)
			}
		}
	}
	return nil
}

// recvNamed resolves a method receiver type expression to its type
// name, unwrapping the pointer if present.
func recvNamed(pass *analysis.Pass, expr ast.Expr) *types.TypeName {
	t := pass.TypesInfo.Types[expr].Type
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// fieldsReferenced collects the struct fields selected anywhere in the
// method body.
func fieldsReferenced(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	used := map[*types.Var]bool{}
	if fd.Body == nil {
		return used
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel := pass.TypesInfo.Selections[se]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				used[v] = true
			}
		}
		return true
	})
	return used
}
