// Package chanendpoint exercises the channel-ownership analyzer: every
// send needs a close site in the package or a chanowner annotation on
// the channel's declaration.
package chanendpoint

type pool struct {
	//pcmaplint:chanowner never closed; workers exit via stop, GC reaps the queue
	queue chan int
	other chan int
	stop  chan struct{}
}

func (p *pool) enqueue(v int) {
	p.queue <- v // clean: the field is annotated
}

func (p *pool) enqueueOther(v int) {
	p.other <- v // want `send on other, which this package never closes`
}

func (p *pool) shutdown() {
	close(p.stop)
}

func (p *pool) signalStop() {
	p.stop <- struct{}{} // clean: shutdown closes it
}

func producerClean() int {
	ch := make(chan int, 1)
	ch <- 1 // clean: closed below
	close(ch)
	return <-ch
}

func producerLeak() {
	ch := make(chan int, 1)
	ch <- 1 // want `send on ch, which this package never closes`
}

func producerAnnotated() {
	//pcmaplint:chanowner single-shot buffered result; nothing blocks on it after return
	ch := make(chan int, 1)
	ch <- 1
}

func suppressed() {
	ch := make(chan int, 1)
	//pcmaplint:ignore chanendpoint fixture demonstrating suppression on a send site
	ch <- 1
}
