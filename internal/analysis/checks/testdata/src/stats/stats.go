// Package stats is a fixture stand-in for pcmap/internal/stats.
package stats

// Counter is a monotonic event count.
type Counter struct{ n uint64 }

// Add increments by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the count.
func (c *Counter) Value() uint64 { return c.n }

// LatencyTracker mirrors the real tracker shape.
type LatencyTracker struct{ sum int64 }

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker { return &LatencyTracker{} }

// Registry mirrors the real hierarchical counter registry.
type Registry struct{ names []string }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds c under name.
func (r *Registry) Register(name string, c *Counter) { r.names = append(r.names, name) }

// Reset zeroes registered counters.
func (r *Registry) Reset() {}

// Merge folds other in.
func (r *Registry) Merge(other *Registry) {}
