// Package metricsregistry exercises the analyzer's registry mode: a
// Metrics block whose lifecycle delegates to a stats.Registry bound in
// a bind method. Counters must be registered there; Merge/Counters need
// not reference fields, but Reset must still rebuild trackers.
package metricsregistry

import "stats"

// Metrics registers its counters in bind; Dropped is deliberately
// forgotten, as is the tracker in Reset.
type Metrics struct {
	Reads  stats.Counter
	Writes stats.Counter

	Dropped stats.Counter // want `field Dropped is not registered in any \(Metrics\) bind method`

	ReadLatency *stats.LatencyTracker
	LostTracker *stats.LatencyTracker // want `field LostTracker is not handled in \(Metrics\)\.Reset`

	reg *stats.Registry
}

// bind registers the counter fields (all but Dropped).
func (m *Metrics) bind(r *stats.Registry) {
	r.Register("reads", &m.Reads)
	r.Register("writes", &m.Writes)
}

func (m *Metrics) registry() *stats.Registry {
	if m.reg == nil {
		m.reg = stats.NewRegistry()
		m.bind(m.reg)
	}
	return m.reg
}

// Merge delegates to the registry; no direct field references needed.
func (m *Metrics) Merge(other *Metrics) {
	m.registry().Merge(other.registry())
}

// Reset delegates counters to the registry but forgets LostTracker.
func (m *Metrics) Reset() {
	m.registry().Reset()
	m.ReadLatency = stats.NewLatencyTracker()
}

// Counters reads through the registry.
func (m *Metrics) Counters() []string { return nil }
