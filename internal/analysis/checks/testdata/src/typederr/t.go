// Package typederr exercises the typed-error analyzer.
package typederr

import (
	"errors"
	"fmt"
)

// UncorrectableError mirrors the simulator's typed read error.
type UncorrectableError struct {
	Addr uint64
}

func (e *UncorrectableError) Error() string {
	return fmt.Sprintf("uncorrectable at %#x", e.Addr)
}

// limit is named like an error but does not implement error; the
// analyzer must leave it alone.
type limitError struct{ n int }

var sentinel = &UncorrectableError{}

func violations(err error, u *UncorrectableError) {
	if u == sentinel { // want `comparing \*UncorrectableError with == breaks on wrapped errors; use errors\.Is`
		return
	}
	if sentinel != u { // want `comparing \*UncorrectableError with != breaks on wrapped errors; use errors\.Is`
		return
	}
	if _, ok := err.(*UncorrectableError); ok { // want `type assertion to \*UncorrectableError misses wrapped errors; use errors\.As`
		return
	}
	switch err.(type) {
	case *UncorrectableError: // want `type-switch case \*UncorrectableError misses wrapped errors; use errors\.As`
	default:
	}
	switch e := err.(type) {
	case *UncorrectableError: // want `type-switch case \*UncorrectableError misses wrapped errors; use errors\.As`
		_ = e
	}
}

func allowed(err error, u *UncorrectableError, l *limitError) {
	if u == nil || nil != u { // nil checks are fine
		return
	}
	var ue *UncorrectableError
	if errors.As(err, &ue) { // the blessed form
		_ = ue.Addr
	}
	if _, ok := err.(interface{ Timeout() bool }); ok { // non-Error-named targets are fine
		return
	}
	_ = l == &limitError{n: 1} // limitError does not implement error
	switch err.(type) {
	case nil:
	default:
	}
}
