// Package nodeterminism exercises the determinism analyzer: wall-clock
// reads, global randomness, and map-ordered output.
package nodeterminism

import (
	"fmt"
	"log"
	"math/rand" // want `import "math/rand": use the seeded sim\.RNG`
	"sort"
	"strings"
	"time"
)

func wallClock() {
	start := time.Now()          // want `time\.Now reads the wall clock`
	_ = time.Since(start)        // want `time\.Since reads the wall clock`
	_ = time.Duration(5) * time.Millisecond
}

func globalRand() int {
	return rand.Intn(10)
}

func mapOrderedOutput(m map[string]int) {
	for k, v := range m { // want `map iteration order is random: sort the keys before producing output \(sink: fmt\.Printf\)`
		fmt.Printf("%s=%d\n", k, v)
	}
	for k := range m { // want `map iteration order is random: sort the keys before producing output \(sink: log\.Println\)`
		log.Println(k)
	}
	var b strings.Builder
	for k := range m { // want `map iteration order is random: sort the keys before producing output \(sink: b\.WriteString\)`
		b.WriteString(k)
	}
}

func mapCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // collect-and-sort: not flagged
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k]) // printing from a sorted slice is fine
	}
	return keys
}

func mapPureWork(m map[string]int) int {
	total := 0
	for _, v := range m { // order-independent reduction: not flagged
		total += v
	}
	s := ""
	for k := range m { // fmt.Sprintf is pure; no sink here
		s = fmt.Sprintf("%s|%s", s, k)
	}
	_ = s
	return total
}
