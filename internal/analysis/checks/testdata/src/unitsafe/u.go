// Package unitsafe exercises the unit-mixing analyzer outside the
// defining packages, where the rules apply in full.
package unitsafe

import (
	"fmt"

	"mem"
	"sim"
)

func violations(t sim.Time, c mem.Cycles, p mem.Picos) {
	_ = sim.Time(c)  // want `direct conversion mem\.Cycles -> sim\.Time mixes units`
	_ = sim.Time(p)  // want `direct conversion mem\.Picos -> sim\.Time mixes units`
	_ = mem.Picos(t) // want `direct conversion sim\.Time -> mem\.Picos mixes units`
	_ = int64(t)     // want `conversion strips the sim\.Time unit`
	_ = float64(t)   // want `conversion strips the sim\.Time unit`
	_ = int(c)       // want `conversion strips the mem\.Cycles unit`
	_ = float64(p)   // want `conversion strips the mem\.Picos unit`
	_ = t * t        // want `multiplying sim\.Time by sim\.Time is not unit-correct`
	_ = t * c.Time() // want `multiplying sim\.Time by sim\.Time is not unit-correct`
}

func allowed(t sim.Time, c mem.Cycles, p mem.Picos, n int) {
	_ = sim.Time(5)     // bare -> unit: this is how literals acquire units
	_ = mem.Cycles(n)   // bare -> unit
	_ = c.Time()        // blessed conversion method
	_ = p.Time()        // blessed conversion method
	_ = t.Ticks()       // blessed accessor
	_ = c.Int()         // blessed accessor
	_ = t.Times(3)      // scalar scaling
	_ = 1000 * t        // duration-literal idiom: constant scalar
	_ = t * sim.Time(2) // constant-folded, also the literal idiom
	_ = t + t           // same-unit addition is fine
	_ = t / sim.Time(4) // ratios of like units are dimensionless in spirit
	fmt.Println(t)      // passing to interface{} is not a conversion
}
