// Package metricsnomethods has a Metrics struct with counters but no
// lifecycle methods at all.
package metricsnomethods

import "stats"

// Metrics lacks Merge, Reset, and Counters entirely.
type Metrics struct { // want `no Merge method` `no Reset method` `no Counters method`
	Hits stats.Counter
}
