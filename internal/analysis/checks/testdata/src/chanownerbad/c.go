// Package chanownerbad holds a reasonless chanowner directive; the
// driver test (not analysistest, whose want comments would become the
// directive's reason) asserts both the directive diagnostic and the
// unowned send it fails to excuse.
package chanownerbad

//pcmaplint:chanowner
var ch = make(chan int, 1)

func send() { ch <- 1 }
