// Package sim is a fixture stand-in for pcmap/internal/sim: the
// unitsafe analyzer matches unit types by (package path suffix, type
// name), so this one-element import path exercises the same logic.
package sim

// Time mirrors the real sim.Time.
type Time int64

// MemCycle mirrors the real tick constant.
const MemCycle Time = 25

// Ticks mirrors the accessor; defined here so conversions inside the
// defining package are visibly exempt.
func (t Time) Ticks() int64 { return int64(t) }

// Times scales by a bare count.
func (t Time) Times(n int) Time { return t * Time(n) }
