// Package svc is not in the sim-core set, so walltime stays silent
// here even though it reads the host clock.
package svc

import "time"

func Uptime(start time.Time) time.Duration {
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
