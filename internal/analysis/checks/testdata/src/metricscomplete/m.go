// Package metricscomplete exercises the metrics-lifecycle analyzer: a
// Metrics struct where one counter is missing from each lifecycle
// method and a tracker is missing from Reset.
package metricscomplete

import "stats"

// Metrics has deliberate gaps; each missing-field diagnostic anchors on
// the field declaration.
type Metrics struct {
	Reads  stats.Counter
	Writes stats.Counter // complete: in Merge, Reset, and Counters
	Stalls stats.Counter // want `field Stalls is not handled in \(Metrics\)\.Merge`

	Forgotten stats.Counter // want `field Forgotten is not handled in \(Metrics\)\.Reset` `field Forgotten is not handled in \(Metrics\)\.Counters`

	ReadLatency *stats.LatencyTracker
	LostTracker *stats.LatencyTracker // want `field LostTracker is not handled in \(Metrics\)\.Reset`

	label string // non-stats fields are not lifecycle-checked
}

// Merge folds other in, but forgets Stalls.
func (m *Metrics) Merge(other *Metrics) {
	m.Reads.Add(other.Reads.Value())
	m.Writes.Add(other.Writes.Value())
	m.Forgotten.Add(other.Forgotten.Value())
}

// Reset clears the block, but forgets Forgotten and LostTracker.
func (m *Metrics) Reset() {
	m.Reads = stats.Counter{}
	m.Writes = stats.Counter{}
	m.Stalls = stats.Counter{}
	m.ReadLatency = stats.NewLatencyTracker()
	m.label = ""
}

// Counters reports the counters, but forgets Forgotten.
func (m *Metrics) Counters() map[string]uint64 {
	return map[string]uint64{
		"reads":  m.Reads.Value(),
		"writes": m.Writes.Value(),
		"stalls": m.Stalls.Value(),
	}
}
