// Package guardedby exercises the lock-discipline analyzer: annotated
// fields must only be touched while the named mutex is held.
package guardedby

import "sync"

type box struct {
	mu sync.Mutex
	//pcmaplint:guardedby mu
	n int
	//pcmaplint:guardedby single-goroutine
	solo int
	free int // unannotated: never checked
}

// Malformed annotations are themselves diagnostics.
type broken struct {
	mu sync.Mutex
	//pcmaplint:guardedby
	noarg int // want `needs a mutex field name`
	//pcmaplint:guardedby lock
	nosuch int // want `not a field of this struct`
	//pcmaplint:guardedby noarg
	notmu int // want `not a sync.Mutex`
}

func (b *box) good() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.free++
}

func (b *box) goodDefer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *box) goodEarlyReturn() int {
	b.mu.Lock()
	if b.n > 0 {
		v := b.n
		b.mu.Unlock()
		return v
	}
	b.mu.Unlock()
	return 0
}

func (b *box) goodLoop(vals []int) {
	b.mu.Lock()
	for _, v := range vals {
		b.n += v
	}
	b.mu.Unlock()
}

func (b *box) bad() {
	b.n++ // want `field n is guarded by mu, which is not held here`
}

func (b *box) badAfterUnlock() {
	b.mu.Lock()
	b.n = 1
	b.mu.Unlock()
	b.n = 2 // want `field n is guarded by mu, which is not held here`
}

func (b *box) badConditionalLock(cond bool) {
	if cond {
		b.mu.Lock()
	}
	b.n++ // want `field n is guarded by mu, which is not held here`
	if cond {
		b.mu.Unlock()
	}
}

// A closure does not inherit the enclosing function's lock state: by
// the time it runs, the deferred unlock may long have fired.
func (b *box) badClosure() func() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() int {
		return b.n // want `field n is guarded by mu, which is not held here`
	}
}

// The guard is per-instance: holding a's mutex says nothing about c.
func transfer(a, c *box) {
	a.mu.Lock()
	c.n = a.n // want `field n is guarded by mu, which is not held here`
	a.mu.Unlock()
}

func (b *box) goodGoroutineLocks(done chan struct{}) {
	go func() {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
		close(done)
	}()
}

// single-goroutine fields may be used freely on the owning goroutine...
func (b *box) goodSolo() int {
	b.solo++
	return b.solo
}

// ...but not from a spawned one.
func (b *box) badSoloGoroutine(done chan struct{}) {
	go func() {
		b.solo++ // want `field solo is declared single-goroutine but is accessed inside a goroutine`
		close(done)
	}()
}

func (b *box) suppressed() int {
	//pcmaplint:ignore guardedby racy read is fine for a log line, torn values acceptable
	return b.n
}
