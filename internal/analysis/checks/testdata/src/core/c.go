// Package core is a stand-in for a deterministic sim-core package:
// wall-clock reads, host pacing, and global rand are all banned.
package core

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	time.Sleep(time.Millisecond) // want `time.Sleep ties simulated behavior to the host clock`
	return time.Now()            // want `time.Now ties simulated behavior to the host clock`
}

func jitter() int {
	return rand.Intn(10) // want `global rand.Intn is unseeded; draw from the forkable sim.RNG`
}

func suppressed() time.Time {
	//pcmaplint:ignore walltime fixture-only exception with a recorded reason
	return time.Now()
}

// Durations are values, not clock reads: manipulating them is fine.
func double(d time.Duration) time.Duration { return 2 * d }

// Seeded sources are fine too; only the package-level global is banned.
func seeded(r *rand.Rand) int { return r.Intn(10) }
