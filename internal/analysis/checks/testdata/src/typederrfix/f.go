package typederrfix

import "fmt"

type PathError struct{ Path string }

func (e *PathError) Error() string { return fmt.Sprintf("path %s", e.Path) }

func same(a, b *PathError) bool {
	return a == b
}

func differ(err error, target *PathError) bool {
	return err != target
}
