package typederrfix

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

type CodeError struct{ Code int }

func (e *CodeError) Error() string { return fmt.Sprintf("code %d", e.Code) }

func check(err error, t *CodeError) error {
	if err != t {
		return errSentinel
	}
	return nil
}
