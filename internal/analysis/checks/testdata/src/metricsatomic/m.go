// Package metricsatomic exercises the atomic-counter-block rule: in a
// struct of two or more sync/atomic counters, every field needs a write
// site and a Load site in the package.
package metricsatomic

import "sync/atomic"

type svcCounters struct {
	accepted atomic.Uint64
	ghost    atomic.Uint64 // want `atomic counter field ghost is never written`
	hidden   atomic.Int64  // want `atomic counter field hidden is never exposed`
}

func touch(c *svcCounters) {
	c.accepted.Add(1)
	c.hidden.Add(1)
}

func render(c *svcCounters) uint64 {
	return c.accepted.Load() + c.ghost.Load()
}

// A lone atomic next to non-counter fields is not a counters block.
type gate struct {
	draining atomic.Uint64
	name     string
}

func arm(g *gate) { g.draining.Store(1) }

// Suppression rides on the field line or the line above, as usual.
type debugCounters struct {
	hits atomic.Int64
	//pcmaplint:ignore metricscomplete scratch counter for ad-hoc debugging, intentionally unexposed
	scratch atomic.Int64
}

func bump(d *debugCounters) {
	d.hits.Add(1)
	d.scratch.Add(1)
}

func readHits(d *debugCounters) int64 { return d.hits.Load() }
