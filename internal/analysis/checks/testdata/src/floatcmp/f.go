// Package floatcmp exercises the float-equality analyzer.
package floatcmp

// Ratio is a named float type; the check looks through to the
// underlying type.
type Ratio float64

const eps = 1e-9

func violations(a, b float64, f float32, r Ratio) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != 0 { // want `floating-point != comparison`
		return true
	}
	if f == 0.5 { // want `floating-point == comparison`
		return true
	}
	return r == Ratio(1) // want `floating-point == comparison`
}

func allowed(a, b float64, n int) bool {
	if a < b || a >= b { // ordered comparisons are fine
		return true
	}
	if diff := a - b; diff < eps && diff > -eps { // epsilon compare
		return true
	}
	const half = 0.5
	if half == 0.5 { // both constant: exact, folded at compile time
		return true
	}
	return n == 3 // integers compare exactly
}
