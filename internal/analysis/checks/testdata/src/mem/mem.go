// Package mem is a fixture stand-in for pcmap/internal/mem's unit
// types.
package mem

import "sim"

// Cycles mirrors the real mem.Cycles.
type Cycles int

// Time converts cycles to simulated time; the raw conversions below are
// legal because this is the defining package.
func (c Cycles) Time() sim.Time { return sim.MemCycle.Times(int(c)) }

// Int returns the bare count.
func (c Cycles) Int() int { return int(c) }

// Picos mirrors the real mem.Picos.
type Picos int64

// Time truncates to a whole tick; the cross-unit conversion is exempt
// here (Picos' defining package).
func (p Picos) Time() sim.Time { return sim.Time(p / 100) }
