// Package goroutinelife exercises the goroutine-lifecycle analyzer:
// every go statement must be tied to a visible completion or
// cancellation mechanism.
package goroutinelife

import (
	"context"
	"sync"
)

func work() {}

func leak() {
	go func() { work() }() // want `goroutine has no completion or cancellation mechanism`
}

func namedLeak() {
	go work() // want `goroutine has no completion or cancellation mechanism`
}

func suppressed() {
	//pcmaplint:ignore goroutinelife sanctioned fire-and-forget, process exit reaps it
	go work()
}

func joinedBySend(res chan int) {
	go func() { res <- 1 }()
}

func joinedByClose() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

func joinedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go work()
	wg.Wait()
}

func joinedByDone(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

func watch(ctx context.Context) { <-ctx.Done() }

func namedWithContext(ctx context.Context) {
	go watch(ctx)
}

func drain(ch chan int) {
	for range ch {
	}
}

func namedWithChannel(ch chan int) {
	go drain(ch)
}
