package checks

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pcmap/internal/analysis"
)

// NoDeterminism reports constructs that make a simulation run depend on
// anything other than its configuration and seed:
//
//   - time.Now / time.Since — wall-clock values leaking into results;
//   - importing math/rand or math/rand/v2 — the simulator must draw all
//     randomness from its seeded, forkable sim.RNG so runs replay
//     bit-for-bit (the global rand sources are unseeded and shared);
//   - ranging over a map while writing to an output sink — map
//     iteration order is randomized per run, so any output produced
//     inside such a loop differs between identically-seeded runs.
//     Collect-and-sort loops are fine; only loops whose body prints,
//     writes, or encodes are reported.
var NoDeterminism = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc:  "reports wall-clock reads, unseeded global randomness, and map-ordered output",
	Run:  runNoDeterminism,
}

// bannedTimeFuncs are the time package functions that read the wall
// clock.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// sinkMethods are method names that commit bytes to an output stream;
// calling one inside a map-range makes the output order depend on map
// iteration order.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "AddRow": true,
}

func runNoDeterminism(pass *analysis.Pass) error {
	// Wall-clock reads: every use of time.Now / time.Since / time.Until.
	type posUse struct {
		pos  ast.Node
		name string
	}
	var uses []posUse
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !bannedTimeFuncs[fn.Name()] {
			continue
		}
		uses = append(uses, posUse{ident, fn.Name()})
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].pos.Pos() < uses[j].pos.Pos() })
	for _, u := range uses {
		pass.Reportf(u.pos.Pos(), "time.%s reads the wall clock; simulation results must depend only on config and seed", u.name)
	}

	for _, f := range pass.Files {
		// Global randomness: the import itself is the violation.
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "import %s: use the seeded sim.RNG so runs replay deterministically", imp.Path.Value)
			}
		}

		// Map-ordered output.
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.TypesInfo.Types[rs.X]
			if tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findOutputSink(pass, rs.Body); sink != nil {
				pass.Reportf(rs.Pos(), "map iteration order is random: sort the keys before producing output (sink: %s)", sinkName(sink))
			}
			return true
		})
	}
	return nil
}

// findOutputSink returns the first call in body that writes to an
// output stream, or nil.
func findOutputSink(pass *analysis.Pass, body *ast.BlockStmt) *ast.SelectorExpr {
	var found *ast.SelectorExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Package-level printers: fmt.Print*/fmt.Fprint*, anything in log.
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				path := pn.Imported().Path()
				name := sel.Sel.Name
				if path == "log" ||
					(path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint"))) {
					found = sel
					return false
				}
				return true // other package funcs (fmt.Sprintf, ...) are pure
			}
		}
		// Writer/encoder methods.
		if sinkMethods[sel.Sel.Name] {
			if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				found = sel
				return false
			}
		}
		return true
	})
	return found
}

func sinkName(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
