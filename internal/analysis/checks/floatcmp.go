package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"pcmap/internal/analysis"
)

// FloatCmp reports == and != between floating-point values. In the
// statistics, energy, and experiment packages a float equality is
// almost always a latent bug: accumulated sums differ in the last ulp
// across refactorings that are supposed to be behavior-preserving, so
// such comparisons silently flip. Compare against an epsilon, or
// compare the underlying integer counters instead. Comparisons where
// both operands are compile-time constants are exact and allowed.
var FloatCmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "reports ==/!= on floating-point operands (use an epsilon or compare integer counters)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt := pass.TypesInfo.Types[be.X]
			yt := pass.TypesInfo.Types[be.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded: exact
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; compare with an epsilon or use integer counters", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
