package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"pcmap/internal/analysis"
)

// ChanEndpoint enforces channel ownership: every channel a non-test
// function sends on must have a provable owner — either the package
// also closes the channel (the close site is the owner), or the
// channel's declaration carries an ownership annotation:
//
//	//pcmaplint:chanowner never closed; workers exit via the stop channel
//	queue chan *task
//
// The annotation goes on, or on the line above, the declaration (a
// struct field or the := / var site of a local), and its reason text is
// mandatory — a bare directive is itself reported, exactly like a
// reasonless //pcmaplint:ignore. The point is the PDES sharding work:
// shard-boundary queues are channels, and a channel with no owner on
// record is a channel whose shutdown order nobody has thought about
// (send-on-closed panics, leaked receivers).
//
// Sends on channels the checker cannot resolve to a declaration (calls
// returning channels, map elements) are out of scope.
var ChanEndpoint = &analysis.Analyzer{
	Name: "chanendpoint",
	Doc:  "reports sends on channels with neither a close in the package nor a pcmaplint:chanowner annotation",
	Run:  runChanEndpoint,
}

const chanOwnerDirective = "pcmaplint:chanowner"

func runChanEndpoint(pass *analysis.Pass) error {
	owned := collectChanOwners(pass)
	closed := map[types.Object]bool{}
	type send struct {
		pos token.Pos
		obj types.Object
	}
	var sends []send

	for _, f := range pass.Files {
		test := isTestFile(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// close(ch) anywhere in the package (tests included: a
				// test that owns a channel's shutdown is still an owner).
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if obj := chanObject(pass, n.Args[0]); obj != nil {
						closed[obj] = true
					}
				}
			case *ast.SendStmt:
				if test {
					return true
				}
				if obj := chanObject(pass, n.Chan); obj != nil {
					sends = append(sends, send{n.Arrow, obj})
				}
			}
			return true
		})
	}

	sort.Slice(sends, func(i, j int) bool { return sends[i].pos < sends[j].pos })
	for _, s := range sends {
		if closed[s.obj] || owned[s.obj] {
			continue
		}
		pass.Reportf(s.pos, "send on %s, which this package never closes and whose declaration has no pcmaplint:chanowner annotation", s.obj.Name())
	}
	return nil
}

// collectChanOwners maps declared objects to their chanowner
// annotations, matching a directive on the declaration line or the line
// immediately above. Reasonless directives are reported.
func collectChanOwners(pass *analysis.Pass) map[types.Object]bool {
	// File -> line -> annotated, from every directive comment.
	annotated := map[string]map[int]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, chanOwnerDirective) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if strings.TrimSpace(strings.TrimPrefix(text, chanOwnerDirective)) == "" {
					pass.Reportf(c.Pos(), "pcmaplint:chanowner directive needs a reason (who owns the channel and how it shuts down)")
					continue
				}
				if annotated[pos.Filename] == nil {
					annotated[pos.Filename] = map[int]bool{}
				}
				annotated[pos.Filename][pos.Line] = true
			}
		}
	}

	owned := map[types.Object]bool{}
	for ident, obj := range pass.TypesInfo.Defs {
		if obj == nil {
			continue
		}
		if _, ok := obj.(*types.Var); !ok {
			continue
		}
		pos := pass.Fset.Position(ident.Pos())
		lines := annotated[pos.Filename]
		if lines == nil {
			continue
		}
		if lines[pos.Line] || lines[pos.Line-1] {
			owned[obj] = true
		}
	}
	return owned
}

// chanObject resolves a send/close operand to the declared object of
// the channel: a local or package variable, or a struct field.
func chanObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			if sel := pass.TypesInfo.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			// Qualified package-level variable (pkg.Chan).
			if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}
