package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"pcmap/internal/analysis"
)

// UnitSafe enforces the unit-type discipline around the simulator's
// time-like quantities. Three defined types carry units:
//
//	sim.Time   — simulated time, 100 ps engine ticks
//	mem.Cycles — 400 MHz memory-bus clock cycles (a count, not a time)
//	mem.Picos  — picoseconds (PCM cell timings from the device literature)
//
// Mixing them through bare conversions is exactly the
// cycles-versus-nanoseconds class of bug that silently rescales every
// simulated latency, so outside a unit's defining package:
//
//   - converting one unit type directly to another is reported
//     (go through the conversion methods: Cycles.Time, Picos.Time, ...);
//   - converting a unit value to a bare numeric type is reported
//     (use the accessor methods: Time.Ticks, Cycles.Int, Picos.NS);
//   - multiplying two non-constant unit-typed values is reported (a
//     time times a time is not a time; use Times/Scale for scalar
//     scaling). Constant operands stay legal so the duration-literal
//     idiom (1000 * sim.CPUCycle, like 10 * time.Second) reads
//     naturally.
//
// Constructing a unit from a bare numeric (sim.Time(5), mem.Cycles(n))
// stays legal: that is how literals acquire units.
var UnitSafe = &analysis.Analyzer{
	Name: "unitsafe",
	Doc:  "reports conversions and arithmetic that mix sim.Time, mem.Cycles, and mem.Picos",
	Run:  runUnitSafe,
}

// unitTypes maps (defining package suffix, type name) to a display
// name.
var unitTypes = map[[2]string]string{
	{"sim", "Time"}:   "sim.Time",
	{"mem", "Cycles"}: "mem.Cycles",
	{"mem", "Picos"}:  "mem.Picos",
}

// unitOf returns the display name of t's unit ("" when t is not a unit
// type) and the suffix of its defining package.
func unitOf(t types.Type) (display, defPkg string) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", ""
	}
	last := pkgLast(obj.Pkg().Path())
	return unitTypes[[2]string{last, obj.Name()}], last
}

func runUnitSafe(pass *analysis.Pass) error {
	self := pkgLast(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, self, n)
			case *ast.BinaryExpr:
				if n.Op == token.MUL {
					checkUnitProduct(pass, self, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkConversion reports unit-violating type conversions.
func checkConversion(pass *analysis.Pass, self string, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	ftv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !ftv.IsType() {
		return
	}
	dst := ftv.Type
	atv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || atv.Type == nil {
		return
	}
	src := atv.Type
	srcUnit, srcPkg := unitOf(src)
	dstUnit, dstPkg := unitOf(dst)
	// A unit's defining package implements the conversion methods; the
	// raw conversions there are the single blessed implementation site.
	if (srcUnit != "" && srcPkg == self) || (dstUnit != "" && dstPkg == self) {
		return
	}
	switch {
	case srcUnit != "" && dstUnit != "" && srcUnit != dstUnit:
		pass.Reportf(call.Pos(), "direct conversion %s -> %s mixes units; use the conversion methods (e.g. %s.Time())", srcUnit, dstUnit, srcUnit)
	case srcUnit != "" && dstUnit == "" && isBareNumeric(dst):
		pass.Reportf(call.Pos(), "conversion strips the %s unit; use its accessor methods (Ticks/Int/NS) instead", srcUnit)
	}
}

// checkUnitProduct reports unit*unit multiplications.
func checkUnitProduct(pass *analysis.Pass, self string, be *ast.BinaryExpr) {
	xt := pass.TypesInfo.Types[be.X]
	yt := pass.TypesInfo.Types[be.Y]
	if xt.Type == nil || yt.Type == nil {
		return
	}
	// The duration-literal idiom (1000 * sim.CPUCycle, mirroring
	// 10 * time.Second) is legal: a constant operand is a scalar, not a
	// second unit-carrying quantity.
	if xt.Value != nil || yt.Value != nil {
		return
	}
	xu, xp := unitOf(xt.Type)
	yu, yp := unitOf(yt.Type)
	if xu == "" || yu == "" {
		return
	}
	if xp == self || yp == self {
		return
	}
	pass.Reportf(be.OpPos, "multiplying %s by %s is not unit-correct; scale with Times/Scale instead", xu, yu)
}

// isBareNumeric reports whether t is a predeclared numeric type.
func isBareNumeric(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
