// Package checks holds the pcmaplint analyzers: the simulator's
// determinism and correctness invariants, encoded as static checks.
// See DESIGN.md ("Simulator invariants") for the rationale behind each.
package checks

import (
	"go/types"
	"strings"

	"pcmap/internal/analysis"
)

// All lists every analyzer in the suite, in reporting order.
var All = []*analysis.Analyzer{
	ChanEndpoint,
	FloatCmp,
	GoroutineLife,
	GuardedBy,
	MetricsComplete,
	NoDeterminism,
	TypedErr,
	UnitSafe,
	WallTime,
}

// pkgLast returns the final element of an import path ("pcmap/internal/sim"
// -> "sim"). Analyzers match packages by this suffix so that test
// fixtures (whose import paths are single elements) exercise the same
// code paths as the real module packages.
func pkgLast(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedIn reports whether t is the named type pkg.name, with pkg
// matched as the last element of the defining package's import path.
func namedIn(t types.Type, pkg, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && pkgLast(obj.Pkg().Path()) == pkg
}
