package checks_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pcmap/internal/analysis"
	"pcmap/internal/analysis/analysistest"
	"pcmap/internal/analysis/checks"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.GuardedBy, "guardedby")
}

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.GoroutineLife, "goroutinelife")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.WallTime, "core")
}

// TestWallTimeScope checks the analyzer stays silent outside the
// sim-core package set: svc reads the wall clock freely.
func TestWallTimeScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.WallTime, "svc")
}

func TestChanEndpoint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.ChanEndpoint, "chanendpoint")
}

func TestMetricsAtomic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.MetricsComplete, "metricsatomic")
}

// TestChanOwnerReasonless drives the reasonless-directive case by hand:
// a // want comment on the directive's line would itself become the
// directive's reason, so analysistest cannot express this fixture.
func TestChanOwnerReasonless(t *testing.T) {
	pkg, err := analysis.LoadFromSource(filepath.Join(analysistest.TestData(t), "src"), "chanownerbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{checks.ChanEndpoint})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"pcmaplint:chanowner directive needs a reason",
		"send on ch, which this package never closes",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), analysistest.Fprint(diags))
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}

// TestTypedErrFix applies typederr's suggested fixes to a scratch copy
// of the typederrfix fixture, compares the result with the .golden
// files, and re-runs the analyzer on the fixed source to confirm the
// findings are gone.
func TestTypedErrFix(t *testing.T) {
	orig := filepath.Join(analysistest.TestData(t), "src", "typederrfix")
	scratch := filepath.Join(t.TempDir(), "src", "typederrfix")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(orig, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srcRoot := filepath.Dir(scratch)
	pkg, err := analysis.LoadFromSource(srcRoot, "typederrfix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{checks.TypedErr})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics before fixing, want 3:\n%s", len(diags), analysistest.Fprint(diags))
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Errorf("diagnostic %s carries no suggested fix", d)
		}
	}

	changed, skipped, err := analysis.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("ApplyFixes skipped %d overlapping edits, want 0", skipped)
	}
	if len(changed) != 2 {
		t.Errorf("ApplyFixes changed %d files, want 2: %v", len(changed), changed)
	}

	for _, name := range []string{"f.go", "g.go"} {
		got, err := os.ReadFile(filepath.Join(scratch, name))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(orig, name+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s after fixing does not match %s.golden:\n--- got ---\n%s\n--- want ---\n%s", name, name, got, want)
		}
	}

	// The fixed source must be clean: the point of a mechanical fix is
	// that applying it resolves the finding.
	fixedPkg, err := analysis.LoadFromSource(srcRoot, "typederrfix")
	if err != nil {
		t.Fatalf("fixed source does not load: %v", err)
	}
	fixedDiags, err := analysis.Run(fixedPkg, []*analysis.Analyzer{checks.TypedErr})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixedDiags) != 0 {
		t.Errorf("fixed source still has %d diagnostics:\n%s", len(fixedDiags), analysistest.Fprint(fixedDiags))
	}
}
