package checks_test

import (
	"testing"

	"pcmap/internal/analysis/analysistest"
	"pcmap/internal/analysis/checks"
)

func TestUnitSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.UnitSafe, "unitsafe")
}

// TestUnitSafeDefiningPackagesExempt checks that the fixture sim and
// mem packages — which contain the blessed raw conversions — produce no
// findings.
func TestUnitSafeDefiningPackagesExempt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.UnitSafe, "sim", "mem")
}

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.NoDeterminism, "nodeterminism")
}

func TestMetricsComplete(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.MetricsComplete, "metricscomplete", "metricsnomethods", "metricsregistry")
}

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.TypedErr, "typederr")
}

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), checks.FloatCmp, "floatcmp")
}
