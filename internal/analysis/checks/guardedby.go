package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"pcmap/internal/analysis"
)

// GuardedBy enforces the lock-discipline contract declared by field
// annotations, the static half of the concurrency ground rules the
// PDES sharding work builds on (DESIGN.md §12):
//
//	type Server struct {
//		mu sync.Mutex
//		//pcmaplint:guardedby mu
//		runners map[budgets]*exp.Runner
//	}
//
// An annotated field may only be read or written while the named mutex
// field of the same struct is held. Lock state is tracked syntactically
// per function, in source order through branches: mu.Lock()/mu.RLock()
// acquire, mu.Unlock()/mu.RUnlock() release, defer mu.Unlock() holds to
// the end of the function, and a branch that unlocks and returns does
// not leak its release into the fall-through path. Function literals
// start with no locks held (a closure may run on another goroutine), so
// a goroutine body must take the lock itself.
//
// The alternative annotation
//
//	//pcmaplint:guardedby single-goroutine
//
// declares a field confined to one goroutine by design (the simulator's
// "one system, one goroutine" rule); the analyzer then reports any
// access to it from inside a `go` function literal.
//
// Known syntactic limits, deliberate for a per-function checker:
// composite-literal construction (&T{field: v}) is not an access, so
// constructors may initialize before the value is shared; helper
// methods that acquire the lock for their caller are not modeled — the
// lock and the access must be visible in the same function.
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "reports accesses to //pcmaplint:guardedby fields without the named mutex held",
	Run:  runGuardedBy,
}

// singleGoroutine is the guardedby annotation value declaring
// goroutine confinement instead of a mutex.
const singleGoroutine = "single-goroutine"

// guardSpec is one annotated field: the mutex that guards it, or nil
// for single-goroutine confinement.
type guardSpec struct {
	mu     *types.Var
	muName string
}

// lockKey identifies one held lock: the object the receiver expression
// roots at (a receiver or local variable) plus the mutex field.
type lockKey struct {
	base types.Object
	mu   *types.Var
}

func runGuardedBy(pass *analysis.Pass) error {
	g := &guardChecker{pass: pass, guards: collectGuards(pass)}
	if len(g.guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g.stmts(fd.Body.List, map[lockKey]bool{}, false)
		}
	}
	return nil
}

// collectGuards scans struct declarations for guardedby annotations,
// reporting malformed ones (no value, unknown mutex field, or a guard
// that is not a sync.Mutex/RWMutex).
func collectGuards(pass *analysis.Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Field name -> object, for resolving the named mutex.
			byName := map[string]*types.Var{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						byName[name.Name] = v
					}
				}
			}
			for _, field := range st.Fields.List {
				arg, ok := fieldDirective(field, "pcmaplint:guardedby")
				if !ok {
					continue
				}
				if arg == "" {
					pass.Reportf(field.Pos(), "pcmaplint:guardedby needs a mutex field name or %q", singleGoroutine)
					continue
				}
				var spec guardSpec
				if arg == singleGoroutine {
					spec = guardSpec{muName: singleGoroutine}
				} else {
					mu := byName[arg]
					if mu == nil {
						pass.Reportf(field.Pos(), "pcmaplint:guardedby names %q, which is not a field of this struct", arg)
						continue
					}
					if !isMutexType(mu.Type()) {
						pass.Reportf(field.Pos(), "pcmaplint:guardedby names %q, which is not a sync.Mutex or sync.RWMutex", arg)
						continue
					}
					spec = guardSpec{mu: mu, muName: arg}
				}
				for _, name := range field.Names {
					if v := byName[name.Name]; v != nil {
						guards[v] = spec
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldDirective returns the argument of a //pcmaplint:<name> directive
// in the field's doc or trailing comment ("" when the directive has no
// argument), its position, and whether one was found.
func fieldDirective(field *ast.Field, directive string) (arg string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, directive) {
				continue
			}
			rest := strings.TrimPrefix(text, directive)
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				continue // a longer directive name, not ours
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", true
			}
			return fields[0], true
		}
	}
	return "", false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex")
}

// guardChecker walks function bodies threading the held-lock set
// through the statement structure.
type guardChecker struct {
	pass   *analysis.Pass
	guards map[*types.Var]guardSpec
}

// stmts checks a statement list in source order and reports whether it
// terminates abruptly (return/branch/panic), mutating held in place.
func (g *guardChecker) stmts(list []ast.Stmt, held map[lockKey]bool, inGo bool) bool {
	for _, s := range list {
		if g.stmt(s, held, inGo) {
			return true
		}
	}
	return false
}

func (g *guardChecker) stmt(s ast.Stmt, held map[lockKey]bool, inGo bool) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		if key, locks, ok := g.lockCall(s.X); ok {
			held[key] = locks
			if !locks {
				delete(held, key)
			}
			return false
		}
		g.expr(s.X, held, inGo)
		return isPanicCall(s.X)
	case *ast.DeferStmt:
		if _, locks, ok := g.lockCall(s.Call); ok && !locks {
			return false // deferred unlock: the lock stays held to function end
		}
		// Deferred closures and calls run at return; approximate with the
		// lock state at the defer site.
		g.expr(s.Call, held, inGo)
		return false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.expr(e, held, inGo)
		}
		for _, e := range s.Lhs {
			g.expr(e, held, inGo)
		}
		return false
	case *ast.IncDecStmt:
		g.expr(s.X, held, inGo)
		return false
	case *ast.SendStmt:
		g.expr(s.Chan, held, inGo)
		g.expr(s.Value, held, inGo)
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.expr(e, held, inGo)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						g.expr(e, held, inGo)
					}
				}
			}
		}
		return false
	case *ast.GoStmt:
		// The goroutine starts with no locks held, whatever the spawner
		// holds; it is also the boundary single-goroutine fields must not
		// cross.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			g.stmts(lit.Body.List, map[lockKey]bool{}, true)
		} else {
			g.expr(s.Call.Fun, held, inGo)
		}
		for _, e := range s.Call.Args {
			g.expr(e, held, inGo)
		}
		return false
	case *ast.BlockStmt:
		return g.stmts(s.List, held, inGo)
	case *ast.LabeledStmt:
		return g.stmt(s.Stmt, held, inGo)
	case *ast.IfStmt:
		g.stmt(s.Init, held, inGo)
		g.expr(s.Cond, held, inGo)
		thenHeld := cloneLocks(held)
		thenTerm := g.stmts(s.Body.List, thenHeld, inGo)
		elseHeld := cloneLocks(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = g.stmt(s.Else, elseHeld, inGo)
		}
		mergeBranches(held, thenHeld, thenTerm, elseHeld, elseTerm)
		return thenTerm && elseTerm && s.Else != nil
	case *ast.ForStmt:
		g.stmt(s.Init, held, inGo)
		g.expr(s.Cond, held, inGo)
		bodyHeld := cloneLocks(held)
		g.stmts(s.Body.List, bodyHeld, inGo)
		g.stmt(s.Post, bodyHeld, inGo)
		intersectLocks(held, bodyHeld)
		return false
	case *ast.RangeStmt:
		g.expr(s.X, held, inGo)
		bodyHeld := cloneLocks(held)
		g.stmts(s.Body.List, bodyHeld, inGo)
		intersectLocks(held, bodyHeld)
		return false
	case *ast.SwitchStmt:
		g.stmt(s.Init, held, inGo)
		g.expr(s.Tag, held, inGo)
		g.clauses(s.Body, held, inGo)
		return false
	case *ast.TypeSwitchStmt:
		g.stmt(s.Init, held, inGo)
		g.stmt(s.Assign, held, inGo)
		g.clauses(s.Body, held, inGo)
		return false
	case *ast.SelectStmt:
		return g.clauses(s.Body, held, inGo)
	default:
		return false
	}
}

// clauses checks every case/comm clause of a switch or select against a
// copy of held, then merges the non-terminating outcomes. It returns
// true only when every clause terminates (a select always runs one).
func (g *guardChecker) clauses(body *ast.BlockStmt, held map[lockKey]bool, inGo bool) bool {
	allTerm := len(body.List) > 0
	merged := cloneLocks(held)
	anyFall := false
	for _, clause := range body.List {
		clHeld := cloneLocks(held)
		var term bool
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				g.expr(e, clHeld, inGo)
			}
			term = g.stmts(c.Body, clHeld, inGo)
		case *ast.CommClause:
			g.stmt(c.Comm, clHeld, inGo)
			term = g.stmts(c.Body, clHeld, inGo)
		}
		if !term {
			if !anyFall {
				merged = clHeld
				anyFall = true
			} else {
				intersectLocks(merged, clHeld)
			}
			allTerm = false
		}
	}
	if anyFall {
		intersectLocks(held, merged)
	}
	return allTerm
}

// expr scans an expression for guarded-field accesses under the current
// lock state. Function literals are checked as independent functions
// with no locks held: a closure may outlive the critical section it was
// created in.
func (g *guardChecker) expr(e ast.Expr, held map[lockKey]bool, inGo bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.stmts(n.Body.List, map[lockKey]bool{}, inGo)
			return false
		case *ast.SelectorExpr:
			g.access(n, held, inGo)
		}
		return true
	})
}

// access reports one guarded-field selection made without its lock.
func (g *guardChecker) access(se *ast.SelectorExpr, held map[lockKey]bool, inGo bool) {
	sel := g.pass.TypesInfo.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok {
		return
	}
	spec, ok := g.guards[v]
	if !ok {
		return
	}
	if spec.mu == nil {
		if inGo {
			g.pass.Reportf(se.Sel.Pos(), "field %s is declared %s but is accessed inside a goroutine", v.Name(), singleGoroutine)
		}
		return
	}
	base := rootObject(g.pass, se.X)
	if base == nil {
		return // untrackable receiver expression; out of scope for a syntactic check
	}
	if !held[lockKey{base, spec.mu}] {
		g.pass.Reportf(se.Sel.Pos(), "field %s is guarded by %s, which is not held here", v.Name(), spec.muName)
	}
}

// lockCall matches E.mu.Lock/RLock/Unlock/RUnlock() where mu is a
// mutex-typed field; locks reports acquisition vs release.
func (g *guardChecker) lockCall(e ast.Expr) (key lockKey, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return lockKey{}, false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return lockKey{}, false, false
	}
	muSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	muField := g.pass.TypesInfo.Selections[muSel]
	if muField == nil || muField.Kind() != types.FieldVal {
		return lockKey{}, false, false
	}
	mu, isVar := muField.Obj().(*types.Var)
	if !isVar || !isMutexType(mu.Type()) {
		return lockKey{}, false, false
	}
	base := rootObject(g.pass, muSel.X)
	if base == nil {
		return lockKey{}, false, false
	}
	return lockKey{base, mu}, locks, true
}

// rootObject resolves the base identifier of a selector chain
// (s.cfg.x -> the object of s), or nil for receivers that are not
// rooted in a plain identifier.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		default:
			return nil
		}
	}
}

// isPanicCall reports whether e is a call to the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// cloneLocks copies a held-lock set.
func cloneLocks(held map[lockKey]bool) map[lockKey]bool {
	out := make(map[lockKey]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersectLocks drops from dst every lock not also held in other: a
// lock survives a join point only when held on every path into it.
func intersectLocks(dst, other map[lockKey]bool) {
	for k := range dst {
		if !other[k] {
			delete(dst, k)
		}
	}
}

// mergeBranches resolves an if/else join: a terminating branch does not
// constrain the fall-through state.
func mergeBranches(held, thenHeld map[lockKey]bool, thenTerm bool, elseHeld map[lockKey]bool, elseTerm bool) {
	switch {
	case thenTerm && elseTerm:
		// Nothing falls through; keep the pre-branch state for any dead
		// code that follows.
	case thenTerm:
		replaceLocks(held, elseHeld)
	case elseTerm:
		replaceLocks(held, thenHeld)
	default:
		intersectLocks(thenHeld, elseHeld)
		replaceLocks(held, thenHeld)
	}
}

func replaceLocks(dst, src map[lockKey]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}
