package checks

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pcmap/internal/analysis"
)

// WallTime enforces the deterministic-time invariant inside the
// simulation core: packages whose results must be a pure function of
// config and seed may not read, wait on, or derive anything from the
// host clock, and may not draw from the global (unseeded) rand source.
// Simulated time is sim.Time, advanced only by the event engine; the
// only sanctioned randomness is the forkable sim.RNG.
//
// The analyzer applies itself to the sim-core package set (sim, core,
// cpu, pcm, dimm, noc, cache, mem, system) and stays silent elsewhere —
// service and CLI layers are allowed wall-clock, subject to the
// repo-wide nodeterminism rules. It widens nodeterminism's Now/Since/
// Until ban with the pacing functions (Sleep, After, Tick, NewTimer,
// NewTicker, AfterFunc): a sim-core component that sleeps or schedules
// against the host clock would make event order depend on host timing,
// which is exactly what the conservative time-window synchronization
// planned for PDES sharding must be able to rule out statically.
var WallTime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "reports wall-clock and global-rand use inside deterministic sim-core packages",
	Run:  runWallTime,
}

// deterministicPkgs is the sim-core set: packages whose code runs under
// simulated time. Matched on the last import-path element so fixtures
// exercise the same path as module packages.
var deterministicPkgs = map[string]bool{
	"sim": true, "core": true, "cpu": true, "pcm": true, "dimm": true,
	"noc": true, "cache": true, "mem": true, "system": true, "pdes": true,
}

// wallClockFuncs are the time-package functions banned in sim-core:
// readers of the host clock plus the pacing machinery.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWallTime(pass *analysis.Pass) error {
	pkg := strings.TrimSuffix(pkgLast(pass.Pkg.Path()), "_test")
	if !deterministicPkgs[pkg] {
		return nil
	}
	type use struct {
		pos  ast.Node
		what string
	}
	var uses []use
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				uses = append(uses, use{ident, "time." + fn.Name() + " ties simulated behavior to the host clock"})
			}
		case "math/rand", "math/rand/v2":
			// Package-level functions draw from the shared global source,
			// which no seed in this repository controls.
			if fn.Type().(*types.Signature).Recv() == nil {
				uses = append(uses, use{ident, "global rand." + fn.Name() + " is unseeded; draw from the forkable sim.RNG"})
			}
		}
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].pos.Pos() < uses[j].pos.Pos() })
	for _, u := range uses {
		pass.Reportf(u.pos.Pos(), "%s; %s is a deterministic sim-core package (results must be a function of config and seed)", u.what, pkg)
	}
	return nil
}
