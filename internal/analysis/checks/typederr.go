package checks

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"pcmap/internal/analysis"
)

// TypedErr enforces errors.Is / errors.As for the simulator's typed
// errors (pointer types named *...Error that implement error, such as
// mem.UncorrectableError). Direct pointer comparison (==, !=) and
// direct type assertion from an error interface both break silently
// the moment an error is wrapped with fmt.Errorf("...: %w", err) —
// which the reliability path does — so both are reported.
//
// The ==/!= form is mechanical to repair, so those findings carry a
// suggested fix (x == y -> errors.Is(x, y), x != y -> !errors.Is(x, y),
// importing "errors" when the file lacks it) that pcmaplint -fix
// applies. Assertions and type switches need errors.As target
// variables, which is a judgment call left to the author.
var TypedErr = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "reports ==/!=/type-assertions on typed errors; use errors.Is and errors.As",
	Run:  runTypedErr,
}

func runTypedErr(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkErrCompare(pass, n)
				}
			case *ast.TypeAssertExpr:
				if n.Type != nil { // nil Type is a type switch guard, handled below
					checkErrAssert(pass, n.X, n.Type)
				}
			case *ast.TypeSwitchStmt:
				checkErrTypeSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrCompare reports x ==/!= y when either side is a typed error
// and the other side is not the nil literal.
func checkErrCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	xt := pass.TypesInfo.Types[be.X]
	yt := pass.TypesInfo.Types[be.Y]
	for _, side := range []struct{ mine, other types.TypeAndValue }{{xt, yt}, {yt, xt}} {
		name := typedErrName(side.mine.Type)
		if name == "" || side.other.IsNil() {
			continue
		}
		repl := fmt.Sprintf("errors.Is(%s, %s)", exprText(pass, be.X), exprText(pass, be.Y))
		if be.Op == token.NEQ {
			repl = "!" + repl
		}
		edits := []analysis.TextEdit{{Pos: be.Pos(), End: be.End(), NewText: repl}}
		if imp := importErrorsEdit(pass, be.Pos()); imp != nil {
			edits = append(edits, *imp)
		}
		pass.ReportFix(be.OpPos, fmt.Sprintf("replace with %s", repl), edits,
			"comparing *%s with %s breaks on wrapped errors; use errors.Is", name, be.Op)
		return
	}
}

// exprText renders an expression back to source for a suggested fix.
func exprText(pass *analysis.Pass, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, pass.Fset, e); err != nil {
		return "/* unprintable */"
	}
	return b.String()
}

// importErrorsEdit returns the edit adding `import "errors"` to the
// file containing pos, or nil when the file already imports it.
func importErrorsEdit(pass *analysis.Pass, pos token.Pos) *analysis.TextEdit {
	var file *ast.File
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) == pass.Fset.File(pos) {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	for _, imp := range file.Imports {
		if imp.Path.Value == `"errors"` {
			return nil
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			// import ( ... ): insert as the first spec; gofmt will
			// re-sort, and "errors" sorts early anyway.
			at := gd.Lparen + 1
			return &analysis.TextEdit{Pos: at, End: at, NewText: "\n\t\"errors\""}
		}
		// A single-line import: add a sibling import statement before it.
		return &analysis.TextEdit{Pos: gd.Pos(), End: gd.Pos(), NewText: "import \"errors\"\n\n"}
	}
	// No imports at all: add a block after the package clause.
	at := file.Name.End()
	return &analysis.TextEdit{Pos: at, End: at, NewText: "\n\nimport \"errors\""}
}

// checkErrAssert reports err.(*SomeError) when err is an error
// interface value.
func checkErrAssert(pass *analysis.Pass, x ast.Expr, typ ast.Expr) {
	if !isErrorInterface(pass.TypesInfo.Types[x].Type) {
		return
	}
	tv, ok := pass.TypesInfo.Types[typ]
	if !ok {
		return
	}
	if name := typedErrName(tv.Type); name != "" {
		pass.Reportf(typ.Pos(), "type assertion to *%s misses wrapped errors; use errors.As", name)
	}
}

// checkErrTypeSwitch reports `switch err.(type) { case *SomeError: }`.
func checkErrTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	var guard ast.Expr
	switch s := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			guard = ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				guard = ta.X
			}
		}
	}
	if guard == nil || !isErrorInterface(pass.TypesInfo.Types[guard].Type) {
		return
	}
	for _, stmt := range ts.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok {
				continue
			}
			if name := typedErrName(tv.Type); name != "" {
				pass.Reportf(expr.Pos(), "type-switch case *%s misses wrapped errors; use errors.As", name)
			}
		}
	}
}

// typedErrName returns the element type name when t is a pointer to a
// named type whose name ends in "Error" and which implements the error
// interface (on the pointer receiver), else "".
func typedErrName(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if !strings.HasSuffix(name, "Error") {
		return ""
	}
	if !types.Implements(ptr, errorInterface()) {
		return ""
	}
	return name
}

func isErrorInterface(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
