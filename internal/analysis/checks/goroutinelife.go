package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"pcmap/internal/analysis"
)

// GoroutineLife reports fire-and-forget goroutines in non-test code:
// every `go` statement must be tied to a completion or cancellation
// mechanism visible in the enclosing function, because a goroutine
// nobody joins is a goroutine the PDES sharding work cannot reason
// about — it can outlive the simulation, the drain, or the test that
// spawned it.
//
// A `go` statement is accepted when any of these is visible:
//
//   - the goroutine body sends on or closes a channel (a join the
//     spawner can wait on), or calls a Done/Wait method (WaitGroup
//     completion, or selecting on a context's Done channel);
//   - the enclosing function calls Add on a sync.WaitGroup — the
//     spawn-side half of the Add/Done protocol, which covers goroutines
//     whose body is a named method (go s.worker());
//   - the goroutine body is a single call whose arguments include a
//     channel or context.Context — the mechanism travels with the call.
//
// Everything else is reported. Genuine fire-and-forget goroutines
// (there should be almost none) take a reasoned //pcmaplint:ignore.
var GoroutineLife = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "reports go statements with no completion or cancellation mechanism visible in the enclosing function",
	Run:  runGoroutineLife,
}

func runGoroutineLife(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasAdd := hasWaitGroupAdd(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goroutineJoined(pass, gs, hasAdd) {
					pass.Reportf(gs.Pos(), "goroutine has no completion or cancellation mechanism (WaitGroup, channel send/close, or context) visible in the enclosing function")
				}
				return true
			})
		}
	}
	return nil
}

// isTestFile reports whether f is a _test.go file; test goroutines are
// bounded by the test binary's lifetime and out of scope.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// goroutineJoined decides one go statement.
func goroutineJoined(pass *analysis.Pass, gs *ast.GoStmt, enclosingHasAdd bool) bool {
	if enclosingHasAdd {
		return true
	}
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return bodySignalsCompletion(lit.Body)
	}
	// A named function or method: accept when the call is handed a
	// channel or context to report through.
	for _, arg := range gs.Call.Args {
		if t := pass.TypesInfo.Types[arg].Type; t != nil && carriesJoin(t) {
			return true
		}
	}
	return false
}

// bodySignalsCompletion reports whether a goroutine body contains a
// channel send, a close, or a Done/Wait method call.
func bodySignalsCompletion(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Wait":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// hasWaitGroupAdd reports whether body calls Add on a sync.WaitGroup.
func hasWaitGroupAdd(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil {
			return true
		}
		recv := s.Recv()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		if namedIn(recv, "sync", "WaitGroup") {
			found = true
		}
		return !found
	})
	return found
}

// carriesJoin reports whether t can carry a join signal into a callee:
// a channel, or a context.Context.
func carriesJoin(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return namedIn(t, "context", "Context")
}
