// Package framework exercises the analysis harness itself: diagnostic
// positions, want matching, and the pcmaplint:ignore directive.
package framework

import "fmt"

func Bad() { // want `function Bad`
	fmt.Println("bad")
}

func Good() {}

//pcmaplint:ignore frametest suppressed on purpose for the framework test
func BadButIgnored() {}

//pcmaplint:ignore otherchecker this directive names a different analyzer
func BadWrongName() { // want `function BadWrongName`
}
