// Package badreason holds a pcmaplint:ignore directive with no reason;
// the framework must report the directive itself and decline to
// suppress.
package badreason

//pcmaplint:ignore frametest
func Bad() {}
