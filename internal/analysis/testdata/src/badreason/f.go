// Package badreason holds pcmaplint:ignore directives with no reason;
// the framework must report each directive itself and decline to
// suppress.
package badreason

//pcmaplint:ignore frametest
func Bad() {}

//pcmaplint:ignore
func BadBare() {}

//pcmaplint:ignore frametest suppressed with a recorded reason
func BadSuppressed() {}
