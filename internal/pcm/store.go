// Package pcm models the Phase Change Memory devices of a rank: the
// functional content of every stored cache line (data plus SECDED ECC
// plus PCC parity, kept bit-accurate so that reconstruction and
// verification are real operations, not flags), the per-chip per-bank
// timing state (open rows, busy-until times), differential-write
// analysis (which bits flip, and whether the slow SET or the faster
// RESET transition dominates), and endurance counters.
package pcm

import (
	"fmt"
	"math/bits"

	"pcmap/internal/ecc"
)

// Line is the stored content of one 64-byte cache line together with
// its error-code words. The zero value is code-consistent: an all-zero
// line has all-zero ECC and PCC words.
type Line struct {
	Data [ecc.LineBytes]byte
	ECC  [ecc.WordsPerLine]byte
	PCC  [ecc.WordBytes]byte
}

// CheckConsistent verifies that the stored ECC and PCC words match the
// stored data, returning a descriptive error on the first mismatch. The
// simulator calls this in tests and debug assertions.
func (l *Line) CheckConsistent() error {
	wantECC := ecc.EncodeLine(&l.Data)
	if wantECC != l.ECC {
		return fmt.Errorf("pcm: ECC mismatch: stored %x want %x", l.ECC, wantECC)
	}
	wantPCC := ecc.PCCLine(&l.Data)
	if wantPCC != l.PCC {
		return fmt.Errorf("pcm: PCC mismatch: stored %x want %x", l.PCC, wantPCC)
	}
	return nil
}

// Lines are materialized in blocks of 64 so that a warm region costs
// one map entry and one allocation instead of 64: a block covers a
// 4 KB span of data payload, the natural page granularity of the
// workloads' address streams.
const (
	blockShift = 6
	blockLines = 1 << blockShift
	blockMask  = blockLines - 1
)

// lineBlock is one contiguous 64-line region of the rank, materialized
// on the first write to any of its lines. The written bitmap records
// which lines were ever written: the rest read as zero and, crucially,
// are skipped by drift injection (their cells were never programmed),
// exactly as when every line was an individual map entry.
type lineBlock struct {
	lines   [blockLines]Line
	written uint64
}

// Store is the sparse functional content of one rank's PCM arrays,
// keyed by line index (line address within the rank). Lines never
// written read as zero. Storage is a two-level page table: a map of
// 64-line value-typed blocks, so multi-GB footprints cost one pointer
// per warm 4 KB region rather than one heap object per line.
type Store struct {
	blocks    map[uint64]*lineBlock
	lineCount int // distinct lines ever written

	// Faults, when non-nil, injects endurance-driven stuck-at cells on
	// every programming operation and drift flips on demand (see
	// InjectDrift). Nil means perfect cells at zero cost: no wear state
	// is kept and no randomness is consumed.
	Faults *FaultModel
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{blocks: make(map[uint64]*lineBlock)} }

// Lines returns the number of distinct lines ever written.
func (s *Store) Lines() int { return s.lineCount }

var zeroLine Line

// peek returns a read-only view of the stored line, or the shared
// all-zero line if the address was never written. Internal callers on
// the read path use it to avoid copying; they must never mutate the
// result (TestPeekZeroLineStaysZero enforces the invariant).
func (s *Store) peek(lineIdx uint64) *Line {
	if b, ok := s.blocks[lineIdx>>blockShift]; ok && b.written&(1<<(lineIdx&blockMask)) != 0 {
		return &b.lines[lineIdx&blockMask]
	}
	return &zeroLine
}

// Peek returns a copy of the stored line; a never-written address reads
// as the zero line. The copy is the caller's to mutate — unlike the
// earlier pointer-returning version, which handed every never-written
// address the same shared zero line and made mutation through the
// result a cross-line corruption hazard.
func (s *Store) Peek(lineIdx uint64) Line { return *s.peek(lineIdx) }

// Get returns the stored line, materializing its block on first touch
// and marking the line written.
func (s *Store) Get(lineIdx uint64) *Line {
	b, ok := s.blocks[lineIdx>>blockShift]
	if !ok {
		b = &lineBlock{}
		s.blocks[lineIdx>>blockShift] = b
	}
	if bit := uint64(1) << (lineIdx & blockMask); b.written&bit == 0 {
		b.written |= bit
		s.lineCount++
	}
	return &b.lines[lineIdx&blockMask]
}

// ZeroLineIntact reports whether the package-shared zero line is still
// all-zero. The read path hands it out (via peek) for every
// never-written address, so any mutation through that path corrupts
// all such addresses at once. End-to-end tests assert this invariant
// after full simulation runs.
func ZeroLineIntact() bool { return zeroLine == Line{} }

// FlipKind classifies the cell transitions a word write needs.
type FlipKind struct {
	Sets   int // 0 -> 1 transitions (slow SET pulses)
	Resets int // 1 -> 0 transitions (faster RESET pulses)
}

// Any reports whether the write changes any bit at all.
func (f FlipKind) Any() bool { return f.Sets > 0 || f.Resets > 0 }

// AnalyzeWordWrite reports the transitions needed to overwrite old with
// new, as a differential write would program them.
func AnalyzeWordWrite(oldWord, newWord uint64) FlipKind {
	changed := oldWord ^ newWord
	return FlipKind{
		Sets:   bits.OnesCount64(changed & newWord), // bits going to 1
		Resets: bits.OnesCount64(changed & oldWord), // bits going to 0
	}
}

// AnalyzeLineWrite folds the transitions of a masked line write over
// the whole line: the SET/RESET totals of overwriting the stored
// content old with the intended content new on every word selected by
// mask. It is the content-aware (DCA) write path's kernel — one
// OnesCount64 fold per masked word, in the style of the ECC kernels:
// allocation-free and branch-light (the BENCH_3.json ledger pins it at
// 0 allocs/op). The totals equal the sum over WriteWords' PerWord
// analysis for the same inputs.
func AnalyzeLineWrite(old, new *[ecc.LineBytes]byte, mask uint8) FlipKind {
	var f FlipKind
	for w := 0; w < ecc.WordsPerLine; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		oldWord := ecc.Word(old, w)
		newWord := ecc.Word(new, w)
		changed := oldWord ^ newWord
		f.Sets += bits.OnesCount64(changed & newWord)
		f.Resets += bits.OnesCount64(changed & oldWord)
	}
	return f
}

// WriteResult summarizes the functional effect of a line write.
type WriteResult struct {
	PerWord    [ecc.WordsPerLine]FlipKind // data-word transitions
	ECCFlips   FlipKind                   // transitions on the ECC chip's word
	PCCFlips   FlipKind                   // transitions on the PCC chip's word
	WordsDirty int                        // number of words with Any() transitions
}

// WriteWords applies a masked line write: for every word whose bit is
// set in mask, the corresponding 8 bytes of newData replace the stored
// word. ECC and PCC words are recomputed (incrementally, mirroring the
// controller's hardware) and the transition analysis for every involved
// chip is returned. Endurance is the caller's concern (the chips count
// it); the store only mutates content.
func (s *Store) WriteWords(lineIdx uint64, mask uint8, newData *[ecc.LineBytes]byte) WriteResult {
	var res WriteResult
	if mask == 0 {
		return res
	}
	l := s.Get(lineIdx)
	oldECCWord := eccWord(l.ECC)
	oldPCCWord := wordOf(l.PCC)
	for w := 0; w < ecc.WordsPerLine; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		// The differential write compares against the cells' actual
		// content (the internal read-before-write), so a stuck or
		// drifted cell holding the wrong value shows up as a flip and
		// triggers a programming attempt.
		oldWord := ecc.Word(&l.Data, w)
		newWord := ecc.Word(newData, w)
		res.PerWord[w] = AnalyzeWordWrite(oldWord, newWord)
		if res.PerWord[w].Any() {
			res.WordsDirty++
			stored := newWord
			if s.Faults != nil {
				stored = s.Faults.onProgram(lineIdx, w, newWord)
			}
			ecc.SetWord(&l.Data, w, stored)
		}
		// The controller computes the code updates from the intended
		// word (it cannot see failed cells until a verify read-back),
		// so stored codes track intent, not corrupted content.
		l.PCC = ecc.UpdatePCC(l.PCC, oldWord, newWord)
		l.ECC[w] = ecc.Encode64(newWord)
	}
	res.ECCFlips = AnalyzeWordWrite(oldECCWord, eccWord(l.ECC))
	res.PCCFlips = AnalyzeWordWrite(oldPCCWord, wordOf(l.PCC))
	// The ECC and PCC words are PCM cells too: their programming wears
	// them and applies any stuck bits they have accumulated.
	if s.Faults != nil {
		if res.ECCFlips.Any() {
			putWord64(l.ECC[:], s.Faults.onProgram(lineIdx, SlotECC, eccWord(l.ECC)))
		}
		if res.PCCFlips.Any() {
			putWord64(l.PCC[:], s.Faults.onProgram(lineIdx, SlotPCC, wordOf(l.PCC)))
		}
	}
	return res
}

// putWord64 stores v little-endian into an 8-byte slice (the inverse of
// eccWord/wordOf).
func putWord64(dst []byte, v uint64) {
	for i := range dst {
		dst[i] = byte(v >> uint(8*i))
	}
}

// InjectDrift applies the fault model's transient drift to one stored
// line, as the read path samples it before observing content. It
// reports whether a bit flipped. Never-written lines share the zero
// line and are skipped (their cells were never programmed).
func (s *Store) InjectDrift(lineIdx uint64) bool {
	if s.Faults == nil {
		return false
	}
	b, ok := s.blocks[lineIdx>>blockShift]
	if !ok || b.written&(1<<(lineIdx&blockMask)) == 0 {
		return false
	}
	return s.Faults.onRead(lineIdx, &b.lines[lineIdx&blockMask]) >= 0
}

func eccWord(e [ecc.WordsPerLine]byte) uint64 {
	var v uint64
	for i, b := range e {
		v |= uint64(b) << uint(8*i)
	}
	return v
}

func wordOf(p [ecc.WordBytes]byte) uint64 {
	var v uint64
	for i, b := range p {
		v |= uint64(b) << uint(8*i)
	}
	return v
}

// ReadLine copies the stored data of a line into out.
func (s *Store) ReadLine(lineIdx uint64, out *[ecc.LineBytes]byte) {
	*out = s.peek(lineIdx).Data
}

// ReconstructWord performs the RoW read-path reconstruction for the
// given line: it rebuilds the word at index missing from the other
// seven data words and the stored PCC word, exactly as the controller's
// XOR network would (Section IV-B). The bool result reports whether the
// reconstruction matches the stored word — it always should unless a
// fault was injected into the stored content.
func (s *Store) ReconstructWord(lineIdx uint64, missing int) (uint64, bool) {
	l := s.peek(lineIdx)
	got := ecc.ReconstructWord(&l.Data, missing, l.PCC)
	want := ecc.Word(&l.Data, missing)
	return got, got == want
}
