package pcm

import (
	"fmt"

	"pcmap/internal/obs"
	"pcmap/internal/sim"
)

// NoRow marks a closed row buffer.
const NoRow int64 = -1

// ChipBank is the timing state of one bank inside one chip. With rank
// subsetting each chip-bank is an independently schedulable resource:
// it serializes its own operations but overlaps freely with other banks
// of the same chip and with the same bank of other chips.
type ChipBank struct {
	BusyUntil sim.Time
	OpenRow   int64
}

// Chip is one x8 PCM device of a rank.
type Chip struct {
	ID    int
	Banks []ChipBank

	// ProgBusyUntil serializes cell programming across the chip's
	// banks: a PCM die's write-power delivery programs one bank at a
	// time, so concurrent writes queue at the chip even when they
	// target different banks. (Array reads remain per-bank.) This is
	// why an un-rotated ECC chip serializes every write of the rank —
	// the contention PCMap's ECC/PCC rotation removes.
	ProgBusyUntil sim.Time

	// Partition state (PALP). With parts > 1 each bank splits into
	// parts independently schedulable partitions: partBusy[bank*parts+p]
	// is partition p's busy-until time, and ChipBank.BusyUntil stays the
	// maximum over the bank's partitions so every whole-bank view
	// (StatusFlags, verify timing, the six paper variants' scheduling)
	// remains conservative and unchanged. parts <= 1 means monolithic
	// banks: partBusy is nil and the partition entry points delegate to
	// the whole-bank ones.
	parts    int
	partBusy []sim.Time

	// Endurance / activity counters.
	WordWrites uint64 // word-granularity programming operations
	BitsSet    uint64 // cells programmed 0->1
	BitsReset  uint64 // cells programmed 1->0
	BusySum    sim.Time

	// Timeline instrumentation (nil when tracing is off). Every
	// reservation becomes one occupancy span on the chip-bank's track,
	// which is exactly the per-bank busy timeline the paper's
	// access-parallelism argument is about.
	trace      *obs.Tracer
	bankTracks []obs.TrackID
	nmArray    obs.NameID // array read / non-programming occupancy
	nmProgram  obs.NameID // programming operation (act + cell program)
}

// NewChip returns a chip with banks closed and idle.
func NewChip(id, banks int) *Chip {
	c := &Chip{ID: id, Banks: make([]ChipBank, banks), parts: 1}
	for i := range c.Banks {
		c.Banks[i].OpenRow = NoRow
	}
	return c
}

// NewChipParts returns a chip whose banks split into parts partitions
// each (PALP). parts <= 1 is identical to NewChip.
func NewChipParts(id, banks, parts int) *Chip {
	c := NewChip(id, banks)
	if parts > 1 {
		c.parts = parts
		c.partBusy = make([]sim.Time, banks*parts)
	}
	return c
}

// Partitions returns the partitions-per-bank count (1 = monolithic).
func (c *Chip) Partitions() int { return c.parts }

// Instrument attaches the chip's banks to timeline tracks under the
// given process group ("pcm chan0", ...). Call once at construction
// time; a nil tracer leaves the chip untraced.
func (c *Chip) Instrument(tr *obs.Tracer, process string) {
	if tr == nil {
		return
	}
	c.trace = tr
	c.nmArray = tr.Name("array")
	c.nmProgram = tr.Name("program")
	c.bankTracks = c.bankTracks[:0]
	for b := range c.Banks {
		c.bankTracks = append(c.bankTracks, tr.Track(process, fmt.Sprintf("chip%d.bank%d", c.ID, b)))
	}
}

// FreeAt reports whether the given bank of this chip is idle at time t.
func (c *Chip) FreeAt(bank int, t sim.Time) bool {
	return c.Banks[bank].BusyUntil <= t
}

// Reserve books the chip-bank for a service interval starting no
// earlier than earliest and no earlier than the bank's current
// busy-until time, lasting dur. It returns the actual [start, end) and
// records the occupancy.
func (c *Chip) Reserve(bank int, earliest sim.Time, dur sim.Time) (start, end sim.Time) {
	b := &c.Banks[bank]
	start = earliest
	if b.BusyUntil > start {
		start = b.BusyUntil
	}
	end = start + dur
	b.BusyUntil = end
	c.BusySum += dur
	c.trace.Span(c.trackFor(bank), c.nmArray, start, dur)
	return start, end
}

// trackFor returns the bank's timeline track; only valid to emit with
// when c.trace is non-nil (Instrument populated the tracks).
func (c *Chip) trackFor(bank int) obs.TrackID {
	if c.trace == nil {
		return 0
	}
	return c.bankTracks[bank]
}

// ReserveProgram books a programming operation: the bank-level array
// read (act) may overlap other banks, but the cell-programming phase
// (prog) serializes with every other programming operation on this
// chip. It returns the operation's [start, end).
func (c *Chip) ReserveProgram(bank int, earliest, act, prog sim.Time) (start, end sim.Time) {
	b := &c.Banks[bank]
	start = earliest
	if b.BusyUntil > start {
		start = b.BusyUntil
	}
	progStart := start + act
	if prog > 0 && c.ProgBusyUntil > progStart {
		progStart = c.ProgBusyUntil
	}
	end = progStart + prog
	b.BusyUntil = end
	if prog > 0 {
		c.ProgBusyUntil = end
	}
	c.BusySum += end - start
	c.trace.Span(c.trackFor(bank), c.nmProgram, start, end-start)
	return start, end
}

// ProgFreeAt reports whether the chip's programming circuitry is idle
// at time t.
func (c *Chip) ProgFreeAt(t sim.Time) bool { return c.ProgBusyUntil <= t }

// FreeAtPart reports whether partition part of the given bank is idle
// at time t. With monolithic banks it is FreeAt: the whole bank.
func (c *Chip) FreeAtPart(bank, part int, t sim.Time) bool {
	if c.parts <= 1 {
		return c.FreeAt(bank, t)
	}
	return c.partBusy[bank*c.parts+part] <= t
}

// ReservePart books one partition of a chip-bank for a service
// interval: the partition serializes its own operations, while the
// bank's whole-bank BusyUntil advances to the max over partitions so
// non-partition-aware views stay conservative. Monolithic banks
// delegate to Reserve.
func (c *Chip) ReservePart(bank, part int, earliest, dur sim.Time) (start, end sim.Time) {
	if c.parts <= 1 {
		return c.Reserve(bank, earliest, dur)
	}
	idx := bank*c.parts + part
	start = earliest
	if c.partBusy[idx] > start {
		start = c.partBusy[idx]
	}
	end = start + dur
	c.partBusy[idx] = end
	if b := &c.Banks[bank]; end > b.BusyUntil {
		b.BusyUntil = end
	}
	c.BusySum += dur
	c.trace.Span(c.trackFor(bank), c.nmArray, start, dur)
	return start, end
}

// ReserveProgramPart books a programming operation on one partition of
// a chip-bank: the array read (act) occupies the partition only, while
// the cell-programming phase still serializes chip-wide through
// ProgBusyUntil (write-power delivery is a die-level resource even with
// partitioned banks — PALP overlaps a read's array access with a
// write's programming, not two programmings). Monolithic banks delegate
// to ReserveProgram.
func (c *Chip) ReserveProgramPart(bank, part int, earliest, act, prog sim.Time) (start, end sim.Time) {
	if c.parts <= 1 {
		return c.ReserveProgram(bank, earliest, act, prog)
	}
	idx := bank*c.parts + part
	start = earliest
	if c.partBusy[idx] > start {
		start = c.partBusy[idx]
	}
	progStart := start + act
	if prog > 0 && c.ProgBusyUntil > progStart {
		progStart = c.ProgBusyUntil
	}
	end = progStart + prog
	c.partBusy[idx] = end
	if b := &c.Banks[bank]; end > b.BusyUntil {
		b.BusyUntil = end
	}
	if prog > 0 {
		c.ProgBusyUntil = end
	}
	c.BusySum += end - start
	c.trace.Span(c.trackFor(bank), c.nmProgram, start, end-start)
	return start, end
}

// RowHit reports whether row is open in the chip's bank.
func (c *Chip) RowHit(bank int, row int64) bool { return c.Banks[bank].OpenRow == row }

// OpenRowIn records that the bank's row buffer now holds row.
func (c *Chip) OpenRowIn(bank int, row int64) { c.Banks[bank].OpenRow = row }

// CountWrite accumulates endurance counters for a word write.
func (c *Chip) CountWrite(f FlipKind) {
	c.WordWrites++
	c.BitsSet += uint64(f.Sets)
	c.BitsReset += uint64(f.Resets)
}
