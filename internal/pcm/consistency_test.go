package pcm

import (
	"strings"
	"testing"

	"pcmap/internal/sim"
)

// TestCheckConsistentDetectsCorruption flips a single bit in each of a
// line's three storage regions — data, SECDED check bytes, and the PCC
// parity word — and asserts CheckConsistent reports every one. This is
// the debug assertion the fault-injection tests rely on; a region it
// cannot see would let stuck-at or drift corruption slip past them.
func TestCheckConsistentDetectsCorruption(t *testing.T) {
	rng := sim.NewRNG(42)
	fresh := func() *Line {
		s := NewStore()
		s.WriteWords(0, 0xff, randomLine(rng))
		l := s.Peek(0)
		return &l
	}

	if err := fresh().CheckConsistent(); err != nil {
		t.Fatalf("uncorrupted line: %v", err)
	}

	cases := []struct {
		region  string
		corrupt func(l *Line)
		want    string // substring of the error naming the mismatch
	}{
		{"Data", func(l *Line) { l.Data[17] ^= 0x04 }, "ECC mismatch"},
		{"ECC", func(l *Line) { l.ECC[3] ^= 0x80 }, "ECC mismatch"},
		{"PCC", func(l *Line) { l.PCC[5] ^= 0x01 }, "PCC mismatch"},
	}
	for _, tc := range cases {
		l := fresh()
		tc.corrupt(l)
		err := l.CheckConsistent()
		if err == nil {
			t.Errorf("%s corruption not detected", tc.region)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s corruption: error %q does not name %q", tc.region, err, tc.want)
		}
	}

	// Every byte of every region, not just the spots above: flipping any
	// single stored bit must break consistency.
	l := fresh()
	for i := range l.Data {
		l.Data[i] ^= 1
		if l.CheckConsistent() == nil {
			t.Fatalf("Data[%d] flip not detected", i)
		}
		l.Data[i] ^= 1
	}
	for i := range l.ECC {
		l.ECC[i] ^= 1
		if l.CheckConsistent() == nil {
			t.Fatalf("ECC[%d] flip not detected", i)
		}
		l.ECC[i] ^= 1
	}
	for i := range l.PCC {
		l.PCC[i] ^= 1
		if l.CheckConsistent() == nil {
			t.Fatalf("PCC[%d] flip not detected", i)
		}
		l.PCC[i] ^= 1
	}
	if err := l.CheckConsistent(); err != nil {
		t.Fatalf("line not restored after flips: %v", err)
	}
}
