package pcm

import (
	"pcmap/internal/ecc"
	"pcmap/internal/sim"
)

// Slot indices of a line's stored words inside the fault model: eight
// data words, then the ECC check word, then the PCC parity word. They
// mirror the dimm package's chip slots but are line-relative (rotation
// maps them onto chips; wearout follows the stored content, which is
// what the cells hold regardless of which chip they live on).
const (
	// SlotECC is the line-relative slot of the SECDED check word.
	SlotECC = ecc.WordsPerLine
	// SlotPCC is the line-relative slot of the PCC parity word.
	SlotPCC = ecc.WordsPerLine + 1
	// NumSlots is the number of 64-bit stored words per line.
	NumSlots = ecc.WordsPerLine + 2
)

// FaultConfig selects which physical failure mechanisms the store
// injects. The zero value disables injection entirely (and costs
// nothing: the store takes no RNG draws and allocates no wear state).
type FaultConfig struct {
	// EnduranceBudget is the per-word write-endurance budget: once a
	// stored word has been programmed more than this many times, every
	// further programming operation permanently sticks one additional
	// (previously healthy) cell of that word at a pseudo-random value —
	// the PCM wearout failure mode. Zero disables wearout.
	EnduranceBudget uint64
	// DriftProb is the per-read probability that resistance drift flips
	// one stored bit of the accessed line (data, ECC or PCC region) — the
	// transient failure mode. The flip corrupts the stored bytes, so it
	// persists until the cell is reprogrammed. Zero disables drift.
	DriftProb float64
}

// Enabled reports whether any fault mechanism is active.
func (c FaultConfig) Enabled() bool { return c.EnduranceBudget > 0 || c.DriftProb > 0 }

// lineWear tracks the wear and permanent faults of one stored line.
type lineWear struct {
	writes    [NumSlots]uint64 // programming operations per stored word
	stuckMask [NumSlots]uint64 // bit set: that cell no longer programs
	stuckVal  [NumSlots]uint64 // the value stuck cells read back as
}

// FaultModel injects deterministic, seedable faults into a Store's
// content: endurance-driven stuck-at cells on programming and
// drift-induced bit flips on reads. All corruption is applied to the
// stored Line bytes, so downstream ECC decode, PCC reconstruction and
// program-and-verify read-back observe real bad data, not flags.
type FaultModel struct {
	cfg   FaultConfig
	rng   *sim.RNG
	lines map[uint64]*lineWear

	// InjectedStuck counts cells permanently stuck so far.
	InjectedStuck uint64
	// InjectedDrift counts transient drift flips injected so far.
	InjectedDrift uint64
}

// NewFaultModel returns a model with its own private randomness stream;
// the same seed and access sequence reproduce the same faults.
func NewFaultModel(cfg FaultConfig, rng *sim.RNG) *FaultModel {
	return &FaultModel{cfg: cfg, rng: rng, lines: make(map[uint64]*lineWear)}
}

// Config returns the model's fault configuration.
func (f *FaultModel) Config() FaultConfig { return f.cfg }

func (f *FaultModel) wearOf(lineIdx uint64) *lineWear {
	w, ok := f.lines[lineIdx]
	if !ok {
		w = &lineWear{}
		f.lines[lineIdx] = w
	}
	return w
}

// WriteCount returns how many times the given slot of the line has been
// programmed (tests and tooling).
func (f *FaultModel) WriteCount(lineIdx uint64, slot int) uint64 {
	if w, ok := f.lines[lineIdx]; ok {
		return w.writes[slot]
	}
	return 0
}

// StuckBits returns the stuck-cell mask of the given slot.
func (f *FaultModel) StuckBits(lineIdx uint64, slot int) uint64 {
	if w, ok := f.lines[lineIdx]; ok {
		return w.stuckMask[slot]
	}
	return 0
}

// onProgram models one word-programming operation: it advances the
// slot's wear counter, possibly sticks a fresh cell (when the endurance
// budget is exhausted), and returns the value the cells actually hold
// afterwards — the intended word with every stuck cell overridden by
// its stuck value.
func (f *FaultModel) onProgram(lineIdx uint64, slot int, intended uint64) uint64 {
	w := f.wearOf(lineIdx)
	w.writes[slot]++
	if f.cfg.EnduranceBudget > 0 && w.writes[slot] > f.cfg.EnduranceBudget &&
		w.stuckMask[slot] != ^uint64(0) {
		// Wearout: one more cell of this word fails. Pick a healthy bit
		// position; whether it sticks at 0 or 1 depends on the failed
		// cell's physics, which we sample.
		bit := uint(f.rng.Intn(64))
		for w.stuckMask[slot]&(1<<bit) != 0 {
			bit = (bit + 1) % 64
		}
		w.stuckMask[slot] |= 1 << bit
		if f.rng.Bool(0.5) {
			w.stuckVal[slot] |= 1 << bit
		} else {
			w.stuckVal[slot] &^= 1 << bit
		}
		f.InjectedStuck++
	}
	if m := w.stuckMask[slot]; m != 0 {
		return intended&^m | w.stuckVal[slot]&m
	}
	return intended
}

// onRead models resistance drift for one line read: with probability
// DriftProb a single stored bit of the line (any of its ten words)
// flips in place. It returns the slot that drifted, or -1.
func (f *FaultModel) onRead(lineIdx uint64, l *Line) int {
	if f.cfg.DriftProb <= 0 || !f.rng.Bool(f.cfg.DriftProb) {
		return -1
	}
	slot := f.rng.Intn(NumSlots)
	bit := uint(f.rng.Intn(64))
	switch {
	case slot < ecc.WordsPerLine:
		l.Data[slot*ecc.WordBytes+int(bit/8)] ^= 1 << (bit % 8)
	case slot == SlotECC:
		l.ECC[bit/8] ^= 1 << (bit % 8)
	default:
		l.PCC[bit/8] ^= 1 << (bit % 8)
	}
	f.InjectedDrift++
	return slot
}
