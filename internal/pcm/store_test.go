package pcm

import (
	"testing"
	"testing/quick"

	"pcmap/internal/ecc"
	"pcmap/internal/sim"
)

func randomLine(rng *sim.RNG) *[ecc.LineBytes]byte {
	var l [ecc.LineBytes]byte
	for i := range l {
		l[i] = byte(rng.Uint64())
	}
	return &l
}

func TestStoreZeroDefault(t *testing.T) {
	s := NewStore()
	var out [ecc.LineBytes]byte
	s.ReadLine(12345, &out)
	if out != ([ecc.LineBytes]byte{}) {
		t.Fatal("never-written line should read as zero")
	}
	if s.Lines() != 0 {
		t.Fatalf("Peek must not allocate; have %d lines", s.Lines())
	}
}

func TestWriteWordsMaskedUpdate(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(3)
	data := randomLine(rng)
	res := s.WriteWords(7, 0b00000101, data) // words 0 and 2
	if res.WordsDirty != 2 {
		t.Fatalf("WordsDirty = %d, want 2", res.WordsDirty)
	}
	var out [ecc.LineBytes]byte
	s.ReadLine(7, &out)
	for w := 0; w < 8; w++ {
		got := ecc.Word(&out, w)
		if w == 0 || w == 2 {
			if got != ecc.Word(data, w) {
				t.Fatalf("masked word %d not written", w)
			}
		} else if got != 0 {
			t.Fatalf("unmasked word %d modified to %#x", w, got)
		}
	}
}

func TestWriteKeepsCodesConsistent(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(9)
	for i := 0; i < 500; i++ {
		idx := uint64(rng.Intn(16))
		mask := uint8(rng.Uint64())
		s.WriteWords(idx, mask, randomLine(rng))
		l := s.Peek(idx)
		if err := l.CheckConsistent(); err != nil {
			t.Fatalf("after write %d: %v", i, err)
		}
	}
}

func TestReconstructAfterRandomWrites(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(21)
	for i := 0; i < 300; i++ {
		idx := uint64(rng.Intn(8))
		s.WriteWords(idx, uint8(rng.Uint64()), randomLine(rng))
		missing := rng.Intn(8)
		if _, ok := s.ReconstructWord(idx, missing); !ok {
			t.Fatalf("reconstruction failed for line %d word %d", idx, missing)
		}
	}
}

func TestAnalyzeWordWrite(t *testing.T) {
	cases := []struct {
		old, new     uint64
		sets, resets int
	}{
		{0, 0, 0, 0},
		{0, 1, 1, 0},
		{1, 0, 0, 1},
		{0b1010, 0b0101, 2, 2},
		{^uint64(0), 0, 0, 64},
		{0, ^uint64(0), 64, 0},
	}
	for _, c := range cases {
		f := AnalyzeWordWrite(c.old, c.new)
		if f.Sets != c.sets || f.Resets != c.resets {
			t.Fatalf("Analyze(%#x,%#x) = %+v, want sets=%d resets=%d", c.old, c.new, f, c.sets, c.resets)
		}
	}
}

func TestAnalyzeProperty(t *testing.T) {
	// Property: total flips equals the popcount of old XOR new, and a
	// write is silent iff old == new.
	if err := quick.Check(func(a, b uint64) bool {
		f := AnalyzeWordWrite(a, b)
		diff := a ^ b
		pop := 0
		for diff != 0 {
			diff &= diff - 1
			pop++
		}
		return f.Sets+f.Resets == pop && f.Any() == (a != b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSilentMaskedWrite(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(5)
	data := randomLine(rng)
	s.WriteWords(3, 0xff, data)
	// Rewriting identical content must be fully silent.
	res := s.WriteWords(3, 0xff, data)
	if res.WordsDirty != 0 {
		t.Fatalf("identical rewrite dirtied %d words", res.WordsDirty)
	}
	if res.ECCFlips.Any() || res.PCCFlips.Any() {
		t.Fatal("identical rewrite flipped code bits")
	}
}

func TestZeroMaskIsNoop(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(6)
	res := s.WriteWords(4, 0, randomLine(rng))
	if res.WordsDirty != 0 || s.Lines() != 0 {
		t.Fatal("zero-mask write must not touch the store")
	}
}

func TestLinesCountsAcrossBlocks(t *testing.T) {
	// Lines() must count distinct written lines exactly, including two
	// lines sharing a block and lines straddling a block boundary.
	s := NewStore()
	rng := sim.NewRNG(11)
	for _, idx := range []uint64{0, 1, 0, blockLines - 1, blockLines, 3 * blockLines, blockLines} {
		s.WriteWords(idx, 0xff, randomLine(rng))
	}
	if s.Lines() != 5 {
		t.Fatalf("Lines() = %d, want 5 distinct", s.Lines())
	}
	// Writing one line must not make its block siblings look written:
	// a drift injection on an untouched sibling must be a no-op even
	// with a fault model armed.
	s.Faults = NewFaultModel(FaultConfig{DriftProb: 0.999}, sim.NewRNG(1))
	if s.InjectDrift(2) {
		t.Fatal("drift injected into a never-written sibling line")
	}
}

func TestPeekReturnsIndependentCopy(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(13)
	s.WriteWords(9, 0xff, randomLine(rng))
	a := s.Peek(9)
	a.Data[0] ^= 0xff
	b := s.Peek(9)
	if b.Data[0] == a.Data[0] {
		t.Fatal("mutating a Peek result must not change the store")
	}
}

func TestPeekZeroLineStaysZero(t *testing.T) {
	// The old pointer-returning Peek handed every never-written address
	// the same shared zero line; a single mutation through it corrupted
	// all of them. The value-returning Peek makes mutation safe — pin
	// that the shared line survives a hostile caller.
	s := NewStore()
	l := s.Peek(4242)
	for i := range l.Data {
		l.Data[i] = 0xff
	}
	if !ZeroLineIntact() {
		t.Fatal("mutating a never-written Peek result corrupted the shared zero line")
	}
	var out [ecc.LineBytes]byte
	s.ReadLine(4242, &out)
	if out != ([ecc.LineBytes]byte{}) {
		t.Fatal("never-written line no longer reads as zero")
	}
}

func TestGetAllocFreeOnMaterializedLines(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(17)
	for i := uint64(0); i < 4*blockLines; i++ {
		s.WriteWords(i, 0xff, randomLine(rng))
	}
	var idx uint64
	if n := testing.AllocsPerRun(1000, func() {
		s.Get(idx % (4 * blockLines))
		idx++
	}); n != 0 {
		t.Fatalf("Get on materialized lines allocated %.1f/op, want 0", n)
	}
}

func TestChipReserveSerializes(t *testing.T) {
	c := NewChip(0, 8)
	s1, e1 := c.Reserve(2, 100, 50)
	if s1 != 100 || e1 != 150 {
		t.Fatalf("first reservation [%v,%v)", s1, e1)
	}
	s2, e2 := c.Reserve(2, 120, 30)
	if s2 != 150 || e2 != 180 {
		t.Fatalf("overlapping reservation should chain: [%v,%v)", s2, e2)
	}
	// Other banks are independent.
	s3, _ := c.Reserve(3, 120, 30)
	if s3 != 120 {
		t.Fatalf("different bank should not chain: start %v", s3)
	}
	if c.FreeAt(2, 160) {
		t.Fatal("bank 2 should be busy at 160")
	}
	if !c.FreeAt(2, 180) {
		t.Fatal("bank 2 should be free at 180")
	}
}

func TestChipRowState(t *testing.T) {
	c := NewChip(1, 4)
	if c.RowHit(0, 5) {
		t.Fatal("closed bank should miss")
	}
	c.OpenRowIn(0, 5)
	if !c.RowHit(0, 5) || c.RowHit(1, 5) {
		t.Fatal("row state per bank is wrong")
	}
}
