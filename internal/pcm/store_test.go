package pcm

import (
	"testing"
	"testing/quick"

	"pcmap/internal/ecc"
	"pcmap/internal/sim"
)

func randomLine(rng *sim.RNG) *[ecc.LineBytes]byte {
	var l [ecc.LineBytes]byte
	for i := range l {
		l[i] = byte(rng.Uint64())
	}
	return &l
}

func TestStoreZeroDefault(t *testing.T) {
	s := NewStore()
	var out [ecc.LineBytes]byte
	s.ReadLine(12345, &out)
	if out != ([ecc.LineBytes]byte{}) {
		t.Fatal("never-written line should read as zero")
	}
	if s.Lines() != 0 {
		t.Fatalf("Peek must not allocate; have %d lines", s.Lines())
	}
}

func TestWriteWordsMaskedUpdate(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(3)
	data := randomLine(rng)
	res := s.WriteWords(7, 0b00000101, data) // words 0 and 2
	if res.WordsDirty != 2 {
		t.Fatalf("WordsDirty = %d, want 2", res.WordsDirty)
	}
	var out [ecc.LineBytes]byte
	s.ReadLine(7, &out)
	for w := 0; w < 8; w++ {
		got := ecc.Word(&out, w)
		if w == 0 || w == 2 {
			if got != ecc.Word(data, w) {
				t.Fatalf("masked word %d not written", w)
			}
		} else if got != 0 {
			t.Fatalf("unmasked word %d modified to %#x", w, got)
		}
	}
}

func TestWriteKeepsCodesConsistent(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(9)
	for i := 0; i < 500; i++ {
		idx := uint64(rng.Intn(16))
		mask := uint8(rng.Uint64())
		s.WriteWords(idx, mask, randomLine(rng))
		l := s.Peek(idx)
		if err := l.CheckConsistent(); err != nil {
			t.Fatalf("after write %d: %v", i, err)
		}
	}
}

func TestReconstructAfterRandomWrites(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(21)
	for i := 0; i < 300; i++ {
		idx := uint64(rng.Intn(8))
		s.WriteWords(idx, uint8(rng.Uint64()), randomLine(rng))
		missing := rng.Intn(8)
		if _, ok := s.ReconstructWord(idx, missing); !ok {
			t.Fatalf("reconstruction failed for line %d word %d", idx, missing)
		}
	}
}

func TestAnalyzeWordWrite(t *testing.T) {
	cases := []struct {
		old, new     uint64
		sets, resets int
	}{
		{0, 0, 0, 0},
		{0, 1, 1, 0},
		{1, 0, 0, 1},
		{0b1010, 0b0101, 2, 2},
		{^uint64(0), 0, 0, 64},
		{0, ^uint64(0), 64, 0},
	}
	for _, c := range cases {
		f := AnalyzeWordWrite(c.old, c.new)
		if f.Sets != c.sets || f.Resets != c.resets {
			t.Fatalf("Analyze(%#x,%#x) = %+v, want sets=%d resets=%d", c.old, c.new, f, c.sets, c.resets)
		}
	}
}

func TestAnalyzeProperty(t *testing.T) {
	// Property: total flips equals the popcount of old XOR new, and a
	// write is silent iff old == new.
	if err := quick.Check(func(a, b uint64) bool {
		f := AnalyzeWordWrite(a, b)
		diff := a ^ b
		pop := 0
		for diff != 0 {
			diff &= diff - 1
			pop++
		}
		return f.Sets+f.Resets == pop && f.Any() == (a != b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSilentMaskedWrite(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(5)
	data := randomLine(rng)
	s.WriteWords(3, 0xff, data)
	// Rewriting identical content must be fully silent.
	res := s.WriteWords(3, 0xff, data)
	if res.WordsDirty != 0 {
		t.Fatalf("identical rewrite dirtied %d words", res.WordsDirty)
	}
	if res.ECCFlips.Any() || res.PCCFlips.Any() {
		t.Fatal("identical rewrite flipped code bits")
	}
}

func TestZeroMaskIsNoop(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(6)
	res := s.WriteWords(4, 0, randomLine(rng))
	if res.WordsDirty != 0 || s.Lines() != 0 {
		t.Fatal("zero-mask write must not touch the store")
	}
}

func TestLinesCountsAcrossBlocks(t *testing.T) {
	// Lines() must count distinct written lines exactly, including two
	// lines sharing a block and lines straddling a block boundary.
	s := NewStore()
	rng := sim.NewRNG(11)
	for _, idx := range []uint64{0, 1, 0, blockLines - 1, blockLines, 3 * blockLines, blockLines} {
		s.WriteWords(idx, 0xff, randomLine(rng))
	}
	if s.Lines() != 5 {
		t.Fatalf("Lines() = %d, want 5 distinct", s.Lines())
	}
	// Writing one line must not make its block siblings look written:
	// a drift injection on an untouched sibling must be a no-op even
	// with a fault model armed.
	s.Faults = NewFaultModel(FaultConfig{DriftProb: 0.999}, sim.NewRNG(1))
	if s.InjectDrift(2) {
		t.Fatal("drift injected into a never-written sibling line")
	}
}

func TestPeekReturnsIndependentCopy(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(13)
	s.WriteWords(9, 0xff, randomLine(rng))
	a := s.Peek(9)
	a.Data[0] ^= 0xff
	b := s.Peek(9)
	if b.Data[0] == a.Data[0] {
		t.Fatal("mutating a Peek result must not change the store")
	}
}

func TestPeekZeroLineStaysZero(t *testing.T) {
	// The old pointer-returning Peek handed every never-written address
	// the same shared zero line; a single mutation through it corrupted
	// all of them. The value-returning Peek makes mutation safe — pin
	// that the shared line survives a hostile caller.
	s := NewStore()
	l := s.Peek(4242)
	for i := range l.Data {
		l.Data[i] = 0xff
	}
	if !ZeroLineIntact() {
		t.Fatal("mutating a never-written Peek result corrupted the shared zero line")
	}
	var out [ecc.LineBytes]byte
	s.ReadLine(4242, &out)
	if out != ([ecc.LineBytes]byte{}) {
		t.Fatal("never-written line no longer reads as zero")
	}
}

func TestGetAllocFreeOnMaterializedLines(t *testing.T) {
	s := NewStore()
	rng := sim.NewRNG(17)
	for i := uint64(0); i < 4*blockLines; i++ {
		s.WriteWords(i, 0xff, randomLine(rng))
	}
	var idx uint64
	if n := testing.AllocsPerRun(1000, func() {
		s.Get(idx % (4 * blockLines))
		idx++
	}); n != 0 {
		t.Fatalf("Get on materialized lines allocated %.1f/op, want 0", n)
	}
}

func TestChipReserveSerializes(t *testing.T) {
	c := NewChip(0, 8)
	s1, e1 := c.Reserve(2, 100, 50)
	if s1 != 100 || e1 != 150 {
		t.Fatalf("first reservation [%v,%v)", s1, e1)
	}
	s2, e2 := c.Reserve(2, 120, 30)
	if s2 != 150 || e2 != 180 {
		t.Fatalf("overlapping reservation should chain: [%v,%v)", s2, e2)
	}
	// Other banks are independent.
	s3, _ := c.Reserve(3, 120, 30)
	if s3 != 120 {
		t.Fatalf("different bank should not chain: start %v", s3)
	}
	if c.FreeAt(2, 160) {
		t.Fatal("bank 2 should be busy at 160")
	}
	if !c.FreeAt(2, 180) {
		t.Fatal("bank 2 should be free at 180")
	}
}

func TestChipRowState(t *testing.T) {
	c := NewChip(1, 4)
	if c.RowHit(0, 5) {
		t.Fatal("closed bank should miss")
	}
	c.OpenRowIn(0, 5)
	if !c.RowHit(0, 5) || c.RowHit(1, 5) {
		t.Fatal("row state per bank is wrong")
	}
}

// TestAnalyzeLineWriteMatchesWriteWords proves the DCA kernel against
// the store's own per-word analysis: for any stored content, intended
// content, and mask, AnalyzeLineWrite's totals equal the sum over
// WriteWords' PerWord transitions.
func TestAnalyzeLineWriteMatchesWriteWords(t *testing.T) {
	rng := sim.NewRNG(41)
	for trial := 0; trial < 200; trial++ {
		s := NewStore()
		lineIdx := rng.Uint64() % 1024
		if trial%4 != 0 {
			// Three in four trials overwrite existing content; the rest
			// hit a never-written (all-zero) line.
			s.WriteWords(lineIdx, 0xff, randomLine(rng))
		}
		mask := uint8(rng.Uint64())
		next := randomLine(rng)
		if trial%5 == 0 {
			// Partially-identical content: silent words must add zero.
			old := s.Peek(lineIdx)
			for w := 0; w < ecc.WordsPerLine; w++ {
				if w%2 == 0 {
					ecc.SetWord(next, w, ecc.Word(&old.Data, w))
				}
			}
		}
		old := s.Peek(lineIdx)
		got := AnalyzeLineWrite(&old.Data, next, mask)
		res := s.WriteWords(lineIdx, mask, next)
		var want FlipKind
		for w := 0; w < ecc.WordsPerLine; w++ {
			want.Sets += res.PerWord[w].Sets
			want.Resets += res.PerWord[w].Resets
		}
		if got != want {
			t.Fatalf("trial %d (mask %#x): AnalyzeLineWrite = %+v, WriteWords sum = %+v",
				trial, mask, got, want)
		}
	}
}

// TestAnalyzeLineWriteMask checks that only masked words contribute.
func TestAnalyzeLineWriteMask(t *testing.T) {
	rng := sim.NewRNG(42)
	old, next := randomLine(rng), randomLine(rng)
	if f := AnalyzeLineWrite(old, next, 0); f != (FlipKind{}) {
		t.Fatalf("empty mask must analyze to zero, got %+v", f)
	}
	one := AnalyzeLineWrite(old, next, 1)
	want := AnalyzeWordWrite(ecc.Word(old, 0), ecc.Word(next, 0))
	if one != want {
		t.Fatalf("single-word mask = %+v, want %+v", one, want)
	}
}

// TestChipPartitions covers the PALP partition state: FreeAtPart sees
// per-partition busy times, whole-bank views stay conservative (max
// over partitions), and parts<=1 delegates to the monolithic methods.
func TestChipPartitions(t *testing.T) {
	c := NewChipParts(0, 2, 4)
	if c.Partitions() != 4 {
		t.Fatalf("Partitions = %d, want 4", c.Partitions())
	}
	// Reserve partition 1 of bank 0 for [0, 100).
	start, end := c.ReservePart(0, 1, 0, 100)
	if start != 0 || end != 100 {
		t.Fatalf("ReservePart = [%v, %v)", start, end)
	}
	if c.FreeAtPart(0, 1, 50) {
		t.Fatal("partition 1 must be busy at 50")
	}
	if !c.FreeAtPart(0, 2, 50) {
		t.Fatal("partition 2 must be free while partition 1 is busy")
	}
	if c.FreeAt(0, 50) {
		t.Fatal("whole-bank view must be conservative: bank 0 busy at 50")
	}
	if !c.FreeAtPart(1, 1, 50) {
		t.Fatal("bank 1 must be unaffected")
	}
	// A second reservation on the same partition queues behind the first.
	if s2, _ := c.ReservePart(0, 1, 0, 10); s2 != 100 {
		t.Fatalf("same-partition reservation must serialize, start = %v", s2)
	}
	// Programming serializes chip-wide even across partitions.
	_, e3 := c.ReserveProgramPart(0, 2, 0, 10, 50)
	if e3 != 60 {
		t.Fatalf("program on partition 2 = end %v, want 60", e3)
	}
	if s4, _ := c.ReserveProgramPart(1, 0, 0, 0, 20); s4 != 0 {
		t.Fatalf("other-bank program may start at 0, started %v", s4)
	}
	if c.ProgBusyUntil != 80 {
		t.Fatalf("ProgBusyUntil = %v, want 80 (chip-wide serialization)", c.ProgBusyUntil)
	}

	// Monolithic chips: the partition entry points are the whole-bank ones.
	m := NewChipParts(1, 1, 1)
	m.ReservePart(0, 3, 0, 100)
	if m.FreeAtPart(0, 2, 50) || m.FreeAt(0, 50) {
		t.Fatal("parts=1 must delegate to whole-bank state")
	}
}
