package energy_test

import (
	"math"
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/dimm"
	"pcmap/internal/energy"
	"pcmap/internal/mem"
	"pcmap/internal/pcm"
	"pcmap/internal/sim"
)

func TestBreakdownArithmetic(t *testing.T) {
	m := energy.Default()
	rank := dimm.NewRank(8, dimm.Layout{})
	met := mem.NewMetrics()
	met.Reads.Add(1000)
	rank.Chips[0].CountWrite(pcmFlips(100, 50))
	b := m.FromRank(rank, met)
	wantRead := 1000 * 576 * 2.0 * 1e-6
	if math.Abs(b.ReadUJ-wantRead) > 1e-9 {
		t.Fatalf("read energy %v, want %v", b.ReadUJ, wantRead)
	}
	wantSet := 100 * 13.5 * 1e-6
	wantReset := 50 * 19.2 * 1e-6
	if math.Abs(b.SetUJ-wantSet) > 1e-9 || math.Abs(b.ResetUJ-wantReset) > 1e-9 {
		t.Fatalf("programming energy %v/%v, want %v/%v", b.SetUJ, b.ResetUJ, wantSet, wantReset)
	}
	if math.Abs(b.TotalUJ()-(b.ReadUJ+b.SetUJ+b.ResetUJ+b.BusUJ)) > 1e-12 {
		t.Fatal("total != sum of parts")
	}
	if len(b.PerChip) != 10 {
		t.Fatalf("per-chip breakdown has %d entries", len(b.PerChip))
	}
}

// pcmFlips builds a transition count.
func pcmFlips(sets, resets int) pcm.FlipKind {
	return pcm.FlipKind{Sets: sets, Resets: resets}
}

func TestDifferentialWritesSaveEnergy(t *testing.T) {
	// Writing the same content twice must cost (almost) no programming
	// energy the second time — the differential-write claim the paper
	// builds on.
	run := func(repeatSame bool) float64 {
		cfg := config.Default().WithVariant(config.Baseline)
		eng := sim.NewEngine()
		m, err := core.NewMemory(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var data [64]byte
		for i := range data {
			data[i] = byte(i)
		}
		alt := data
		for i := range alt {
			alt[i] ^= 0xff
		}
		for i := 0; i < 50; i++ {
			payload := data
			if !repeatSame && i%2 == 1 {
				payload = alt
			}
			m.Submit(&mem.Request{Kind: mem.Write, Addr: 0x40000, Mask: 0xff, Data: &payload})
			eng.Run()
		}
		var total float64
		for _, ctrl := range m.Ctrls {
			b := energy.Default().FromRank(ctrl.Rank(), ctrl.Metrics)
			total += b.SetUJ + b.ResetUJ
		}
		return total
	}
	same := run(true)
	toggle := run(false)
	if same*10 > toggle {
		t.Fatalf("rewriting identical content (%.4fuJ) should cost far less than toggling (%.4fuJ)", same, toggle)
	}
}

func TestWriteEnergyPerLine(t *testing.T) {
	rank := dimm.NewRank(8, dimm.Layout{})
	met := mem.NewMetrics()
	met.Writes.Add(10)
	rank.Chips[3].CountWrite(pcmFlips(320, 320))
	got := energy.Default().WriteEnergyPerLineUJ(rank, met)
	want := (320*13.5 + 320*19.2) * 1e-6 / 10
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("per-line %v, want %v", got, want)
	}
	if energy.Default().WriteEnergyPerLineUJ(dimm.NewRank(8, dimm.Layout{}), mem.NewMetrics()) != 0 {
		t.Fatal("zero writes must report zero")
	}
}
