// Package energy converts the simulator's activity counters into PCM
// energy estimates. The paper's evaluation is performance-only, but
// its motivation leans on PCM's write-energy wall (Section III-A2:
// matching DRAM write bandwidth would take ~5x the power), so the
// library reports the write-energy picture alongside performance. Cell
// energies default to literature-typical SLC PCM values (Lee et al.,
// ISCA 2009 et seq.).
package energy

import (
	"fmt"

	"pcmap/internal/dimm"
	"pcmap/internal/mem"
)

// Model carries per-operation energy parameters in picojoules.
type Model struct {
	// ReadPJPerBit is array-read (sense) energy.
	ReadPJPerBit float64
	// SETPJPerBit and RESETPJPerBit are cell programming energies; SET
	// is slower but lower-current, RESET is a short high-current pulse.
	SETPJPerBit   float64
	RESETPJPerBit float64
	// BusPJPerBit covers channel transfer energy per transferred bit.
	BusPJPerBit float64
}

// Default returns literature-typical SLC PCM parameters.
func Default() Model {
	return Model{
		ReadPJPerBit:  2.0,
		SETPJPerBit:   13.5,
		RESETPJPerBit: 19.2,
		BusPJPerBit:   0.5,
	}
}

// Breakdown is an energy report in microjoules.
type Breakdown struct {
	ReadUJ  float64 // array reads (demand reads, 72 bits x 8 words each)
	SetUJ   float64 // SET programming
	ResetUJ float64 // RESET programming
	BusUJ   float64 // channel transfers
	PerChip []float64
}

// TotalUJ sums the breakdown.
func (b Breakdown) TotalUJ() float64 { return b.ReadUJ + b.SetUJ + b.ResetUJ + b.BusUJ }

func (b Breakdown) String() string {
	return fmt.Sprintf("read %.2fuJ + SET %.2fuJ + RESET %.2fuJ + bus %.2fuJ = %.2fuJ",
		b.ReadUJ, b.SetUJ, b.ResetUJ, b.BusUJ, b.TotalUJ())
}

// lineBits is the bits sensed/transferred per line read (8 words x 72
// bits with the SECDED check byte).
const lineBits = 8 * 72

// FromRank computes the energy of one rank's recorded activity.
func (m Model) FromRank(rank *dimm.Rank, met *mem.Metrics) Breakdown {
	var b Breakdown
	pjToUJ := 1e-6
	// Verify read-backs sense the array like demand reads do (retry
	// programming energy is already in the chips' flip counters).
	reads := float64(met.Reads.Value() + met.VerifyReads.Value())
	b.ReadUJ = reads * lineBits * m.ReadPJPerBit * pjToUJ
	b.BusUJ = (reads + float64(met.Writes.Value())) * lineBits * m.BusPJPerBit * pjToUJ
	for _, c := range rank.Chips {
		set := float64(c.BitsSet) * m.SETPJPerBit * pjToUJ
		reset := float64(c.BitsReset) * m.RESETPJPerBit * pjToUJ
		b.SetUJ += set
		b.ResetUJ += reset
		b.PerChip = append(b.PerChip, set+reset)
	}
	return b
}

// WriteEnergyPerLineUJ reports average programming energy per
// completed write, the quantity differential writes (and silent-store
// elision) reduce.
func (m Model) WriteEnergyPerLineUJ(rank *dimm.Rank, met *mem.Metrics) float64 {
	if met.Writes.Value() == 0 {
		return 0
	}
	w := float64(met.Writes.Value())
	b := m.FromRank(rank, met)
	return (b.SetUJ + b.ResetUJ) / w
}
