// Package config holds the configuration tree of the simulated system.
// Defaults follow Table I of the paper: an 8-core 2.5 GHz out-of-order
// processor with a three-level cache hierarchy (256 MB DRAM LLC) in
// front of an 8 GB SLC PCM main memory on 4 DDR3-style channels.
package config

import (
	"fmt"
	"strings"

	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// Variant identifies one evaluated memory-system design: the paper's
// six (Section V) plus the follow-on variants this repository layers on
// top of them. A Variant is an index into the capability registry below;
// what a variant *does* is entirely described by its Features value, so
// adding a system means adding one registry entry, not editing predicate
// methods and their call sites.
type Variant int

const (
	// Baseline prioritizes reads over writes (write queue drain above
	// the high-water mark) with coarse-grained, whole-rank accesses.
	Baseline Variant = iota
	// RoWNR applies Read-over-Write only; no rotation of data words,
	// no rotation of ECC/PCC.
	RoWNR
	// WoWNR applies Write-over-Write only; no rotation.
	WoWNR
	// RWoWNR combines RoW and WoW without any rotation.
	RWoWNR
	// RWoWRD adds data-word rotation to RWoW (ECC/PCC still fixed).
	RWoWRD
	// RWoWRDE additionally rotates the ECC and PCC words across all
	// ten chips; this is the full PCMap design.
	RWoWRDE
	// PALP layers partition-level access parallelism (Arjomand et al.'s
	// follow-on line; PALP, PACT 2019 / arXiv:1908.07966) on top of the
	// full PCMap design: each PCM bank is split into Memory.Partitions
	// independent partitions, and the scheduler serves a read while a
	// write occupies a *different* partition of the same bank.
	PALP
	// RWoWDCA layers data-content-aware write timing (DCA; ISMM 2020 /
	// arXiv:2005.04753) on top of the full PCMap design: the cell
	// programming time of each chip-word is computed from the
	// differential write's actual SET/RESET bit counts instead of the
	// worst-case single SET/RESET latency.
	RWoWDCA
)

// Features is the capability set of one variant — the open replacement
// for the former per-variant predicate methods. A Features value is
// resolved once from the registry when a system is constructed and then
// consulted by the scheduler; it never changes mid-run.
type Features struct {
	// RoW serves reads over ongoing writes via PCC reconstruction.
	RoW bool
	// WoW consolidates writes with disjoint chip sets.
	WoW bool
	// RotateData rotates data words across chips (addr mod 8).
	RotateData bool
	// RotateECC rotates the ECC and PCC words across all ten chips
	// (addr mod 10).
	RotateECC bool
	// FineGrained uses rank subsetting so a write only occupies the
	// chips holding essential words; the baseline does coarse
	// whole-rank writes.
	FineGrained bool
	// PartitionRoW additionally serves a read while a write occupies a
	// different partition of the same bank (PALP).
	PartitionRoW bool
	// ContentAware computes write service time from the differential
	// write's actual SET/RESET bit counts (DCA).
	ContentAware bool
}

// Summary renders the capability set as a compact "+"-joined list of
// the enabled capabilities ("-" when none are), for registry listings.
func (f Features) Summary() string {
	var parts []string
	for _, c := range []struct {
		name string
		on   bool
	}{
		{"RoW", f.RoW},
		{"WoW", f.WoW},
		{"RotateData", f.RotateData},
		{"RotateECC", f.RotateECC},
		{"FineGrained", f.FineGrained},
		{"PartitionRoW", f.PartitionRoW},
		{"ContentAware", f.ContentAware},
	} {
		if c.on {
			parts = append(parts, c.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "+")
}

// variantInfo is one registry entry: the variant's canonical name and
// its capability set.
type variantInfo struct {
	name string
	feat Features
}

// registry maps every Variant (by index) to its name and Features. The
// first six entries are the paper's systems; their names and semantics
// are frozen — reports, caches, and golden outputs depend on them
// byte-for-byte.
var registry = []variantInfo{
	Baseline: {"Baseline", Features{}},
	RoWNR:    {"RoW-NR", Features{RoW: true, FineGrained: true}},
	WoWNR:    {"WoW-NR", Features{WoW: true, FineGrained: true}},
	RWoWNR:   {"RWoW-NR", Features{RoW: true, WoW: true, FineGrained: true}},
	RWoWRD:   {"RWoW-RD", Features{RoW: true, WoW: true, RotateData: true, FineGrained: true}},
	RWoWRDE:  {"RWoW-RDE", Features{RoW: true, WoW: true, RotateData: true, RotateECC: true, FineGrained: true}},
	PALP: {"PALP", Features{RoW: true, WoW: true, RotateData: true, RotateECC: true,
		FineGrained: true, PartitionRoW: true}},
	RWoWDCA: {"RWoW-DCA", Features{RoW: true, WoW: true, RotateData: true, RotateECC: true,
		FineGrained: true, ContentAware: true}},
}

// Variants lists the paper's six evaluated systems in the paper's
// order. The figure/table sweeps iterate exactly these; the follow-on
// variants are in AllVariants.
var Variants = []Variant{Baseline, RoWNR, WoWNR, RWoWNR, RWoWRD, RWoWRDE}

// AllVariants lists every registered variant: the paper's six followed
// by the follow-on systems.
var AllVariants = []Variant{Baseline, RoWNR, WoWNR, RWoWNR, RWoWRD, RWoWRDE, PALP, RWoWDCA}

// Known reports whether v is a registered variant.
func (v Variant) Known() bool { return v >= 0 && int(v) < len(registry) }

// Features returns the variant's capability set. Unknown variants
// return the zero Features (every capability off).
func (v Variant) Features() Features {
	if !v.Known() {
		return Features{}
	}
	return registry[v].feat
}

func (v Variant) String() string {
	if !v.Known() {
		return fmt.Sprintf("Variant(%d)", int(v))
	}
	return registry[v].name
}

// VariantByName resolves a canonical variant name (as printed by
// String) against the registry.
func VariantByName(name string) (Variant, bool) {
	for _, v := range AllVariants {
		if registry[v].name == name {
			return v, true
		}
	}
	return 0, false
}

// VariantNames lists every registered variant name in registry order.
func VariantNames() []string {
	names := make([]string, 0, len(AllVariants))
	for _, v := range AllVariants {
		names = append(names, registry[v].name)
	}
	return names
}

// The predicate methods below are thin compatibility views over
// Features, kept so existing call sites and serialized results read the
// same; new capabilities get Features fields only.

// RoW reports whether the variant serves reads over ongoing writes.
func (v Variant) RoW() bool { return v.Features().RoW }

// WoW reports whether the variant consolidates writes over ongoing writes.
func (v Variant) WoW() bool { return v.Features().WoW }

// RotateData reports whether data words rotate across chips (addr mod 8).
func (v Variant) RotateData() bool { return v.Features().RotateData }

// RotateECC reports whether the ECC and PCC words rotate across all ten
// chips (addr mod 10).
func (v Variant) RotateECC() bool { return v.Features().RotateECC }

// FineGrained reports whether the DIMM uses rank subsetting so that a
// write only occupies the chips holding essential words. Every PCMap
// variant needs it; the baseline does coarse whole-rank writes.
func (v Variant) FineGrained() bool { return v.Features().FineGrained }

// Core configures one out-of-order core of the interval model.
type Core struct {
	ClockGHz    float64 // processor frequency
	IssueWidth  int     // instructions issued per cycle when unstalled
	WindowSize  int     // reorder-buffer window (instructions)
	DataMSHRs   int     // outstanding data misses allowed
	RollbackPen int     // pipeline-refill cycles charged per rollback
}

// CacheLevel configures one cache level.
type CacheLevel struct {
	SizeBytes int64
	Ways      int
	LineBytes int
	HitCycles int // hit latency in CPU cycles
	WriteBack bool
	MSHRs     int
	// Banks is the NUCA bank count used for access contention. Only
	// the DRAM LLC models banked access; other levels ignore it. Must
	// be a power of two (the bank index is addr low bits masked);
	// zero means the default of 8.
	Banks int
}

// NoC configures the on-chip mesh network.
type NoC struct {
	Rows, Cols   int
	RouterCycles int // per-hop router latency (CPU cycles)
	LinkCycles   int // per-hop link latency (CPU cycles)
	FlitBytes    int
}

// PCMTiming carries the PCM device timing of Table I. Read/SET/RESET
// are cell-array latencies in picoseconds; the t* parameters are DDR3
// command timings in memory cycles at 400 MHz. The two unit types
// (mem.Picos and mem.Cycles) keep the quantities from mixing with
// simulated time without an explicit .Time() conversion — the
// pcmaplint unitsafe analyzer enforces this repo-wide.
type PCMTiming struct {
	ArrayRead mem.Picos // read-path row activation / array read (60 ns)
	// WriteArrayRead is the write path's internal read-before-write
	// (differential write compare). It equals ArrayRead by default but
	// stays fixed in the Table III sensitivity sweep, which varies the
	// read latency while holding the write path constant.
	WriteArrayRead mem.Picos
	CellSET        mem.Picos  // SET programming time (120 ns)
	CellRESET      mem.Picos  // RESET programming time (50 ns)
	TCL            mem.Cycles // CAS latency, memory cycles
	TWL            mem.Cycles // write latency (CAS-to-data), memory cycles
	TCCD           mem.Cycles // column-to-column delay
	TWTR           mem.Cycles // write-to-read turnaround
	TRTP           mem.Cycles // read-to-precharge
	TRP            mem.Cycles // precharge (row close); PCM arrays need no restore but
	// the interface keeps the DDR3 timing slot
	TRRDact mem.Cycles // activate-to-activate (different banks)
	TBurst  mem.Cycles // data burst length in memory cycles (BL8 on DDR = 4)
}

// WriteLatency returns the effective cell write time: differential
// writes program SET and RESET bits concurrently, so the slower of the
// two present transitions dominates.
func (t PCMTiming) WriteLatency(anySet, anyReset bool) sim.Time {
	switch {
	case anySet:
		return t.CellSET.Time()
	case anyReset:
		return t.CellRESET.Time()
	default:
		return 0
	}
}

// DCAWriteLatency returns the content-aware cell write time (the
// RWoW-DCA variant): SET bits program in rounds of ceil(64/rounds) bits
// each, so a word with few SET transitions finishes in a fraction of
// the worst-case CellSET time, while RESET bits complete in one
// CellRESET pulse concurrently. A fully-SET word (64 bits over `rounds`
// rounds) costs exactly CellSET, so DCA never exceeds the baseline
// WriteLatency; a word with no transitions costs nothing.
func (t PCMTiming) DCAWriteLatency(sets, resets, rounds int) sim.Time {
	if rounds < 1 {
		rounds = 1
	}
	var prog sim.Time
	if sets > 0 {
		bitsPerRound := (64 + rounds - 1) / rounds
		n := (sets + bitsPerRound - 1) / bitsPerRound
		prog = (t.CellSET.Time() / sim.Time(rounds)).Times(n)
	}
	if resets > 0 {
		if r := t.CellRESET.Time(); r > prog {
			prog = r
		}
	}
	return prog
}

// Memory configures the PCM main memory and its controllers.
type Memory struct {
	Channels      int // independent controllers/channels
	RanksPerChan  int
	DataChips     int // x8 data chips per rank (8)
	BanksPerChip  int
	RowBytes      int64 // row-buffer size per bank across the rank (8 KB)
	CapacityBytes int64 // total main-memory capacity

	ReadQueueCap  int     // per-channel read queue entries
	WriteQueueCap int     // per-channel write queue entries
	DrainHighPct  float64 // start draining writes above this occupancy
	DrainLowPct   float64 // stop draining below this occupancy

	Timing PCMTiming

	// StatusPollCycles is the cost (memory cycles) of the Status command
	// that reads the DIMM register's per-chip busy flags (Section IV-D).
	StatusPollCycles mem.Cycles

	// PowerSlots bounds how many chip-words a rank may program
	// concurrently (PCM writes are power-hungry; Section III-A2). A
	// coarse baseline write reserves the whole budget; a fine-grained
	// write reserves one slot per word it programs (data + ECC + PCC),
	// which is what lets WoW consolidate writes within the same budget.
	PowerSlots int

	// MaxConcurrentWrites bounds how many fine-grained writes the WoW
	// scheduler keeps in service per rank at once. The DIMM-register
	// status tracking and the controller's partial-write bookkeeping
	// are sized for a small number of overlapped writes; two matches
	// the paper's reported write-throughput gains (Figure 9).
	MaxConcurrentWrites int

	// WritePausing enables the related-work comparator (Qureshi et
	// al., HPCA 2010) on the Baseline variant: an in-service coarse
	// write may pause at segment boundaries to let pending reads
	// through, then resume. PCMap's RoW is evaluated against it.
	WritePausing bool
	// WritePauseSegments is the number of interruptible segments a
	// write's programming divides into (4 by default).
	WritePauseSegments int

	// WearLevelPsi enables Start-Gap wear leveling (Qureshi et al.,
	// MICRO 2009 — the scheme the paper cites as orthogonal) when
	// non-zero: the gap moves after every Psi writes, costing one line
	// copy each time. Zero disables remapping.
	WearLevelPsi uint64

	// Partitions is the number of independently schedulable partitions
	// each PCM bank divides into for the PALP variant (partition-level
	// access parallelism). Must be a power of two; 0 means the default
	// of 4. Variants without the PartitionRoW feature ignore it — their
	// banks stay monolithic.
	Partitions int

	// DCARounds is the number of programming rounds a fully-SET word
	// divides into under the content-aware (RWoW-DCA) write path: each
	// round programs ceil(64/DCARounds) SET bits in CellSET/DCARounds
	// time. Must lie in [1,64]; 0 means the default of 8. Variants
	// without the ContentAware feature ignore it.
	DCARounds int

	// RoWMultiWord enables the Section IV-B4 extension: applying RoW to
	// writes with more than one essential word by splitting them into a
	// series of single-word partial writes. The paper's evaluation keeps
	// this off; we implement it for the ablation benches.
	RoWMultiWord bool

	// BitErrorRate is the probability that a stored 64-bit word has a
	// single-bit fault when read back (used for the Table IV rollback
	// study; zero by default).
	BitErrorRate float64

	// FaultMode controls the Table IV experiment: "" (use BitErrorRate),
	// "always" (every RoW verification fails), "never" (verification
	// always succeeds).
	FaultMode string

	// EnduranceBudget enables endurance wearout injection when non-zero:
	// once a stored 64-bit word has been programmed more than this many
	// times, each further programming operation permanently sticks one
	// additional cell of that word (see internal/pcm.FaultModel). Zero
	// means perfect cells.
	EnduranceBudget uint64
	// DriftProb is the per-read probability that resistance drift flips
	// one stored bit of the accessed line. The flip corrupts stored
	// bytes and persists until reprogrammed. Zero disables drift.
	DriftProb float64
	// VerifyWrites enables the program-and-verify write path: after
	// programming, the controller reads the target words back, retries
	// mismatched words up to WriteRetryLimit times, and remaps lines
	// whose cells no longer program to the spare-line pool. Off by
	// default; when off, the write path is bit-identical to a
	// controller without the verify machinery.
	VerifyWrites bool
	// WriteRetryLimit bounds the re-program attempts of the verify path
	// before the line is remapped to a spare.
	WriteRetryLimit int
	// SpareLines is the per-channel spare-line pool available for
	// remapping worn-out lines. When exhausted, failed writes complete
	// degraded (reads rely on SECDED/PCC) and a metric counts the
	// shortfall.
	SpareLines int
}

// LineBytes is the cache-line/transfer granularity (64 B everywhere).
const LineBytes = 64

// WordBytes is the per-chip sub-block size: 64 B line / 8 data chips.
const WordBytes = 8

// WordsPerLine is the number of 8-byte words in a cache line.
const WordsPerLine = LineBytes / WordBytes

// Config is the root configuration.
type Config struct {
	Cores    int
	Core     Core
	L1D, L1I CacheLevel
	L2       CacheLevel
	DRAMLLC  CacheLevel
	NoC      NoC
	Memory   Memory
	Variant  Variant
	Seed     uint64
}

// Default returns the Table I configuration.
func Default() *Config {
	return &Config{
		Cores: 8,
		Core: Core{
			ClockGHz:    2.5,
			IssueWidth:  4,
			WindowSize:  192,
			DataMSHRs:   32,
			RollbackPen: 300,
		},
		L1D: CacheLevel{SizeBytes: 32 << 10, Ways: 2, LineBytes: 32, HitCycles: 1, WriteBack: false, MSHRs: 32},
		L1I: CacheLevel{SizeBytes: 32 << 10, Ways: 2, LineBytes: 32, HitCycles: 1, WriteBack: false, MSHRs: 4},
		L2:  CacheLevel{SizeBytes: 8 << 20, Ways: 8, LineBytes: 64, HitCycles: 7, WriteBack: true, MSHRs: 32},
		DRAMLLC: CacheLevel{
			SizeBytes: 256 << 20, Ways: 8, LineBytes: 64, HitCycles: 100, WriteBack: true, MSHRs: 32,
			Banks: 8,
		},
		NoC: NoC{Rows: 2, Cols: 4, RouterCycles: 1, LinkCycles: 1, FlitBytes: 16},
		Memory: Memory{
			Channels:            4,
			RanksPerChan:        1,
			DataChips:           8,
			BanksPerChip:        8,
			RowBytes:            8 << 10,
			CapacityBytes:       8 << 30,
			ReadQueueCap:        8,
			WriteQueueCap:       32,
			DrainHighPct:        0.8,
			DrainLowPct:         0.25,
			StatusPollCycles:    2,
			PowerSlots:          8,
			MaxConcurrentWrites: 2,
			WritePauseSegments:  4,
			Partitions:          4,
			DCARounds:           8,
			WriteRetryLimit:     3,
			SpareLines:          64,
			Timing: PCMTiming{
				ArrayRead:      mem.PicosFromNS(60),
				WriteArrayRead: mem.PicosFromNS(60),
				CellSET:        mem.PicosFromNS(120),
				CellRESET:      mem.PicosFromNS(50),
				TCL:            5,
				TWL:            4,
				TCCD:           4,
				TWTR:           4,
				TRTP:           3,
				TRP:            60,
				TRRDact:        2,
				TBurst:         4,
			},
		},
		Variant: Baseline,
		Seed:    1,
	}
}

// WithVariant returns a shallow copy of c with the variant replaced.
func (c *Config) WithVariant(v Variant) *Config {
	out := *c
	out.Variant = v
	return &out
}

// TotalChips returns the number of chips in a rank including the ECC and
// PCC chips (PCMap variants carry both; the baseline ECC DIMM carries
// the ECC chip only, but we keep ten everywhere so that storage layout
// is uniform and the baseline simply never touches the PCC chip).
func (m Memory) TotalChips() int { return m.DataChips + 2 }

// Validate checks internal consistency and returns a descriptive error
// for the first violated constraint.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.Core.IssueWidth <= 0:
		return fmt.Errorf("config: IssueWidth must be positive, got %d", c.Core.IssueWidth)
	case c.Core.WindowSize <= 0:
		return fmt.Errorf("config: WindowSize must be positive, got %d", c.Core.WindowSize)
	case c.Memory.Channels <= 0:
		return fmt.Errorf("config: Channels must be positive, got %d", c.Memory.Channels)
	case c.Memory.DataChips != WordsPerLine:
		return fmt.Errorf("config: DataChips must equal %d (one 8B word per chip), got %d", WordsPerLine, c.Memory.DataChips)
	case c.Memory.BanksPerChip <= 0:
		return fmt.Errorf("config: BanksPerChip must be positive, got %d", c.Memory.BanksPerChip)
	case c.Memory.CapacityBytes%int64(c.Memory.Channels) != 0:
		return fmt.Errorf("config: capacity %d not divisible by %d channels", c.Memory.CapacityBytes, c.Memory.Channels)
	case c.Memory.DrainHighPct <= c.Memory.DrainLowPct:
		return fmt.Errorf("config: DrainHighPct %.2f must exceed DrainLowPct %.2f", c.Memory.DrainHighPct, c.Memory.DrainLowPct)
	case c.Memory.DrainHighPct > 1 || c.Memory.DrainLowPct < 0:
		return fmt.Errorf("config: drain thresholds must lie in [0,1]")
	case c.Memory.Timing.ArrayRead <= 0 || c.Memory.Timing.WriteArrayRead <= 0 ||
		c.Memory.Timing.CellSET <= 0 || c.Memory.Timing.CellRESET <= 0:
		return fmt.Errorf("config: PCM cell timings must be positive")
	case c.L2.LineBytes != LineBytes || c.DRAMLLC.LineBytes != LineBytes:
		return fmt.Errorf("config: L2 and DRAM LLC line size must be %d bytes", LineBytes)
	case c.NoC.Rows*c.NoC.Cols < c.Cores:
		return fmt.Errorf("config: NoC %dx%d too small for %d cores", c.NoC.Rows, c.NoC.Cols, c.Cores)
	case c.Memory.DriftProb < 0 || c.Memory.DriftProb >= 1:
		return fmt.Errorf("config: DriftProb %g must lie in [0,1)", c.Memory.DriftProb)
	case c.Memory.BitErrorRate < 0 || c.Memory.BitErrorRate >= 1:
		return fmt.Errorf("config: BitErrorRate %g must lie in [0,1)", c.Memory.BitErrorRate)
	case c.Memory.WriteRetryLimit < 0:
		return fmt.Errorf("config: WriteRetryLimit must be non-negative, got %d", c.Memory.WriteRetryLimit)
	case c.Memory.SpareLines < 0:
		return fmt.Errorf("config: SpareLines must be non-negative, got %d", c.Memory.SpareLines)
	case c.Memory.FaultMode != "" && c.Memory.FaultMode != "always" && c.Memory.FaultMode != "never":
		return fmt.Errorf("config: FaultMode %q must be \"\", \"always\" or \"never\"", c.Memory.FaultMode)
	}
	for _, lvl := range []struct {
		name string
		l    CacheLevel
	}{{"L1D", c.L1D}, {"L1I", c.L1I}, {"L2", c.L2}, {"DRAMLLC", c.DRAMLLC}} {
		if lvl.l.SizeBytes <= 0 || lvl.l.Ways <= 0 || lvl.l.LineBytes <= 0 {
			return fmt.Errorf("config: %s has non-positive geometry", lvl.name)
		}
		sets := lvl.l.SizeBytes / int64(lvl.l.Ways*lvl.l.LineBytes)
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s set count %d is not a power of two", lvl.name, sets)
		}
	}
	if b := c.DRAMLLC.Banks; b < 1 || b&(b-1) != 0 {
		return fmt.Errorf("config: DRAMLLC.Banks must be a power of two >= 1, got %d", b)
	}
	if !c.Variant.Known() {
		return fmt.Errorf("config: unknown variant %d (registered: %s)", int(c.Variant), strings.Join(VariantNames(), ", "))
	}
	if p := c.Memory.Partitions; p != 0 && (p < 1 || p&(p-1) != 0) {
		return fmt.Errorf("config: Partitions must be a power of two >= 1 (or 0 for the default), got %d", p)
	}
	if r := c.Memory.DCARounds; r < 0 || r > 64 {
		return fmt.Errorf("config: DCARounds must lie in [1,64] (or 0 for the default), got %d", r)
	}
	return nil
}

// EffectivePartitions resolves the per-bank partition count the given
// features ask for: Memory.Partitions (default 4) under PartitionRoW,
// otherwise 1 (monolithic banks).
func (m Memory) EffectivePartitions(f Features) int {
	if !f.PartitionRoW {
		return 1
	}
	if m.Partitions <= 0 {
		return 4
	}
	return m.Partitions
}

// EffectiveDCARounds resolves the content-aware programming round
// count: Memory.DCARounds with 0 meaning the default of 8.
func (m Memory) EffectiveDCARounds() int {
	if m.DCARounds <= 0 {
		return 8
	}
	return m.DCARounds
}

// Geometry returns the memory shape the address map needs.
func (m Memory) Geometry() mem.Geometry {
	return mem.Geometry{
		Channels:      m.Channels,
		Banks:         m.BanksPerChip,
		RowBytes:      m.RowBytes,
		CapacityBytes: m.CapacityBytes,
	}
}

// WriteToReadRatio returns the current cell write-to-read latency ratio
// (the paper's default is 2x: 120 ns SET over 60 ns read). The ratio is
// taken at engine-tick granularity, the resolution the simulation
// actually observes.
func (m Memory) WriteToReadRatio() float64 {
	return float64(m.Timing.CellSET.Time().Ticks()) / float64(m.Timing.ArrayRead.Time().Ticks())
}

// SetWriteToReadRatio fixes the write latency at its current value and
// adjusts the read latency so that write/read equals ratio, mirroring
// the Table III sensitivity study. The result is computed in engine
// ticks and floored, matching the resolution the timing model uses.
func (m *Memory) SetWriteToReadRatio(ratio float64) {
	if ratio <= 0 {
		panic("config: non-positive write-to-read ratio")
	}
	t := sim.Time(float64(m.Timing.CellSET.Time().Ticks()) / ratio)
	if t < 1 {
		t = 1
	}
	m.Timing.ArrayRead = mem.PicosOf(t)
}
