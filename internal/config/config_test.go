package config

import (
	"testing"

	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestVariantFlags(t *testing.T) {
	cases := []struct {
		v                        Variant
		row, wow, rotD, rotE, fg bool
	}{
		{Baseline, false, false, false, false, false},
		{RoWNR, true, false, false, false, true},
		{WoWNR, false, true, false, false, true},
		{RWoWNR, true, true, false, false, true},
		{RWoWRD, true, true, true, false, true},
		{RWoWRDE, true, true, true, true, true},
	}
	for _, c := range cases {
		if c.v.RoW() != c.row || c.v.WoW() != c.wow ||
			c.v.RotateData() != c.rotD || c.v.RotateECC() != c.rotE ||
			c.v.FineGrained() != c.fg {
			t.Fatalf("variant %s has wrong capability flags", c.v)
		}
	}
}

func TestVariantStrings(t *testing.T) {
	want := []string{"Baseline", "RoW-NR", "WoW-NR", "RWoW-NR", "RWoW-RD", "RWoW-RDE"}
	for i, v := range Variants {
		if v.String() != want[i] {
			t.Fatalf("variant %d prints %q, want %q", i, v.String(), want[i])
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"bad chips", func(c *Config) { c.Memory.DataChips = 4 }},
		{"drain order", func(c *Config) { c.Memory.DrainHighPct = 0.1 }},
		{"odd cache sets", func(c *Config) { c.L2.SizeBytes = 3 << 20 }},
		{"line size", func(c *Config) { c.L2.LineBytes = 32 }},
		{"noc too small", func(c *Config) { c.NoC.Rows, c.NoC.Cols = 1, 2 }},
		{"zero timing", func(c *Config) { c.Memory.Timing.CellSET = 0 }},
		{"capacity split", func(c *Config) { c.Memory.CapacityBytes = (8 << 30) + 1; c.Memory.Channels = 2 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", m.name)
		}
	}
}

func TestWithVariantCopies(t *testing.T) {
	base := Default()
	v := base.WithVariant(RWoWRDE)
	if base.Variant != Baseline || v.Variant != RWoWRDE {
		t.Fatal("WithVariant must not mutate the receiver")
	}
}

func TestWriteLatencySelection(t *testing.T) {
	tm := Default().Memory.Timing
	if got := tm.WriteLatency(true, true); got != tm.CellSET.Time() {
		t.Fatalf("SET should dominate, got %v", got)
	}
	if got := tm.WriteLatency(false, true); got != tm.CellRESET.Time() {
		t.Fatalf("RESET-only write, got %v", got)
	}
	if got := tm.WriteLatency(false, false); got != 0 {
		t.Fatalf("no-flip write should be free, got %v", got)
	}
}

func TestWriteToReadRatio(t *testing.T) {
	m := Default().Memory
	if got := m.WriteToReadRatio(); got != 2 {
		t.Fatalf("default ratio %v, want 2 (120ns/60ns)", got)
	}
	for _, ratio := range []float64{2, 4, 6, 8} {
		m.SetWriteToReadRatio(ratio)
		if m.Timing.CellSET != mem.PicosFromNS(120) {
			t.Fatal("write latency must stay fixed in the Table III sweep")
		}
		got := m.WriteToReadRatio()
		if got < ratio*0.99 || got > ratio*1.01 {
			t.Fatalf("ratio %v after set %v", got, ratio)
		}
	}
}

func TestTotalChips(t *testing.T) {
	if got := Default().Memory.TotalChips(); got != 10 {
		t.Fatalf("TotalChips = %d, want 10 (8 data + ECC + PCC)", got)
	}
}

// TestFeaturesMatchPredicates is the exhaustive equivalence proof for
// the API redesign: for every registered variant, the Features value
// resolved from the registry must agree with the legacy predicate
// methods bit for bit.
func TestFeaturesMatchPredicates(t *testing.T) {
	for _, v := range AllVariants {
		f := v.Features()
		if f.RoW != v.RoW() || f.WoW != v.WoW() ||
			f.RotateData != v.RotateData() || f.RotateECC != v.RotateECC() ||
			f.FineGrained != v.FineGrained() {
			t.Fatalf("%s: Features %+v disagrees with predicate methods", v, f)
		}
	}
	if f := Variant(99).Features(); f != (Features{}) {
		t.Fatalf("unknown variant must resolve to zero Features, got %+v", f)
	}
}

// TestVariantRegistry pins the open registry's surface: the canonical
// names (the paper's six are frozen byte-for-byte), name lookup, and
// the Known/String behavior on unregistered values.
func TestVariantRegistry(t *testing.T) {
	want := []string{"Baseline", "RoW-NR", "WoW-NR", "RWoW-NR", "RWoW-RD", "RWoW-RDE", "PALP", "RWoW-DCA"}
	names := VariantNames()
	if len(names) != len(want) {
		t.Fatalf("VariantNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("VariantNames[%d] = %q, want %q", i, names[i], n)
		}
		v, ok := VariantByName(n)
		if !ok || v.String() != n {
			t.Fatalf("VariantByName(%q) = %v, %v", n, v, ok)
		}
		if !v.Known() {
			t.Fatalf("%s must be Known", n)
		}
	}
	if _, ok := VariantByName("nope"); ok {
		t.Fatal("VariantByName must reject unknown names")
	}
	if got := Variant(99).String(); got != "Variant(99)" {
		t.Fatalf("unknown variant prints %q", got)
	}
	if Variant(99).Known() || Variant(-1).Known() {
		t.Fatal("out-of-range variants must not be Known")
	}
	// The paper's sweep list must stay exactly the original six.
	if len(Variants) != 6 || Variants[5] != RWoWRDE {
		t.Fatalf("Variants changed: %v", Variants)
	}
}

// TestFeaturesSummary checks the registry listing's capability text.
func TestFeaturesSummary(t *testing.T) {
	if got := Baseline.Features().Summary(); got != "-" {
		t.Fatalf("Baseline summary = %q", got)
	}
	if got := PALP.Features().Summary(); got != "RoW+WoW+RotateData+RotateECC+FineGrained+PartitionRoW" {
		t.Fatalf("PALP summary = %q", got)
	}
	if got := RWoWDCA.Features().Summary(); got != "RoW+WoW+RotateData+RotateECC+FineGrained+ContentAware" {
		t.Fatalf("RWoW-DCA summary = %q", got)
	}
}

// TestDCAWriteLatency pins the content-aware write-timing model: SET
// bits program in rounds of ceil(64/rounds) bits at CellSET/rounds per
// round, RESET is one concurrent pulse, and the result never exceeds
// the worst-case WriteLatency.
func TestDCAWriteLatency(t *testing.T) {
	tm := Default().Memory.Timing
	set, reset := tm.CellSET.Time(), tm.CellRESET.Time()
	if got := tm.DCAWriteLatency(0, 0, 8); got != 0 {
		t.Fatalf("no transitions must be free, got %v", got)
	}
	if got := tm.DCAWriteLatency(0, 17, 8); got != reset {
		t.Fatalf("RESET-only word = %v, want %v", got, reset)
	}
	if got := tm.DCAWriteLatency(64, 64, 8); got != set {
		t.Fatalf("fully flipped word = %v, want %v", got, set)
	}
	if got := tm.DCAWriteLatency(1, 0, 8); got != set/8 {
		t.Fatalf("one SET bit = %v, want %v", got, set/8)
	}
	// A handful of SET bits with RESETs present: the RESET pulse floors
	// the latency when the SET rounds are quicker.
	if got := tm.DCAWriteLatency(1, 1, 8); got != reset {
		t.Fatalf("1 SET + RESETs = %v, want RESET floor %v", got, reset)
	}
	prev := sim.Time(0)
	for sets := 0; sets <= 64; sets++ {
		d := tm.DCAWriteLatency(sets, 0, 8)
		if d < prev {
			t.Fatalf("DCA latency must be monotone in SET count (sets=%d: %v < %v)", sets, d, prev)
		}
		if d > set {
			t.Fatalf("DCA latency exceeds CellSET at sets=%d: %v", sets, d)
		}
		prev = d
	}
	// rounds <= 0 degrades to a single full-latency round.
	if got := tm.DCAWriteLatency(1, 0, 0); got != set {
		t.Fatalf("rounds=0 must behave as one round, got %v", got)
	}
}

// TestPartitionAndDCAValidation covers the new Memory knobs' rules:
// Partitions must be 0 or a power of two, DCARounds within [0, 64],
// and unregistered variants are rejected outright.
func TestPartitionAndDCAValidation(t *testing.T) {
	for _, parts := range []int{0, 1, 2, 4, 8, 64} {
		c := Default()
		c.Memory.Partitions = parts
		if err := c.Validate(); err != nil {
			t.Fatalf("Partitions=%d must validate: %v", parts, err)
		}
	}
	for _, parts := range []int{-1, 3, 5, 6, 7, 12} {
		c := Default()
		c.Memory.Partitions = parts
		if err := c.Validate(); err == nil {
			t.Fatalf("Partitions=%d must be rejected", parts)
		}
	}
	for _, rounds := range []int{-1, 65, 1000} {
		c := Default()
		c.Memory.DCARounds = rounds
		if err := c.Validate(); err == nil {
			t.Fatalf("DCARounds=%d must be rejected", rounds)
		}
	}
	c := Default()
	c.Variant = Variant(42)
	if err := c.Validate(); err == nil {
		t.Fatal("unregistered variant must be rejected")
	}
}

// TestEffectivePartitions checks the resolution from config knobs plus
// variant capability to the partition/round counts the scheduler uses.
func TestEffectivePartitions(t *testing.T) {
	m := Default().Memory
	if got := m.EffectivePartitions(RWoWRDE.Features()); got != 1 {
		t.Fatalf("non-partitioned variant must get 1 partition, got %d", got)
	}
	if got := m.EffectivePartitions(PALP.Features()); got != 4 {
		t.Fatalf("PALP with default knob must get 4 partitions, got %d", got)
	}
	m.Partitions = 8
	if got := m.EffectivePartitions(PALP.Features()); got != 8 {
		t.Fatalf("PALP with Partitions=8 must get 8, got %d", got)
	}
	m.DCARounds = 0
	if got := m.EffectiveDCARounds(); got != 8 {
		t.Fatalf("default DCA rounds = %d, want 8", got)
	}
	m.DCARounds = 32
	if got := m.EffectiveDCARounds(); got != 32 {
		t.Fatalf("DCA rounds = %d, want 32", got)
	}
}
