package config

import (
	"testing"

	"pcmap/internal/mem"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestVariantFlags(t *testing.T) {
	cases := []struct {
		v                        Variant
		row, wow, rotD, rotE, fg bool
	}{
		{Baseline, false, false, false, false, false},
		{RoWNR, true, false, false, false, true},
		{WoWNR, false, true, false, false, true},
		{RWoWNR, true, true, false, false, true},
		{RWoWRD, true, true, true, false, true},
		{RWoWRDE, true, true, true, true, true},
	}
	for _, c := range cases {
		if c.v.RoW() != c.row || c.v.WoW() != c.wow ||
			c.v.RotateData() != c.rotD || c.v.RotateECC() != c.rotE ||
			c.v.FineGrained() != c.fg {
			t.Fatalf("variant %s has wrong capability flags", c.v)
		}
	}
}

func TestVariantStrings(t *testing.T) {
	want := []string{"Baseline", "RoW-NR", "WoW-NR", "RWoW-NR", "RWoW-RD", "RWoW-RDE"}
	for i, v := range Variants {
		if v.String() != want[i] {
			t.Fatalf("variant %d prints %q, want %q", i, v.String(), want[i])
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"bad chips", func(c *Config) { c.Memory.DataChips = 4 }},
		{"drain order", func(c *Config) { c.Memory.DrainHighPct = 0.1 }},
		{"odd cache sets", func(c *Config) { c.L2.SizeBytes = 3 << 20 }},
		{"line size", func(c *Config) { c.L2.LineBytes = 32 }},
		{"noc too small", func(c *Config) { c.NoC.Rows, c.NoC.Cols = 1, 2 }},
		{"zero timing", func(c *Config) { c.Memory.Timing.CellSET = 0 }},
		{"capacity split", func(c *Config) { c.Memory.CapacityBytes = (8 << 30) + 1; c.Memory.Channels = 2 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", m.name)
		}
	}
}

func TestWithVariantCopies(t *testing.T) {
	base := Default()
	v := base.WithVariant(RWoWRDE)
	if base.Variant != Baseline || v.Variant != RWoWRDE {
		t.Fatal("WithVariant must not mutate the receiver")
	}
}

func TestWriteLatencySelection(t *testing.T) {
	tm := Default().Memory.Timing
	if got := tm.WriteLatency(true, true); got != tm.CellSET.Time() {
		t.Fatalf("SET should dominate, got %v", got)
	}
	if got := tm.WriteLatency(false, true); got != tm.CellRESET.Time() {
		t.Fatalf("RESET-only write, got %v", got)
	}
	if got := tm.WriteLatency(false, false); got != 0 {
		t.Fatalf("no-flip write should be free, got %v", got)
	}
}

func TestWriteToReadRatio(t *testing.T) {
	m := Default().Memory
	if got := m.WriteToReadRatio(); got != 2 {
		t.Fatalf("default ratio %v, want 2 (120ns/60ns)", got)
	}
	for _, ratio := range []float64{2, 4, 6, 8} {
		m.SetWriteToReadRatio(ratio)
		if m.Timing.CellSET != mem.PicosFromNS(120) {
			t.Fatal("write latency must stay fixed in the Table III sweep")
		}
		got := m.WriteToReadRatio()
		if got < ratio*0.99 || got > ratio*1.01 {
			t.Fatalf("ratio %v after set %v", got, ratio)
		}
	}
}

func TestTotalChips(t *testing.T) {
	if got := Default().Memory.TotalChips(); got != 10 {
		t.Fatalf("TotalChips = %d, want 10 (8 data + ECC + PCC)", got)
	}
}
