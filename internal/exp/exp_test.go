package exp

import (
	"context"
	"testing"

	"pcmap/internal/config"
)

// testRunner keeps budgets small: these tests check plumbing and
// directional results, not publication numbers.
func testRunner() *Runner {
	r := NewRunner()
	r.Warmup, r.Measure = 5_000, 30_000
	return r
}

func TestRunnerMemoizes(t *testing.T) {
	r := testRunner()
	s := Spec{Workload: "MP4", Variant: config.Baseline}
	a, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical specs must return the memoized result")
	}
}

func TestRunnerDeterministic(t *testing.T) {
	s := Spec{Workload: "MP5", Variant: config.RWoWRDE}
	a, err := testRunner().Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testRunner().Run(s)
	if err != nil {
		t.Fatal(err)
	}
	//pcmaplint:ignore floatcmp determinism means bit-identical floats, an epsilon would mask regressions
	if a.IPCSum != b.IPCSum || a.IRLPAvg != b.IRLPAvg ||
		a.Mem.Reads.Value() != b.Mem.Reads.Value() {
		t.Fatalf("same spec, different results: IPC %.6f vs %.6f, IRLP %.6f vs %.6f",
			a.IPCSum, b.IPCSum, a.IRLPAvg, b.IRLPAvg)
	}
}

func TestRunnerRejectsUnknownWorkload(t *testing.T) {
	if _, err := testRunner().Run(Spec{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestRunAllParallel(t *testing.T) {
	r := testRunner()
	r.Parallelism = 4
	specs := []Spec{
		{Workload: "MP4", Variant: config.Baseline},
		{Workload: "MP4", Variant: config.RWoWRDE},
		{Workload: "dedup", Variant: config.Baseline},
		{Workload: "dedup", Variant: config.RWoWRDE},
	}
	if err := r.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if res := r.MustRun(s); res.IPCSum <= 0 {
			t.Fatalf("%v: no result", s)
		}
	}
}

func TestSpecConfigMapping(t *testing.T) {
	r := testRunner()
	cfg := r.configFor(Spec{Workload: "x", Variant: config.RWoWRDE, WriteToReadRatio: 4, FaultMode: "always"})
	if cfg.Variant != config.RWoWRDE {
		t.Fatal("variant not applied")
	}
	if got := cfg.Memory.WriteToReadRatio(); got < 3.9 || got > 4.1 {
		t.Fatalf("ratio %v, want 4", got)
	}
	if cfg.Memory.FaultMode != "always" {
		t.Fatal("fault mode not applied")
	}
	sym := r.configFor(Spec{Symmetric: true})
	if sym.Memory.Timing.CellSET != sym.Memory.Timing.ArrayRead {
		t.Fatal("symmetric spec must equalize write and read latency")
	}
}

func TestHeadlineDirections(t *testing.T) {
	// The reproduction's core claim at reduced budgets: PCMap raises
	// IRLP and IPC over the baseline on the paper's most intense
	// workload pair.
	r := testRunner()
	for _, w := range []string{"canneal", "MP4"} {
		base, err := r.Run(Spec{Workload: w, Variant: config.Baseline})
		if err != nil {
			t.Fatal(err)
		}
		full, err := r.Run(Spec{Workload: w, Variant: config.RWoWRDE})
		if err != nil {
			t.Fatal(err)
		}
		if full.IRLPAvg <= base.IRLPAvg {
			t.Errorf("%s: IRLP %.2f -> %.2f did not improve", w, base.IRLPAvg, full.IRLPAvg)
		}
		if full.IPCSum <= base.IPCSum {
			t.Errorf("%s: IPC %.3f -> %.3f did not improve", w, base.IPCSum, full.IPCSum)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	r := testRunner()
	// Run only two programs to keep the test quick: patch via direct
	// spec runs, mirroring Fig1's computation.
	for _, app := range []string{"cactusADM", "gromacs"} {
		asym, err := r.Run(Spec{Workload: app, Variant: config.Baseline})
		if err != nil {
			t.Fatal(err)
		}
		symm, err := r.Run(Spec{Workload: app, Variant: config.Baseline, Symmetric: true})
		if err != nil {
			t.Fatal(err)
		}
		if asym.Mem.ReadLatency.MeanNS() <= symm.Mem.ReadLatency.MeanNS() {
			t.Errorf("%s: asymmetric writes should inflate read latency (%.1f vs %.1f)",
				app, asym.Mem.ReadLatency.MeanNS(), symm.Mem.ReadLatency.MeanNS())
		}
	}
}

func TestFigureResultSeries(t *testing.T) {
	f := newFigure("x", "t")
	f.set("row", "col", 1.5)
	//pcmaplint:ignore floatcmp round-trip of a stored value, no arithmetic between set and get
	if f.Series["row"]["col"] != 1.5 {
		t.Fatal("series not recorded")
	}
}
