package exp

import (
	"context"
	"fmt"
	"sort"

	"pcmap/internal/config"
	"pcmap/internal/stats"
	"pcmap/internal/system"
	"pcmap/internal/workloads"
)

// FigureResult is one regenerated figure or table: a rendered table
// plus the raw series for machine consumption (EXPERIMENTS.md,
// pcmapreport).
type FigureResult struct {
	ID     string
	Title  string
	Series map[string]map[string]float64 // row -> column -> value
	Table  *stats.Table                  `json:"-"`
	Notes  []string
}

func newFigure(id, title string) *FigureResult {
	return &FigureResult{ID: id, Title: title, Series: map[string]map[string]float64{}}
}

func (f *FigureResult) set(row, col string, v float64) {
	m, ok := f.Series[row]
	if !ok {
		m = map[string]float64{}
		f.Series[row] = m
	}
	m[col] = v
}

// overlapVariants are the five systems Figures 9-11 compare against
// the baseline.
var overlapVariants = []config.Variant{
	config.RoWNR, config.WoWNR, config.RWoWNR, config.RWoWRD, config.RWoWRDE,
}

// Fig1 regenerates Figure 1: for each SPEC program on the baseline,
// the percentage of reads delayed by an ongoing write and the
// effective read latency normalized to a symmetric-latency PCM.
func Fig1(ctx context.Context, r *Runner) (*FigureResult, error) {
	apps := workloads.SPECNames()
	var specs []Spec
	for _, a := range apps {
		specs = append(specs,
			Spec{Workload: a, Variant: config.Baseline},
			Spec{Workload: a, Variant: config.Baseline, Symmetric: true})
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("fig1", "Figure 1: reads delayed by writes; read latency vs symmetric PCM (baseline)")
	f.Table = &stats.Table{Title: f.Title,
		Headers: []string{"program", "reads delayed by write", "norm. read latency (vs symmetric)"}}
	for _, a := range apps {
		asym := r.MustRun(Spec{Workload: a, Variant: config.Baseline})
		symm := r.MustRun(Spec{Workload: a, Variant: config.Baseline, Symmetric: true})
		delayed := 0.0
		if n := asym.Mem.Reads.Value(); n > 0 {
			delayed = float64(asym.Mem.ReadsDelayedByWrite.Value()) / float64(n)
		}
		norm := 0.0
		if s := symm.Mem.ReadLatency.MeanNS(); s > 0 {
			norm = asym.Mem.ReadLatency.MeanNS() / s
		}
		f.set(a, "delayedPct", delayed)
		f.set(a, "normReadLatency", norm)
		f.Table.AddRow(a, stats.Pct(delayed), stats.F(norm))
	}
	f.Notes = append(f.Notes,
		"Paper: 11.5%-38.1% of reads delayed; effective latency 1.2x-1.8x over symmetric.")
	return f, nil
}

// Fig2 regenerates Figure 2: the distribution of essential 8B words
// per 64B write-back, measured at the PCM controller.
func Fig2(ctx context.Context, r *Runner) (*FigureResult, error) {
	apps := workloads.SPECNames()
	var specs []Spec
	for _, a := range apps {
		specs = append(specs, Spec{Workload: a, Variant: config.Baseline})
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("fig2", "Figure 2: dirty-word distribution of write-backs (measured at PCM)")
	headers := []string{"program"}
	for k := 0; k <= 8; k++ {
		headers = append(headers, fmt.Sprintf("%dw", k))
	}
	headers = append(headers, "mean")
	f.Table = &stats.Table{Title: f.Title, Headers: headers}
	for _, a := range apps {
		res := r.MustRun(Spec{Workload: a, Variant: config.Baseline})
		row := []string{a}
		for k := 0; k <= 8; k++ {
			frac := res.Mem.DirtyWords.Fraction(k)
			f.set(a, fmt.Sprintf("w%d", k), frac)
			row = append(row, stats.Pct(frac))
		}
		mean := res.Mem.DirtyWords.MeanValue()
		f.set(a, "mean", mean)
		row = append(row, stats.F(mean))
		f.Table.AddRow(row...)
	}
	f.Notes = append(f.Notes,
		"Paper anchors: 14% (omnetpp) to 52% (cactusADM) of write-backs dirty exactly 1 word;",
		"77-99% dirty fewer than 4 words; implied baseline IRLP ~2.37.")
	return f, nil
}

// evalSpecs builds the shared Figures 8-11 sweep: the 12-workload
// evaluation set (plus, optionally, all 13 PARSEC programs for the
// Average(MT) bar) across all six variants.
func evalSpecs(includeAvgMT bool) []Spec {
	names := workloads.EvaluationSet()
	if includeAvgMT {
		seen := map[string]bool{}
		for _, n := range names {
			seen[n] = true
		}
		for _, n := range workloads.PARSECNames() {
			if !seen[n] {
				names = append(names, n)
			}
		}
	}
	var specs []Spec
	for _, n := range names {
		for _, v := range config.Variants {
			specs = append(specs, Spec{Workload: n, Variant: v})
		}
	}
	return specs
}

// evalRows lists the Figure 8-11 row labels in the paper's order:
// 6 MT workloads, Average(MT), 6 MP mixes, Average(MP).
func evalRows() []string {
	rows := append([]string{}, workloads.TableIIMT()...)
	rows = append(rows, "Average(MT)")
	rows = append(rows, workloads.TableIIMP()...)
	rows = append(rows, "Average(MP)")
	return rows
}

// metricFn extracts one scalar from a run.
type metricFn func(res runPair) float64

// runPair holds a variant run with its same-workload baseline.
type runPair struct {
	res, base *system.Results
}

// evalFigure drives the shared sweep and fills a figure whose cell
// [workload][variant] = metric(run, baseline).
func evalFigure(ctx context.Context, r *Runner, id, title string, includeAvgMT bool, variants []config.Variant, metric metricFn) (*FigureResult, error) {
	if err := r.RunAll(ctx, evalSpecs(includeAvgMT)); err != nil {
		return nil, err
	}
	f := newFigure(id, title)
	headers := []string{"workload"}
	for _, v := range variants {
		headers = append(headers, v.String())
	}
	f.Table = &stats.Table{Title: title, Headers: headers}

	value := func(workload string, v config.Variant) float64 {
		res := r.MustRun(Spec{Workload: workload, Variant: v})
		base := r.MustRun(Spec{Workload: workload, Variant: config.Baseline})
		return metric(runPair{res: res, base: base})
	}
	avgOver := func(names []string, v config.Variant) float64 {
		var xs []float64
		for _, n := range names {
			xs = append(xs, value(n, v))
		}
		return stats.ArithMean(xs)
	}

	mtNames := workloads.TableIIMT()
	if includeAvgMT {
		mtNames = workloads.PARSECNames()
	}
	for _, row := range evalRows() {
		cells := []string{row}
		for _, v := range variants {
			var x float64
			switch row {
			case "Average(MT)":
				x = avgOver(mtNames, v)
			case "Average(MP)":
				x = avgOver(workloads.TableIIMP(), v)
			default:
				x = value(row, v)
			}
			f.set(row, v.String(), x)
			cells = append(cells, stats.F(x))
		}
		f.Table.AddRow(cells...)
	}
	return f, nil
}

// Fig8 regenerates Figure 8: IRLP per workload for Baseline, WoW-NR,
// RWoW-RD and RWoW-RDE (the paper's legend).
func Fig8(ctx context.Context, r *Runner, includeAvgMT bool) (*FigureResult, error) {
	variants := []config.Variant{config.Baseline, config.WoWNR, config.RWoWRD, config.RWoWRDE}
	f, err := evalFigure(ctx, r, "fig8", "Figure 8: intra-rank-level parallelism during writes",
		includeAvgMT, variants, func(p runPair) float64 { return p.res.IRLPAvg })
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		"Paper: baseline <2 (MT) to ~2.4; RWoW-RDE ~4.5 average, up to 7.4 (max 8.0);",
		"MP1-MP3 approach 8 with full rotation.")
	return f, nil
}

// Fig9 regenerates Figure 9: write throughput normalized to baseline.
func Fig9(ctx context.Context, r *Runner, includeAvgMT bool) (*FigureResult, error) {
	f, err := evalFigure(ctx, r, "fig9", "Figure 9: write throughput improvement over baseline",
		includeAvgMT, overlapVariants, func(p runPair) float64 {
			b := p.base.Mem.WriteThroughput()
			if b <= 0 {
				return 0
			}
			return p.res.Mem.WriteThroughput() / b
		})
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		"Paper: >1.2x for 5 of 12 workloads with full PCMap; >10% for the majority;",
		"RWoW averages ~33% over the non-consolidating systems.")
	return f, nil
}

// Fig10 regenerates Figure 10: effective read latency normalized to
// baseline.
func Fig10(ctx context.Context, r *Runner, includeAvgMT bool) (*FigureResult, error) {
	f, err := evalFigure(ctx, r, "fig10", "Figure 10: effective read latency (normalized to baseline)",
		includeAvgMT, overlapVariants, func(p runPair) float64 {
			b := p.base.Mem.ReadLatency.MeanNS()
			if b <= 0 {
				return 0
			}
			return p.res.Mem.ReadLatency.MeanNS() / b
		})
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		"Paper: RoW-NR cuts effective read latency 6-14%; RWoW-RDE reaches ~50% (MT) and ~55% (MP) reductions.")
	return f, nil
}

// Fig11 regenerates Figure 11: IPC improvement over baseline.
func Fig11(ctx context.Context, r *Runner, includeAvgMT bool) (*FigureResult, error) {
	f, err := evalFigure(ctx, r, "fig11", "Figure 11: IPC improvement over baseline",
		includeAvgMT, overlapVariants, func(p runPair) float64 {
			if p.base.IPCSum <= 0 {
				return 0
			}
			return p.res.IPCSum/p.base.IPCSum - 1
		})
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		"Paper averages: RoW-NR 4.5%, WoW-NR 6.1%, RWoW-NR 9.95%, RWoW-RD 13.1%, RWoW-RDE 16.6%.")
	return f, nil
}

// Table2 checks the workload calibration: measured RPKI/WPKI against
// the Table II targets.
func Table2(ctx context.Context, r *Runner) (*FigureResult, error) {
	names := workloads.EvaluationSet()
	var specs []Spec
	for _, n := range names {
		specs = append(specs, Spec{Workload: n, Variant: config.Baseline})
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("table2", "Table II: workload intensity (measured vs paper)")
	f.Table = &stats.Table{Title: f.Title,
		Headers: []string{"workload", "RPKI (paper)", "RPKI (measured)", "WPKI (paper)", "WPKI (measured)"}}
	for _, n := range names {
		res := r.MustRun(Spec{Workload: n, Variant: config.Baseline})
		mix := workloads.MustMix(n)
		rp, wp := mix.AggregateRPKIWPKI()
		f.set(n, "rpkiPaper", rp)
		f.set(n, "rpkiMeasured", res.RPKI)
		f.set(n, "wpkiPaper", wp)
		f.set(n, "wpkiMeasured", res.WPKI)
		f.Table.AddRow(n, stats.F(rp), stats.F(res.RPKI), stats.F(wp), stats.F(res.WPKI))
	}
	f.Notes = append(f.Notes,
		"MP-mix paper targets are per-program solo intensities averaged; the paper's Table II",
		"reports measured mix behavior, so MP rows are approximate by construction.")
	return f, nil
}

// Table3 regenerates Table III: IPC improvement of RWoW-NR and
// RWoW-RDE as the write-to-read latency ratio varies from 2x to 8x.
func Table3(ctx context.Context, r *Runner) (*FigureResult, error) {
	ratios := []float64{2, 4, 6, 8}
	names := workloads.EvaluationSet()
	variants := []config.Variant{config.RWoWRDE, config.RWoWNR}
	var specs []Spec
	for _, ratio := range ratios {
		for _, n := range names {
			specs = append(specs, Spec{Workload: n, Variant: config.Baseline, WriteToReadRatio: ratio})
			for _, v := range variants {
				specs = append(specs, Spec{Workload: n, Variant: v, WriteToReadRatio: ratio})
			}
		}
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("table3", "Table III: IPC improvement vs write-to-read latency ratio")
	f.Table = &stats.Table{Title: f.Title, Headers: []string{"system", "2x", "4x", "6x", "8x"}}
	for _, v := range variants {
		cells := []string{v.String()}
		for _, ratio := range ratios {
			var imps []float64
			for _, n := range names {
				base := r.MustRun(Spec{Workload: n, Variant: config.Baseline, WriteToReadRatio: ratio})
				res := r.MustRun(Spec{Workload: n, Variant: v, WriteToReadRatio: ratio})
				if base.IPCSum > 0 {
					imps = append(imps, res.IPCSum/base.IPCSum-1)
				}
			}
			imp := stats.ArithMean(imps)
			f.set(v.String(), fmt.Sprintf("%gx", ratio), imp)
			cells = append(cells, stats.Pct(imp))
		}
		f.Table.AddRow(cells...)
	}
	f.Notes = append(f.Notes,
		"Paper: RWoW-RDE 16.6% -> 24.3% as the ratio grows 2x -> 8x; RWoW-NR 11.3% -> 24.7%",
		"(RWoW-NR depends on the ratio much more strongly).")
	return f, nil
}

// Table4 regenerates Table IV: the cost of RoW verification rollbacks
// for the workloads with the most rollbacks, comparing an always-faulty
// system against a never-faulty one.
func Table4(ctx context.Context, r *Runner) (*FigureResult, error) {
	names := []string{"canneal", "facesim", "MP6", "ferret"}
	var specs []Spec
	for _, n := range names {
		specs = append(specs,
			Spec{Workload: n, Variant: config.Baseline},
			Spec{Workload: n, Variant: config.RWoWRDE, FaultMode: "always"},
			Spec{Workload: n, Variant: config.RWoWRDE, FaultMode: "never"})
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("table4", "Table IV: IPC of RoW under rollback (faulty vs non-faulty)")
	f.Table = &stats.Table{Title: f.Title,
		Headers: []string{"workload", "max rollbacks", "IPC imp. (faulty)", "IPC imp. (non-faulty)", "rollback cost"}}
	for _, n := range names {
		base := r.MustRun(Spec{Workload: n, Variant: config.Baseline})
		faulty := r.MustRun(Spec{Workload: n, Variant: config.RWoWRDE, FaultMode: "always"})
		clean := r.MustRun(Spec{Workload: n, Variant: config.RWoWRDE, FaultMode: "never"})
		impF, impC := 0.0, 0.0
		if base.IPCSum > 0 {
			impF = faulty.IPCSum/base.IPCSum - 1
			impC = clean.IPCSum/base.IPCSum - 1
		}
		f.set(n, "maxRollbackPct", faulty.MaxRollbackPct)
		f.set(n, "ipcImpFaulty", impF)
		f.set(n, "ipcImpNonFaulty", impC)
		f.set(n, "rollbackCost", impC-impF)
		f.Table.AddRow(n, stats.Pct(faulty.MaxRollbackPct), stats.Pct(impF), stats.Pct(impC), stats.Pct(impC-impF))
	}
	f.Notes = append(f.Notes,
		"Paper: rollbacks up to 5.8% (canneal); RoW never loses to baseline even always-faulty;",
		"rollback cost up to 4.6%.")
	return f, nil
}

// Headline computes the paper's headline numbers: IRLP 2.37 -> 4.5
// (max 7.4) and IPC +15.6%/+16.7% (MP/MT) for full PCMap. With
// includeAvgMT the multithreaded average covers all 13 PARSEC programs,
// matching the paper's Average(MT) definition (Section V).
func Headline(ctx context.Context, r *Runner, includeAvgMT bool) (*FigureResult, error) {
	if err := r.RunAll(ctx, evalSpecs(includeAvgMT)); err != nil {
		return nil, err
	}
	f := newFigure("headline", "Headline: IRLP and IPC of full PCMap (RWoW-RDE) vs baseline")
	mtSet := workloads.TableIIMT()
	if includeAvgMT {
		mtSet = workloads.PARSECNames()
	}
	var irlpBase, irlpFull, maxIRLP []float64
	var impMT, impMP []float64
	names := append(append([]string{}, mtSet...), workloads.TableIIMP()...)
	for _, n := range names {
		base := r.MustRun(Spec{Workload: n, Variant: config.Baseline})
		full := r.MustRun(Spec{Workload: n, Variant: config.RWoWRDE})
		irlpBase = append(irlpBase, base.IRLPAvg)
		irlpFull = append(irlpFull, full.IRLPAvg)
		maxIRLP = append(maxIRLP, full.IRLPAvg)
		if base.IPCSum > 0 {
			imp := full.IPCSum/base.IPCSum - 1
			if isMT(n) || containsName(mtSet, n) {
				impMT = append(impMT, imp)
			} else {
				impMP = append(impMP, imp)
			}
		}
	}
	sort.Float64s(maxIRLP)
	f.set("IRLP", "baseline", stats.ArithMean(irlpBase))
	f.set("IRLP", "pcmap", stats.ArithMean(irlpFull))
	f.set("IRLP", "pcmapMax", maxIRLP[len(maxIRLP)-1])
	f.set("IPC improvement", "MT", stats.ArithMean(impMT))
	f.set("IPC improvement", "MP", stats.ArithMean(impMP))
	f.Table = &stats.Table{Title: f.Title, Headers: []string{"metric", "measured", "paper"}}
	f.Table.AddRow("IRLP baseline", stats.F(stats.ArithMean(irlpBase)), "2.37")
	f.Table.AddRow("IRLP PCMap (avg)", stats.F(stats.ArithMean(irlpFull)), "4.5")
	f.Table.AddRow("IRLP PCMap (max workload)", stats.F(maxIRLP[len(maxIRLP)-1]), "7.4")
	f.Table.AddRow("IPC improvement (MT)", stats.Pct(stats.ArithMean(impMT)), "16.7%")
	f.Table.AddRow("IPC improvement (MP)", stats.Pct(stats.ArithMean(impMP)), "15.6%")
	return f, nil
}

func isMT(name string) bool { return containsName(workloads.TableIIMT(), name) }

func containsName(set []string, name string) bool {
	for _, n := range set {
		if n == name {
			return true
		}
	}
	return false
}

// Pausing compares PCMap against the write-pausing comparator (Qureshi
// et al., HPCA 2010; Section VII of the paper): pausing lets reads
// preempt a baseline write at segment boundaries, RoW overlaps them
// outright. This is an extension beyond the paper's own evaluation.
func Pausing(ctx context.Context, r *Runner) (*FigureResult, error) {
	names := workloads.EvaluationSet()
	var specs []Spec
	for _, n := range names {
		specs = append(specs,
			Spec{Workload: n, Variant: config.Baseline},
			Spec{Workload: n, Variant: config.Baseline, WritePausing: true},
			Spec{Workload: n, Variant: config.RWoWRDE})
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("pausing", "Extension: write pausing (HPCA'10) vs PCMap")
	f.Table = &stats.Table{Title: f.Title,
		Headers: []string{"workload", "pausing read-lat (norm)", "PCMap read-lat (norm)", "pausing IPC imp", "PCMap IPC imp"}}
	for _, n := range names {
		base := r.MustRun(Spec{Workload: n, Variant: config.Baseline})
		pause := r.MustRun(Spec{Workload: n, Variant: config.Baseline, WritePausing: true})
		pcmap := r.MustRun(Spec{Workload: n, Variant: config.RWoWRDE})
		bl := base.Mem.ReadLatency.MeanNS()
		if bl <= 0 || base.IPCSum <= 0 {
			continue
		}
		f.set(n, "pausingReadLat", pause.Mem.ReadLatency.MeanNS()/bl)
		f.set(n, "pcmapReadLat", pcmap.Mem.ReadLatency.MeanNS()/bl)
		f.set(n, "pausingIPC", pause.IPCSum/base.IPCSum-1)
		f.set(n, "pcmapIPC", pcmap.IPCSum/base.IPCSum-1)
		f.Table.AddRow(n,
			stats.F(pause.Mem.ReadLatency.MeanNS()/bl),
			stats.F(pcmap.Mem.ReadLatency.MeanNS()/bl),
			stats.Pct(pause.IPCSum/base.IPCSum-1),
			stats.Pct(pcmap.IPCSum/base.IPCSum-1))
	}
	f.Notes = append(f.Notes,
		"Write pausing only interrupts the one serialized write; PCMap overlaps reads AND",
		"consolidates writes, so it should dominate on write-intense workloads.")
	return f, nil
}

// Palp compares the two follow-on variants against the full PCMap
// design (RWoW-RDE): PALP (partition-level access parallelism, arXiv
// 1908.07966) and RWoW-DCA (data-content-aware write timing, arXiv
// 2005.04753). The part-overlap column counts accesses served only
// because the conflicting work sat in another partition of the same
// bank — zero by construction for every non-partitioned variant.
func Palp(ctx context.Context, r *Runner) (*FigureResult, error) {
	names := workloads.EvaluationSet()
	var specs []Spec
	for _, n := range names {
		specs = append(specs,
			Spec{Workload: n, Variant: config.RWoWRDE},
			Spec{Workload: n, Variant: config.PALP},
			Spec{Workload: n, Variant: config.RWoWDCA})
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("palp", "Extension: PALP + content-aware writes vs RWoW-RDE")
	f.Table = &stats.Table{Title: f.Title,
		Headers: []string{"workload", "PALP IPC imp", "DCA IPC imp", "PALP read-lat (norm)",
			"DCA write-tput (norm)", "overlap reads RDE", "overlap reads PALP", "part overlaps"}}
	for _, n := range names {
		rde := r.MustRun(Spec{Workload: n, Variant: config.RWoWRDE})
		palp := r.MustRun(Spec{Workload: n, Variant: config.PALP})
		dca := r.MustRun(Spec{Workload: n, Variant: config.RWoWDCA})
		rl := rde.Mem.ReadLatency.MeanNS()
		wt := rde.Mem.WriteThroughput()
		if rl <= 0 || wt <= 0 || rde.IPCSum <= 0 {
			continue
		}
		partOverlaps := palp.Mem.PartOverlapReads.Value() + palp.Mem.PartOverlapWrites.Value()
		f.set(n, "palpIPC", palp.IPCSum/rde.IPCSum-1)
		f.set(n, "dcaIPC", dca.IPCSum/rde.IPCSum-1)
		f.set(n, "palpReadLat", palp.Mem.ReadLatency.MeanNS()/rl)
		f.set(n, "dcaWriteTput", dca.Mem.WriteThroughput()/wt)
		f.set(n, "overlapReadsRDE", float64(rde.Mem.OverlapReads.Value()))
		f.set(n, "overlapReadsPALP", float64(palp.Mem.OverlapReads.Value()))
		f.set(n, "partOverlaps", float64(partOverlaps))
		f.Table.AddRow(n,
			stats.Pct(palp.IPCSum/rde.IPCSum-1),
			stats.Pct(dca.IPCSum/rde.IPCSum-1),
			stats.F(palp.Mem.ReadLatency.MeanNS()/rl),
			stats.F(dca.Mem.WriteThroughput()/wt),
			fmt.Sprintf("%d", rde.Mem.OverlapReads.Value()),
			fmt.Sprintf("%d", palp.Mem.OverlapReads.Value()),
			fmt.Sprintf("%d", partOverlaps))
	}
	f.Notes = append(f.Notes,
		"PALP splits each bank into partitions and serves a read while a write occupies a",
		"different partition of the same bank; part overlaps count those services (always 0",
		"for the paper's six variants). RWoW-DCA computes each chip-word's programming time",
		"from the differential write's actual SET/RESET bit counts.")
	return f, nil
}
