package exp

import (
	"context"
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/mem"
	"pcmap/internal/stats"
	"pcmap/internal/system"
)

// Ablations exercises the design choices DESIGN.md calls out, beyond
// the paper's own variant matrix: the write-drain threshold alpha, the
// DIMM status-poll cost, the WoW outstanding-write bound, the Section
// IV-B4 multi-word RoW extension, and Start-Gap wear leveling. Each
// knob runs on a representative write-intense workload (MP6) at the
// runner's budgets, reporting IPC and the knob's own figure of merit.
func Ablations(ctx context.Context, r *Runner) (*FigureResult, error) {
	const workload = "MP6"
	f := newFigure("ablations", "Ablations: PCMap design-choice sensitivity (MP6)")
	f.Table = &stats.Table{Title: f.Title,
		Headers: []string{"knob", "setting", "IPC (sum)", "figure of merit"}}

	// Ablation configs are not expressible as Specs (they mutate knobs
	// the Spec doesn't carry), so they bypass the runner's memo and
	// cache; cancellation is honored between runs.
	runV := func(variant config.Variant, name, setting string, mut func(*config.Config), merit func(*system.Results) string) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		cfg := config.Default().WithVariant(variant)
		mut(cfg)
		s, err := system.New(system.WithConfig(cfg), system.WithWorkload(workload))
		if err != nil {
			return err
		}
		res, err := s.Run(r.Warmup, r.Measure)
		if err != nil {
			return fmt.Errorf("ablation %s=%s: %w", name, setting, err)
		}
		f.set(name+"/"+setting, "ipc", res.IPCSum)
		f.Table.AddRow(name, setting, stats.F(res.IPCSum), merit(res))
		return nil
	}
	// Pre-existing knobs all ablate the full PCMap design.
	run := func(name, setting string, mut func(*config.Config), merit func(*system.Results) string) error {
		return runV(config.RWoWRDE, name, setting, mut, merit)
	}

	for _, alpha := range []float64{0.6, 0.8, 0.95} {
		alpha := alpha
		if err := run("drain-alpha", fmt.Sprintf("%.0f%%", alpha*100),
			func(c *config.Config) { c.Memory.DrainHighPct = alpha },
			func(res *system.Results) string {
				return fmt.Sprintf("%d drains", res.Mem.DrainEntries.Value())
			}); err != nil {
			return nil, err
		}
	}
	for _, cycles := range []mem.Cycles{0, 2, 8} {
		cycles := cycles
		if err := run("status-poll", fmt.Sprintf("%d cycles", cycles),
			func(c *config.Config) { c.Memory.StatusPollCycles = cycles },
			func(res *system.Results) string {
				return fmt.Sprintf("%d polls", res.Mem.StatusPolls.Value())
			}); err != nil {
			return nil, err
		}
	}
	for _, n := range []int{1, 2, 4} {
		n := n
		if err := run("max-writes", fmt.Sprintf("%d", n),
			func(c *config.Config) { c.Memory.MaxConcurrentWrites = n },
			func(res *system.Results) string {
				return fmt.Sprintf("%.2f writes/us", res.Mem.WriteThroughput())
			}); err != nil {
			return nil, err
		}
	}
	for _, multi := range []bool{false, true} {
		multi := multi
		setting := "1-word only (paper)"
		if multi {
			setting = "multi-word (SecIV-B4)"
		}
		if err := run("row-scope", setting,
			func(c *config.Config) { c.Memory.RoWMultiWord = multi },
			func(res *system.Results) string {
				return fmt.Sprintf("%d RoW reads", res.Mem.RoWServed.Value())
			}); err != nil {
			return nil, err
		}
	}
	for _, psi := range []uint64{0, 100} {
		psi := psi
		setting := "off"
		if psi > 0 {
			setting = fmt.Sprintf("psi=%d", psi)
		}
		if err := run("start-gap", setting,
			func(c *config.Config) { c.Memory.WearLevelPsi = psi },
			func(res *system.Results) string {
				return fmt.Sprintf("wearCV %.3f, %d moves", res.WearCV, res.Mem.WearMoves.Value())
			}); err != nil {
			return nil, err
		}
	}
	for _, rq := range []int{4, 8, 16} {
		rq := rq
		if err := run("read-queue", fmt.Sprintf("%d entries", rq),
			func(c *config.Config) { c.Memory.ReadQueueCap = rq },
			func(res *system.Results) string {
				return fmt.Sprintf("readLat %.0fns", res.Mem.ReadLatency.MeanNS())
			}); err != nil {
			return nil, err
		}
	}
	for _, parts := range []int{2, 4, 8} {
		parts := parts
		if err := runV(config.PALP, "palp-partitions", fmt.Sprintf("%d", parts),
			func(c *config.Config) { c.Memory.Partitions = parts },
			func(res *system.Results) string {
				return fmt.Sprintf("%d part overlaps",
					res.Mem.PartOverlapReads.Value()+res.Mem.PartOverlapWrites.Value())
			}); err != nil {
			return nil, err
		}
	}
	for _, rounds := range []int{2, 8, 32} {
		rounds := rounds
		if err := runV(config.RWoWDCA, "dca-rounds", fmt.Sprintf("%d", rounds),
			func(c *config.Config) { c.Memory.DCARounds = rounds },
			func(res *system.Results) string {
				return fmt.Sprintf("%.2f writes/us", res.Mem.WriteThroughput())
			}); err != nil {
			return nil, err
		}
	}
	f.Notes = append(f.Notes,
		"All rows run RWoW-RDE on MP6 unless the knob names a follow-on variant",
		"(palp-partitions runs PALP, dca-rounds runs RWoW-DCA); only the named knob",
		"varies from Table I defaults.")
	return f, nil
}
