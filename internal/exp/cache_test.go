package exp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/system"
)

func TestCacheKeySensitivity(t *testing.T) {
	base := Spec{Workload: "MP4", Variant: config.RWoWRDE, VerifyWrites: true}
	cfg := config.Default().WithVariant(base.Variant)
	key := CacheKey(base, cfg, 1000, 2000)
	if key != CacheKey(base, cfg, 1000, 2000) {
		t.Fatal("cache key is not deterministic")
	}
	perturbed := []struct {
		name string
		key  string
	}{
		{"workload", CacheKey(Spec{Workload: "MP6", Variant: base.Variant, VerifyWrites: true}, cfg, 1000, 2000)},
		{"spec knob", CacheKey(Spec{Workload: "MP4", Variant: base.Variant}, cfg, 1000, 2000)},
		{"warmup", CacheKey(base, cfg, 999, 2000)},
		{"measure", CacheKey(base, cfg, 1000, 2001)},
	}
	seen := map[string]string{key: "base"}
	for _, p := range perturbed {
		if prev, dup := seen[p.key]; dup {
			t.Errorf("perturbing %s collides with %s", p.name, prev)
		}
		seen[p.key] = p.name
	}
	// The resolved config is part of the key even when the Spec is
	// identical: a changed default must not be served stale results.
	cfg2 := config.Default().WithVariant(base.Variant)
	cfg2.Memory.ReadQueueCap++
	if CacheKey(base, cfg2, 1000, 2000) == key {
		t.Error("config change did not change the cache key")
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("missing"); ok {
		t.Fatal("empty cache reported a hit")
	}
	res := fakeResults(Spec{Workload: "MP4", Variant: config.RWoWRDE})
	if err := c.Store("k1", res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load("k1")
	if !ok {
		t.Fatal("stored entry not loadable")
	}
	if got.Workload != res.Workload || got.Variant != res.Variant {
		t.Fatalf("loaded %s/%s, want %s/%s", got.Workload, got.Variant, res.Workload, res.Variant)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 entry and no temp-file leftovers", n, err)
	}
}

func TestDiskCacheCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"truncated": `{"Workload":"MP4","Var`,
		"empty":     "",
		"null":      "null",
		"no-mem":    `{"Workload":"MP4"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name+".json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Load(name); ok {
			t.Errorf("%s entry loaded as a hit; corruption must be a miss", name)
		}
	}
}

// runReliabilityMarkdown renders the reliability figure through r and
// returns its markdown — the byte-level artifact the resume contract is
// stated in.
func runReliabilityMarkdown(t *testing.T, r *Runner) string {
	t.Helper()
	f, err := Reliability(context.Background(), r, "MP4", config.RWoWRDE)
	if err != nil {
		t.Fatal(err)
	}
	return f.Table.Markdown()
}

// TestResumeByteIdentical is the ISSUE's resume acceptance test: a
// sweep killed partway (modeled as a runner that cached only 3 of the 5
// reliability points) and re-run with Resume must execute only the
// missing simulations and produce byte-identical report output.
func TestResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 8 real simulations")
	}
	// Reference: the uninterrupted sweep, no cache involved.
	ref := runReliabilityMarkdown(t, testRunner())

	dir := t.TempDir()
	// Phase 1: "interrupted" sweep — only the first 3 points complete
	// before the kill, each landing in the disk cache.
	partial := testRunner()
	var err error
	if partial.Cache, err = NewDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range reliabilityPoints[:3] {
		if _, err := partial.Run(Spec{Workload: "MP4", Variant: config.RWoWRDE,
			EnduranceBudget: p.Budget, DriftProb: p.Drift, VerifyWrites: true}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := partial.Cache.Len(); err != nil || n != 3 {
		t.Fatalf("cache has %d entries, %v; want 3", n, err)
	}

	// Phase 2: resume in a fresh runner (fresh process: no memo). Count
	// real executions through the simulate hook — only the 2 missing
	// points may simulate.
	resumed := testRunner()
	if resumed.Cache, err = NewDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	resumed.Resume = true
	var executed int32
	resumed.simulate = func(ctx context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		atomic.AddInt32(&executed, 1)
		return runSimulation(ctx, cfg, workload, warmup, measure)
	}
	got := runReliabilityMarkdown(t, resumed)

	if n := atomic.LoadInt32(&executed); n != 2 {
		t.Errorf("resume executed %d simulations, want exactly the 2 missing", n)
	}
	if hits := resumed.CacheHits(); hits != 3 {
		t.Errorf("resume loaded %d cached runs, want 3", hits)
	}
	if got != ref {
		t.Errorf("resumed report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", ref, got)
	}
	// The resumed sweep back-fills the cache: all 5 points present.
	if n, err := resumed.Cache.Len(); err != nil || n != 5 {
		t.Errorf("cache has %d entries after resume, %v; want 5", n, err)
	}
}

// TestCacheCorruptionQuarantine is the corruption-injection test: a
// cache entry damaged on disk — bit rot inside the payload, or bytes
// that no longer parse at all — must read as a miss, move aside as
// key.json.corrupt, and leave the key free for the re-executed run to
// rewrite. A corrupt entry must never fail the sweep or, worse, feed
// corrupted Results into a resumed report.
func TestCacheCorruptionQuarantine(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"payload bit flip", func(b []byte) []byte {
			// Flip one digit inside the results payload without breaking
			// JSON syntax: the checksum, not the parser, must catch it.
			i := bytes.Index(b, []byte(`"IPCSum":`))
			if i < 0 {
				t.Fatal("encoded entry has no IPCSum field")
			}
			c := append([]byte(nil), b...)
			c[i+len(`"IPCSum":`)] ^= 0x01 // '1' <-> '0'
			return c
		}},
		{"truncation", func(b []byte) []byte { return b[:len(b)/2] }},
		{"garbage", func(b []byte) []byte { return []byte("not json at all") }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cache, err := NewDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			spec := Spec{Workload: "MP4", Variant: config.Baseline}
			cfg := config.Default()
			key := CacheKey(spec, cfg, 100, 1000)
			res := fakeResults(spec)
			res.IPCSum = 1.5
			if err := cache.Store(key, res); err != nil {
				t.Fatal(err)
			}
			if _, ok := cache.Load(key); !ok {
				t.Fatal("pristine entry must load")
			}

			path := filepath.Join(dir, key+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := cache.Load(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(path + QuarantineSuffix); err != nil {
				t.Errorf("corrupt entry not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry still addressable at %s (err %v)", path, err)
			}
			if n, err := cache.Len(); err != nil || n != 0 {
				t.Errorf("Len = %d, %v; quarantined files must not count", n, err)
			}

			// The key is free again: re-store and reload round-trips.
			if err := cache.Store(key, res); err != nil {
				t.Fatalf("re-store after quarantine: %v", err)
			}
			got, ok := cache.Load(key)
			if !ok {
				t.Fatal("rewritten entry must load")
			}
			//pcmaplint:ignore floatcmp round-trip of a stored value, no arithmetic in between
			if got.IPCSum != res.IPCSum {
				t.Errorf("rewritten entry IPCSum = %v, want %v", got.IPCSum, res.IPCSum)
			}
		})
	}
}

// TestResumeSurvivesCorruptEntry runs the quarantine path through the
// Runner: a resumed sweep that finds its cached entry corrupted
// re-simulates that point instead of failing or serving bad data.
func TestResumeSurvivesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	r := testRunner()
	var err error
	if r.Cache, err = NewDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Workload: "MP4", Variant: config.Baseline}
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		return fakeResults(spec), nil
	}
	if _, err := r.Run(spec); err != nil {
		t.Fatal(err)
	}

	// Corrupt the single entry on disk.
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("cache files = %v, %v; want exactly one", matches, err)
	}
	if err := os.WriteFile(matches[0], []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh runner (fresh process): resume must re-execute, not fail.
	r2 := testRunner()
	if r2.Cache, err = NewDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	r2.Resume = true
	var executed int32
	r2.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		atomic.AddInt32(&executed, 1)
		return fakeResults(spec), nil
	}
	if _, err := r2.Run(spec); err != nil {
		t.Fatalf("resume over a corrupt entry failed: %v", err)
	}
	if n := atomic.LoadInt32(&executed); n != 1 {
		t.Errorf("%d executions, want 1 (corrupt entry re-simulates)", n)
	}
	if hits := r2.CacheHits(); hits != 0 {
		t.Errorf("%d cache hits, want 0", hits)
	}
	// The re-executed run rewrote a healthy entry.
	if _, err := r2.Run(spec); err != nil {
		t.Fatal(err)
	}
	if n, err := r2.Cache.Len(); err != nil || n != 1 {
		t.Errorf("cache has %d entries, %v; want 1 healthy entry", n, err)
	}
}
