package exp

import (
	"context"
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/stats"
)

// reliabilityPoint is one cell of the reliability sweep.
type reliabilityPoint struct {
	Budget uint64  // endurance budget (0 = perfect cells)
	Drift  float64 // per-read drift flip probability
}

func (p reliabilityPoint) label() string {
	return fmt.Sprintf("budget=%d drift=%g", p.Budget, p.Drift)
}

// reliabilityPoints is the default sweep grid: a clean point (verify on,
// no faults — the overhead floor), endurance-only at two severities,
// drift-only, and both. Budgets are tiny because the simulated windows
// rewrite each line only a handful of times; real devices wear out after
// ~1e8 writes, which at these run lengths would never trigger.
var reliabilityPoints = []reliabilityPoint{
	{Budget: 0, Drift: 0},
	{Budget: 4, Drift: 0},
	{Budget: 1, Drift: 0},
	{Budget: 0, Drift: 5e-3},
	{Budget: 1, Drift: 5e-3},
}

// Reliability sweeps the fault model — write-endurance budget (stuck-at
// cells) crossed with transient drift rate — with program-and-verify
// enabled, and reports how every injected error was handled: corrected
// by SECDED, rebuilt from PCC parity, retried away by re-programming,
// remapped to the spare pool, or reported as a typed uncorrectable
// error. It returns an error if any run shows injected faults with no
// handling activity at all, which would mean corruption passed through
// silently.
func Reliability(ctx context.Context, r *Runner, workload string, variant config.Variant) (*FigureResult, error) {
	var specs []Spec
	for _, p := range reliabilityPoints {
		specs = append(specs, Spec{Workload: workload, Variant: variant,
			EnduranceBudget: p.Budget, DriftProb: p.Drift, VerifyWrites: true})
	}
	if err := r.RunAll(ctx, specs); err != nil {
		return nil, err
	}
	f := newFigure("reliability", fmt.Sprintf(
		"Reliability: fault injection vs program-and-verify (%s, %s)", workload, variant))
	f.Table = &stats.Table{Title: f.Title, Headers: []string{
		"fault point", "inj. stuck", "inj. drift", "SECDED corr.", "PCC rebuilt",
		"uncorrectable", "retries", "remaps", "remap fail", "verify ns/write"}}
	for _, p := range reliabilityPoints {
		res := r.MustRun(Spec{Workload: workload, Variant: variant,
			EnduranceBudget: p.Budget, DriftProb: p.Drift, VerifyWrites: true})
		m := res.Mem
		handled := m.SECDEDCorrected.Value() + m.SECDEDCheckFixed.Value() +
			m.PCCRecovered.Value() + m.UncorrectedReads.Value() +
			m.WriteRetries.Value() + m.WriteRemaps.Value()
		injected := res.InjectedStuck + res.InjectedDrift
		if injected > 0 && handled == 0 {
			return nil, fmt.Errorf("exp: reliability %s: %d faults injected but no correction, retry, remap, or error report — silent corruption", p.label(), injected)
		}
		row := p.label()
		f.set(row, "injStuck", float64(res.InjectedStuck))
		f.set(row, "injDrift", float64(res.InjectedDrift))
		f.set(row, "secdedCorrected", float64(m.SECDEDCorrected.Value()))
		f.set(row, "pccRecovered", float64(m.PCCRecovered.Value()))
		f.set(row, "uncorrected", float64(m.UncorrectedReads.Value()))
		f.set(row, "retries", float64(m.WriteRetries.Value()))
		f.set(row, "remaps", float64(m.WriteRemaps.Value()))
		f.set(row, "remapFailures", float64(m.RemapFailures.Value()))
		verifyNS := 0.0
		if m.WriteVerifies.Value() > 0 {
			verifyNS = m.VerifyLatency.MeanNS()
		}
		f.set(row, "verifyNSPerWrite", verifyNS)
		f.Table.AddRow(row,
			stats.N(res.InjectedStuck), stats.N(res.InjectedDrift),
			stats.N(m.SECDEDCorrected.Value()), stats.N(m.PCCRecovered.Value()),
			stats.N(m.UncorrectedReads.Value()), stats.N(m.WriteRetries.Value()),
			stats.N(m.WriteRemaps.Value()), stats.N(m.RemapFailures.Value()),
			stats.F(verifyNS))
	}
	f.Notes = append(f.Notes,
		"Injection counts are whole-run (warmup included); handling counters cover the measured window.",
		"Every injected error must surface in a handling counter — the sweep errors out on silent corruption.")
	return f, nil
}
