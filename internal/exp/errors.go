package exp

import (
	"context"
	"errors"
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/system"
)

// JobPanicError reports a simulation that panicked instead of
// returning. The runner recovers the panic in the worker that hit it —
// one pathological config must not kill an entire sweep (or a serving
// process) — and converts it into this typed error carrying the panic
// value and the goroutine stack at the point of the panic.
//
// A panic is a simulator bug, not an environmental failure: it is never
// retryable (the same config panics the same way every time), and
// callers that classify failures (the serve layer, RunAll reporting)
// detect it with errors.As.
type JobPanicError struct {
	Workload string
	Variant  config.Variant
	Value    any    // the recovered panic value
	Stack    []byte // debug.Stack() captured inside the recovering worker
}

func (e *JobPanicError) Error() string {
	return fmt.Sprintf("exp: %s/%s: simulation panicked: %v", e.Workload, e.Variant, e.Value)
}

// IsRetryable classifies an error from Run/RunCtx/RunAll for bounded
// retry. Retryable means "plausibly transient": re-attempting the same
// deterministic simulation could succeed because the failure came from
// the environment, not the computation. Three classes are permanent:
//
//   - panics (JobPanicError): deterministic simulator bugs;
//   - context cancellation and deadline expiry: the caller gave up, a
//     retry would just burn the remaining budget;
//   - typed option errors from system construction (system.OptionError
//     wrapped in the run error): an invalid spec stays invalid.
//
// Everything else — I/O failures persisting to the result cache, wedge
// detections under memory pressure — is treated as transient, matching
// the Runner.Retries contract from the sweep orchestrator.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var pe *JobPanicError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var oe *system.OptionError
	if errors.As(err, &oe) {
		return false
	}
	return true
}
