// Package exp defines one experiment per figure and table of the
// paper's evaluation (Section VI) and the runner that executes the
// underlying simulations. Runs are memoized — Figures 8-11 share the
// same 12-workload x 6-variant sweep — and executed in parallel across
// OS threads (each simulation is single-threaded and deterministic).
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pcmap/internal/config"
	"pcmap/internal/system"
)

// Spec identifies one simulation run.
type Spec struct {
	Workload string
	Variant  config.Variant
	// WriteToReadRatio overrides the cell write/read latency ratio
	// (Table III); 0 keeps the default 2x.
	WriteToReadRatio float64
	// Symmetric makes writes as fast as reads (Figure 1's comparison
	// device).
	Symmetric bool
	// FaultMode: "" (no faults), "always", "never" (Table IV).
	FaultMode string
	// WritePausing enables the HPCA 2010 comparator on the baseline.
	WritePausing bool
	// EnduranceBudget caps per-cell-group write endurance before cells
	// stick (0 = perfect cells); DriftProb is the per-read transient
	// flip probability. Both feed the pcm.FaultModel.
	EnduranceBudget uint64
	DriftProb       float64
	// VerifyWrites turns on the program-and-verify retry/remap path.
	VerifyWrites bool
	Seed         uint64
}

// Runner executes and memoizes simulation runs.
type Runner struct {
	// Warmup and Measure are per-core instruction budgets. The paper
	// runs 200M + 1B; our synthetic generators are stationary so far
	// smaller budgets converge (see DESIGN.md).
	Warmup, Measure uint64
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)

	mu   sync.Mutex
	memo map[Spec]*system.Results

	// Sweep throughput accounting: executed (non-memoized) sims, the
	// engine events they stepped, and their summed per-sim wall time.
	// Wall-clock feeds only stderr progress reporting — it never enters
	// simulation results, which stay a function of config and seed.
	sims     uint64
	events   uint64
	simsWall time.Duration
}

// NewRunner returns a runner with sensible experiment budgets.
func NewRunner() *Runner {
	return &Runner{Warmup: 40_000, Measure: 400_000}
}

func (r *Runner) configFor(s Spec) *config.Config {
	cfg := config.Default().WithVariant(s.Variant)
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.WriteToReadRatio > 0 {
		cfg.Memory.SetWriteToReadRatio(s.WriteToReadRatio)
	}
	if s.Symmetric {
		cfg.Memory.Timing.CellSET = cfg.Memory.Timing.ArrayRead
		cfg.Memory.Timing.CellRESET = cfg.Memory.Timing.ArrayRead
	}
	cfg.Memory.FaultMode = s.FaultMode
	cfg.Memory.WritePausing = s.WritePausing
	cfg.Memory.EnduranceBudget = s.EnduranceBudget
	cfg.Memory.DriftProb = s.DriftProb
	cfg.Memory.VerifyWrites = s.VerifyWrites
	return cfg
}

// Run executes (or returns the memoized result of) one spec.
func (r *Runner) Run(s Spec) (*system.Results, error) {
	r.mu.Lock()
	if r.memo == nil {
		r.memo = make(map[Spec]*system.Results)
	}
	if res, ok := r.memo[s]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	sys, err := system.Build(r.configFor(s), s.Workload)
	if err != nil {
		return nil, err
	}
	//pcmaplint:ignore nodeterminism wall-clock feeds only stderr throughput reporting, never simulation results
	start := time.Now()
	res, err := sys.Run(r.Warmup, r.Measure)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", s.Workload, s.Variant, err)
	}
	//pcmaplint:ignore nodeterminism wall-clock feeds only stderr throughput reporting, never simulation results
	elapsed := time.Since(start)
	r.mu.Lock()
	r.memo[s] = res
	r.sims++
	r.events += res.Events
	r.simsWall += elapsed
	r.mu.Unlock()
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("ran %-14s %-9s IPC=%.2f IRLP=%.2f wall=%6.2fs %5.1fM ev/s",
			s.Workload, s.Variant, res.IPCSum, res.IRLPAvg,
			elapsed.Seconds(), eventsPerSec(res.Events, elapsed)/1e6))
	}
	return res, nil
}

// eventsPerSec guards the zero-duration corner (sub-millisecond sims).
func eventsPerSec(events uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(events) / wall.Seconds()
}

// Totals reports the number of simulations actually executed (memo hits
// excluded), the engine events they stepped, and their summed per-sim
// wall time. With parallel workers the wall total exceeds elapsed real
// time; events/totals therefore measure per-worker simulation-thread
// throughput.
func (r *Runner) Totals() (sims, events uint64, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sims, r.events, r.simsWall
}

// RunAll executes specs concurrently, stopping at the first error.
func (r *Runner) RunAll(specs []Spec) error {
	par := r.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(specs) {
		par = len(specs)
	}
	if par < 1 {
		par = 1
	}
	work := make(chan Spec)
	errc := make(chan error, len(specs))
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				if _, err := r.Run(s); err != nil {
					errc <- err
				}
			}
		}()
	}
	for _, s := range specs {
		work <- s
	}
	close(work)
	wg.Wait()
	close(errc)
	return <-errc
}

// MustRun is Run for callers that already ran RunAll successfully.
func (r *Runner) MustRun(s Spec) *system.Results {
	res, err := r.Run(s)
	if err != nil {
		panic(err)
	}
	return res
}
