// Package exp defines one experiment per figure and table of the
// paper's evaluation (Section VI) and the runner that executes the
// underlying simulations. Runs are memoized — Figures 8-11 share the
// same 12-workload x 6-variant sweep — and executed in parallel across
// OS threads (each simulation is single-threaded and deterministic).
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pcmap/internal/config"
	"pcmap/internal/obs"
	"pcmap/internal/system"
)

// Spec identifies one simulation run.
type Spec struct {
	Workload string
	Variant  config.Variant
	// WriteToReadRatio overrides the cell write/read latency ratio
	// (Table III); 0 keeps the default 2x.
	WriteToReadRatio float64
	// Symmetric makes writes as fast as reads (Figure 1's comparison
	// device).
	Symmetric bool
	// FaultMode: "" (no faults), "always", "never" (Table IV).
	FaultMode string
	// WritePausing enables the HPCA 2010 comparator on the baseline.
	WritePausing bool
	// EnduranceBudget caps per-cell-group write endurance before cells
	// stick (0 = perfect cells); DriftProb is the per-read transient
	// flip probability. Both feed the pcm.FaultModel.
	EnduranceBudget uint64
	DriftProb       float64
	// VerifyWrites turns on the program-and-verify retry/remap path.
	VerifyWrites bool
	Seed         uint64
}

// Runner executes, memoizes, and optionally disk-caches simulation
// runs. Concurrent callers of the same Spec share one in-flight
// execution (single-flight); completed results are memoized in memory
// and, when Cache is set, persisted so an interrupted sweep can resume.
type Runner struct {
	// Warmup and Measure are per-core instruction budgets. The paper
	// runs 200M + 1B; our synthetic generators are stationary so far
	// smaller budgets converge (see DESIGN.md).
	Warmup, Measure uint64
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)

	// Cache, when non-nil, persists every executed run's Results to
	// disk (content-addressed by Spec + resolved config + budgets).
	// Writes happen regardless of Resume; reads only when Resume is
	// set, so a non-resume sweep reproduces results from scratch while
	// still leaving a cache behind.
	Cache *DiskCache
	// Resume loads previously cached results instead of re-simulating.
	Resume bool
	// Retries is how many times a failed simulation is re-attempted
	// before the failure is reported (0 = fail on first error). Sims
	// are deterministic, so this guards against environmental
	// failures, not simulation bugs; a sweep with retries degrades to
	// partial results (everything already completed stays cached)
	// instead of losing the whole run.
	Retries int
	// Tracer, when non-nil, is attached to every simulation this
	// runner executes (system.WithTracer). The tracer is single-
	// threaded, so set it only for single-run invocations (adhoc);
	// a parallel sweep sharing one tracer would race.
	Tracer *obs.Tracer
	// Shards, when > 1, runs every simulation sharded across that many
	// goroutines at the memory-channel boundary (system.WithShards).
	// Sharding is an execution strategy, not part of the experiment
	// identity: outputs are bit-identical at any shard count, so Shards
	// deliberately does not enter CacheKey — cached runs are shared
	// across shard settings.
	Shards int

	mu sync.Mutex
	//pcmaplint:guardedby mu
	memo map[Spec]*system.Results
	//pcmaplint:guardedby mu
	calls map[Spec]*inflight

	// simulate executes one run; tests substitute it to count or fail
	// executions without building real systems. ctx carries the caller's
	// deadline into the simulation (see system.RunCtx).
	simulate func(ctx context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error)

	// Sweep throughput accounting: executed (non-memoized) sims, the
	// engine events they stepped, and their summed per-sim wall time.
	// Wall-clock feeds only stderr progress reporting — it never enters
	// simulation results, which stay a function of config and seed.
	//pcmaplint:guardedby mu
	sims uint64
	//pcmaplint:guardedby mu
	events uint64
	//pcmaplint:guardedby mu
	simsWall time.Duration
	// hits counts disk-cache loads (resume).
	//pcmaplint:guardedby mu
	hits uint64
}

// inflight is one in-progress execution other callers can wait on.
type inflight struct {
	done chan struct{} // closed when res/err are set
	res  *system.Results
	err  error
}

// NewRunner returns a runner with sensible experiment budgets.
func NewRunner() *Runner {
	return &Runner{Warmup: 40_000, Measure: 400_000}
}

func (r *Runner) configFor(s Spec) *config.Config {
	cfg := config.Default().WithVariant(s.Variant)
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.WriteToReadRatio > 0 {
		cfg.Memory.SetWriteToReadRatio(s.WriteToReadRatio)
	}
	if s.Symmetric {
		cfg.Memory.Timing.CellSET = cfg.Memory.Timing.ArrayRead
		cfg.Memory.Timing.CellRESET = cfg.Memory.Timing.ArrayRead
	}
	cfg.Memory.FaultMode = s.FaultMode
	cfg.Memory.WritePausing = s.WritePausing
	cfg.Memory.EnduranceBudget = s.EnduranceBudget
	cfg.Memory.DriftProb = s.DriftProb
	cfg.Memory.VerifyWrites = s.VerifyWrites
	return cfg
}

// runSimulation is the untraced default simulate implementation.
func runSimulation(ctx context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
	return (&Runner{}).defaultSimulate(ctx, cfg, workload, warmup, measure)
}

// defaultSimulate builds the system — attaching the runner's tracer
// when one is set — and runs the warmup/measure protocol under ctx's
// deadline.
func (r *Runner) defaultSimulate(ctx context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
	opts := []system.Option{system.WithConfig(cfg), system.WithWorkload(workload)}
	if r.Tracer != nil {
		opts = append(opts, system.WithTracer(r.Tracer))
	}
	if r.Shards > 1 {
		opts = append(opts, system.WithShards(r.Shards))
	}
	sys, err := system.New(opts...)
	if err != nil {
		return nil, err
	}
	res, err := sys.RunCtx(ctx, warmup, measure)
	// Results are fully collected by RunCtx; recycle the cache slabs so
	// the sweep's next same-geometry system reuses them instead of
	// allocating tens of MB per run.
	sys.Release()
	return res, err
}

// callSimulate runs one simulation attempt with panic isolation: a
// panicking simulation (or simulate hook) is recovered into a typed
// *JobPanicError instead of unwinding the worker goroutine and killing
// the whole process. The stack is captured here, inside the recovering
// frame, so it points at the panic site.
func (r *Runner) callSimulate(ctx context.Context, s Spec, cfg *config.Config) (res *system.Results, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &JobPanicError{Workload: s.Workload, Variant: s.Variant,
				Value: v, Stack: debug.Stack()}
		}
	}()
	sim := r.simulate
	if sim == nil {
		sim = r.defaultSimulate
	}
	return sim(ctx, cfg, s.Workload, r.Warmup, r.Measure)
}

// Run executes (or returns the memoized result of) one spec. It is
// RunCtx without cancellation.
func (r *Runner) Run(s Spec) (*system.Results, error) {
	return r.RunCtx(context.Background(), s)
}

// RunCtx executes one spec, deduplicating concurrent callers: however
// many goroutines ask for the same Spec, exactly one simulation runs
// and all callers receive its result. ctx cancels waiting and prevents
// new executions from starting; an execution already in progress runs
// to completion (simulations are not interruptible mid-run) but its
// result still lands in the memo and cache for a later resume.
func (r *Runner) RunCtx(ctx context.Context, s Spec) (*system.Results, error) {
	r.mu.Lock()
	if res, ok := r.memo[s]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if c, ok := r.calls[s]; ok {
		// Another goroutine is already executing this spec: wait for it
		// (or for cancellation) instead of running a duplicate.
		r.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.calls == nil {
		r.calls = make(map[Spec]*inflight)
	}
	c := &inflight{done: make(chan struct{})}
	r.calls[s] = c
	r.mu.Unlock()

	c.res, c.err = r.execute(ctx, s)

	r.mu.Lock()
	if c.err == nil {
		if r.memo == nil {
			r.memo = make(map[Spec]*system.Results)
		}
		r.memo[s] = c.res
	}
	// Failed calls leave no memo entry, so a later identical Run (e.g.
	// after the caller clears an environmental problem) re-executes.
	delete(r.calls, s)
	r.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// execute runs one spec for real: disk-cache lookup (when resuming),
// then up to 1+Retries simulation attempts, then a cache store.
func (r *Runner) execute(ctx context.Context, s Spec) (*system.Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := r.configFor(s)
	var key string
	if r.Cache != nil {
		key = CacheKey(s, cfg, r.Warmup, r.Measure)
		if r.Resume {
			if res, ok := r.Cache.Load(key); ok {
				r.mu.Lock()
				r.hits++
				r.mu.Unlock()
				if r.Progress != nil {
					r.Progress(fmt.Sprintf("cached %-14s %-9s IPC=%.2f IRLP=%.2f",
						s.Workload, s.Variant, res.IPCSum, res.IRLPAvg))
				}
				return res, nil
			}
		}
	}

	var (
		res     *system.Results
		err     error
		elapsed time.Duration
	)
	for attempt := 0; ; attempt++ {
		//pcmaplint:ignore nodeterminism wall-clock feeds only stderr throughput reporting, never simulation results
		start := time.Now()
		res, err = r.callSimulate(ctx, s, cfg)
		//pcmaplint:ignore nodeterminism wall-clock feeds only stderr throughput reporting, never simulation results
		elapsed = time.Since(start)
		if err == nil {
			break
		}
		// Permanent failures (panics, cancellation, invalid specs) are
		// reported immediately; burning retry budget on them cannot help.
		if attempt >= r.Retries || ctx.Err() != nil || !IsRetryable(err) {
			return nil, fmt.Errorf("exp: %s/%s (attempt %d/%d): %w",
				s.Workload, s.Variant, attempt+1, r.Retries+1, err)
		}
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("retry  %-14s %-9s attempt %d/%d: %v",
				s.Workload, s.Variant, attempt+2, r.Retries+1, err))
		}
	}

	r.mu.Lock()
	r.sims++
	r.events += res.Events
	r.simsWall += elapsed
	r.mu.Unlock()
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("ran %-14s %-9s IPC=%.2f IRLP=%.2f wall=%6.2fs %5.1fM ev/s",
			s.Workload, s.Variant, res.IPCSum, res.IRLPAvg,
			elapsed.Seconds(), eventsPerSec(res.Events, elapsed)/1e6))
	}
	if r.Cache != nil {
		if err := r.Cache.Store(key, res); err != nil {
			return nil, fmt.Errorf("exp: %s/%s: %w", s.Workload, s.Variant, err)
		}
	}
	return res, nil
}

// eventsPerSec guards the zero-duration corner (sub-millisecond sims).
func eventsPerSec(events uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(events) / wall.Seconds()
}

// Totals reports the number of simulations actually executed (memo and
// disk-cache hits excluded), the engine events they stepped, and their
// summed per-sim wall time. With parallel workers the wall total
// exceeds elapsed real time; events/totals therefore measure per-worker
// simulation-thread throughput.
func (r *Runner) Totals() (sims, events uint64, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sims, r.events, r.simsWall
}

// CacheHits reports how many runs were satisfied from the disk cache.
func (r *Runner) CacheHits() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

// SetSimulate substitutes the simulation implementation — a test seam
// so orchestration layers (retry, panic isolation, deadlines, the
// serve worker pool) can be exercised without building real systems.
// Passing nil restores the default. Call before the runner serves
// traffic; the hook is read without synchronization on the execute
// path.
func (r *Runner) SetSimulate(fn func(ctx context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error)) {
	r.simulate = fn
}

// MemoLen reports how many completed specs the in-memory memo holds.
// Long-running callers (the serve layer) use it to bound memory: when
// the memo grows past their budget they retire the runner and start a
// fresh one, falling back to the disk cache for previously computed
// results.
func (r *Runner) MemoLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.memo)
}

// RunAll executes specs concurrently. Dispatch genuinely stops at the
// first failure (or when ctx is cancelled): no spec is handed to a
// worker after a worker has reported an error. Simulations already in
// flight run to completion — they are not interruptible — and their
// results stay memoized and cached, so a failed or interrupted sweep
// keeps its partial results and can resume. The returned error is the
// errors.Join of every worker failure, plus ctx.Err() when the caller's
// context was cancelled; internal halt noise (workers observing the
// sweep's own cancellation) is filtered out.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) error {
	par := r.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(specs) {
		par = len(specs)
	}
	if par < 1 {
		par = 1
	}
	sweep, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan Spec)
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []error
	)
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				_, err := r.RunCtx(sweep, s)
				if err == nil {
					continue
				}
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					// The sweep is already halting; the caller's own
					// ctx.Err() is appended once below if it caused it.
					continue
				}
				emu.Lock()
				errs = append(errs, err)
				emu.Unlock()
				cancel() // halt dispatch; drain remaining specs cheaply
			}
		}()
	}
dispatch:
	for _, s := range specs {
		select {
		case work <- s:
		case <-sweep.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// MustRun is Run for callers that already ran RunAll successfully.
func (r *Runner) MustRun(s Spec) *system.Results {
	res, err := r.Run(s)
	if err != nil {
		panic(err)
	}
	return res
}
