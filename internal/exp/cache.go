package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pcmap/internal/config"
	"pcmap/internal/system"
)

// cacheFormatVersion is folded into every cache key. Bump it whenever
// the serialized Results format or the simulation's meaning changes in
// a way that should invalidate old entries; stale files are then simply
// never addressed again (no migration logic needed).
//
// Version history: 1 = bare Results JSON; 2 = checksummed envelope
// (cacheEntry).
const cacheFormatVersion = 2

// CacheKey derives the content address of one run: a SHA-256 over the
// cache format version, the Spec, the fully resolved configuration, and
// the instruction budgets. Everything a simulation's output depends on
// is in the hash — two runs share a key if and only if they are the
// same deterministic computation — so resuming can never serve a result
// produced under different settings.
func CacheKey(s Spec, cfg *config.Config, warmup, measure uint64) string {
	payload, err := json.Marshal(struct {
		Version         int
		Spec            Spec
		Config          *config.Config
		Warmup, Measure uint64
	}{cacheFormatVersion, s, cfg, warmup, measure})
	if err != nil {
		// Spec and Config are plain data; marshaling cannot fail.
		panic(fmt.Sprintf("exp: cache key: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// DiskCache persists simulation Results content-addressed by CacheKey,
// one JSON file per run. Writes go through a temp file in the same
// directory followed by an atomic rename, so a sweep killed mid-write
// leaves either a complete entry or none — never a truncated file a
// resume could misread.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// cacheEntry is the on-disk envelope of one cached run: the encoded
// Results plus a SHA-256 over those exact bytes. The checksum detects
// bit rot and partial writes that still parse as JSON — without it a
// silently corrupted float would flow straight into resumed reports.
type cacheEntry struct {
	Sum     string          `json:"sha256"`
	Results json.RawMessage `json:"results"`
}

// QuarantineSuffix is appended to a corrupt cache entry's filename when
// Load moves it aside. Quarantined files keep the evidence for
// diagnosis while freeing the key: the run re-executes and overwrites
// the entry, so a sweep survives cache corruption instead of failing
// on it.
const QuarantineSuffix = ".corrupt"

// Load returns the cached Results for key, or ok=false on a miss. An
// unreadable, checksum-mismatched, or undecodable entry counts as a
// miss, and the corrupt file is renamed aside (key.json.corrupt) so
// the re-executed run can rewrite the entry while the bad bytes stay
// available for inspection.
func (c *DiskCache) Load(key string) (res *system.Results, ok bool) {
	p := c.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		c.quarantine(p)
		return nil, false
	}
	sum := sha256.Sum256(ent.Results)
	if ent.Sum != hex.EncodeToString(sum[:]) {
		c.quarantine(p)
		return nil, false
	}
	r, err := system.DecodeResults(ent.Results)
	if err != nil {
		c.quarantine(p)
		return nil, false
	}
	return r, true
}

// quarantine moves a corrupt entry aside. Rename is as atomic as the
// store path's, and a failure (e.g. the file vanished) is ignored: the
// caller already treats the entry as a miss either way.
func (c *DiskCache) quarantine(path string) {
	_ = os.Rename(path, path+QuarantineSuffix)
}

// Store persists res under key atomically (temp file + rename), inside
// a checksummed envelope Load verifies.
func (c *DiskCache) Store(key string, res *system.Results) error {
	payload, err := system.EncodeResults(res)
	if err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(cacheEntry{Sum: hex.EncodeToString(sum[:]), Results: payload})
	if err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	f, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache store: %w", werr)
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache store: %w", err)
	}
	return nil
}

// Len counts complete entries in the cache (diagnostics and tests).
func (c *DiskCache) Len() (int, error) {
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}
