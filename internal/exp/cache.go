package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pcmap/internal/config"
	"pcmap/internal/system"
)

// cacheFormatVersion is folded into every cache key. Bump it whenever
// the serialized Results format or the simulation's meaning changes in
// a way that should invalidate old entries; stale files are then simply
// never addressed again (no migration logic needed).
const cacheFormatVersion = 1

// CacheKey derives the content address of one run: a SHA-256 over the
// cache format version, the Spec, the fully resolved configuration, and
// the instruction budgets. Everything a simulation's output depends on
// is in the hash — two runs share a key if and only if they are the
// same deterministic computation — so resuming can never serve a result
// produced under different settings.
func CacheKey(s Spec, cfg *config.Config, warmup, measure uint64) string {
	payload, err := json.Marshal(struct {
		Version         int
		Spec            Spec
		Config          *config.Config
		Warmup, Measure uint64
	}{cacheFormatVersion, s, cfg, warmup, measure})
	if err != nil {
		// Spec and Config are plain data; marshaling cannot fail.
		panic(fmt.Sprintf("exp: cache key: %v", err))
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// DiskCache persists simulation Results content-addressed by CacheKey,
// one JSON file per run. Writes go through a temp file in the same
// directory followed by an atomic rename, so a sweep killed mid-write
// leaves either a complete entry or none — never a truncated file a
// resume could misread.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load returns the cached Results for key, or ok=false on a miss. A
// corrupted or unreadable entry counts as a miss: the run simply
// re-executes and overwrites it (the key addresses a deterministic
// computation, so overwriting is always safe).
func (c *DiskCache) Load(key string) (res *system.Results, ok bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	r, err := system.DecodeResults(data)
	if err != nil {
		return nil, false
	}
	return r, true
}

// Store persists res under key atomically (temp file + rename).
func (c *DiskCache) Store(key string, res *system.Results) error {
	data, err := system.EncodeResults(res)
	if err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	f, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache store: %w", werr)
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache store: %w", err)
	}
	return nil
}

// Len counts complete entries in the cache (diagnostics and tests).
func (c *DiskCache) Len() (int, error) {
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}
