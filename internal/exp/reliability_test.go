package exp

import (
	"context"
	"testing"

	"pcmap/internal/config"
)

// TestReliabilitySweep runs the sweep at test budgets and checks its
// internal no-silent-corruption cross-check passes: Reliability itself
// errors out if any point injects faults that no handling counter saw.
func TestReliabilitySweep(t *testing.T) {
	f, err := Reliability(context.Background(), testRunner(), "MP4", config.RWoWRDE)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Table.Rows) != len(reliabilityPoints) {
		t.Fatalf("table has %d rows, want %d", len(f.Table.Rows), len(reliabilityPoints))
	}

	// The clean point must be fault-free, and at least one wear point
	// must actually inject and handle faults — otherwise the sweep is
	// vacuous at these budgets.
	clean := reliabilityPoints[0].label()
	if f.Series[clean]["injStuck"] > 0 || f.Series[clean]["injDrift"] > 0 {
		t.Fatalf("clean point injected faults: %v", f.Series[clean])
	}
	var injected, handled float64
	for _, p := range reliabilityPoints {
		s := f.Series[p.label()]
		injected += s["injStuck"] + s["injDrift"]
		handled += s["secdedCorrected"] + s["pccRecovered"] + s["uncorrected"] +
			s["retries"] + s["remaps"]
	}
	if injected <= 0 {
		t.Fatal("sweep injected no faults at any point")
	}
	if handled <= 0 {
		t.Fatal("sweep handled no faults at any point")
	}
}

// TestReliabilitySpecZeroPerturbation checks the fault knobs' default
// values leave the Spec->config mapping inert, so memoized fault-free
// results are shared with runs that never mention the knobs.
func TestReliabilitySpecZeroPerturbation(t *testing.T) {
	r := testRunner()
	cfg := r.configFor(Spec{Workload: "MP4", Variant: config.RWoWRDE})
	//pcmaplint:ignore floatcmp DriftProb is assigned, never computed; the default must be exactly zero
	if cfg.Memory.EnduranceBudget != 0 || cfg.Memory.DriftProb != 0 || cfg.Memory.VerifyWrites {
		t.Fatalf("default spec sets fault knobs: budget=%d drift=%g verify=%v",
			cfg.Memory.EnduranceBudget, cfg.Memory.DriftProb, cfg.Memory.VerifyWrites)
	}
	cfg = r.configFor(Spec{Workload: "MP4", Variant: config.RWoWRDE,
		EnduranceBudget: 9, DriftProb: 1e-3, VerifyWrites: true})
	//pcmaplint:ignore floatcmp DriftProb is assigned, never computed; the knob must round-trip exactly
	if cfg.Memory.EnduranceBudget != 9 || cfg.Memory.DriftProb != 1e-3 || !cfg.Memory.VerifyWrites {
		t.Fatal("fault knobs not mapped into the memory config")
	}
}
