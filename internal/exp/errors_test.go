package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pcmap/internal/config"
	"pcmap/internal/system"
)

// TestRunRecoversPanic is the panic-isolation regression test: a
// panicking simulation must come back as a typed *JobPanicError with a
// stack, not unwind the worker goroutine (which would kill the whole
// process before this test could even fail).
func TestRunRecoversPanic(t *testing.T) {
	r := testRunner()
	r.Retries = 3 // a panic must not consume retry budget
	var attempts int32
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		atomic.AddInt32(&attempts, 1)
		panic("pathological config")
	}
	_, err := r.Run(Spec{Workload: "MP4", Variant: config.RWoWRDE})
	if err == nil {
		t.Fatal("panicking simulation must return an error")
	}
	var pe *JobPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *JobPanicError in the chain", err)
	}
	if pe.Workload != "MP4" || pe.Variant != config.RWoWRDE {
		t.Errorf("panic error names %s/%s, want MP4/RWoW-RDE", pe.Workload, pe.Variant)
	}
	if pe.Value != "pathological config" {
		t.Errorf("panic value = %v, want the original panic payload", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "callSimulate") {
		t.Errorf("stack does not reach the recovery frame:\n%s", pe.Stack)
	}
	if n := atomic.LoadInt32(&attempts); n != 1 {
		t.Errorf("%d attempts, want 1 (panics are not retryable)", n)
	}

	// The runner keeps serving: a healthy spec still runs after the
	// panic, and the panicked spec is not poisoned in the memo.
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		return fakeResults(Spec{Workload: workload}), nil
	}
	if _, err := r.Run(Spec{Workload: "stream"}); err != nil {
		t.Fatalf("healthy run after a panic: %v", err)
	}
	if _, err := r.Run(Spec{Workload: "MP4", Variant: config.RWoWRDE}); err != nil {
		t.Fatalf("re-running the previously panicking spec: %v", err)
	}
}

// TestRunAllSurvivesPanickingSpec is the sweep-level story: one
// deliberately panicking spec fails the sweep with a joined, typed
// error — it no longer kills the entire process — and completed specs
// stay memoized for resume.
func TestRunAllSurvivesPanickingSpec(t *testing.T) {
	r := testRunner()
	r.Parallelism = 1
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		if workload == "w2" {
			panic("spec w2 is pathological")
		}
		return fakeResults(Spec{Workload: workload}), nil
	}
	specs := make([]Spec, 6)
	for i := range specs {
		specs[i] = Spec{Workload: fmt.Sprintf("w%d", i)}
	}
	err := r.RunAll(context.Background(), specs)
	if err == nil {
		t.Fatal("RunAll must report the panicking spec")
	}
	var pe *JobPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunAll error %v does not carry the JobPanicError", err)
	}
	// Specs completed before the panic survive it.
	if _, ok := r.memoized(specs[0]); !ok {
		t.Error("pre-panic result lost from the memo")
	}
}

// memoized reports whether s has a completed memo entry (test helper).
func (r *Runner) memoized(s Spec) (*system.Results, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.memo[s]
	return res, ok
}

// TestRunCtxDeadline runs a real simulation under an already-tight
// deadline and requires a context.DeadlineExceeded error with no
// retries: the engine's periodic cancellation check is what aborts
// long jobs for the -timeout flag and the serve layer.
func TestRunCtxDeadline(t *testing.T) {
	r := NewRunner()
	r.Warmup, r.Measure = 200_000, 2_000_000 // long enough to outlive 1ms
	r.Retries = 2                            // timeouts must not consume retry budget
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := r.RunCtx(ctx, Spec{Workload: "MP4", Variant: config.Baseline})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestIsRetryable pins the retryable-error taxonomy the bounded-retry
// paths (Runner.Retries, serve backoff) classify with.
func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain environmental error", errors.New("disk full"), true},
		{"wrapped environmental error", fmt.Errorf("cache store: %w", errors.New("EIO")), true},
		{"panic", &JobPanicError{Workload: "w", Value: "boom"}, false},
		{"wrapped panic", fmt.Errorf("exp: w/Baseline: %w", &JobPanicError{Value: 1}), false},
		{"canceled", context.Canceled, false},
		{"deadline", fmt.Errorf("system: measure: %w", context.DeadlineExceeded), false},
		{"invalid spec", &system.OptionError{Option: "WithWorkload", Err: errors.New("unknown")}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsRetryable(tc.err); got != tc.want {
				t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}
