package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pcmap/internal/config"
	"pcmap/internal/mem"
	"pcmap/internal/system"
)

// fakeResults builds a minimal Results for simulate-hook tests.
func fakeResults(s Spec) *system.Results {
	return &system.Results{Workload: s.Workload, Variant: s.Variant,
		IPCSum: 1, Mem: mem.NewMetrics()}
}

// TestSingleFlight is the duplicate-execution regression test for the
// old check-then-execute race: N concurrent Run calls for one Spec must
// execute exactly one simulation, and every caller must receive that
// one result. Run under -race this also exercises the memo locking.
func TestSingleFlight(t *testing.T) {
	r := testRunner()
	var executions int32
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		atomic.AddInt32(&executions, 1)
		// Widen the window in which the old code let a second worker
		// slip past the memo check while the first was simulating.
		time.Sleep(20 * time.Millisecond)
		return fakeResults(Spec{Workload: workload}), nil
	}

	s := Spec{Workload: "MP4", Variant: config.Baseline}
	const callers = 16
	results := make([]*system.Results, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(s)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if n := atomic.LoadInt32(&executions); n != 1 {
		t.Fatalf("%d executions for one spec, want exactly 1", n)
	}
	for i, res := range results {
		if res != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
}

// TestRunAllHaltsOnFirstError pins the documented dispatch contract:
// after a worker fails, no further spec may start executing.
func TestRunAllHaltsOnFirstError(t *testing.T) {
	r := testRunner()
	r.Parallelism = 1
	var executions int32
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		n := atomic.AddInt32(&executions, 1)
		if n == 3 {
			return nil, errors.New("boom")
		}
		return fakeResults(Spec{Workload: workload}), nil
	}
	specs := make([]Spec, 20)
	for i := range specs {
		specs[i] = Spec{Workload: fmt.Sprintf("w%d", i)}
	}
	err := r.RunAll(context.Background(), specs)
	if err == nil {
		t.Fatal("RunAll must report the failure")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error %q does not carry the worker failure", err)
	}
	if n := atomic.LoadInt32(&executions); n != 3 {
		t.Fatalf("%d executions, want exactly 3 (dispatch must halt at the failure)", n)
	}
}

// TestRunAllJoinsWorkerErrors verifies concurrent failures are all
// reported, not just whichever error wins a channel race.
func TestRunAllJoinsWorkerErrors(t *testing.T) {
	r := testRunner()
	r.Parallelism = 2
	var barrier sync.WaitGroup
	barrier.Add(2)
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		// Both workers must be mid-execution before either fails, so
		// neither failure can halt the other's dispatch.
		barrier.Done()
		barrier.Wait()
		return nil, fmt.Errorf("fail-%s", workload)
	}
	err := r.RunAll(context.Background(), []Spec{{Workload: "a"}, {Workload: "b"}})
	if err == nil {
		t.Fatal("RunAll must fail")
	}
	for _, want := range []string{"fail-a", "fail-b"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q is missing %q", err, want)
		}
	}
}

// TestRunAllCancellation cancels mid-sweep and asserts no further
// dispatch: the first execution cancels the context, so exactly one
// simulation may run.
func TestRunAllCancellation(t *testing.T) {
	r := testRunner()
	r.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executions int32
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		atomic.AddInt32(&executions, 1)
		cancel() // the user hits ^C while the first sim runs
		return fakeResults(Spec{Workload: workload}), nil
	}
	specs := make([]Spec, 10)
	for i := range specs {
		specs[i] = Spec{Workload: fmt.Sprintf("w%d", i)}
	}
	err := r.RunAll(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&executions); n != 1 {
		t.Fatalf("%d executions after cancellation, want 1 (no further dispatch)", n)
	}
	// The completed run must still be memoized: cancellation keeps
	// partial results.
	if _, err := r.Run(specs[0]); err != nil {
		t.Fatalf("completed pre-cancellation run lost: %v", err)
	}
	if n := atomic.LoadInt32(&executions); n != 1 {
		t.Fatalf("re-requesting the completed spec re-executed it (%d executions)", n)
	}
}

// TestRunRetries covers the bounded-retry path: a transient failure is
// retried up to Retries times, and the budget is respected.
func TestRunRetries(t *testing.T) {
	cases := []struct {
		name         string
		retries      int
		failFirst    int32 // number of leading attempts that fail
		wantErr      bool
		wantAttempts int32
	}{
		{"no retries, first attempt fails", 0, 1, true, 1},
		{"one retry rescues one transient failure", 1, 1, false, 2},
		{"budget exhausted", 2, 5, true, 3},
		{"no failures, no extra attempts", 3, 0, false, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := testRunner()
			r.Retries = tc.retries
			var attempts int32
			r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
				n := atomic.AddInt32(&attempts, 1)
				if n <= tc.failFirst {
					return nil, errors.New("transient")
				}
				return fakeResults(Spec{Workload: workload}), nil
			}
			_, err := r.Run(Spec{Workload: "MP4"})
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if attempts != tc.wantAttempts {
				t.Fatalf("%d attempts, want %d", attempts, tc.wantAttempts)
			}
		})
	}
}

// TestRunAllRetryDegradesToPartialSuccess is the sweep-level retry
// story: one transient failure mid-sweep is retried away and the whole
// sweep completes instead of aborting.
func TestRunAllRetryDegradesToPartialSuccess(t *testing.T) {
	r := testRunner()
	r.Parallelism = 2
	r.Retries = 1
	var attempts int32
	var failedOnce atomic.Bool
	r.simulate = func(_ context.Context, cfg *config.Config, workload string, warmup, measure uint64) (*system.Results, error) {
		atomic.AddInt32(&attempts, 1)
		if workload == "w3" && failedOnce.CompareAndSwap(false, true) {
			return nil, errors.New("transient blip")
		}
		return fakeResults(Spec{Workload: workload}), nil
	}
	specs := make([]Spec, 8)
	for i := range specs {
		specs[i] = Spec{Workload: fmt.Sprintf("w%d", i)}
	}
	if err := r.RunAll(context.Background(), specs); err != nil {
		t.Fatalf("sweep failed despite retry budget: %v", err)
	}
	if attempts != int32(len(specs))+1 {
		t.Fatalf("%d attempts, want %d (one retry)", attempts, len(specs)+1)
	}
}
