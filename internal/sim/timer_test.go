package sim

import (
	"testing"
	"testing/quick"
)

func TestTimerFiresBoundCallback(t *testing.T) {
	e := NewEngine()
	hits := 0
	tm := e.NewTimer(func() { hits++ })
	tm.Schedule(10)
	if tm.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", tm.Pending())
	}
	e.Run()
	if hits != 1 || tm.Pending() != 0 {
		t.Fatalf("hits = %d pending = %d after run", hits, tm.Pending())
	}
	if e.Now() != 10 {
		t.Fatalf("clock %v, want 10", e.Now())
	}
}

func TestTimerRecurring(t *testing.T) {
	e := NewEngine()
	var times []Time
	var tm *Timer
	tm = e.NewTimer(func() {
		times = append(times, e.Now())
		if len(times) < 5 {
			tm.Schedule(MemCycle)
		}
	})
	tm.Schedule(0)
	e.Run()
	if len(times) != 5 {
		t.Fatalf("fired %d times, want 5", len(times))
	}
	for i, at := range times {
		if at != MemCycle*Time(i) {
			t.Fatalf("firing %d at %v, want %v", i, at, MemCycle*Time(i))
		}
	}
}

func TestTimerMultipleArmed(t *testing.T) {
	// Arming again before the first firing is allowed: each arming
	// fires once, in engine order.
	e := NewEngine()
	var order []Time
	tm := e.NewTimer(func() { order = append(order, e.Now()) })
	tm.Schedule(20)
	tm.Schedule(5)
	if tm.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", tm.Pending())
	}
	e.Run()
	if len(order) != 2 || order[0] != 5 || order[1] != 20 {
		t.Fatalf("firings at %v, want [5 20]", order)
	}
}

func TestTimerPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	tm := e.NewTimer(func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("arming a timer before now should panic")
		}
	}()
	tm.At(5)
}

// TestTimerInterleavesWithEvents pins the cross-API ordering: timer
// firings and plain scheduled events at the same timestamp fire in
// their combined scheduling (seq) order.
func TestTimerInterleavesWithEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	tm := e.NewTimer(func() { order = append(order, -1) })
	e.Schedule(5, func() { order = append(order, 0) })
	tm.Schedule(5)
	e.Schedule(5, func() { order = append(order, 1) })
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != -1 || order[2] != 1 {
		t.Fatalf("same-time FIFO across APIs broken: %v", order)
	}
}

// TestEngineSteadyStateZeroAlloc is the tentpole guarantee: once the
// arena has grown to its working size, a schedule/fire cycle through a
// Timer performs no allocations at all.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	var tm *Timer
	tm = e.NewTimer(func() {})
	// Prime the arena.
	for i := 0; i < 64; i++ {
		tm.Schedule(Time(i))
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Schedule(MemCycle)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state timer scheduling allocates %.1f per op, want 0", allocs)
	}
}

// TestEngineFIFOProperty is the heap-rewrite property test: for any
// batch of delays, same-timestamp events fire in scheduling order and
// timestamps never decrease.
func TestEngineFIFOProperty(t *testing.T) {
	check := func(delays []uint8) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			ins int
		}
		var fired []rec
		for i, d := range delays {
			ins := i
			e.Schedule(Time(d%16), func() { fired = append(fired, rec{e.Now(), ins}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].ins < fired[i-1].ins {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
