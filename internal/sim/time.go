package sim

// Unit-safe accessors and arithmetic helpers for Time. The pcmaplint
// unitsafe analyzer bans ad-hoc conversions between unit-typed
// quantities (and products of two unit-typed values) outside this
// package; these methods are the sanctioned spellings, so every
// cycles-vs-ticks-vs-seconds crossing is explicit and auditable.

// Ticks returns the raw tick count (units of 100 ps). It exists for
// serialization paths that must store the value verbatim; arithmetic
// should stay in Time.
func (t Time) Ticks() int64 { return int64(t) }

// Microseconds reports t as a floating point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Times returns n repetitions of the duration t (e.g.
// sim.CPUCycle.Times(hitCycles)). This is the unit-safe replacement for
// the Time(n) * duration idiom, which multiplies two Time values.
func (t Time) Times(n int) Time { return t * Time(n) }

// Scale returns t scaled by f, truncated toward zero to a whole tick.
func (t Time) Scale(f float64) Time { return Time(float64(t) * f) }

// DivCeil splits t into n equal slices and returns the slice length,
// rounded up to a whole tick. It panics if n is not positive.
func (t Time) DivCeil(n int) Time {
	if n <= 0 {
		panic("sim: DivCeil with non-positive n")
	}
	return (t + Time(n) - 1) / Time(n)
}
