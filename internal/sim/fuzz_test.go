package sim

import (
	"sort"
	"testing"
)

// FuzzEngineOrdering drives the 4-ary heap with fuzzer-chosen delay
// patterns — including long same-timestamp runs, which is where a heap
// rewrite would break FIFO tie-breaking — and asserts the engine fires
// events in exactly (time, then insertion order), the property every
// simulation component relies on for determinism.
func FuzzEngineOrdering(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{5, 3, 5, 3, 5, 3, 1})
	f.Add([]byte{255, 0, 128, 0, 255, 7, 7, 7})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Fuzz(func(t *testing.T, delays []byte) {
		if len(delays) > 4096 {
			delays = delays[:4096]
		}
		type rec struct {
			at  Time
			ins int // insertion order among all scheduled events
		}
		e := NewEngine()
		var want []rec
		var got []rec

		// Interleave scheduling and stepping so the heap is exercised in
		// mixed push/pop states, not just build-then-drain: every fourth
		// event runs one step before the next scheduling.
		for i, d := range delays {
			at := e.Now() + Time(d%32)
			ins := i
			e.At(at, func() { got = append(got, rec{e.Now(), ins}) })
			want = append(want, rec{at, ins})
			if i%4 == 3 {
				e.Step()
			}
		}
		e.Run()

		// Reference order: stable sort by time keeps insertion order
		// within a timestamp — the FIFO `seq` contract.
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if len(got) != len(want) {
			t.Fatalf("fired %d events, scheduled %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: fired %+v, want %+v (full: %v)", i, got[i], want[i], got)
			}
		}
	})
}
