package sim

// Timer is a reusable, pre-bound scheduled callback. Recurring
// schedulers — a CPU core's step loop, a controller's issue loop — fire
// the same function thousands of times per simulated microsecond;
// passing a method value to Engine.Schedule materializes a fresh
// closure for every call. A Timer binds the callback once at
// construction, so each (re)arm pushes a plain event value into the
// engine's arena and the steady-state scheduling path allocates
// nothing.
//
// A Timer may be armed again before an earlier arming has fired; each
// arming fires exactly once, in the engine's usual (time, seq) order.
// Like the Engine itself, Timer is not safe for concurrent use.
type Timer struct {
	eng     *Engine
	run     func()
	pending int
}

// NewTimer returns a timer on e that invokes fn each time it fires.
// The callback is bound once, here; this is the only allocation a
// timer ever performs.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{eng: e}
	t.run = func() {
		t.pending--
		fn()
	}
	return t
}

// Schedule arms the timer to fire after delay ticks. A negative delay
// panics, matching Engine.Schedule.
func (t *Timer) Schedule(delay Time) { t.At(t.eng.now + delay) }

// At arms the timer to fire at absolute time at, which must not
// precede the current time.
func (t *Timer) At(at Time) {
	e := t.eng
	if at < e.now {
		panic("sim: timer armed before now")
	}
	t.pending++
	e.seq++
	e.push(event{at: at, seq: e.seq, fn: t.run})
}

// Pending returns the number of armed, not-yet-fired schedulings.
func (t *Timer) Pending() int { return t.pending }
