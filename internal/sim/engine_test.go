package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if NS(60) != 600 {
		t.Fatalf("NS(60) = %d, want 600 ticks", NS(60))
	}
	if CPUCycle*Time(2500) != Microsecond {
		t.Fatalf("2500 CPU cycles should equal 1us, got %v", CPUCycle*Time(2500))
	}
	if MemCycle*Time(400) != Microsecond {
		t.Fatalf("400 mem cycles should equal 1us, got %v", MemCycle*Time(400))
	}
	if got := Time(25).Nanoseconds(); got != 2.5 {
		t.Fatalf("25 ticks = %v ns, want 2.5", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v, want 30", e.Now())
	}
}

func TestEngineFIFOWithinSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	var recur func()
	recur = func() {
		hits++
		if hits < 100 {
			e.Schedule(7, recur)
		}
	}
	e.Schedule(0, recur)
	e.Run()
	if hits != 100 {
		t.Fatalf("got %d hits, want 100", hits)
	}
	if e.Now() != 99*7 {
		t.Fatalf("clock %v, want %v", e.Now(), 99*7)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("expected 2 events by t=12, got %v", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock %v, want 12", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("expected all 4 events after Run, got %v", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past should panic")
		}
	}()
	e := NewEngine()
	e.Schedule(-1, func() {})
}

func TestAtBeforeNowPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At before now should panic")
		}
	}()
	e.At(5, func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds look correlated: %d collisions", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPick(t *testing.T) {
	r := NewRNG(9)
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight buckets picked: %v", counts)
	}
	// Expect roughly 10% / 30% / 60%.
	if f := float64(counts[1]) / n; f < 0.08 || f > 0.12 {
		t.Fatalf("bucket 1 frequency %.3f, want ~0.10", f)
	}
	if f := float64(counts[4]) / n; f < 0.57 || f > 0.63 {
		t.Fatalf("bucket 4 frequency %.3f, want ~0.60", f)
	}
}

func TestRNGPickDegenerate(t *testing.T) {
	r := NewRNG(1)
	if got := r.Pick([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("all-zero weights should pick 0, got %d", got)
	}
	if got := r.Pick([]float64{5}); got != 0 {
		t.Fatalf("single bucket should pick 0, got %d", got)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(50)
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Fatalf("Exp(50) sample mean %.2f, want ~50", mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	f := float64(hits) / n
	if f < 0.23 || f > 0.27 {
		t.Fatalf("Bool(0.25) frequency %.3f", f)
	}
}
