package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every stochastic component of the simulator owns its own
// seeded RNG so results are bit-reproducible regardless of the order in
// which components consume randomness.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// Inverse transform sampling; avoid log(0).
	u := r.Float64()
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	return -mean * math.Log(1-u)
}

// Pick samples an index from the discrete distribution given by weights.
// Zero or negative weights are treated as zero. If every weight is zero
// it returns 0.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Fork derives an independent generator from this one, for handing a
// private randomness stream to a sub-component.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03) }
