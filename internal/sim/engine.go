// Package sim provides a deterministic discrete-event simulation engine
// used by every other component of the PCMap reproduction.
//
// Time is measured in integer ticks of 100 picoseconds, which is the
// least common granularity needed to express both the 2.5 GHz CPU clock
// (one cycle = 4 ticks) and the 400 MHz DDR3 memory clock (one cycle =
// 25 ticks) from Table I of the paper without rounding error.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in ticks of 100 ps.
type Time int64

// Common durations expressed in ticks.
const (
	Tick        Time = 1
	Picosecond       = 0 // smaller than one tick; defined for documentation
	Nanosecond  Time = 10
	Microsecond Time = 10 * 1000
	Millisecond Time = 10 * 1000 * 1000

	// CPUCycle is one cycle of the 2.5 GHz processor clock (0.4 ns).
	CPUCycle Time = 4
	// MemCycle is one cycle of the 400 MHz memory clock (2.5 ns).
	MemCycle Time = 25
)

// Nanoseconds reports t as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / 10 }

// CPUCycles reports t as a floating point number of CPU cycles.
func (t Time) CPUCycles() float64 { return float64(t) / float64(CPUCycle) }

// MemCycles reports t as a floating point number of memory cycles.
func (t Time) MemCycles() float64 { return float64(t) / float64(MemCycle) }

func (t Time) String() string { return fmt.Sprintf("%.1fns", t.Nanoseconds()) }

// NS returns a duration of n nanoseconds.
func NS(n float64) Time { return Time(n * 10) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker for deterministic ordering
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; the whole simulation is single
// threaded and deterministic, which is what a reproducibility study needs.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nsteps uint64
}

// NewEngine returns an empty engine starting at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay ticks. A negative delay panics: scheduling
// into the past would silently break causality.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule into the past (delay %d)", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t, which must not precede the current time.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Step executes the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.nsteps++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d ticks from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
