// Package sim provides a deterministic discrete-event simulation engine
// used by every other component of the PCMap reproduction.
//
// Time is measured in integer ticks of 100 picoseconds, which is the
// least common granularity needed to express both the 2.5 GHz CPU clock
// (one cycle = 4 ticks) and the 400 MHz DDR3 memory clock (one cycle =
// 25 ticks) from Table I of the paper without rounding error.
package sim

import "fmt"

// Time is a point in simulated time, in ticks of 100 ps.
type Time int64

// Common durations expressed in ticks.
const (
	Tick        Time = 1
	Picosecond       = 0 // smaller than one tick; defined for documentation
	Nanosecond  Time = 10
	Microsecond Time = 10 * 1000
	Millisecond Time = 10 * 1000 * 1000

	// CPUCycle is one cycle of the 2.5 GHz processor clock (0.4 ns).
	CPUCycle Time = 4
	// MemCycle is one cycle of the 400 MHz memory clock (2.5 ns).
	MemCycle Time = 25
)

// Nanoseconds reports t as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / 10 }

// CPUCycles reports t as a floating point number of CPU cycles.
func (t Time) CPUCycles() float64 { return float64(t) / float64(CPUCycle) }

// MemCycles reports t as a floating point number of memory cycles.
func (t Time) MemCycles() float64 { return float64(t) / float64(MemCycle) }

func (t Time) String() string { return fmt.Sprintf("%.1fns", t.Nanoseconds()) }

// NS returns a duration of n nanoseconds.
func NS(n float64) Time { return Time(n * 10) }

// event is a scheduled callback. Events live by value inside the
// engine's arena slice; pushing one never allocates (beyond amortized
// slice growth), unlike the previous container/heap implementation
// which boxed every event into an interface{} on both Push and Pop.
type event struct {
	at  Time
	seq uint64 // tie-breaker for deterministic FIFO ordering
	fn  func()
}

// before is the heap order: earliest time first, FIFO within a time.
// (at, seq) is a total order — seq is unique — so any correct heap pops
// events in exactly the same sequence, which is what keeps the engine
// rewrite bit-identical to the old binary heap.
func (a *event) before(b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; the whole simulation is single
// threaded and deterministic, which is what a reproducibility study needs.
//
// Events are kept in a monomorphic 4-ary min-heap laid out in one slice
// (the event arena). A 4-ary heap halves the tree depth of a binary
// heap, and sift operations move whole event values inside the arena,
// so the steady-state scheduling path performs zero allocations.
type Engine struct {
	now    Time
	seq    uint64
	curSeq uint64 // seq of the event currently executing (see CurSeq)
	events []event // 4-ary min-heap ordered by (at, seq)
	nsteps uint64

	// stepHook, when non-nil, observes every executed event. It exists
	// for the observability layer (internal/obs) and costs exactly one
	// predictable branch per step when unset, keeping the hot path at
	// zero allocations.
	stepHook func(now Time, pending int)
}

// NewEngine returns an empty engine starting at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of scheduled, not yet executed events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay ticks. A negative delay panics: scheduling
// into the past would silently break causality.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule into the past (delay %d)", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t, which must not precede the current time.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// push appends ev to the arena and sifts it up the 4-ary heap, moving
// displaced parents down into the hole rather than swapping.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.events = h
}

// pop removes and returns the minimum event. The vacated arena slot is
// zeroed so the engine does not retain the callback past execution.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	e.events = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			// Minimum of the (up to four) children.
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return root
}

// PeekNext reports the key (time, sequence number) of the earliest
// pending event without executing it. ok is false when no events are
// pending. The PDES coordinator merges several engines by comparing
// head keys; within one engine the key order is exactly execution
// order, so a peek is a sound one-event lookahead.
func (e *Engine) PeekNext() (at Time, seq uint64, ok bool) {
	if len(e.events) == 0 {
		return 0, 0, false
	}
	return e.events[0].at, e.events[0].seq, true
}

// Seq returns the engine's event sequence counter: the seq value most
// recently assigned to a scheduled event. Together with SetNextSeq it
// lets the PDES coordinator thread one logical counter through several
// engines across a synchronous cross-shard call, so the sharded run
// assigns tie-breakers in the same relative order as the sequential
// engine would.
func (e *Engine) Seq() uint64 { return e.seq }

// SetNextSeq overwrites the sequence counter so the next scheduled
// event receives seq+1... and onward. The PDES coordinator uses it to
// hand each executed event a private block of the global sequence
// space; single-threaded runs never call it, so the legacy counter
// path is untouched.
func (e *Engine) SetNextSeq(seq uint64) { e.seq = seq }

// AllocSeq consumes and returns the next sequence number without
// scheduling anything. Shard code stamps cross-engine messages with it
// so a posted event carries the same tie-breaker an inline call's
// first scheduled event would have received.
func (e *Engine) AllocSeq() uint64 {
	e.seq++
	return e.seq
}

// AtSeq schedules fn at absolute time t with an explicit, caller-owned
// sequence number, without touching the engine's counter. The PDES
// coordinator uses it to integrate cross-shard messages whose keys
// were assigned on the sending shard, preserving the global (at, seq)
// total order. The caller is responsible for seq uniqueness.
func (e *Engine) AtSeq(t Time, seq uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.push(event{at: t, seq: seq, fn: fn})
}

// SyncNow advances the clock to t without executing anything (a no-op
// when t is not ahead of now). The PDES coordinator aligns an idle
// shard engine's clock with the front-end before a synchronous
// cross-shard call, so code running under the call observes the same
// Now() it would have observed on the single shared engine.
func (e *Engine) SyncNow(t Time) {
	if t > e.now {
		e.now = t
	}
}

// SetStepHook installs fn to be called once per executed event with the
// event's timestamp and the number of events still pending after the
// pop. The hook is observability-only: it must not schedule events or
// otherwise influence the simulation, so that traced and untraced runs
// stay bit-identical. Passing nil removes the hook.
func (e *Engine) SetStepHook(fn func(now Time, pending int)) { e.stepHook = fn }

// CurSeq returns the sequence number of the event currently (or most
// recently) executing. A cross-engine message posted from inside an
// event is stamped with this key: on the single shared engine the
// message's work would have run inline within that very event, so its
// heap position among same-instant events is the event's own
// tie-breaker, not a freshly allocated one.
func (e *Engine) CurSeq() uint64 { return e.curSeq }

// Step executes the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.curSeq = ev.seq
	e.nsteps++
	if e.stepHook != nil {
		e.stepHook(e.now, len(e.events))
	}
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d ticks from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
