// Package wear implements Start-Gap wear leveling (Qureshi et al.,
// MICRO 2009), the scheme the paper cites as orthogonal to PCMap
// (Section IV-C2 argues PCMap's rotation additionally balances wear).
// The package provides the algebraic remapper plus the bookkeeping the
// controller needs to charge the gap-movement writes, letting the
// repository quantify the paper's lifetime claim instead of just
// asserting it.
package wear

import "fmt"

// StartGap remaps N logical lines onto N+1 physical lines. A "gap"
// (unused physical line) walks backward one slot every Psi writes;
// after it has traversed the whole region the start offset advances,
// so every logical line slowly visits every physical slot.
type StartGap struct {
	n     uint64 // logical lines
	psi   uint64 // writes per gap movement
	start uint64 // current rotation offset
	gap   uint64 // current gap position in [0, n]

	writes    uint64 // writes since last gap move
	GapMoves  uint64 // total gap movements (each copies one line)
	TotalWrts uint64 // total writes observed
}

// NewStartGap builds a leveler over n logical lines moving the gap
// every psi writes. psi trades overhead (1/psi extra writes) against
// leveling rate; the original paper uses 100.
func NewStartGap(n uint64, psi uint64) (*StartGap, error) {
	if n == 0 {
		return nil, fmt.Errorf("wear: zero region size")
	}
	if psi == 0 {
		return nil, fmt.Errorf("wear: psi must be positive")
	}
	return &StartGap{n: n, psi: psi, gap: n}, nil
}

// Lines returns the logical region size.
func (s *StartGap) Lines() uint64 { return s.n }

// Map translates a logical line to its current physical line in
// [0, n] (n+1 slots, one of which — the gap — never maps).
func (s *StartGap) Map(logical uint64) uint64 {
	if logical >= s.n {
		// Out-of-region lines pass through (the region covers the hot
		// area; the controller only remaps lines inside it).
		return logical
	}
	p := logical + s.start
	if p >= s.n {
		p -= s.n
	}
	if p >= s.gap {
		p++
	}
	return p
}

// OnWrite records a write. When the gap must move it returns
// (moveFrom, moveTo, true): the physical line moveFrom's content is
// copied into moveTo (the old gap), which costs the caller one extra
// line write — the scheme's overhead.
func (s *StartGap) OnWrite() (moveFrom, moveTo uint64, moved bool) {
	s.TotalWrts++
	s.writes++
	if s.writes < s.psi {
		return 0, 0, false
	}
	s.writes = 0
	s.GapMoves++
	if s.gap == 0 {
		// Gap wraps to the top and the start offset advances. The line
		// that lived in the last physical slot (it mapped past the
		// whole region) relocates to the freed slot 0 — the wrap's one
		// copy.
		s.gap = s.n
		s.start++
		if s.start == s.n {
			s.start = 0
		}
		return s.n, 0, true
	}
	moveTo = s.gap
	s.gap--
	moveFrom = s.gap
	return moveFrom, moveTo, true
}

// Overhead returns the fraction of extra writes the leveling added.
func (s *StartGap) Overhead() float64 {
	if s.TotalWrts == 0 {
		return 0
	}
	return float64(s.GapMoves) / float64(s.TotalWrts)
}

// state exposes internals for tests.
func (s *StartGap) state() (start, gap uint64) { return s.start, s.gap }
