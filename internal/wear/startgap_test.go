package wear

import (
	"testing"
	"testing/quick"
)

func TestMapIsPermutation(t *testing.T) {
	s, err := NewStartGap(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 300; round++ {
		seen := map[uint64]bool{}
		for l := uint64(0); l < 64; l++ {
			p := s.Map(l)
			if p > 64 {
				t.Fatalf("mapping out of the 65-slot range: %d", p)
			}
			if seen[p] {
				t.Fatalf("round %d: collision at physical %d", round, p)
			}
			seen[p] = true
		}
		// The gap slot must be exactly the one unused physical line.
		_, gap := s.state()
		if seen[gap] {
			t.Fatalf("round %d: gap slot %d is mapped", round, gap)
		}
		s.OnWrite()
	}
}

func TestGapWalksAndStartAdvances(t *testing.T) {
	s, _ := NewStartGap(8, 1) // move gap on every write
	start0, gap0 := s.state()
	if start0 != 0 || gap0 != 8 {
		t.Fatalf("initial state start=%d gap=%d", start0, gap0)
	}
	// 8 moves walk the gap to 0; the 9th wraps and bumps start.
	for i := 0; i < 8; i++ {
		_, _, moved := s.OnWrite()
		if !moved {
			t.Fatalf("move %d: expected a line copy", i)
		}
	}
	if _, gap := s.state(); gap != 0 {
		t.Fatalf("gap should be 0, is %d", gap)
	}
	from, to, moved := s.OnWrite()
	if !moved || from != 8 || to != 0 {
		t.Fatalf("wrap must copy slot N->0, got from=%d to=%d moved=%v", from, to, moved)
	}
	start, gap := s.state()
	if start != 1 || gap != 8 {
		t.Fatalf("after wrap: start=%d gap=%d, want 1,8", start, gap)
	}
}

func TestMoveSemantics(t *testing.T) {
	// Simulate actual data movement and verify the remap always finds
	// the moved content: contents[physical] = logical id.
	const n = 16
	s, _ := NewStartGap(n, 2)
	contents := make(map[uint64]uint64)
	for l := uint64(0); l < n; l++ {
		contents[s.Map(l)] = l
	}
	for w := 0; w < 500; w++ {
		from, to, moved := s.OnWrite()
		if moved {
			contents[to] = contents[from]
			delete(contents, from)
		}
		for l := uint64(0); l < n; l++ {
			p := s.Map(l)
			got, ok := contents[p]
			if !ok || got != l {
				t.Fatalf("write %d: logical %d maps to physical %d holding %d (ok=%v)", w, l, p, got, ok)
			}
		}
	}
}

func TestEveryLineVisitsManySlots(t *testing.T) {
	const n = 8
	s, _ := NewStartGap(n, 1)
	visited := make([]map[uint64]bool, n)
	for i := range visited {
		visited[i] = map[uint64]bool{}
	}
	// One full rotation takes n*(n+1) gap moves.
	for w := 0; w < n*(n+1); w++ {
		for l := uint64(0); l < n; l++ {
			visited[l][s.Map(l)] = true
		}
		s.OnWrite()
	}
	for l, v := range visited {
		if len(v) < n {
			t.Fatalf("logical line %d visited only %d slots", l, len(v))
		}
	}
}

func TestOverheadMatchesPsi(t *testing.T) {
	s, _ := NewStartGap(1024, 100)
	for i := 0; i < 100_000; i++ {
		s.OnWrite()
	}
	if ov := s.Overhead(); ov < 0.009 || ov > 0.011 {
		t.Fatalf("overhead %.4f, want ~1/100", ov)
	}
}

func TestOutOfRegionPassThrough(t *testing.T) {
	s, _ := NewStartGap(32, 10)
	if got := s.Map(100); got != 100 {
		t.Fatalf("out-of-region line remapped to %d", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewStartGap(0, 10); err == nil {
		t.Fatal("zero region must be rejected")
	}
	if _, err := NewStartGap(10, 0); err == nil {
		t.Fatal("zero psi must be rejected")
	}
}

func TestMapProperty(t *testing.T) {
	// Property: after arbitrary write sequences, Map stays injective
	// over the region.
	if err := quick.Check(func(writes uint16, n8 uint8) bool {
		n := uint64(n8%60) + 4
		s, _ := NewStartGap(n, 3)
		for i := 0; i < int(writes%2000); i++ {
			s.OnWrite()
		}
		seen := map[uint64]bool{}
		for l := uint64(0); l < n; l++ {
			p := s.Map(l)
			if p > n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
