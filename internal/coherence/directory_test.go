package coherence

import (
	"testing"
	"testing/quick"

	"pcmap/internal/sim"
)

func TestFirstLoadGetsExclusive(t *testing.T) {
	d := NewDirectory()
	a := d.Load(0x40, 2)
	if a.ForwardFrom != -1 || a.Invalidate != 0 {
		t.Fatalf("cold load needs no coherence work: %+v", a)
	}
	if d.StateOf(0x40) != Exclusive {
		t.Fatalf("state %v, want E", d.StateOf(0x40))
	}
	if d.Sharers(0x40) != 1<<2 {
		t.Fatalf("sharers %b", d.Sharers(0x40))
	}
}

func TestSecondLoadDegradesToShared(t *testing.T) {
	d := NewDirectory()
	d.Load(0x40, 0)
	a := d.Load(0x40, 1)
	if a.ForwardFrom != 0 {
		t.Fatalf("owner should forward, got %+v", a)
	}
	if d.StateOf(0x40) != Shared {
		t.Fatalf("state %v, want S", d.StateOf(0x40))
	}
	if d.Sharers(0x40) != 0b11 {
		t.Fatalf("sharers %b", d.Sharers(0x40))
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	d := NewDirectory()
	for core := 0; core < 4; core++ {
		d.Load(0x80, core)
	}
	a := d.Store(0x80, 2)
	if a.Invalidate != 0b1011 {
		t.Fatalf("invalidate mask %b, want cores 0,1,3", a.Invalidate)
	}
	if d.StateOf(0x80) != Modified || d.Sharers(0x80) != 1<<2 {
		t.Fatalf("post-store state %v sharers %b", d.StateOf(0x80), d.Sharers(0x80))
	}
	if d.Invalidations != 3 {
		t.Fatalf("invalidation count %d", d.Invalidations)
	}
}

func TestLoadAfterModifiedMakesOwned(t *testing.T) {
	d := NewDirectory()
	d.Store(0xc0, 1)
	a := d.Load(0xc0, 3)
	if a.ForwardFrom != 1 {
		t.Fatalf("dirty owner must forward, got %+v", a)
	}
	if d.StateOf(0xc0) != Owned {
		t.Fatalf("state %v, want O (MOESI keeps dirty ownership)", d.StateOf(0xc0))
	}
}

func TestStoreStealsDirtyOwnership(t *testing.T) {
	d := NewDirectory()
	d.Store(0x100, 0)
	a := d.Store(0x100, 1)
	if a.ForwardFrom != 0 || a.Invalidate != 1 {
		t.Fatalf("store to remote-M should forward+invalidate: %+v", a)
	}
	if d.StateOf(0x100) != Modified || d.Sharers(0x100) != 1<<1 {
		t.Fatal("ownership did not transfer")
	}
}

func TestEvictOwnerWritesBack(t *testing.T) {
	d := NewDirectory()
	d.Store(0x140, 5)
	a := d.Evict(0x140, 5)
	if !a.WriteBack {
		t.Fatal("evicting the M owner must write back")
	}
	if d.StateOf(0x140) != Invalid || d.Entries() != 0 {
		t.Fatal("line should be untracked after last eviction")
	}
}

func TestEvictSharerKeepsLine(t *testing.T) {
	d := NewDirectory()
	d.Load(0x180, 0)
	d.Load(0x180, 1)
	a := d.Evict(0x180, 1)
	if a.WriteBack {
		t.Fatal("clean sharer eviction must not write back")
	}
	if d.Sharers(0x180) != 1 {
		t.Fatalf("sharers %b", d.Sharers(0x180))
	}
}

func TestOwnedEvictionWithSharers(t *testing.T) {
	d := NewDirectory()
	d.Store(0x1c0, 0)
	d.Load(0x1c0, 1) // M -> O
	a := d.Evict(0x1c0, 0)
	if !a.WriteBack {
		t.Fatal("O owner eviction must write back")
	}
	if d.StateOf(0x1c0) != Shared {
		t.Fatalf("state %v, want S for surviving sharer", d.StateOf(0x1c0))
	}
}

func TestRepeatedAccessIdempotent(t *testing.T) {
	d := NewDirectory()
	d.Load(0x200, 0)
	a := d.Load(0x200, 0)
	if a.ForwardFrom != -1 || a.Invalidate != 0 {
		t.Fatal("owner re-reading its own line needs no work")
	}
	d.Store(0x200, 0)
	a = d.Store(0x200, 0)
	if a.ForwardFrom != -1 || a.Invalidate != 0 {
		t.Fatal("owner re-writing its own line needs no work")
	}
}

// TestProtocolInvariants drives random traffic and checks the MOESI
// directory invariants after every step.
func TestProtocolInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		d := NewDirectory()
		addrs := []uint64{0x40, 0x80, 0xc0}
		for i := 0; i < 300; i++ {
			addr := addrs[rng.Intn(len(addrs))]
			core := rng.Intn(8)
			switch rng.Intn(3) {
			case 0:
				d.Load(addr, core)
			case 1:
				d.Store(addr, core)
			default:
				d.Evict(addr, core)
			}
			for _, a := range addrs {
				st := d.StateOf(a)
				sh := d.Sharers(a)
				switch st {
				case Invalid:
					if sh != 0 {
						return false
					}
				case Exclusive, Modified:
					if popcount(sh) != 1 {
						return false
					}
				case Shared, Owned:
					if sh == 0 {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
