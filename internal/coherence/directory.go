// Package coherence implements the MOESI directory protocol of Table I
// for the private L1 caches above the shared L2. The directory lives
// alongside the L2 tags; it answers, for every L1 miss or store, which
// remote caches must be invalidated and whether a remote owner must
// forward dirty data, so the hierarchy can charge the corresponding NoC
// traffic.
package coherence

import "fmt"

// State is a MOESI stability state as seen by the directory.
type State uint8

const (
	// Invalid: no L1 holds the line.
	Invalid State = iota
	// Shared: one or more L1s hold clean copies.
	Shared
	// Exclusive: exactly one L1 holds a clean copy.
	Exclusive
	// Owned: one L1 owns a dirty copy, others may share it.
	Owned
	// Modified: exactly one L1 holds a dirty copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// line is the directory entry for one cache line.
type line struct {
	state   State
	owner   int8
	sharers uint16
}

// Action tells the requesting side what coherence work its access
// triggered: which L1s must be invalidated and whether a remote owner
// forwards the data (otherwise the L2/memory supplies it).
type Action struct {
	// Invalidate is a bitmask of cores whose L1 copies must be
	// invalidated before the access completes.
	Invalidate uint16
	// ForwardFrom is the core that must forward its dirty copy, or -1
	// when the L2 supplies the data.
	ForwardFrom int
	// WriteBack reports that dirty data was pushed down to the L2 as
	// part of this transition (owner eviction or ownership transfer on
	// a store).
	WriteBack bool
}

// Directory tracks the L1-coherence state of every line cached above
// the L2.
type Directory struct {
	lines map[uint64]*line

	Invalidations uint64
	Forwards      uint64
	WriteBacks    uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{lines: make(map[uint64]*line)} }

// Entries returns the number of tracked (non-invalid) lines.
func (d *Directory) Entries() int { return len(d.lines) }

// StateOf reports the directory state of a line (Invalid if untracked).
func (d *Directory) StateOf(addr uint64) State {
	if l, ok := d.lines[addr]; ok {
		return l.state
	}
	return Invalid
}

// Sharers returns the sharer bitmask of a line.
func (d *Directory) Sharers(addr uint64) uint16 {
	if l, ok := d.lines[addr]; ok {
		return l.sharers
	}
	return 0
}

func (d *Directory) get(addr uint64) *line {
	l, ok := d.lines[addr]
	if !ok {
		l = &line{state: Invalid, owner: -1}
		d.lines[addr] = l
	}
	return l
}

// Load records core's read of a line and returns the required actions.
func (d *Directory) Load(addr uint64, core int) Action {
	a := Action{ForwardFrom: -1}
	l := d.get(addr)
	bit := uint16(1) << uint(core)
	switch l.state {
	case Invalid:
		l.state = Exclusive
		l.owner = int8(core)
		l.sharers = bit
	case Exclusive:
		if l.sharers&bit == 0 {
			// Another core reads: the owner forwards, line degrades to S.
			a.ForwardFrom = int(l.owner)
			d.Forwards++
			l.state = Shared
			l.sharers |= bit
		}
	case Modified:
		if l.sharers&bit == 0 {
			// Dirty owner forwards and retains ownership: M -> O.
			a.ForwardFrom = int(l.owner)
			d.Forwards++
			l.state = Owned
			l.sharers |= bit
		}
	case Owned:
		if l.sharers&bit == 0 {
			a.ForwardFrom = int(l.owner)
			d.Forwards++
			l.sharers |= bit
		}
	case Shared:
		l.sharers |= bit
	}
	return a
}

// Store records core's write of a line and returns the required
// actions (invalidating every other sharer, forwarding from a dirty
// remote owner).
func (d *Directory) Store(addr uint64, core int) Action {
	a := Action{ForwardFrom: -1}
	l := d.get(addr)
	bit := uint16(1) << uint(core)
	others := l.sharers &^ bit
	if others != 0 {
		a.Invalidate = others
		d.Invalidations += uint64(popcount(others))
	}
	if (l.state == Modified || l.state == Owned) && int(l.owner) != core {
		a.ForwardFrom = int(l.owner)
		d.Forwards++
	}
	l.state = Modified
	l.owner = int8(core)
	l.sharers = bit
	return a
}

// Evict records that core dropped its L1 copy. If the evicting core
// owned dirty data the eviction writes back to the L2.
func (d *Directory) Evict(addr uint64, core int) Action {
	a := Action{ForwardFrom: -1}
	l, ok := d.lines[addr]
	if !ok {
		return a
	}
	bit := uint16(1) << uint(core)
	l.sharers &^= bit
	if int(l.owner) == core {
		if l.state == Modified || l.state == Owned {
			a.WriteBack = true
			d.WriteBacks++
		}
		l.owner = -1
		// Surviving sharers keep clean copies.
		if l.sharers != 0 {
			l.state = Shared
		}
	}
	if l.sharers == 0 {
		delete(d.lines, addr)
	}
	return a
}

func popcount(x uint16) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
