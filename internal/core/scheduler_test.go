package core

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// fillWrites floods one channel's write queue with count single-word
// writes to distinct rows.
func fillWrites(d *driver, count int, stride uint64) {
	for i := 0; i < count; i++ {
		d.submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(uint64(i) * stride), Mask: 0x01})
	}
}

func TestDrainHysteresis(t *testing.T) {
	eng, m := newTestMemory(t, config.Baseline)
	d := &driver{eng: eng, m: m}
	// 40 writes > WQ cap (32): the queue fills, a drain triggers, and
	// eventually everything completes exactly once.
	fillWrites(d, 40, 512)
	eng.Run()
	if d.completed != 40 {
		t.Fatalf("%d/40 completed", d.completed)
	}
	met := m.Metrics()
	if met.DrainEntries.Value() == 0 {
		t.Fatal("no drain recorded despite a full write queue")
	}
	if met.WriteQStalls.Value() == 0 {
		t.Fatal("40 submissions into a 32-entry queue must stall at least once")
	}
}

func TestStatusPollsChargedOnOverlap(t *testing.T) {
	eng, m := newTestMemory(t, config.RWoWRDE)
	d := &driver{eng: eng, m: m}
	fillWrites(d, 60, 512)
	eng.Run()
	if m.Metrics().WoWOverlapped.Value() == 0 {
		t.Skip("no overlap in this pattern")
	}
	if m.Metrics().StatusPolls.Value() == 0 {
		t.Fatal("overlapped scheduling must poll the DIMM status register")
	}
}

func TestSilentWriteFastPath(t *testing.T) {
	eng, m := newTestMemory(t, config.RWoWRDE)
	var lat []sim.Time
	done := func(r *mem.Request) { lat = append(lat, r.Latency()) }
	// Mask 0 write-back: fully silent (Figure 2's 0-word bucket).
	m.Submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(9), Mask: 0, OnDone: done})
	eng.Run()
	// A normal single-word write for comparison.
	m.Submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(10), Mask: 1, OnDone: done})
	eng.Run()
	if len(lat) != 2 {
		t.Fatalf("%d completions", len(lat))
	}
	if lat[0] >= lat[1] {
		t.Fatalf("silent write (%v) should be faster than a programming write (%v)", lat[0], lat[1])
	}
	met := m.Metrics()
	if met.SilentWrites.Value() != 1 {
		t.Fatalf("silent writes counted: %d", met.SilentWrites.Value())
	}
	if met.DirtyWords.Count(0) != 1 || met.DirtyWords.Count(1) != 1 {
		t.Fatalf("dirty-word histogram wrong: %v", met.DirtyWords.Buckets())
	}
}

func TestRowBufferHitSpeedsReads(t *testing.T) {
	eng, m := newTestMemory(t, config.Baseline)
	var lat []sim.Time
	done := func(r *mem.Request) { lat = append(lat, r.Latency()) }
	// Two reads to adjacent channel-local lines (same row): the second
	// should hit the open row and skip the array read.
	m.Submit(&mem.Request{Kind: mem.Read, Addr: lineAddr(100), OnDone: done})
	eng.Run()
	m.Submit(&mem.Request{Kind: mem.Read, Addr: lineAddr(101), OnDone: done})
	eng.Run()
	if len(lat) != 2 || lat[1] >= lat[0] {
		t.Fatalf("row hit not faster: %v", lat)
	}
	// The saved time should be about the array read (60 ns).
	saved := (lat[0] - lat[1]).Nanoseconds()
	if saved < 40 || saved > 80 {
		t.Fatalf("row hit saved %.1fns, expected ~60ns", saved)
	}
}

func TestReadQueueBackpressure(t *testing.T) {
	eng, m := newTestMemory(t, config.Baseline)
	d := &driver{eng: eng, m: m}
	// More reads at one instant than the 8-entry read queue holds;
	// all must eventually complete through OnSpace retries.
	for i := 0; i < 30; i++ {
		d.submit(&mem.Request{Kind: mem.Read, Addr: lineAddr(uint64(i) * 512)})
	}
	eng.Run()
	if d.completed != 30 {
		t.Fatalf("%d/30 completed", d.completed)
	}
	if m.Metrics().ReadQStalls.Value() == 0 {
		t.Fatal("expected read-queue stalls")
	}
}

func TestECCChipUpdatedOnEveryWrite(t *testing.T) {
	eng, m := newTestMemory(t, config.RWoWNR) // fixed ECC chip (no rotation)
	d := &driver{eng: eng, m: m}
	fillWrites(d, 50, 512)
	eng.Run()
	ctrl := m.Ctrls[0]
	_, perChip := ctrl.Rank().TotalWordWrites()
	// Chip 8 (ECC) must have been programmed about once per
	// non-silent write.
	if perChip[8] < 40 {
		t.Fatalf("ECC chip programmed only %d times for ~50 writes", perChip[8])
	}
	// PCC (chip 9) likewise under RoW's deferred parity update.
	if perChip[9] < 40 {
		t.Fatalf("PCC chip programmed only %d times", perChip[9])
	}
}

func TestRotationSpreadsCodeUpdates(t *testing.T) {
	eng, m := newTestMemory(t, config.RWoWRDE)
	d := &driver{eng: eng, m: m}
	fillWrites(d, 300, 512)
	eng.Run()
	_, perChip := m.Ctrls[0].Rank().TotalWordWrites()
	min, max := perChip[0], perChip[0]
	for _, n := range perChip {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 || float64(max) > 3*float64(min) {
		t.Fatalf("rotation should spread programming: per-chip %v", perChip)
	}
}

func TestWriteLatencyRESETFaster(t *testing.T) {
	// A write whose only transitions are 1->0 completes in tRESET
	// (50 ns) rather than tSET (120 ns).
	eng, m := newTestMemory(t, config.Baseline)
	var ones, zeros [64]byte
	for i := range ones {
		ones[i] = 0xff
	}
	var lat []sim.Time
	done := func(r *mem.Request) { lat = append(lat, r.Latency()) }
	m.Submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(7), Mask: 0xff, Data: &ones, OnDone: done})
	eng.Run()
	m.Submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(7), Mask: 0xff, Data: &zeros, OnDone: done})
	eng.Run()
	if len(lat) != 2 {
		t.Fatal("incomplete")
	}
	// First write: all SETs (row miss + 120). Second: all RESETs on
	// data chips... but the ECC word goes 0x00->0xff per word? The
	// SECDED code of 0xff.. and 0x00.. words are both zero-parity-ish;
	// rely on observable ordering only.
	if lat[1] >= lat[0] {
		t.Fatalf("RESET-only write (%v) should beat SET write (%v)", lat[1], lat[0])
	}
}
