// Package core implements the paper's contribution: the PCMap memory
// controller (Section IV). One Controller drives one channel's rank of
// ten x8 PCM chips through rank subsetting, serving requests with the
// baseline read-priority/write-drain policy and — depending on the
// configured variant — overlapping reads with ongoing writes via PCC
// parity reconstruction (RoW), consolidating writes with disjoint chip
// sets (WoW), and rotating data words and ECC/PCC words across chips.
package core

import (
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/dimm"
	"pcmap/internal/ecc"
	"pcmap/internal/mem"
	"pcmap/internal/obs"
	"pcmap/internal/pcm"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
	"pcmap/internal/wear"
)

// Controller schedules one memory channel.
type Controller struct {
	eng     *sim.Engine
	cfg     config.Memory
	variant config.Variant
	channel int

	// feat is the variant's capability set, resolved once from the
	// registry at construction; scheduling predicates read it instead of
	// re-deriving capabilities from the variant identity.
	feat config.Features
	// parts is the partitions-per-bank count in force (1 for every
	// variant without PartitionRoW), and dcaRounds the SET division
	// count of the content-aware write-latency model.
	parts     int
	dcaRounds int

	rank *dimm.Rank
	amap *mem.AddrMap

	rdq *mem.Queue
	wrq *mem.Queue

	dataBus mem.Bus
	cmdBus  mem.Bus

	draining   bool
	powerInUse int
	active     []*activeWrite // writes currently in service
	paused     *pausedWrite   // baseline write-pausing comparator state

	rng     *sim.RNG
	Metrics *mem.Metrics

	// sg, when non-nil, applies Start-Gap wear leveling: logical
	// channel-local line indices remap to slowly rotating physical
	// slots, and every Psi-th write pays a line-copy (see
	// internal/wear).
	sg *wear.StartGap

	// remap redirects worn-out physical lines to spare-pool slots
	// (allocated by the program-and-verify path when retries exhaust).
	// Nil until the first remap, so healthy runs pay nothing.
	remap map[uint64]uint64
	// spareNext is the next unallocated slot of the spare-line pool.
	spareNext int

	kicked       bool
	runTimer     *sim.Timer // pre-bound run: the issue loop re-arms allocation-free
	kickTimer    *sim.Timer // pre-bound kick, for chip-release wakeups
	readWaiters  []func()
	writeWaiters []func()

	// Scheduling-pass scratch state, pre-bound once so the hot issue
	// loop allocates nothing: plans is cleared (not reallocated) per
	// pass, and the two queue-scan predicates close over the controller
	// alone.
	plans         map[*mem.Request]readPlan
	serviceableFn func(*mem.Request) bool
	rowHitFn      func(*mem.Request) bool

	// Free lists recycling the per-request bookkeeping objects: active
	// writes (with their inline intended-content buffer) and the event
	// records that carry read/write/verify completions through the
	// engine. Each record pre-binds its fire closure once, so a request
	// costs no closure allocations in steady state.
	awFree       *activeWrite
	readEvFree   *readEv
	verifyEvFree *verifyEv
	writeEvFree  *writeEv

	// PDES sharding state (see shard.go). rt is nil in single-threaded
	// runs; postPending and hazardWrites feed PostHorizon and are only
	// touched from the shard's owning context (worker goroutine or
	// fenced coordinator), never concurrently.
	rt          ShardRuntime
	shard       int
	postPending []sim.Time
	// hazardWrites counts queued writes that could complete silently at
	// their issue instant (empty mask or caller-supplied data), which
	// collapses the shard's lookahead to zero while one is pending.
	hazardWrites int
	minSvc       sim.Time // min issue-to-completion latency (lookahead floor)

	// AssertContent makes the controller panic if a PCC reconstruction
	// ever disagrees with stored content absent injected faults;
	// enabled by tests.
	AssertContent bool

	// Timeline instrumentation (nil when tracing is off): request
	// service spans, queue-depth counter samples, and write-drain
	// windows for this channel.
	trace            *obs.Tracer
	trkService       obs.TrackID
	trkRdq, trkWrq   obs.TrackID
	nmRead, nmWrite  obs.NameID
	nmDepth, nmDrain obs.NameID
	drainStart       sim.Time
}

// activeWrite tracks a write in service for scheduling decisions and
// the Figure 1 delayed-read accounting. The verify fields carry the
// program-and-verify state when cfg.VerifyWrites is on; they stay zero
// otherwise.
type activeWrite struct {
	req      *mem.Request
	bank     int
	essCount int
	end      sim.Time

	coord    mem.Coord            // decoded target (post wear-level and remap)
	intended *[ecc.LineBytes]byte // content the write meant to store
	mask     uint8                // the write's word mask
	attempts int                  // re-program attempts so far
	progEnd  sim.Time             // when programming finished (verify overhead baseline)

	// intendedBuf backs intended when the producer supplied no real
	// bytes and the controller synthesized content; inlining it here
	// keeps the synthesis allocation-free across the pool.
	intendedBuf [ecc.LineBytes]byte
	next        *activeWrite // free-list link
}

// newActive pops a recycled activeWrite (or allocates the pool's next
// one) with every scheduling-visible field reset. intendedBuf is left
// dirty: applyWrite overwrites it before anything reads it.
func (c *Controller) newActive() *activeWrite {
	aw := c.awFree
	if aw == nil {
		return &activeWrite{}
	}
	c.awFree = aw.next
	aw.next = nil
	aw.req = nil
	aw.bank = 0
	aw.essCount = 0
	aw.end = 0
	aw.coord = mem.Coord{}
	aw.intended = nil
	aw.mask = 0
	aw.attempts = 0
	aw.progEnd = 0
	return aw
}

// recycleActive returns a completed write's record to the pool.
// completeWrite is the unique terminal of every write path (plain,
// verify-retry, remap, pausing), so the record is dead once it runs.
func (c *Controller) recycleActive(aw *activeWrite) {
	aw.req = nil
	aw.intended = nil
	aw.next = c.awFree
	c.awFree = aw
}

// readEv carries one read's completion through the engine. The fire
// closure is bound once per record; recycling re-arms it for the next
// read at zero allocations.
type readEv struct {
	r        *mem.Request
	verifyAt sim.Time
	fire     func()
	next     *readEv
}

func (c *Controller) newReadEv(r *mem.Request, verifyAt sim.Time) *readEv {
	ev := c.readEvFree
	if ev == nil {
		ev = &readEv{}
		ev.fire = func() {
			r, verifyAt := ev.r, ev.verifyAt
			ev.r = nil
			ev.next = c.readEvFree
			c.readEvFree = ev
			c.completeRead(r, verifyAt)
		}
	} else {
		c.readEvFree = ev.next
	}
	ev.r, ev.verifyAt = r, verifyAt
	return ev
}

// verifyEv carries a reconstructed read's deferred SECDED verification.
type verifyEv struct {
	r      *mem.Request
	faulty bool
	fire   func()
	next   *verifyEv
}

func (c *Controller) newVerifyEv(r *mem.Request, faulty bool) *verifyEv {
	ev := c.verifyEvFree
	if ev == nil {
		ev = &verifyEv{}
		ev.fire = func() {
			r, faulty := ev.r, ev.faulty
			ev.r = nil
			ev.next = c.verifyEvFree
			c.verifyEvFree = ev
			c.dropPost()
			c.Metrics.RoWVerifies.Inc()
			if faulty {
				c.Metrics.RoWFaulty.Inc()
			}
			c.postVerify(r, faulty)
		}
	} else {
		c.verifyEvFree = ev.next
	}
	ev.r, ev.faulty = r, faulty
	return ev
}

// writeEv carries one write's end-of-programming event: releasing its
// power slots, then either completing a silent write directly or
// entering the (maybe-)verify path.
type writeEv struct {
	r      *mem.Request
	aw     *activeWrite
	power  int
	silent bool
	fire   func()
	next   *writeEv
}

func (c *Controller) newWriteEv(r *mem.Request, aw *activeWrite, power int, silent bool) *writeEv {
	ev := c.writeEvFree
	if ev == nil {
		ev = &writeEv{}
		ev.fire = func() {
			r, aw, power, silent := ev.r, ev.aw, ev.power, ev.silent
			ev.r, ev.aw = nil, nil
			ev.next = c.writeEvFree
			c.writeEvFree = ev
			c.dropPost()
			c.powerInUse -= power
			if silent {
				c.completeWrite(r, aw)
			} else {
				c.maybeVerifyWrite(r, aw)
			}
		}
	} else {
		c.writeEvFree = ev.next
	}
	ev.r, ev.aw, ev.power, ev.silent = r, aw, power, silent
	return ev
}

// NewController builds a controller for one channel.
func NewController(eng *sim.Engine, cfgAll *config.Config, channel int, amap *mem.AddrMap, rng *sim.RNG) *Controller {
	m := cfgAll.Memory
	v := cfgAll.Variant
	feat := v.Features()
	layout := dimm.Layout{RotateData: feat.RotateData, RotateECC: feat.RotateECC}
	c := &Controller{
		eng:       eng,
		cfg:       m,
		variant:   v,
		channel:   channel,
		feat:      feat,
		parts:     m.EffectivePartitions(feat),
		dcaRounds: m.EffectiveDCARounds(),
		rank:      dimm.NewRankParts(m.BanksPerChip, m.EffectivePartitions(feat), layout),
		amap:      amap,
		rdq:       mem.NewQueue(m.ReadQueueCap),
		wrq:       mem.NewQueue(m.WriteQueueCap),
		rng:       rng,
		Metrics:   mem.NewMetrics(),
	}
	c.runTimer = eng.NewTimer(c.run)
	c.kickTimer = eng.NewTimer(c.kick)
	c.plans = make(map[*mem.Request]readPlan)
	c.serviceableFn = func(r *mem.Request) bool {
		if r.Started || r.Kind != mem.Read {
			return false
		}
		p, ok := c.planRead(r)
		if ok {
			c.plans[r] = p
		} else if p.blockedByWr {
			r.DelayedByWrite = true
		}
		return ok
	}
	c.rowHitFn = func(r *mem.Request) bool { return c.plans[r].rowHit }
	c.dataBus.Turnaround = m.Timing.TWTR.Time()
	// Shard lookahead floor: no issue path completes (and therefore
	// posts to the front end) sooner than the smaller of the read and
	// write bus-lead latencies after its scheduling pass.
	c.minSvc = m.Timing.TCL.Time()
	if wl := m.Timing.TWL.Time(); wl < c.minSvc {
		c.minSvc = wl
	}
	if fc := (pcm.FaultConfig{EnduranceBudget: m.EnduranceBudget, DriftProb: m.DriftProb}); fc.Enabled() {
		// The fault model owns a private randomness stream derived from
		// the seed and channel only, so enabling injection never
		// perturbs the controller's own RNG (and disabling it keeps
		// fault-free runs bit-identical).
		c.rank.Store.Faults = pcm.NewFaultModel(fc,
			sim.NewRNG(cfgAll.Seed^0xfa017c3d9e3b55aa^(uint64(channel)+1)*0x9e3779b97f4a7c15))
	}
	if m.WearLevelPsi > 0 {
		sg, err := wear.NewStartGap(amap.LinesPerChannel(), m.WearLevelPsi)
		if err != nil {
			panic(err) // psi validated by config
		}
		c.sg = sg
	}
	return c
}

// Instrument wires the channel into the observability layer: the
// metrics block's counters register into reg (pass the system
// registry's "mem.chanN" view), and a non-nil tracer gets this
// channel's request-service spans, queue-depth samples, drain windows,
// bus transfers, and the rank's per-bank occupancy timelines. Call once
// before the first request.
func (c *Controller) Instrument(tr *obs.Tracer, reg *stats.Registry) {
	if reg != nil {
		c.Metrics.RegisterInto(reg)
	}
	if tr == nil {
		return
	}
	c.trace = tr
	process := fmt.Sprintf("mem chan%d", c.channel)
	c.trkService = tr.Track(process, "service")
	c.trkRdq = tr.Track(process, "rdq")
	c.trkWrq = tr.Track(process, "wrq")
	c.nmRead = tr.Name("read")
	c.nmWrite = tr.Name("write")
	c.nmDepth = tr.Name("depth")
	c.nmDrain = tr.Name("drain")
	c.dataBus.Instrument(tr, process, "databus")
	c.cmdBus.Instrument(tr, process, "cmdbus")
	c.rank.Instrument(tr, c.channel)
}

// decode resolves an address to (possibly wear-level-remapped)
// physical coordinates, then follows any spare-pool remaps installed
// by the program-and-verify path. All controller paths must use this
// instead of the raw address map so remapping stays consistent.
func (c *Controller) decode(addr uint64) mem.Coord {
	coord := c.amap.Decode(addr)
	if c.sg != nil {
		if phys := c.sg.Map(coord.LineIdx); phys != coord.LineIdx {
			coord = c.amap.CoordFromLineIdx(c.channel, phys)
		}
	}
	if c.remap != nil {
		phys, moved := coord.LineIdx, false
		for {
			next, ok := c.remap[phys]
			if !ok {
				break
			}
			phys, moved = next, true
		}
		if moved {
			// Spare slots live past the channel's line range; the
			// coordinate fold (row modulo) places them physically while
			// the unique index keys the functional store.
			coord = c.amap.CoordFromLineIdx(c.channel, phys)
		}
	}
	return coord
}

// wearTick advances the Start-Gap state on each serviced write,
// performing the occasional gap-move line copy: real content moves in
// the functional store, and the destination bank is charged a
// line-write's worth of chip time.
func (c *Controller) wearTick() {
	if c.sg == nil {
		return
	}
	from, to, moved := c.sg.OnWrite()
	if !moved {
		return
	}
	c.Metrics.WearMoves.Inc()
	var buf [64]byte
	c.rank.Store.ReadLine(from, &buf)
	c.rank.Store.WriteWords(to, 0xff, &buf)
	coord := c.amap.CoordFromLineIdx(c.channel, to%c.amap.LinesPerChannel())
	now := c.eng.Now()
	var end sim.Time
	for i := 0; i < dimm.Slots; i++ {
		_, e := c.rank.Chips[i].ReserveProgram(coord.Bank, now,
			c.cfg.Timing.WriteArrayRead.Time(), c.cfg.Timing.CellSET.Time())
		if e > end {
			end = e
		}
	}
	// The copy holds chips without a request completion behind it, so
	// wake the scheduler when the chips free up.
	c.kickTimer.At(end)
}

// Rank exposes the controller's rank (for tests and wear reporting).
func (c *Controller) Rank() *dimm.Rank { return c.rank }

// Variant returns the scheduling variant in force.
func (c *Controller) Variant() config.Variant { return c.variant }

// QueueLens returns current read and write queue occupancy.
func (c *Controller) QueueLens() (reads, writes int) { return c.rdq.Len(), c.wrq.Len() }

// Enqueue presents a request to the controller. It reports false when
// the relevant queue is full; the caller should register interest via
// OnSpace and retry.
func (c *Controller) Enqueue(r *mem.Request) bool {
	r.Arrive = c.eng.Now()
	var ok bool
	if r.Kind == mem.Read {
		ok = c.rdq.Push(r)
		if !ok {
			c.Metrics.ReadQStalls.Inc()
		}
	} else {
		ok = c.wrq.Push(r)
		if !ok {
			c.Metrics.WriteQStalls.Inc()
		}
	}
	if ok {
		if r.Kind == mem.Write && (r.Mask == 0 || r.Data != nil) {
			c.hazardWrites++
		}
		c.Metrics.NoteArrival(r.Arrive)
		if c.trace != nil {
			if r.Kind == mem.Read {
				c.trace.Count(c.trkRdq, c.nmDepth, r.Arrive, int64(c.rdq.Len()))
			} else {
				c.trace.Count(c.trkWrq, c.nmDepth, r.Arrive, int64(c.wrq.Len()))
			}
		}
		c.kick()
	}
	return ok
}

// OnSpace registers a one-shot callback invoked when a queue slot of
// the given kind frees up.
func (c *Controller) OnSpace(kind mem.Kind, fn func()) {
	if kind == mem.Read {
		c.readWaiters = append(c.readWaiters, fn)
	} else {
		c.writeWaiters = append(c.writeWaiters, fn)
	}
}

func (c *Controller) notifySpace(kind mem.Kind) {
	var ws []func()
	if kind == mem.Read {
		ws, c.readWaiters = c.readWaiters, nil
	} else {
		ws, c.writeWaiters = c.writeWaiters, nil
	}
	for _, fn := range ws {
		fn()
	}
}

// kick schedules a scheduling pass at the current time, coalescing
// multiple triggers within one event timestamp.
func (c *Controller) kick() {
	if c.kicked {
		return
	}
	c.kicked = true
	c.runTimer.Schedule(0)
}

func (c *Controller) run() {
	c.kicked = false
	for {
		c.updateDrainMode()
		progress := false
		// Writes issue only inside drain windows (Section II-B: the bus
		// turns around and writes drain in bursts); the lone exception
		// is an idle system with nothing to read, where holding writes
		// back serves nobody.
		idleWrites := c.rdq.Len() == 0 && len(c.active) == 0 && c.wrq.Len() > 0
		if c.draining || idleWrites {
			if c.tryIssueWrite() {
				progress = true
			}
		}
		if c.canIssueReadsNow() {
			if c.tryIssueRead() {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	c.maybeResumePaused()
	c.markDelayedReads()
}

// canIssueReadsNow encodes the bus-direction policy: outside drain mode
// reads always have priority; during a drain only RoW-capable variants
// keep serving reads (Section IV-D2).
func (c *Controller) canIssueReadsNow() bool {
	if c.rdq.Len() == 0 {
		return false
	}
	if !c.draining {
		return true
	}
	if c.paused != nil && !c.paused.inFlight {
		// Write-pausing comparator: the parked write opened a window
		// for reads even mid-drain.
		return true
	}
	return c.feat.RoW
}

func (c *Controller) updateDrainMode() {
	occ := c.wrq.Occupancy()
	if !c.draining && occ >= c.cfg.DrainHighPct {
		c.draining = true
		c.Metrics.DrainEntries.Inc()
		c.drainStart = c.eng.Now()
	} else if c.draining && occ <= c.cfg.DrainLowPct {
		c.draining = false
		c.trace.Span(c.trkWrq, c.nmDrain, c.drainStart, c.eng.Now()-c.drainStart)
	}
}

// markDelayedReads flags queued reads blocked by the write path (the
// Figure 1 numerator): reads held back by a drain window. Reads blocked
// by busy chips are flagged inside planRead.
func (c *Controller) markDelayedReads() {
	if !c.draining || c.canIssueReadsNow() || c.wrq.Len() == 0 {
		return
	}
	c.rdq.Each(func(r *mem.Request) bool {
		if !r.Started {
			r.DelayedByWrite = true
		}
		return true
	})
}

// activeWrites counts in-service writes that program at least one word
// (silent write-backs do not occupy the WoW scheduler's tracking).
func (c *Controller) activeWrites() int {
	n := 0
	for _, aw := range c.active {
		if aw.essCount > 0 {
			n++
		}
	}
	return n
}

func (c *Controller) removeActive(w *activeWrite) {
	for i, x := range c.active {
		if x == w {
			c.active = append(c.active[:i], c.active[i+1:]...)
			return
		}
	}
}

// chipFree reports whether chip `chip`, bank `bank` is idle now.
func (c *Controller) chipFree(chip, bank int) bool {
	return c.rank.Chips[chip].FreeAt(bank, c.eng.Now())
}

// reserveChip books a chip-bank for dur, no earlier than earliest.
func (c *Controller) reserveChip(chip, bank int, earliest, dur sim.Time) (start, end sim.Time) {
	return c.rank.Chips[chip].Reserve(bank, earliest, dur)
}

// partOf maps a decoded coordinate onto its bank partition: PALP splits
// a bank by row index, so consecutive rows land in different partitions
// (parts is a validated power of two). Monolithic banks always use
// partition 0.
func (c *Controller) partOf(coord mem.Coord) int {
	if c.parts <= 1 {
		return 0
	}
	return int(uint64(coord.Row) & uint64(c.parts-1))
}

// chipFreePart is chipFree at partition granularity: with parts <= 1 it
// is exactly the whole-bank check.
func (c *Controller) chipFreePart(chip, bank, part int) bool {
	return c.rank.Chips[chip].FreeAtPart(bank, part, c.eng.Now())
}

// reserveChipPart books one bank partition of a chip for dur.
func (c *Controller) reserveChipPart(chip, bank, part int, earliest, dur sim.Time) (start, end sim.Time) {
	return c.rank.Chips[chip].ReservePart(bank, part, earliest, dur)
}

// progTime converts a word's transition analysis into its programming
// time: the paper's two-level model (any SET bit costs CellSET, else
// any RESET bit costs CellRESET) or, for content-aware variants, the
// DCA model driven by the actual SET/RESET bit counts.
func (c *Controller) progTime(f pcm.FlipKind) sim.Time {
	if c.feat.ContentAware {
		return c.cfg.Timing.DCAWriteLatency(f.Sets, f.Resets, c.dcaRounds)
	}
	return c.cfg.Timing.WriteLatency(f.Sets > 0, f.Resets > 0)
}

// rowHitAll reports whether every chip in mask has row open in bank.
func (c *Controller) rowHitAll(mask uint16, bank int, row int64) bool {
	for i := 0; i < dimm.Slots; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !c.rank.Chips[i].RowHit(bank, row) {
			return false
		}
	}
	return true
}

func (c *Controller) openRowAll(mask uint16, bank int, row int64) {
	for i := 0; i < dimm.Slots; i++ {
		if mask&(1<<uint(i)) != 0 {
			c.rank.Chips[i].OpenRowIn(bank, row)
		}
	}
}

// allChipsMask is the chip mask covering the entire rank.
const allChipsMask uint16 = 1<<dimm.Slots - 1

// baselineChipsMask covers the nine chips of a conventional ECC DIMM
// (the baseline never touches the PCC chip).
const baselineChipsMask uint16 = 1<<9 - 1

// lineChips returns the chips holding the line's slots: data words,
// ECC, and (for PCMap variants) PCC.
func (c *Controller) lineChips(rotIdx uint64) uint16 {
	l := c.rank.Layout
	m := l.DataChips(rotIdx)
	m |= 1 << uint(l.ECCChip(rotIdx))
	if c.feat.FineGrained {
		m |= 1 << uint(l.PCCChip(rotIdx))
	}
	return m
}

// synthesizeWriteData builds new line content for a masked write when
// the producer did not supply real bytes: every essential word receives
// a fresh value guaranteed to differ from the stored one, so the
// differential-write machinery sees genuine SET/RESET transitions. The
// content lands in buf (the active write's inline buffer), keeping the
// synthesis allocation-free.
func (c *Controller) synthesizeWriteData(lineIdx uint64, mask uint8, buf *[ecc.LineBytes]byte) {
	c.rank.Store.ReadLine(lineIdx, buf)
	for w := 0; w < ecc.WordsPerLine; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		old := ecc.Word(buf, w)
		v := c.rng.Uint64()
		if v == old {
			v ^= 1
		}
		ecc.SetWord(buf, w, v)
	}
}

// statusPollCost charges the DIMM-register Status command on the
// command bus and returns the time scheduling may proceed.
func (c *Controller) statusPollCost(earliest sim.Time) sim.Time {
	c.Metrics.StatusPolls.Inc()
	_, end := c.cmdBus.Acquire(earliest, c.cfg.StatusPollCycles.Time(), false)
	return end
}

// commandCost charges n command slots on the command/address bus.
func (c *Controller) commandCost(earliest sim.Time, n int) sim.Time {
	_, end := c.cmdBus.Acquire(earliest, sim.MemCycle.Times(n), false)
	return end
}

func (c *Controller) String() string {
	return fmt.Sprintf("controller(ch=%d,%s)", c.channel, c.variant)
}
