package core

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

func pausingMemory(t *testing.T, pausing bool) (*sim.Engine, *Memory, *driver) {
	t.Helper()
	cfg := config.Default() // baseline variant
	cfg.Memory.Channels = 1
	cfg.Memory.CapacityBytes = 1 << 30
	cfg.Memory.WritePausing = pausing
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m, &driver{eng: eng, m: m}
}

func pausingTraffic(eng *sim.Engine, d *driver, rng *sim.RNG) {
	n := 0
	var gen func()
	gen = func() {
		if n >= 900 {
			return
		}
		n++
		addr := lineAddr(uint64(rng.Intn(2048)))
		if n%4 == 0 {
			d.submit(&mem.Request{Kind: mem.Read, Addr: addr})
		} else {
			d.submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: 0x0f})
		}
		eng.Schedule(sim.NS(16), gen)
	}
	eng.Schedule(0, gen)
	eng.Run()
}

func TestWritePausingCutsReadLatency(t *testing.T) {
	engA, mA, dA := pausingMemory(t, false)
	pausingTraffic(engA, dA, sim.NewRNG(4))
	plain := mA.Metrics().ReadLatency.MeanNS()
	if dA.completed != dA.issued {
		t.Fatalf("plain: %d/%d completed", dA.completed, dA.issued)
	}

	engB, mB, dB := pausingMemory(t, true)
	pausingTraffic(engB, dB, sim.NewRNG(4))
	paused := mB.Metrics().ReadLatency.MeanNS()
	if dB.completed != dB.issued {
		t.Fatalf("paused: %d/%d completed", dB.completed, dB.issued)
	}
	if mB.Metrics().WritePauses.Value() == 0 {
		t.Fatal("no pauses recorded under read pressure")
	}
	if paused >= plain {
		t.Fatalf("write pausing should cut read latency: %.1fns vs %.1fns", paused, plain)
	}
}

func TestWritePausingPreservesWriteCompletion(t *testing.T) {
	eng, m, d := pausingMemory(t, true)
	var data [64]byte
	for i := range data {
		data[i] = 0x5a
	}
	d.submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(3), Mask: 0xff, Data: &data})
	// Interleave reads so the write actually pauses.
	for i := 0; i < 4; i++ {
		d.submit(&mem.Request{Kind: mem.Read, Addr: lineAddr(uint64(100 + i))})
	}
	eng.Run()
	var rd *mem.Request
	m.Submit(&mem.Request{Kind: mem.Read, Addr: lineAddr(3), OnDone: func(r *mem.Request) { rd = r }})
	eng.Run()
	if rd == nil || rd.ReadData != data {
		t.Fatal("paused write lost content")
	}
}

func TestPausingOffByDefault(t *testing.T) {
	eng, m, d := pausingMemory(t, false)
	pausingTraffic(eng, d, sim.NewRNG(6))
	if m.Metrics().WritePauses.Value() != 0 {
		t.Fatal("pauses recorded with the feature disabled")
	}
}

func TestPausingIgnoredByPCMapVariants(t *testing.T) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	cfg.Memory.Channels = 1
	cfg.Memory.WritePausing = true
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := &driver{eng: eng, m: m}
	pausingTraffic(eng, d, sim.NewRNG(8))
	if d.completed != d.issued {
		t.Fatalf("%d/%d completed", d.completed, d.issued)
	}
	if m.Metrics().WritePauses.Value() != 0 {
		t.Fatal("fine-grained variants must not use the pausing path")
	}
}
