package core

import (
	"pcmap/internal/dimm"
	"pcmap/internal/ecc"
	"pcmap/internal/mem"
	"pcmap/internal/pcm"
	"pcmap/internal/sim"
)

// maybeVerifyWrite is the completion hook of every non-silent write when
// program-and-verify is enabled: instead of finishing immediately, the
// controller reads the just-programmed words back, compares them against
// the intended content, and re-programs (bounded by WriteRetryLimit) or
// remaps the line to the spare pool when cells refuse to hold their
// value. With VerifyWrites off the write completes directly, so the
// baseline timing is untouched.
func (c *Controller) maybeVerifyWrite(r *mem.Request, aw *activeWrite) {
	if !c.cfg.VerifyWrites || aw.intended == nil || aw.mask == 0 || aw.essCount == 0 {
		c.completeWrite(r, aw)
		return
	}
	aw.progEnd = c.eng.Now()
	c.Metrics.WriteVerifies.Inc()
	c.scheduleVerifyRead(r, aw)
}

// scheduleVerifyRead charges one read-back of the write's masked words
// (plus the ECC word) on the chips that hold them and schedules the
// comparison at its completion.
func (c *Controller) scheduleVerifyRead(r *mem.Request, aw *activeWrite) {
	c.Metrics.VerifyReads.Inc()
	now := c.eng.Now()
	timing := c.cfg.Timing
	// The read-back senses the array and streams through the chip I/O;
	// rows were just opened by the write, but the array sense is charged
	// anyway (program pulses disturb the row buffer).
	dur := timing.ArrayRead.Time() + (timing.TCL + timing.TBurst).Time()
	l := c.rank.Layout
	end := now
	for w := 0; w < ecc.WordsPerLine; w++ {
		if aw.mask&(1<<uint(w)) == 0 {
			continue
		}
		chip := l.DataChip(aw.coord.RotIdx, w)
		_, e := c.reserveChip(chip, aw.coord.Bank, now, dur)
		if e > end {
			end = e
		}
	}
	if _, e := c.reserveChip(l.ECCChip(aw.coord.RotIdx), aw.coord.Bank, now, dur); e > end {
		end = e
	}
	c.notePost(end)
	c.eng.At(end, func() {
		c.dropPost()
		c.checkVerify(r, aw)
	})
}

// checkVerify compares the read-back against the intended content and
// decides: done, retry, or remap.
func (c *Controller) checkVerify(r *mem.Request, aw *activeWrite) {
	// The read-back senses the array like any read, so it can itself
	// observe (and, for masked words, catch) a drift flip.
	c.rank.Store.InjectDrift(aw.coord.LineIdx)
	bad := c.verifyMismatch(aw)
	if bad == 0 {
		c.Metrics.VerifyLatency.Add(c.eng.Now() - aw.progEnd)
		c.completeWrite(r, aw)
		return
	}
	if aw.attempts >= c.cfg.WriteRetryLimit {
		c.remapLine(r, aw)
		return
	}
	aw.attempts++
	c.Metrics.WriteRetries.Inc()
	c.reprogram(r, aw, bad)
}

// verifyMismatch reads the stored words of the write's mask back and
// returns the mask of words whose cells (data or ECC check byte)
// disagree with the intent.
func (c *Controller) verifyMismatch(aw *activeWrite) uint8 {
	l := c.rank.Store.Peek(aw.coord.LineIdx)
	var bad uint8
	for w := 0; w < ecc.WordsPerLine; w++ {
		if aw.mask&(1<<uint(w)) == 0 {
			continue
		}
		want := ecc.Word(aw.intended, w)
		if ecc.Word(&l.Data, w) != want || l.ECC[w] != ecc.Encode64(want) {
			bad |= 1 << uint(w)
		}
	}
	return bad
}

// reprogram re-applies the intended content to the words that failed
// verification, charging the differential write on their chips, and
// schedules another verify read-back.
func (c *Controller) reprogram(r *mem.Request, aw *activeWrite, bad uint8) {
	res := c.rank.Store.WriteWords(aw.coord.LineIdx, bad, aw.intended)
	now := c.eng.Now()
	timing := c.cfg.Timing
	l := c.rank.Layout
	end := now
	reserve := func(chip int, f pcm.FlipKind) {
		ch := c.rank.Chips[chip]
		act := sim.Time(0)
		if !ch.RowHit(aw.coord.Bank, aw.coord.Row) {
			act = timing.WriteArrayRead.Time()
		}
		prog := timing.WriteLatency(f.Sets > 0, f.Resets > 0)
		_, e := ch.ReserveProgram(aw.coord.Bank, now, act, prog)
		ch.OpenRowIn(aw.coord.Bank, aw.coord.Row)
		if f.Any() {
			ch.CountWrite(f)
		}
		if e > end {
			end = e
		}
	}
	for w := 0; w < ecc.WordsPerLine; w++ {
		if bad&(1<<uint(w)) != 0 {
			reserve(l.DataChip(aw.coord.RotIdx, w), res.PerWord[w])
		}
	}
	if res.ECCFlips.Any() {
		reserve(l.ECCChip(aw.coord.RotIdx), res.ECCFlips)
	}
	if res.PCCFlips.Any() {
		reserve(l.PCCChip(aw.coord.RotIdx), res.PCCFlips)
	}
	c.notePost(end)
	c.eng.At(end, func() {
		c.dropPost()
		c.scheduleVerifyRead(r, aw)
	})
}

// remapLine retires a line whose cells failed every re-program attempt:
// the best-known content (stored words SECDED-corrected where possible,
// overlaid with the write's intended words) moves to a fresh spare-pool
// line and all future decodes of the worn line follow the redirect. When
// the pool is exhausted the write completes with the corruption left in
// place — the read path's decode will report it rather than hide it.
func (c *Controller) remapLine(r *mem.Request, aw *activeWrite) {
	if c.spareNext >= c.cfg.SpareLines {
		c.Metrics.RemapFailures.Inc()
		c.Metrics.VerifyLatency.Add(c.eng.Now() - aw.progEnd)
		c.completeWrite(r, aw)
		return
	}
	spare := c.amap.LinesPerChannel() + uint64(c.spareNext)
	c.spareNext++

	old := c.rank.Store.Peek(aw.coord.LineIdx)
	var buf [ecc.LineBytes]byte
	for w := 0; w < ecc.WordsPerLine; w++ {
		word := ecc.Word(&old.Data, w)
		if fixed, st := ecc.Check64(word, old.ECC[w]); st == ecc.CorrectedData {
			word = fixed
		}
		ecc.SetWord(&buf, w, word)
	}
	for w := 0; w < ecc.WordsPerLine; w++ {
		if aw.mask&(1<<uint(w)) != 0 {
			ecc.SetWord(&buf, w, ecc.Word(aw.intended, w))
		}
	}
	c.rank.Store.WriteWords(spare, 0xff, &buf)
	if c.remap == nil {
		c.remap = make(map[uint64]uint64)
	}
	c.remap[aw.coord.LineIdx] = spare
	c.Metrics.WriteRemaps.Inc()

	// The spare slot folds onto a physical row (see decode); charge a
	// full-line write there, mirroring the Start-Gap line copy.
	coord := c.amap.CoordFromLineIdx(c.channel, spare)
	now := c.eng.Now()
	end := now
	for i := 0; i < dimm.Slots; i++ {
		_, e := c.rank.Chips[i].ReserveProgram(coord.Bank, now,
			c.cfg.Timing.WriteArrayRead.Time(), c.cfg.Timing.CellSET.Time())
		if e > end {
			end = e
		}
	}
	c.notePost(end)
	c.eng.At(end, func() {
		c.dropPost()
		c.Metrics.VerifyLatency.Add(c.eng.Now() - aw.progEnd)
		c.completeWrite(r, aw)
	})
}
