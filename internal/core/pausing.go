package core

import (
	"math/bits"

	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// pausedWrite carries the state of a baseline write executing in
// interruptible segments (the write-pausing comparator of Qureshi et
// al., HPCA 2010 — Section VII of the paper). Between segments the
// chips are free and pending reads slip through; the write resumes
// once the read queue drains.
type pausedWrite struct {
	req       *mem.Request
	aw        *activeWrite
	coord     mem.Coord
	remaining sim.Time // programming time left
	segment   sim.Time // per-segment slice
	inFlight  bool     // a segment is currently reserved
}

// pausingEnabled reports whether this controller runs the comparator.
func (c *Controller) pausingEnabled() bool {
	return c.cfg.WritePausing && !c.feat.FineGrained && c.cfg.WritePauseSegments > 1
}

// issuePausingWrite starts a coarse write in segmented, pausable form.
// Content application and accounting mirror issueCoarseWrite; only the
// chip-time reservation differs.
func (c *Controller) issuePausingWrite(r *mem.Request) {
	now := c.eng.Now()
	r.Started = true
	r.Issue = now
	coord := c.decode(r.Addr)
	aw := c.newActive()
	essMask, res := c.applyWrite(r, coord.LineIdx, aw)
	essCount := bits.OnesCount8(essMask)
	c.Metrics.DirtyWords.Add(essCount)
	if essCount == 0 {
		c.Metrics.SilentWrites.Inc()
	}
	c.wearTick()

	t := c.commandCost(now, 2)
	wl := c.cfg.Timing.TWL.Time()
	burst := c.cfg.Timing.TBurst.Time()
	_, t0 := c.dataBus.Acquire(t, wl+burst, true)

	var prog sim.Time
	for w := 0; w < 8; w++ {
		if d := c.progTime(res.PerWord[w]); d > prog {
			prog = d
		}
	}
	if d := c.progTime(res.ECCFlips); d > prog {
		prog = d
	}
	for w := 0; w < 8; w++ {
		if res.PerWord[w].Any() {
			c.rank.Chips[w].CountWrite(res.PerWord[w])
		}
	}

	c.powerInUse = c.cfg.PowerSlots
	aw.req, aw.bank, aw.essCount = r, coord.Bank, essCount
	aw.coord, aw.mask = coord, r.Mask
	c.active = append(c.active, aw)

	pw := &pausedWrite{
		req:       r,
		aw:        aw,
		coord:     coord,
		remaining: prog,
		segment:   prog.DivCeil(c.cfg.WritePauseSegments),
	}
	c.paused = pw
	if prog > 0 {
		c.Metrics.IRLP.AddWriteWindow(t0, t0+prog) // best-case window; pauses extend it
	}
	c.resumeSegment(t0, true)
}

// resumeSegment reserves the next slice of the paused write. first
// charges the activation (internal read-before-write) once.
func (c *Controller) resumeSegment(earliest sim.Time, first bool) {
	pw := c.paused
	if pw == nil || pw.inFlight {
		return
	}
	act := sim.Time(0)
	if first && !c.rowHitAll(baselineChipsMask, pw.coord.Bank, pw.coord.Row) {
		act = c.cfg.Timing.WriteArrayRead.Time()
	}
	dur := pw.segment
	if dur > pw.remaining {
		dur = pw.remaining
	}
	if pw.remaining == 0 {
		dur = 0
	}
	var end sim.Time
	for i := 0; i < 9; i++ {
		_, e := c.rank.Chips[i].ReserveProgram(pw.coord.Bank, earliest, act, dur)
		c.rank.Chips[i].OpenRowIn(pw.coord.Bank, pw.coord.Row)
		if e > end {
			end = e
		}
	}
	for w := 0; w < 8; w++ {
		if pw.aw.essCount > 0 && pw.req.Mask&(1<<uint(w)) != 0 {
			c.Metrics.IRLP.AddChipService(end-dur, end)
		}
	}
	pw.remaining -= dur
	pw.inFlight = true
	pw.aw.end = end
	c.notePost(end)
	c.eng.At(end, func() {
		c.dropPost()
		c.segmentDone(pw)
	})
}

// segmentDone finishes a slice: either the write completes, or it
// parks in the paused state so queued reads can run.
func (c *Controller) segmentDone(pw *pausedWrite) {
	pw.inFlight = false
	if pw.remaining <= 0 {
		c.paused = nil
		c.maybeVerifyWrite(pw.req, pw.aw)
		return
	}
	c.Metrics.WritePauses.Inc()
	c.kick() // reads get their window; run() resumes us when they dry up
}

// maybeResumePaused continues the parked write once no read can use
// the gap.
func (c *Controller) maybeResumePaused() {
	if c.paused == nil || c.paused.inFlight {
		return
	}
	if c.rdq.Oldest(func(r *mem.Request) bool { return !r.Started }) != nil {
		// Reads still pending; stay paused (they issue via the normal
		// read path now that the chips are idle).
		if c.readableNow() {
			return
		}
	}
	c.resumeSegment(c.eng.Now(), false)
}

// readableNow reports whether at least one queued read could issue at
// this instant (used to decide whether staying paused helps anyone).
func (c *Controller) readableNow() bool {
	ok := false
	c.rdq.Each(func(r *mem.Request) bool {
		if r.Started {
			return true
		}
		if _, can := c.planRead(r); can {
			ok = true
			return false
		}
		return true
	})
	return ok
}
