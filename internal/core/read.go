package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"pcmap/internal/ecc"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// readPlan captures how a queued read could be served right now.
type readPlan struct {
	coord       mem.Coord
	part        int  // the read's bank partition (0 with monolithic banks)
	busyChip    int  // chip whose word must be reconstructed; -1 if none
	missingWord int  // data word index held by busyChip
	eccFree     bool // ECC chip idle: SECDED check can run inline
	rowHit      bool
	partWin     bool // serviceable only because another partition holds the busy work
	blockedByWr bool // not serviceable, and the blocker is a write
}

// planRead determines whether r can be served at the current time and
// how. It returns (plan, ok).
func (c *Controller) planRead(r *mem.Request) (readPlan, bool) {
	p := readPlan{busyChip: -1, missingWord: -1}
	p.coord = c.decode(r.Addr)
	p.part = c.partOf(p.coord)
	l := c.rank.Layout
	if len(c.active) > 0 && !c.feat.RoW {
		// While a write is in service the baseline (and WoW-only)
		// controller holds reads back entirely — "the remaining chips
		// of that rank will be idle for the long duration of this
		// write" (Section I). The write-pausing comparator relaxes
		// this exactly while its write is parked between segments.
		parked := c.paused != nil && !c.paused.inFlight && len(c.active) == 1
		if !parked {
			p.blockedByWr = true
			return p, false
		}
	}
	// Chip-busy checks run at partition granularity: a chip whose bank
	// is occupied only in another partition counts free, which is PALP's
	// read-over-write generalization (with monolithic banks FreeAtPart
	// is exactly the whole-bank check). partWin records that partition
	// state made the difference for some involved chip.
	busyCount := 0
	for w := 0; w < ecc.WordsPerLine; w++ {
		chip := l.DataChip(p.coord.RotIdx, w)
		if !c.chipFreePart(chip, p.coord.Bank, p.part) {
			busyCount++
			p.busyChip = chip
			p.missingWord = w
		} else if !c.chipFree(chip, p.coord.Bank) {
			p.partWin = true
		}
	}
	p.eccFree = c.chipFreePart(l.ECCChip(p.coord.RotIdx), p.coord.Bank, p.part)
	if p.eccFree && !c.chipFree(l.ECCChip(p.coord.RotIdx), p.coord.Bank) {
		p.partWin = true
	}
	switch {
	case busyCount == 0:
		p.busyChip, p.missingWord = -1, -1
		p.rowHit = c.rowHitAll(l.DataChips(p.coord.RotIdx), p.coord.Bank, p.coord.Row)
		return p, true
	case busyCount == 1 && c.feat.RoW && c.rowServiceAllowed() &&
		c.chipFreePart(l.PCCChip(p.coord.RotIdx), p.coord.Bank, p.part):
		// Serve by reconstruction: read the seven free data words plus
		// the PCC word and XOR the missing word back (Section IV-B).
		mask := l.DataChips(p.coord.RotIdx) &^ (1 << uint(p.busyChip))
		mask |= 1 << uint(l.PCCChip(p.coord.RotIdx))
		p.rowHit = c.rowHitAll(mask, p.coord.Bank, p.coord.Row)
		return p, true
	default:
		p.blockedByWr = len(c.active) > 0
		return p, false
	}
}

// rowServiceAllowed reports whether reconstruction-based read service
// may run right now: the paper's scheduler performs RoW only while the
// ongoing (oldest) write updates at most one essential word (Section
// IV-D2, rule 1), keeping reconstruction sound with a single missing
// chip; the Section IV-B4 multi-word extension lifts the restriction.
// Reads with no busy-chip overlap are ordinary rank-subsetting
// parallelism and bypass this check entirely.
func (c *Controller) rowServiceAllowed() bool {
	if c.cfg.RoWMultiWord || len(c.active) == 0 {
		return true
	}
	return c.active[0].essCount <= 1
}

// tryIssueRead attempts to start service of one queued read, honoring
// FR-FCFS in normal mode and oldest-first during a drain (the paper's
// RoW scheduler picks the oldest read).
func (c *Controller) tryIssueRead() bool {
	clear(c.plans)
	var chosen *mem.Request
	if c.draining {
		chosen = c.rdq.Oldest(c.serviceableFn)
	} else {
		chosen = c.rdq.SelectFRFCFS(c.serviceableFn, c.rowHitFn)
	}
	if chosen == nil {
		return false
	}
	c.issueRead(chosen, c.plans[chosen])
	return true
}

func (c *Controller) issueRead(r *mem.Request, p readPlan) {
	now := c.eng.Now()
	r.Started = true
	r.Issue = now
	timing := c.cfg.Timing
	l := c.rank.Layout
	overlap := len(c.active) > 0
	if overlap {
		c.Metrics.OverlapReads.Inc()
	}
	if p.partWin {
		// The read proceeds only because the conflicting work sits in a
		// different partition of its bank (PALP service).
		c.Metrics.PartOverlapReads.Inc()
	}

	start := now
	if p.busyChip >= 0 {
		// Scheduling around a busy chip needs the DIMM status flags.
		start = c.statusPollCost(now)
	}
	start = c.commandCost(start, 2)

	// The set of chips that stream this read (at most all ten slots).
	var involvedBuf [10]int
	involved := involvedBuf[:0]
	for w := 0; w < ecc.WordsPerLine; w++ {
		chip := l.DataChip(p.coord.RotIdx, w)
		if chip != p.busyChip {
			involved = append(involved, chip)
		}
	}
	if p.busyChip >= 0 {
		involved = append(involved, l.PCCChip(p.coord.RotIdx))
	}
	if p.eccFree {
		involved = append(involved, l.ECCChip(p.coord.RotIdx))
	}

	act := sim.Time(0)
	if !p.rowHit {
		act = timing.ArrayRead.Time()
	}
	ready := start + act + timing.TCL.Time()
	burst := timing.TBurst.Time()
	_, done := c.dataBus.Acquire(ready, burst, false)
	for _, chip := range involved {
		c.reserveChipPart(chip, p.coord.Bank, p.part, now, done-now)
		c.rank.Chips[chip].OpenRowIn(p.coord.Bank, p.coord.Row)
		c.Metrics.IRLP.AddChipService(now, done)
	}

	// Functional data path. Drift is sampled at the instant the arrays
	// are sensed, so the same read that triggers a flip also observes it.
	c.rank.Store.InjectDrift(p.coord.LineIdx)
	c.rank.Store.ReadLine(p.coord.LineIdx, &r.ReadData)
	var verifyAt sim.Time
	if p.busyChip >= 0 {
		r.Reconstructed = true
		c.Metrics.RoWServed.Inc()
		got, match := c.rank.Store.ReconstructWord(p.coord.LineIdx, p.missingWord)
		if !match && c.AssertContent && c.cfg.BitErrorRate == 0 && c.rank.Store.Faults == nil {
			panic(fmt.Sprintf("core: PCC reconstruction mismatch line %#x word %d", p.coord.LineIdx, p.missingWord))
		}
		ecc.SetWord(&r.ReadData, p.missingWord, got)
		// Verification: once the busy chip frees, its word is read and
		// the full line SECDED-checked, off the critical path.
		chipFreeAt := c.rank.Chips[p.busyChip].Banks[p.coord.Bank].BusyUntil
		verifyAt = done
		if chipFreeAt > verifyAt {
			verifyAt = chipFreeAt
		}
		verifyAt += (timing.TCL + timing.TBurst).Time()
	}
	c.decodeRead(r, p.coord.LineIdx)

	c.notePost(done)
	c.eng.At(done, c.newReadEv(r, verifyAt).fire)
}

// decodeRead is the SECDED decode every serviced read passes through:
// each returned word is checked against its stored check byte,
// single-bit data errors are corrected in place, and double-bit words
// fall back to PCC reconstruction from the (already corrected) sibling
// words. A reconstruction is accepted only when it re-checks clean
// against the word's SECDED code; anything else is reported as a typed
// uncorrectable error on the request — never silently returned. On a
// fault-free store every word checks OK and the request is untouched.
func (c *Controller) decodeRead(r *mem.Request, lineIdx uint64) {
	l := c.rank.Store.Peek(lineIdx)
	var doubleMask uint8
	for w := 0; w < ecc.WordsPerLine; w++ {
		word := ecc.Word(&r.ReadData, w)
		fixed, st := ecc.Check64(word, l.ECC[w])
		switch st {
		case ecc.OK:
		case ecc.CorrectedData:
			ecc.SetWord(&r.ReadData, w, fixed)
			c.Metrics.SECDEDCorrected.Inc()
		case ecc.CorrectedCheck:
			c.Metrics.SECDEDCheckFixed.Inc()
		case ecc.DetectedDouble:
			doubleMask |= 1 << uint(w)
		}
	}
	if doubleMask == 0 {
		return
	}
	failMask := doubleMask
	if doubleMask&(doubleMask-1) == 0 {
		// PCC is a single-erasure code: reconstruction is sound only
		// when exactly one word is lost. With two or more double-error
		// words each rebuild would use another corrupt word, so those
		// lines go straight to the uncorrectable report.
		w := bits.TrailingZeros8(doubleMask)
		recon := ecc.ReconstructWord(&r.ReadData, w, l.PCC)
		if fixed, st := ecc.Check64(recon, l.ECC[w]); st == ecc.OK {
			ecc.SetWord(&r.ReadData, w, fixed)
			c.Metrics.PCCRecovered.Inc()
			failMask = 0
		}
	}
	if failMask != 0 {
		r.Err = &mem.UncorrectableError{Addr: r.Addr, LineIdx: lineIdx, WordMask: failMask}
		c.Metrics.UncorrectedReads.Inc()
		return
	}
	// Line-level parity audit: the XOR of the (corrected) data words
	// must equal the stored PCC word. SECDED silently miscorrects >=3-bit
	// errors (it aliases them onto a valid single-bit syndrome), and this
	// is the only check that catches those; a mismatch with no word left
	// in failMask is reported as a line-level detected-uncorrectable
	// (WordMask zero: the faulty word cannot be localized).
	var x uint64
	for w := 0; w < ecc.WordsPerLine; w++ {
		x ^= ecc.Word(&r.ReadData, w)
	}
	if x != binary.LittleEndian.Uint64(l.PCC[:]) {
		r.Err = &mem.UncorrectableError{Addr: r.Addr, LineIdx: lineIdx}
		c.Metrics.UncorrectedReads.Inc()
	}
}

func (c *Controller) completeRead(r *mem.Request, verifyAt sim.Time) {
	c.dropPost()
	r.Done = c.eng.Now()
	c.rdq.Remove(r)
	c.Metrics.Reads.Inc()
	c.Metrics.ReadLatency.Add(r.Latency())
	c.Metrics.NoteDone(r.Done)
	if c.trace != nil {
		c.trace.Span(c.trkService, c.nmRead, r.Arrive, r.Done-r.Arrive)
		c.trace.Count(c.trkRdq, c.nmDepth, r.Done, int64(c.rdq.Len()))
	}
	if r.DelayedByWrite {
		c.Metrics.ReadsDelayedByWrite.Inc()
	}

	faulty := c.injectedFault()
	if !r.Reconstructed {
		// SECDED runs inline (when the ECC chip streamed with the
		// data) or is postponed; either way a single-bit fault is
		// corrected before the CPU commits, without rollback. The
		// front-end tail (ECC accounting, OnDone, space notification,
		// kick) crosses the shard boundary as one unit so its callbacks
		// run in the sequential engine's order.
		c.postReadDone(r, faulty)
	} else if c.rt == nil {
		// Keep the engine's historical sequence assignment order —
		// OnDone's spawns, then the verify read-back, then space
		// notifications and the kick — so a future event that happens
		// to share the verify's timestamp keeps its relative order
		// against OnDone's descendants.
		if r.OnDone != nil {
			r.OnDone(r)
		}
		c.scheduleVerifyRecon(r, verifyAt, faulty)
		c.notifySpace(mem.Read)
		c.kick()
	} else {
		// Sharded: the whole tail is posted and replays the sequential
		// statement order on the front end; the verify read-back is
		// scheduled back onto the shard engine under a fence, so its
		// tie-breaker is drawn from the live counter at the same
		// relative position (after OnDone's spawns) the single-engine
		// run assigns it.
		c.post(func() {
			if r.OnDone != nil {
				r.OnDone(r)
			}
			c.rt.BeginCross(c.shard)
			c.scheduleVerifyRecon(r, verifyAt, faulty)
			c.rt.EndCross(c.shard)
			c.notifySpace(mem.Read)
			c.kickCross()
		})
	}
}

// scheduleVerifyRecon schedules the deferred SECDED verification of a
// reconstructed read at verifyAt (when the busy chip has freed and
// streamed the missing word).
func (c *Controller) scheduleVerifyRecon(r *mem.Request, verifyAt sim.Time, faulty bool) {
	c.notePost(verifyAt)
	c.eng.At(verifyAt, c.newVerifyEv(r, faulty).fire)
}

// injectedFault samples the configured fault model: FaultMode overrides
// ("always"/"never"), otherwise each read suffers a correctable bit
// error with probability BitErrorRate.
func (c *Controller) injectedFault() bool {
	switch c.cfg.FaultMode {
	case "always":
		return true
	case "never":
		return false
	}
	if c.cfg.BitErrorRate <= 0 {
		return false
	}
	return c.rng.Bool(c.cfg.BitErrorRate)
}
