package core

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

func wearMemory(t *testing.T, psi uint64) (*sim.Engine, *Memory) {
	t.Helper()
	cfg := config.Default().WithVariant(config.RWoWRDE)
	cfg.Memory.Channels = 1
	cfg.Memory.CapacityBytes = 1 << 30
	cfg.Memory.WearLevelPsi = psi
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

// TestWearLevelingPreservesContent is the crucial property: with the
// gap walking under live traffic, every line must still read back what
// was last written to it.
func TestWearLevelingPreservesContent(t *testing.T) {
	eng, m := wearMemory(t, 3) // aggressive gap movement
	written := map[uint64]byte{}
	rng := sim.NewRNG(9)
	for i := 0; i < 400; i++ {
		line := uint64(rng.Intn(64))
		tag := byte(i)
		var data [64]byte
		for j := range data {
			data[j] = tag
		}
		m.Submit(&mem.Request{Kind: mem.Write, Addr: line * 64, Mask: 0xff, Data: &data})
		written[line] = tag
		eng.Run()
	}
	for line, tag := range written {
		var got *mem.Request
		m.Submit(&mem.Request{Kind: mem.Read, Addr: line * 64,
			OnDone: func(r *mem.Request) { got = r }})
		eng.Run()
		if got == nil {
			t.Fatalf("read of line %d never completed", line)
		}
		for j, b := range got.ReadData {
			if b != tag {
				t.Fatalf("line %d byte %d = %#x, want %#x (content lost across gap moves)",
					line, j, b, tag)
			}
		}
	}
}

func TestWearMovesHappenAtPsiRate(t *testing.T) {
	eng, m := wearMemory(t, 10)
	for i := 0; i < 500; i++ {
		m.Submit(&mem.Request{Kind: mem.Write, Addr: uint64(i%256) * 64, Mask: 0x01})
		eng.Run()
	}
	moves := m.Metrics().WearMoves.Value()
	// 500 writes at psi=10: ~50 gap movements (wraps copy too).
	if moves < 40 || moves > 60 {
		t.Fatalf("wear moves %d, want ~50", moves)
	}
}

func TestWearDisabledByDefault(t *testing.T) {
	cfg := config.Default()
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Submit(&mem.Request{Kind: mem.Write, Addr: uint64(i) * 64, Mask: 0x01})
	}
	eng.Run()
	if m.Metrics().WearMoves.Value() != 0 {
		t.Fatal("wear moves recorded with leveling disabled")
	}
}

func TestWearLevelingWithRoWStillVerifies(t *testing.T) {
	eng, m := wearMemory(t, 5)
	for _, c := range m.Ctrls {
		c.AssertContent = true // panic on any reconstruction mismatch
	}
	rng := sim.NewRNG(21)
	n := 0
	var gen func()
	gen = func() {
		if n >= 800 {
			return
		}
		n++
		addr := uint64(rng.Intn(2048)) * 64
		if n%4 == 0 {
			m.Submit(&mem.Request{Kind: mem.Read, Addr: addr})
		} else {
			m.Submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: 1 << uint(rng.Intn(8))})
		}
		eng.Schedule(sim.NS(15), gen)
	}
	eng.Schedule(0, gen)
	eng.Run()
	met := m.Metrics()
	if met.WearMoves.Value() == 0 {
		t.Fatal("expected gap movement under this write volume")
	}
	if met.RoWFaulty.Value() != 0 {
		t.Fatal("wear remapping corrupted a reconstruction")
	}
}
