package core

import (
	"fmt"
	"math"

	"pcmap/internal/config"
	"pcmap/internal/energy"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
)

// Memory is the public facade over the channel controllers: it routes
// requests by physical address and aggregates metrics. This is the type
// CPU-side components and library users talk to.
type Memory struct {
	Eng   *sim.Engine
	Cfg   *config.Config
	AMap  *mem.AddrMap
	Ctrls []*Controller

	// OnSubmit, when non-nil, observes every successfully enqueued
	// request (the trace recorder's hook).
	OnSubmit func(*mem.Request)
}

// NewMemory builds the main memory system for cfg.
func NewMemory(eng *sim.Engine, cfg *config.Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	amap, err := mem.NewAddrMap(cfg.Memory.Geometry())
	if err != nil {
		return nil, err
	}
	m := &Memory{Eng: eng, Cfg: cfg, AMap: amap}
	rng := sim.NewRNG(cfg.Seed ^ 0x9cbf1a3d5e7f0246)
	for ch := 0; ch < cfg.Memory.Channels; ch++ {
		m.Ctrls = append(m.Ctrls, NewController(eng, cfg, ch, amap, rng.Fork()))
	}
	return m, nil
}

// Channel returns the controller owning addr.
func (m *Memory) Channel(addr uint64) *Controller {
	return m.Ctrls[m.AMap.Decode(addr).Channel]
}

// Submit presents a request to the owning channel. It reports false
// when that channel's queue is full; use OnSpace to be notified.
func (m *Memory) Submit(r *mem.Request) bool {
	ok := m.Channel(r.Addr).Enqueue(r)
	if ok && m.OnSubmit != nil {
		m.OnSubmit(r)
	}
	return ok
}

// OnSpace registers a one-shot callback for queue space on addr's
// channel.
func (m *Memory) OnSpace(kind mem.Kind, addr uint64, fn func()) {
	m.Channel(addr).OnSpace(kind, fn)
}

// CanAccept reports whether addr's channel currently has queue space
// for the given request kind.
func (m *Memory) CanAccept(kind mem.Kind, addr uint64) bool {
	c := m.Channel(addr)
	if kind == mem.Read {
		rd, _ := c.QueueLens()
		return rd < c.cfg.ReadQueueCap
	}
	_, wr := c.QueueLens()
	return wr < c.cfg.WriteQueueCap
}

// ResetMetrics discards all accumulated measurements (including IRLP
// interval records); used to drop the cache-warmup phase from the
// reported statistics, mirroring the paper's 200M-instruction warmup.
func (m *Memory) ResetMetrics() {
	for _, c := range m.Ctrls {
		c.Metrics.Reset()
	}
}

// Metrics returns a merged copy of all channels' metrics. IRLP is not
// merged here (interval trackers finalize per rank); use IRLP().
func (m *Memory) Metrics() *mem.Metrics {
	out := mem.NewMetrics()
	for _, c := range m.Ctrls {
		out.Merge(c.Metrics)
	}
	return out
}

// IRLP finalizes and combines the per-rank IRLP trackers: the average
// is weighted by each rank's write-busy time, the max is the maximum
// instantaneous parallelism across ranks.
func (m *Memory) IRLP() (avg float64, max int) {
	var num, den float64
	for _, c := range m.Ctrls {
		t := c.Metrics.IRLP
		t.Finalize(m.Cfg.Memory.DataChips)
		busy := float64(t.WriteBusyTime().Ticks())
		num += t.Average() * busy
		den += busy
		if t.MaxBusy() > max {
			max = t.MaxBusy()
		}
	}
	if den > 0 {
		avg = num / den
	}
	return avg, max
}

// Energy reports the PCM energy of all ranks under the given model.
func (m *Memory) Energy(model energy.Model) energy.Breakdown {
	var total energy.Breakdown
	for _, c := range m.Ctrls {
		b := model.FromRank(c.Rank(), c.Metrics)
		total.ReadUJ += b.ReadUJ
		total.SetUJ += b.SetUJ
		total.ResetUJ += b.ResetUJ
		total.BusUJ += b.BusUJ
	}
	return total
}

// FaultCounts reports the total stuck-at cells and drift flips the
// fault model has injected across all channels (zero when fault
// injection is disabled). Experiments cross-check these against the
// read/verify paths' correction counters: every injected error must be
// corrected, retried away, or reported — never silently returned.
func (m *Memory) FaultCounts() (stuck, drift uint64) {
	for _, c := range m.Ctrls {
		if f := c.rank.Store.Faults; f != nil {
			stuck += f.InjectedStuck
			drift += f.InjectedDrift
		}
	}
	return
}

// WearImbalance reports the coefficient of variation of per-chip word
// writes across all ranks — rotation should drive it toward zero
// (Section IV-C2's lifetime argument).
func (m *Memory) WearImbalance() float64 {
	var counts []float64
	for _, c := range m.Ctrls {
		_, per := c.Rank().TotalWordWrites()
		for _, n := range per {
			counts = append(counts, float64(n))
		}
	}
	mean := stats.ArithMean(counts)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range counts {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss/float64(len(counts))) / mean
}

func (m *Memory) String() string {
	return fmt.Sprintf("pcm-memory(%s, %d channels)", m.Cfg.Variant, len(m.Ctrls))
}
