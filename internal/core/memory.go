package core

import (
	"fmt"
	"math"

	"pcmap/internal/config"
	"pcmap/internal/energy"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
)

// Memory is the public facade over the channel controllers: it routes
// requests by physical address and aggregates metrics. This is the type
// CPU-side components and library users talk to.
type Memory struct {
	Eng   *sim.Engine
	Cfg   *config.Config
	AMap  *mem.AddrMap
	Ctrls []*Controller

	// OnSubmit, when non-nil, observes every successfully enqueued
	// request (the trace recorder's hook).
	OnSubmit func(*mem.Request)

	// rt is the PDES shard runtime; nil in single-threaded runs. When
	// set, every front-end call into a controller crosses the shard
	// boundary under a fence (see shard.go).
	rt ShardRuntime
}

// NewMemory builds the main memory system for cfg on a single engine.
func NewMemory(eng *sim.Engine, cfg *config.Config) (*Memory, error) {
	return NewMemorySharded(eng, nil, cfg)
}

// NewMemorySharded builds the memory system with channel ch's
// controller scheduling on engines[ch] — the PDES topology partition.
// engines may be nil (every controller shares fe, the single-threaded
// layout). Construction order, and therefore the per-channel RNG fork
// order, is identical in both layouts, so enabling sharding never
// perturbs a controller's randomness stream.
func NewMemorySharded(fe *sim.Engine, engines []*sim.Engine, cfg *config.Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	amap, err := mem.NewAddrMap(cfg.Memory.Geometry())
	if err != nil {
		return nil, err
	}
	if engines != nil && len(engines) != cfg.Memory.Channels {
		return nil, fmt.Errorf("core: %d shard engines for %d channels", len(engines), cfg.Memory.Channels)
	}
	m := &Memory{Eng: fe, Cfg: cfg, AMap: amap}
	rng := sim.NewRNG(cfg.Seed ^ 0x9cbf1a3d5e7f0246)
	for ch := 0; ch < cfg.Memory.Channels; ch++ {
		eng := fe
		if engines != nil {
			eng = engines[ch]
		}
		m.Ctrls = append(m.Ctrls, NewController(eng, cfg, ch, amap, rng.Fork()))
	}
	return m, nil
}

// SetShardRuntime binds the PDES runtime: shardOf names the shard
// owning each channel. Call once, after construction and before the
// first event.
func (m *Memory) SetShardRuntime(rt ShardRuntime, shardOf func(channel int) int) {
	m.rt = rt
	for ch, c := range m.Ctrls {
		c.bindShard(rt, shardOf(ch))
	}
}

// Channel returns the controller owning addr.
func (m *Memory) Channel(addr uint64) *Controller {
	return m.Ctrls[m.AMap.Decode(addr).Channel]
}

// Submit presents a request to the owning channel. It reports false
// when that channel's queue is full; use OnSpace to be notified. In a
// sharded run the enqueue is a synchronous front-end-to-shard call and
// runs under the cross fence, so the controller observes the request
// at the exact engine state the sequential run would have.
func (m *Memory) Submit(r *mem.Request) bool {
	c := m.Channel(r.Addr)
	if m.rt != nil {
		m.rt.BeginCross(c.shard)
	}
	ok := c.Enqueue(r)
	if m.rt != nil {
		m.rt.EndCross(c.shard)
	}
	if ok && m.OnSubmit != nil {
		m.OnSubmit(r)
	}
	return ok
}

// OnSpace registers a one-shot callback for queue space on addr's
// channel.
func (m *Memory) OnSpace(kind mem.Kind, addr uint64, fn func()) {
	m.Channel(addr).OnSpace(kind, fn)
}

// CanAccept reports whether addr's channel currently has queue space
// for the given request kind. Sharded runs fence first: occupancy is
// only meaningful once the shard has drained up to the front end's
// current instant.
func (m *Memory) CanAccept(kind mem.Kind, addr uint64) bool {
	c := m.Channel(addr)
	if m.rt != nil {
		m.rt.BeginCross(c.shard)
		m.rt.EndCross(c.shard)
	}
	if kind == mem.Read {
		rd, _ := c.QueueLens()
		return rd < c.cfg.ReadQueueCap
	}
	_, wr := c.QueueLens()
	return wr < c.cfg.WriteQueueCap
}

// ResetMetrics discards all accumulated measurements (including IRLP
// interval records); used to drop the cache-warmup phase from the
// reported statistics, mirroring the paper's 200M-instruction warmup.
func (m *Memory) ResetMetrics() {
	for _, c := range m.Ctrls {
		c.Metrics.Reset()
	}
}

// Metrics returns a merged copy of all channels' metrics. IRLP is not
// merged here (interval trackers finalize per rank); use IRLP().
func (m *Memory) Metrics() *mem.Metrics {
	out := mem.NewMetrics()
	for _, c := range m.Ctrls {
		out.Merge(c.Metrics)
	}
	return out
}

// IRLP finalizes and combines the per-rank IRLP trackers: the average
// is weighted by each rank's write-busy time, the max is the maximum
// instantaneous parallelism across ranks.
func (m *Memory) IRLP() (avg float64, max int) {
	var num, den float64
	for _, c := range m.Ctrls {
		t := c.Metrics.IRLP
		t.Finalize(m.Cfg.Memory.DataChips)
		busy := float64(t.WriteBusyTime().Ticks())
		num += t.Average() * busy
		den += busy
		if t.MaxBusy() > max {
			max = t.MaxBusy()
		}
	}
	if den > 0 {
		avg = num / den
	}
	return avg, max
}

// Energy reports the PCM energy of all ranks under the given model.
func (m *Memory) Energy(model energy.Model) energy.Breakdown {
	var total energy.Breakdown
	for _, c := range m.Ctrls {
		b := model.FromRank(c.Rank(), c.Metrics)
		total.ReadUJ += b.ReadUJ
		total.SetUJ += b.SetUJ
		total.ResetUJ += b.ResetUJ
		total.BusUJ += b.BusUJ
	}
	return total
}

// FaultCounts reports the total stuck-at cells and drift flips the
// fault model has injected across all channels (zero when fault
// injection is disabled). Experiments cross-check these against the
// read/verify paths' correction counters: every injected error must be
// corrected, retried away, or reported — never silently returned.
func (m *Memory) FaultCounts() (stuck, drift uint64) {
	for _, c := range m.Ctrls {
		if f := c.rank.Store.Faults; f != nil {
			stuck += f.InjectedStuck
			drift += f.InjectedDrift
		}
	}
	return
}

// WearImbalance reports the coefficient of variation of per-chip word
// writes across all ranks — rotation should drive it toward zero
// (Section IV-C2's lifetime argument).
func (m *Memory) WearImbalance() float64 {
	var counts []float64
	for _, c := range m.Ctrls {
		_, per := c.Rank().TotalWordWrites()
		for _, n := range per {
			counts = append(counts, float64(n))
		}
	}
	mean := stats.ArithMean(counts)
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range counts {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss/float64(len(counts))) / mean
}

func (m *Memory) String() string {
	return fmt.Sprintf("pcm-memory(%s, %d channels)", m.Cfg.Variant, len(m.Ctrls))
}
