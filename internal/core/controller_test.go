package core

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// driver feeds a fixed request pattern to a Memory and tracks
// completions, retrying on queue-full through OnSpace.
type driver struct {
	eng       *sim.Engine
	m         *Memory
	completed int
	issued    int
	verifies  int
	faulty    int
}

func (d *driver) submit(r *mem.Request) {
	prev := r.OnDone
	r.OnDone = func(rr *mem.Request) {
		d.completed++
		if prev != nil {
			prev(rr)
		}
	}
	r.OnVerify = func(rr *mem.Request, f bool) {
		d.verifies++
		if f {
			d.faulty++
		}
	}
	var try func()
	try = func() {
		if !d.m.Submit(r) {
			d.m.OnSpace(r.Kind, r.Addr, try)
		}
	}
	d.issued++
	try()
}

func newTestMemory(t *testing.T, v config.Variant) (*sim.Engine, *Memory) {
	t.Helper()
	cfg := config.Default().WithVariant(v)
	cfg.Memory.Channels = 1 // single channel focuses contention
	cfg.Memory.CapacityBytes = 2 << 30
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Ctrls {
		c.AssertContent = true
	}
	return eng, m
}

// channelAddr builds an address on channel 0 with the given
// channel-local line number (our mapping interleaves lines across 4
// channels; with 1 channel every line-aligned address is channel 0).
func lineAddr(n uint64) uint64 { return n * 64 }

func TestAllRequestsCompleteEveryVariant(t *testing.T) {
	for _, v := range config.Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			eng, m := newTestMemory(t, v)
			d := &driver{eng: eng, m: m}
			rng := sim.NewRNG(42)
			// Interleave writes (varied dirty masks) and reads over a
			// small hot region to force queue pressure and overlap.
			n := 0
			var gen func()
			gen = func() {
				if n >= 400 {
					return
				}
				n++
				addr := lineAddr(uint64(rng.Intn(512)))
				if n%3 == 0 {
					d.submit(&mem.Request{Kind: mem.Read, Addr: addr, Core: 0})
				} else {
					mask := uint8(rng.Uint64())
					d.submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: mask, Core: 0})
				}
				eng.Schedule(sim.NS(20), gen)
			}
			eng.Schedule(0, gen)
			eng.Run()
			if d.completed != d.issued {
				t.Fatalf("%s: %d/%d requests completed", v, d.completed, d.issued)
			}
			if eng.Pending() != 0 {
				t.Fatalf("%s: %d events still pending", v, eng.Pending())
			}
			met := m.Metrics()
			if met.Reads.Value()+met.Writes.Value() != uint64(d.issued) {
				t.Fatalf("%s: metrics count %d+%d != %d", v,
					met.Reads.Value(), met.Writes.Value(), d.issued)
			}
		})
	}
}

func TestWriteContentIsStored(t *testing.T) {
	eng, m := newTestMemory(t, config.RWoWRDE)
	var data [64]byte
	for i := range data {
		data[i] = byte(i + 1)
	}
	done := false
	m.Submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(10), Mask: 0xff, Data: &data,
		OnDone: func(*mem.Request) { done = true }})
	eng.Run()
	if !done {
		t.Fatal("write never completed")
	}
	var rd *mem.Request
	m.Submit(&mem.Request{Kind: mem.Read, Addr: lineAddr(10),
		OnDone: func(r *mem.Request) { rd = r }})
	eng.Run()
	if rd == nil {
		t.Fatal("read never completed")
	}
	if rd.ReadData != data {
		t.Fatalf("read back %x, want %x", rd.ReadData[:8], data[:8])
	}
}

func TestMaskedWriteLeavesOtherWordsIntact(t *testing.T) {
	eng, m := newTestMemory(t, config.Baseline)
	var d1 [64]byte
	for i := range d1 {
		d1[i] = 0xAA
	}
	m.Submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(5), Mask: 0xff, Data: &d1})
	eng.Run()
	d2 := d1
	for i := 0; i < 8; i++ {
		d2[i] = 0xBB // word 0 changes
	}
	m.Submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(5), Mask: 0x01, Data: &d2})
	eng.Run()
	var rd *mem.Request
	m.Submit(&mem.Request{Kind: mem.Read, Addr: lineAddr(5), OnDone: func(r *mem.Request) { rd = r }})
	eng.Run()
	for i := 0; i < 8; i++ {
		if rd.ReadData[i] != 0xBB {
			t.Fatalf("word 0 byte %d = %#x, want 0xBB", i, rd.ReadData[i])
		}
	}
	for i := 8; i < 64; i++ {
		if rd.ReadData[i] != 0xAA {
			t.Fatalf("byte %d = %#x, want 0xAA untouched", i, rd.ReadData[i])
		}
	}
}

func TestReadLatencyBaselineVsSymmetric(t *testing.T) {
	// Figure 1's premise: with writes in the mix, asymmetric write
	// latency inflates effective read latency vs a symmetric device.
	run := func(symmetric bool) float64 {
		cfg := config.Default().WithVariant(config.Baseline)
		cfg.Memory.Channels = 1
		cfg.Memory.CapacityBytes = 2 << 30
		if symmetric {
			cfg.Memory.Timing.CellSET = cfg.Memory.Timing.ArrayRead
			cfg.Memory.Timing.CellRESET = cfg.Memory.Timing.ArrayRead
		}
		eng := sim.NewEngine()
		m, _ := NewMemory(eng, cfg)
		d := &driver{eng: eng, m: m}
		rng := sim.NewRNG(7)
		n := 0
		var gen func()
		gen = func() {
			if n >= 600 {
				return
			}
			n++
			addr := lineAddr(uint64(rng.Intn(256)))
			if n%2 == 0 {
				d.submit(&mem.Request{Kind: mem.Read, Addr: addr})
			} else {
				d.submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: 0x0f})
			}
			eng.Schedule(sim.NS(30), gen)
		}
		eng.Schedule(0, gen)
		eng.Run()
		return m.Metrics().ReadLatency.MeanNS()
	}
	asym := run(false)
	symm := run(true)
	if asym <= symm {
		t.Fatalf("asymmetric read latency %.1f should exceed symmetric %.1f", asym, symm)
	}
}

func TestRoWServesReadsDuringWrites(t *testing.T) {
	eng, m := newTestMemory(t, config.RWoWRDE)
	d := &driver{eng: eng, m: m}
	rng := sim.NewRNG(3)
	// Write-heavy single-word traffic to trigger drains, with reads
	// arriving during them.
	n := 0
	var gen func()
	gen = func() {
		if n >= 1000 {
			return
		}
		n++
		addr := lineAddr(uint64(rng.Intn(1024)))
		if n%4 == 0 {
			d.submit(&mem.Request{Kind: mem.Read, Addr: addr})
		} else {
			d.submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: 1 << uint(rng.Intn(8))})
		}
		eng.Schedule(sim.NS(15), gen)
	}
	eng.Schedule(0, gen)
	eng.Run()
	met := m.Metrics()
	if met.RoWServed.Value() == 0 {
		t.Fatal("expected some reads to be served by reconstruction")
	}
	if met.RoWVerifies.Value() != met.RoWServed.Value() {
		t.Fatalf("every RoW read must be verified: %d served, %d verified",
			met.RoWServed.Value(), met.RoWVerifies.Value())
	}
	if met.RoWFaulty.Value() != 0 {
		t.Fatalf("no faults injected but %d verifications failed", met.RoWFaulty.Value())
	}
	if d.completed != d.issued {
		t.Fatalf("%d/%d completed", d.completed, d.issued)
	}
}

func TestWoWOverlapsWrites(t *testing.T) {
	eng, m := newTestMemory(t, config.WoWNR)
	d := &driver{eng: eng, m: m}
	rng := sim.NewRNG(5)
	n := 0
	var gen func()
	gen = func() {
		if n >= 800 {
			return
		}
		n++
		// Single-word writes at rotating offsets to different lines:
		// disjoint chip sets, prime WoW fodder.
		d.submit(&mem.Request{
			Kind: mem.Write,
			Addr: lineAddr(uint64(rng.Intn(4096))),
			Mask: 1 << uint(n%8),
		})
		eng.Schedule(sim.NS(10), gen)
	}
	eng.Schedule(0, gen)
	eng.Run()
	if d.completed != d.issued {
		t.Fatalf("%d/%d completed", d.completed, d.issued)
	}
	if m.Metrics().WoWOverlapped.Value() == 0 {
		t.Fatal("expected write-over-write consolidation")
	}
}

func TestBaselineNeverOverlapsWrites(t *testing.T) {
	eng, m := newTestMemory(t, config.Baseline)
	d := &driver{eng: eng, m: m}
	for i := 0; i < 200; i++ {
		d.submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(uint64(i)), Mask: 0x01})
	}
	eng.Run()
	met := m.Metrics()
	if met.WoWOverlapped.Value() != 0 || met.RoWServed.Value() != 0 {
		t.Fatal("baseline must not use PCMap mechanisms")
	}
	if d.completed != d.issued {
		t.Fatalf("%d/%d completed", d.completed, d.issued)
	}
}

func TestVariantIRLPOrdering(t *testing.T) {
	// The paper's headline: IRLP(Baseline) < IRLP(RWoW-RDE).
	irlp := func(v config.Variant) float64 {
		eng, m := newTestMemory(t, v)
		d := &driver{eng: eng, m: m}
		rng := sim.NewRNG(11)
		n := 0
		var gen func()
		gen = func() {
			if n >= 1500 {
				return
			}
			n++
			addr := lineAddr(uint64(rng.Intn(8192)))
			if n%4 == 0 {
				d.submit(&mem.Request{Kind: mem.Read, Addr: addr})
			} else {
				// 1-2 dirty words, the paper's common case.
				mask := uint8(1) << uint(rng.Intn(8))
				if rng.Bool(0.4) {
					mask |= 1 << uint(rng.Intn(8))
				}
				d.submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: mask})
			}
			eng.Schedule(sim.NS(12), gen)
		}
		eng.Schedule(0, gen)
		eng.Run()
		if d.completed != d.issued {
			t.Fatalf("%s: %d/%d completed", v, d.completed, d.issued)
		}
		avg, _ := m.IRLP()
		return avg
	}
	base := irlp(config.Baseline)
	full := irlp(config.RWoWRDE)
	if full <= base {
		t.Fatalf("IRLP did not improve: baseline %.2f, RWoW-RDE %.2f", base, full)
	}
}

func TestFaultInjectionAlways(t *testing.T) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	cfg.Memory.Channels = 1
	cfg.Memory.FaultMode = "always"
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := &driver{eng: eng, m: m}
	rng := sim.NewRNG(13)
	n := 0
	var gen func()
	gen = func() {
		if n >= 600 {
			return
		}
		n++
		addr := lineAddr(uint64(rng.Intn(512)))
		if n%4 == 0 {
			d.submit(&mem.Request{Kind: mem.Read, Addr: addr})
		} else {
			d.submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: 1})
		}
		eng.Schedule(sim.NS(15), gen)
	}
	eng.Schedule(0, gen)
	eng.Run()
	met := m.Metrics()
	if met.RoWServed.Value() == 0 {
		t.Skip("no RoW reads in this pattern")
	}
	if d.faulty != int(met.RoWServed.Value()) {
		t.Fatalf("FaultMode=always: %d faulty of %d RoW reads", d.faulty, met.RoWServed.Value())
	}
}

func TestRotationBalancesWear(t *testing.T) {
	wear := func(v config.Variant) float64 {
		eng, m := newTestMemory(t, v)
		d := &driver{eng: eng, m: m}
		// Writes always dirty word 0: without rotation chip 0, ECC and
		// PCC chips absorb everything.
		for i := 0; i < 300; i++ {
			d.submit(&mem.Request{Kind: mem.Write, Addr: lineAddr(uint64(i * 4)), Mask: 0x01})
		}
		eng.Run()
		return m.WearImbalance()
	}
	fixed := wear(config.RWoWNR)
	rotated := wear(config.RWoWRDE)
	if rotated >= fixed {
		t.Fatalf("rotation should balance wear: fixed CV %.2f, rotated CV %.2f", fixed, rotated)
	}
}
