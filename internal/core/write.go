package core

import (
	"math/bits"

	"pcmap/internal/dimm"
	"pcmap/internal/ecc"
	"pcmap/internal/mem"
	"pcmap/internal/pcm"
	"pcmap/internal/sim"
)

// tryIssueWrite attempts to start service of one queued write. It
// returns true when a write was issued (the scheduling loop then runs
// again, which is how WoW consolidates several writes in one pass).
func (c *Controller) tryIssueWrite() bool {
	if c.wrq.Len() == 0 {
		return false
	}
	overlap := len(c.active) > 0
	if !c.feat.FineGrained {
		// Baseline: one coarse write at a time (it reserves the whole
		// rank power budget and occupies the full bank).
		if overlap || c.powerInUse > 0 {
			return false
		}
		r := c.wrq.Oldest(func(r *mem.Request) bool {
			return !r.Started && r.Kind == mem.Write && c.coarseWriteReady(r)
		})
		if r == nil {
			return false
		}
		if c.pausingEnabled() {
			c.issuePausingWrite(r)
		} else {
			c.issueCoarseWrite(r)
		}
		return true
	}
	if overlap && !c.feat.WoW {
		// Fine-grained but non-consolidating variants serialize writes.
		return false
	}
	if c.feat.WoW && c.activeWrites() >= c.cfg.MaxConcurrentWrites {
		return false
	}
	r := c.wrq.Oldest(func(r *mem.Request) bool {
		return !r.Started && r.Kind == mem.Write && c.fineWriteReady(r)
	})
	if r == nil {
		return false
	}
	c.issueFineWrite(r, overlap)
	return true
}

// coarseWriteReady gates the baseline write: the coarse access needs
// the target bank idle across the DIMM's nine chips (the whole bank is
// busy until the write completes, Section III-A1).
func (c *Controller) coarseWriteReady(r *mem.Request) bool {
	coord := c.decode(r.Addr)
	for i := 0; i < 9; i++ { // data chips + ECC chip
		if !c.chipFree(i, coord.Bank) {
			return false
		}
	}
	return true
}

func (c *Controller) fineWriteReady(r *mem.Request) bool {
	coord := c.decode(r.Addr)
	ess := r.Mask
	need := bits.OnesCount8(ess)
	if need > 0 {
		need += 2 // ECC and PCC words are programmed too
	}
	// A write wider than the whole budget may still run alone.
	if c.powerInUse+need > c.cfg.PowerSlots && c.powerInUse > 0 {
		return false
	}
	// Essential data chips must be idle now — bank and programming
	// circuitry both (the paper's non-overlapping-chip-sets
	// condition); ECC/PCC updates may queue behind a busy code chip
	// (Figure 5(d) serializes them). The bank check runs at partition
	// granularity, so under PALP a write may start while a read holds
	// another partition of the same bank.
	now := c.eng.Now()
	part := c.partOf(coord)
	l := c.rank.Layout
	for w := 0; w < ecc.WordsPerLine; w++ {
		if ess&(1<<uint(w)) == 0 {
			continue
		}
		chip := c.rank.Chips[l.DataChip(coord.RotIdx, w)]
		if !chip.FreeAtPart(coord.Bank, part, now) || !chip.ProgFreeAt(now) {
			return false
		}
	}
	return true
}

// applyWrite applies the request's content to the functional store and
// returns the essential-word mask (words whose bits actually flip) and
// the per-chip transition analysis. The intended line content (what the
// cells should hold afterwards — the verify read-back compares against
// it) lands in aw.intended: the caller's data when supplied, otherwise
// synthesized content in aw's inline buffer.
func (c *Controller) applyWrite(r *mem.Request, lineIdx uint64, aw *activeWrite) (uint8, pcm.WriteResult) {
	data := r.Data
	if data == nil {
		c.synthesizeWriteData(lineIdx, r.Mask, &aw.intendedBuf)
		data = &aw.intendedBuf
	}
	aw.intended = data
	if c.feat.ContentAware {
		// Content-aware variants observe the write's actual transition
		// counts (the stored-vs-intended XOR fold) — both for the DCA
		// latency model and for the SET/RESET distribution histograms.
		// Snapshot before WriteWords mutates the stored line.
		old := c.rank.Store.Peek(lineIdx)
		tot := pcm.AnalyzeLineWrite(&old.Data, data, r.Mask)
		c.Metrics.SetBits.Add(tot.Sets)
		c.Metrics.ResetBits.Add(tot.Resets)
	}
	res := c.rank.Store.WriteWords(lineIdx, r.Mask, data)
	var essMask uint8
	for w := 0; w < ecc.WordsPerLine; w++ {
		if res.PerWord[w].Any() {
			essMask |= 1 << uint(w)
		}
	}
	return essMask, res
}

func (c *Controller) issueCoarseWrite(r *mem.Request) {
	now := c.eng.Now()
	r.Started = true
	r.Issue = now
	coord := c.decode(r.Addr)
	aw := c.newActive()
	essMask, res := c.applyWrite(r, coord.LineIdx, aw)
	essCount := bits.OnesCount8(essMask)
	c.Metrics.DirtyWords.Add(essCount)
	if essCount == 0 {
		c.Metrics.SilentWrites.Inc()
	}
	c.wearTick()

	t := c.commandCost(now, 2)
	wl := c.cfg.Timing.TWL.Time()
	burst := c.cfg.Timing.TBurst.Time()
	_, t0 := c.dataBus.Acquire(t, wl+burst, true)

	rowHit := c.rowHitAll(baselineChipsMask, coord.Bank, coord.Row)
	act := sim.Time(0)
	if !rowHit {
		act = c.cfg.Timing.WriteArrayRead.Time()
	}
	// Longest transition among data words and the ECC word sets the
	// lock-step program time of the whole bank.
	var prog sim.Time
	for w := 0; w < ecc.WordsPerLine; w++ {
		if d := c.progTime(res.PerWord[w]); d > prog {
			prog = d
		}
	}
	if d := c.progTime(res.ECCFlips); d > prog {
		prog = d
	}
	end := t0
	for i := 0; i < 9; i++ {
		_, e := c.rank.Chips[i].ReserveProgram(coord.Bank, t0, act, prog)
		c.rank.Chips[i].OpenRowIn(coord.Bank, coord.Row)
		if e > end {
			end = e
		}
	}
	// Endurance accounting on the programming chips.
	for w := 0; w < ecc.WordsPerLine; w++ {
		if res.PerWord[w].Any() {
			c.rank.Chips[w].CountWrite(res.PerWord[w])
		}
	}
	if res.ECCFlips.Any() {
		c.rank.Chips[dimm.ECCSlot].CountWrite(res.ECCFlips)
	}

	c.powerInUse = c.cfg.PowerSlots
	aw.req, aw.bank, aw.essCount, aw.end = r, coord.Bank, essCount, end
	aw.coord, aw.mask = coord, r.Mask
	c.active = append(c.active, aw)

	// IRLP: window covers the write's occupancy; only the chips doing
	// essential programming count as serving data.
	if prog > 0 {
		c.Metrics.IRLP.AddWriteWindow(t0, end)
		for w := 0; w < ecc.WordsPerLine; w++ {
			if essMask&(1<<uint(w)) != 0 {
				pd := c.progTime(res.PerWord[w])
				c.Metrics.IRLP.AddChipService(t0+act, t0+act+pd)
			}
		}
	}

	c.notePost(end)
	c.eng.At(end, c.newWriteEv(r, aw, 0, false).fire)
}

// fineJob describes one chip-word programming job of a fine write.
type fineJob struct {
	chip  int
	flips pcm.FlipKind
}

func (c *Controller) issueFineWrite(r *mem.Request, overlap bool) {
	now := c.eng.Now()
	r.Started = true
	r.Issue = now
	coord := c.decode(r.Addr)
	part := c.partOf(coord)
	if c.parts > 1 {
		// PALP accounting: this write starts while some essential chip's
		// bank is busy in another partition (a read or write it would
		// have waited behind under whole-bank scheduling).
		for w := 0; w < ecc.WordsPerLine; w++ {
			if r.Mask&(1<<uint(w)) == 0 {
				continue
			}
			chip := c.rank.Layout.DataChip(coord.RotIdx, w)
			if !c.chipFree(chip, coord.Bank) && c.chipFreePart(chip, coord.Bank, part) {
				c.Metrics.PartOverlapWrites.Inc()
				break
			}
		}
	}
	aw := c.newActive()
	essMask, res := c.applyWrite(r, coord.LineIdx, aw)
	essCount := bits.OnesCount8(essMask)
	c.Metrics.DirtyWords.Add(essCount)
	c.wearTick()
	if overlap {
		c.Metrics.WoWOverlapped.Inc()
	}

	l := c.rank.Layout
	start := now
	if overlap {
		// The controller polls the DIMM register before scheduling
		// around busy chips (Section IV-D1).
		start = c.statusPollCost(now)
	}

	if essCount == 0 {
		// Fully silent write-back: the chips' internal compare finds
		// nothing to program. Charge the compare on the line's data
		// chips only when the row is closed (row-buffer compare is
		// free), and finish.
		c.Metrics.SilentWrites.Inc()
		end := start
		if !c.rowHitAll(l.DataChips(coord.RotIdx), coord.Bank, coord.Row) {
			dur := c.cfg.Timing.WriteArrayRead.Time()
			for w := 0; w < ecc.WordsPerLine; w++ {
				chip := l.DataChip(coord.RotIdx, w)
				_, e := c.reserveChipPart(chip, coord.Bank, part, start, dur)
				c.rank.Chips[chip].OpenRowIn(coord.Bank, coord.Row)
				if e > end {
					end = e
				}
			}
		}
		aw.req, aw.bank, aw.essCount, aw.end = r, coord.Bank, 0, end
		c.active = append(c.active, aw)
		c.notePost(end)
		c.eng.At(end, c.newWriteEv(r, aw, 0, true).fire)
		return
	}

	// Build the job list: essential data words, then ECC, then PCC.
	var jobsBuf [ecc.WordsPerLine]fineJob
	jobs := jobsBuf[:0]
	for w := 0; w < ecc.WordsPerLine; w++ {
		if essMask&(1<<uint(w)) != 0 {
			jobs = append(jobs, fineJob{chip: l.DataChip(coord.RotIdx, w), flips: res.PerWord[w]})
		}
	}
	eccJob := fineJob{chip: l.ECCChip(coord.RotIdx), flips: res.ECCFlips}
	pccJob := fineJob{chip: l.PCCChip(coord.RotIdx), flips: res.PCCFlips}

	// The two-step RoW split staggers the PCC update after the
	// data+ECC step, so its peak concurrent programming is one word
	// lower than an unsplit write's.
	rowSplit := c.feat.RoW && (c.rdq.Len() > 0 || c.draining) &&
		(essCount == 1 || c.cfg.RoWMultiWord)
	power := essCount + 2
	if rowSplit {
		power = essCount + 1
	}
	c.powerInUse += power

	// Fine-grained command traffic: one RAS + one CAS per chip job.
	t := c.commandCost(start, 2*(len(jobs)+2))
	// Only the essential words cross the data bus (plus code words).
	wl := c.cfg.Timing.TWL.Time()
	burstCycles := c.cfg.Timing.TBurst.Times((essCount + 2 + 7) / 8)
	_, t0 := c.dataBus.Acquire(t, wl+burstCycles.Time(), true)

	timing := c.cfg.Timing
	reserveJob := func(j fineJob, earliest sim.Time) (sim.Time, sim.Time) {
		chip := c.rank.Chips[j.chip]
		act := sim.Time(0)
		if !chip.RowHit(coord.Bank, coord.Row) {
			act = timing.WriteArrayRead.Time()
		}
		prog := c.progTime(j.flips)
		s, e := chip.ReserveProgramPart(coord.Bank, part, earliest, act, prog)
		chip.OpenRowIn(coord.Bank, coord.Row)
		if j.flips.Any() {
			chip.CountWrite(j.flips)
			c.Metrics.IRLP.AddChipService(e-prog, e)
		}
		return s, e
	}

	var end sim.Time
	var dataEnd sim.Time
	if rowSplit && c.cfg.RoWMultiWord && essCount > 1 {
		// Section IV-B4 extension: serialize the word programs so at
		// most one data chip is busy at a time, keeping reads
		// reconstructable throughout.
		earliest := t0
		for _, j := range jobs {
			_, e := reserveJob(j, earliest)
			earliest = e
			if e > dataEnd {
				dataEnd = e
			}
		}
	} else {
		for _, j := range jobs {
			_, e := reserveJob(j, t0)
			if e > dataEnd {
				dataEnd = e
			}
		}
	}
	_, eccEnd := reserveJob(eccJob, t0)
	step1End := dataEnd
	if eccEnd > step1End {
		step1End = eccEnd
	}
	if rowSplit {
		// Step 2: the PCC update runs immediately after step 1 with no
		// interruption (Section IV-B1), freeing the PCC chip during
		// step 1 so reads can reconstruct against it.
		_, e := reserveJob(pccJob, step1End)
		end = e
	} else {
		_, e := reserveJob(pccJob, t0)
		end = e
		if step1End > end {
			end = step1End
		}
	}
	if step1End > end {
		end = step1End
	}

	c.Metrics.IRLP.AddWriteWindow(t0, end)

	aw.req, aw.bank, aw.essCount, aw.end = r, coord.Bank, essCount, end
	aw.coord, aw.mask = coord, r.Mask
	c.active = append(c.active, aw)
	c.notePost(end)
	c.eng.At(end, c.newWriteEv(r, aw, power, false).fire)
}

func (c *Controller) completeWrite(r *mem.Request, aw *activeWrite) {
	if !c.feat.FineGrained {
		c.powerInUse = 0
	}
	c.removeActive(aw)
	r.Done = c.eng.Now()
	c.wrq.Remove(r)
	c.Metrics.Writes.Inc()
	c.Metrics.WriteLatency.Add(r.Latency())
	c.Metrics.NoteDone(r.Done)
	if c.trace != nil {
		c.trace.Span(c.trkService, c.nmWrite, r.Arrive, r.Done-r.Arrive)
		c.trace.Count(c.trkWrq, c.nmDepth, r.Done, int64(c.wrq.Len()))
	}
	if c.hazardWrites > 0 && (r.Mask == 0 || r.Data != nil) {
		c.hazardWrites--
	}
	c.postWriteDone(r)
	c.recycleActive(aw)
}
