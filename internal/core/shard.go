package core

import (
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// This file is the memory side of the PDES sharding boundary
// (internal/pdes): when a simulation runs with -shards N, every channel
// controller lives on a private shard engine driven by a worker
// goroutine, while the CPU/cache/NoC front end stays on the main
// engine. All cross-boundary traffic funnels through exactly two
// mechanisms so the sharded run executes the same events in the same
// (at, seq) total order as the single-threaded engine:
//
//   - front end -> shard: Memory.Submit/CanAccept (and the scheduler
//     kick after a completion) run under a BeginCross/EndCross fence —
//     the coordinator joins the shard's in-flight window, aligns its
//     clock, and threads the sequence counter through the call;
//   - shard -> front end: completion callbacks (OnDone, OnVerify,
//     queue-space notifications) are posted as stamped events through
//     the runtime's single-writer per-shard outboxes and merged into
//     the front-end heap in key order.
//
// With rt == nil (the -shards 1 default) every helper below collapses
// to a direct call and the legacy single-engine path is untouched.

// ShardRuntime is the coordinator-side contract the controllers use to
// cross the shard boundary. internal/pdes implements it; internal/system
// wires it in. All three methods are documented in terms of execution
// context: PostFE is called from a shard's running context (its worker
// goroutine, or the coordinator running an inline window), BeginCross
// and EndCross only from the coordinator (front-end) context.
type ShardRuntime interface {
	// PostFE queues fn for execution on the front-end engine at the
	// given (at, seq) key — the key of the shard event emitting the
	// post, whose inline tail fn is. tailSeq is the shard engine's
	// live sequence counter at the call: the front end resumes it
	// before running fn, so everything fn schedules draws the same
	// tie-breakers the single shared engine would have assigned
	// mid-event. An event may post at most once (a second post would
	// duplicate the key).
	PostFE(shard int, at sim.Time, seq, tailSeq uint64, fn func())
	// BeginCross prepares shard for a synchronous front-end call: it
	// joins the shard's in-flight window (if any), integrates its
	// outbox, aligns the shard clock with the front end, and hands the
	// front end's sequence counter to the shard engine.
	BeginCross(shard int)
	// EndCross returns the sequence counter to the front-end engine
	// after the synchronous call.
	EndCross(shard int)
}

// bindShard attaches the controller to a shard runtime. Called once by
// Memory.SetShardRuntime before the simulation starts.
func (c *Controller) bindShard(rt ShardRuntime, shard int) {
	c.rt = rt
	c.shard = shard
}

// post hands fn to the front end stamped with the key of the event
// currently executing on the shard engine, plus the live counter for
// fn's own scheduling. On a single shared engine fn's work would run
// inline inside that very event, so its position among same-instant
// front-end events is decided by the event's own tie-breaker —
// assigned when the event was scheduled, not when it fires — and its
// spawns draw counter values mid-event. Single-threaded runs call fn
// inline (callers avoid even building the closure on that path).
// Callers post at most once per executed event, as the tail of the
// event's work.
func (c *Controller) post(fn func()) {
	c.rt.PostFE(c.shard, c.eng.Now(), c.eng.CurSeq(), c.eng.Seq(), fn)
}

// kickCross schedules a scheduling pass after a completion's front-end
// callbacks ran. In a sharded run the callbacks execute on the front
// end, so the kick must cross back into the shard under a fence; the
// fence orders the kick's run event after everything the callbacks
// scheduled, exactly as the sequential engine does.
func (c *Controller) kickCross() {
	if c.rt == nil {
		c.kick()
		return
	}
	c.rt.BeginCross(c.shard)
	c.kick()
	c.rt.EndCross(c.shard)
}

// readDoneFE is the front-end-visible tail of a read completion: ECC
// accounting, the requester's callback, queue-space notification, and
// the scheduler kick, in the sequential engine's exact order. eccFix
// reports whether an injected correctable fault was absorbed inline.
func (c *Controller) readDoneFE(r *mem.Request, eccFix bool) {
	if eccFix {
		c.Metrics.ECCCorrected.Inc()
	}
	if r.OnDone != nil {
		r.OnDone(r)
	}
	c.notifySpace(mem.Read)
	c.kickCross()
}

// postReadDone routes readDoneFE across the shard boundary. The
// closure is only materialized on the sharded path, keeping the
// single-threaded completion alloc-free.
func (c *Controller) postReadDone(r *mem.Request, eccFix bool) {
	if c.rt == nil {
		c.readDoneFE(r, eccFix)
		return
	}
	c.post(func() { c.readDoneFE(r, eccFix) })
}

// writeDoneFE is the front-end-visible tail of a write completion.
func (c *Controller) writeDoneFE(r *mem.Request) {
	if r.OnDone != nil {
		r.OnDone(r)
	}
	c.notifySpace(mem.Write)
	c.kickCross()
}

// postWriteDone routes writeDoneFE across the shard boundary.
func (c *Controller) postWriteDone(r *mem.Request) {
	if c.rt == nil {
		c.writeDoneFE(r)
		return
	}
	c.post(func() { c.writeDoneFE(r) })
}

// postVerify routes a reconstructed read's verification outcome to the
// front end.
func (c *Controller) postVerify(r *mem.Request, faulty bool) {
	if c.rt == nil {
		if r.OnVerify != nil {
			r.OnVerify(r, faulty)
		}
		return
	}
	c.post(func() {
		if r.OnVerify != nil {
			r.OnVerify(r, faulty)
		}
	})
}

// notePost records that an event scheduled at t may emit a front-end
// post when it fires (completions and their verify chains). dropPost
// retires the entry when the event executes. Together they give
// PostHorizon an exact view of the already-scheduled completion times.
// Both run only in the shard's owning context, so no lock is needed.
func (c *Controller) notePost(t sim.Time) {
	c.postPending = append(c.postPending, t)
}

func (c *Controller) dropPost() {
	now := c.eng.Now()
	for i, t := range c.postPending {
		if t == now {
			last := len(c.postPending) - 1
			c.postPending[i] = c.postPending[last]
			c.postPending = c.postPending[:last]
			return
		}
	}
}

// PostHorizon reports a conservative lower bound on the simulated time
// of the earliest front-end post this controller could emit, given
// that its next pending engine event is at next. This is the shard's
// lookahead: the PDES coordinator lets other shards (and the front
// end) run strictly below it in parallel.
//
// Two sources bound the horizon. Already-scheduled completion-chain
// events (tracked by notePost) post at known times. New completions
// minted by a future scheduling pass inherit the channel's minimum
// service latency: a read completes no earlier than issue + TCL, a
// write no earlier than issue + TWL (both satisfied by every issue
// path, including pausing and verify chains, whose later events are
// tracked individually). The one zero-latency case is a fully silent
// fine-grained write-back — a queued write with no essential words
// completes at its own issue instant — so any queued write that could
// be silent (empty mask, or caller-supplied data that may match the
// stored line) collapses the lookahead to zero.
func (c *Controller) PostHorizon(next sim.Time) sim.Time {
	h := sim.Time(1<<63 - 1)
	for _, t := range c.postPending {
		if t < h {
			h = t
		}
	}
	if c.rdq.Len() > 0 || c.wrq.Len() > 0 {
		mint := next
		if c.hazardWrites == 0 {
			mint += c.minSvc
		}
		if mint < h {
			h = mint
		}
	}
	return h
}
