package core

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/ecc"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// reliabilityRun drives a hot set of lines with explicit data through a
// Memory configured with the given fault knobs, keeping a golden shadow
// copy, and reports what the fault path did. Requests are chained
// back-to-back so each read observes the preceding write in program
// order.
type reliabilityRun struct {
	silent        int // reads that returned wrong data with no error
	flagged       int // reads that returned an error
	reads, writes int
	met           *mem.Metrics
	stuck, drift  uint64
	remapped      uint64
}

func runReliability(t *testing.T, endurance uint64, drift float64, verify bool, ops int) reliabilityRun {
	t.Helper()
	cfg := config.Default().WithVariant(config.RWoWRDE)
	cfg.Memory.Channels = 1
	cfg.Memory.CapacityBytes = 2 << 30
	cfg.Memory.EnduranceBudget = endurance
	cfg.Memory.DriftProb = drift
	cfg.Memory.VerifyWrites = verify
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const hotLines = 32
	rng := sim.NewRNG(7)
	shadow := make(map[uint64]*[ecc.LineBytes]byte)
	var out reliabilityRun

	var step func(i int)
	step = func(i int) {
		if i >= ops {
			return
		}
		addr := uint64(rng.Intn(hotLines)) * 64
		r := &mem.Request{Addr: addr, Core: -1}
		if sh, ok := shadow[addr]; ok && i%4 == 3 {
			r.Kind = mem.Read
			want := *sh
			out.reads++
			r.OnDone = func(r *mem.Request) {
				if r.Err != nil {
					out.flagged++
				} else if r.ReadData != want {
					out.silent++
					t.Errorf("op %d: read %#x returned corrupt data with no error", i, addr)
				}
				eng.Schedule(sim.NS(40), func() { step(i + 1) })
			}
		} else {
			data := new([ecc.LineBytes]byte)
			for w := 0; w < ecc.WordsPerLine; w++ {
				ecc.SetWord(data, w, rng.Uint64())
			}
			r.Kind = mem.Write
			r.Mask = 0xff
			r.Data = data
			shadow[addr] = data
			out.writes++
			r.OnDone = func(r *mem.Request) {
				eng.Schedule(sim.NS(40), func() { step(i + 1) })
			}
		}
		if !m.Submit(r) {
			t.Fatal("queue full despite serialized requests")
		}
	}
	step(0)
	eng.Run()

	out.met = m.Metrics()
	out.stuck, out.drift = m.FaultCounts()
	out.remapped = out.met.WriteRemaps.Value()
	return out
}

// TestNoSilentCorruptionWithVerify is the PR's end-to-end acceptance
// check: under severe wear (cells stick far past the code's design
// strength) plus drift, with program-and-verify and remapping enabled,
// every read either returns the exact written data or carries a typed
// error — never corrupt data silently. It also cross-checks that the
// injected faults were actually seen and handled by the machinery, so a
// silently disconnected fault model cannot fake a pass.
func TestNoSilentCorruptionWithVerify(t *testing.T) {
	o := runReliability(t, 12, 2e-3, true, 3000)

	if o.silent != 0 {
		t.Fatalf("%d silent corruptions (must be 0 with verify enabled)", o.silent)
	}
	if o.stuck == 0 {
		t.Fatal("no stuck-at faults injected: the test exercised nothing")
	}
	if o.drift == 0 {
		t.Fatal("no drift faults injected: the test exercised nothing")
	}
	handled := o.met.SECDEDCorrected.Value() + o.met.SECDEDCheckFixed.Value() +
		o.met.PCCRecovered.Value() + o.met.UncorrectedReads.Value() +
		o.met.WriteRetries.Value() + o.met.WriteRemaps.Value()
	if handled == 0 {
		t.Fatalf("%d faults injected but none handled: fault path is disconnected", o.stuck+o.drift)
	}
	if o.met.WriteVerifies.Value() == 0 || o.met.VerifyReads.Value() == 0 {
		t.Fatal("verify enabled but no write was verified")
	}
	if o.met.VerifyReads.Value() < o.met.WriteVerifies.Value() {
		t.Fatalf("fewer verify read-backs (%d) than verified writes (%d)",
			o.met.VerifyReads.Value(), o.met.WriteVerifies.Value())
	}
	if o.met.WriteRetries.Value() == 0 {
		t.Fatal("severe wear with verify should trigger reprogram retries")
	}
	if o.remapped == 0 {
		t.Fatal("severe wear with verify should remap worn lines to spares")
	}
	if spares := uint64(config.Default().Memory.SpareLines); o.remapped > o.met.RemapFailures.Value()+spares {
		t.Fatalf("%d remaps exceed the %d-line spare pool", o.remapped, spares)
	}
}

// TestModerateWearECCOnly checks the read path alone: with wear kept
// inside SECDED+PCC design strength and no verify, corrupted reads are
// corrected (or flagged) rather than returned silently, and the
// correction counters prove SECDED actually ran.
func TestModerateWearECCOnly(t *testing.T) {
	o := runReliability(t, 64, 2e-3, false, 3000)

	if o.silent != 0 {
		t.Fatalf("%d silent corruptions under moderate wear", o.silent)
	}
	if o.stuck == 0 {
		t.Fatal("no stuck-at faults injected")
	}
	if o.met.SECDEDCorrected.Value() == 0 {
		t.Fatal("faults injected but SECDED corrected nothing: decode path disconnected")
	}
	if v := o.met.WriteVerifies.Value(); v != 0 {
		t.Fatalf("verify disabled but %d writes verified", v)
	}
}

// TestFaultFreeRunsUnperturbed pins the zero-perturbation invariant:
// with all fault knobs at their defaults the reliability machinery must
// be completely inert — no faults, no corrections, no verify activity,
// no errors — so every seed experiment stays bit-identical.
func TestFaultFreeRunsUnperturbed(t *testing.T) {
	o := runReliability(t, 0, 0, false, 2000)

	if o.silent != 0 || o.flagged != 0 {
		t.Fatalf("fault-free run produced %d silent, %d flagged reads", o.silent, o.flagged)
	}
	if o.stuck != 0 || o.drift != 0 {
		t.Fatalf("fault-free run injected %d stuck, %d drift faults", o.stuck, o.drift)
	}
	zero := []struct {
		name string
		v    uint64
	}{
		{"SECDEDCorrected", o.met.SECDEDCorrected.Value()},
		{"SECDEDCheckFixed", o.met.SECDEDCheckFixed.Value()},
		{"PCCRecovered", o.met.PCCRecovered.Value()},
		{"UncorrectedReads", o.met.UncorrectedReads.Value()},
		{"WriteVerifies", o.met.WriteVerifies.Value()},
		{"VerifyReads", o.met.VerifyReads.Value()},
		{"WriteRetries", o.met.WriteRetries.Value()},
		{"WriteRemaps", o.met.WriteRemaps.Value()},
		{"RemapFailures", o.met.RemapFailures.Value()},
	}
	for _, z := range zero {
		if z.v != 0 {
			t.Errorf("fault-free run: %s = %d, want 0", z.name, z.v)
		}
	}
}

// TestVerifyWithoutFaultsCompletes covers the verify path on perfect
// cells: every read-back matches on the first try, so writes are
// verified with zero retries, remaps, or errors.
func TestVerifyWithoutFaultsCompletes(t *testing.T) {
	o := runReliability(t, 0, 0, true, 1000)

	if o.silent != 0 || o.flagged != 0 {
		t.Fatalf("perfect cells produced %d silent, %d flagged reads", o.silent, o.flagged)
	}
	if o.met.WriteVerifies.Value() == 0 {
		t.Fatal("verify enabled but nothing verified")
	}
	if r := o.met.WriteRetries.Value(); r != 0 {
		t.Fatalf("perfect cells needed %d retries", r)
	}
	if r := o.met.WriteRemaps.Value(); r != 0 {
		t.Fatalf("perfect cells remapped %d lines", r)
	}
}
