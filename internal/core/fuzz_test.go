package core

import (
	"testing"

	"pcmap/internal/config"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

// TestFuzzControllerInvariants drives every variant (plus the pausing
// and wear-leveling options) with randomized traffic shapes and checks
// the controller's global invariants:
//
//   - every accepted request completes, exactly once;
//   - completion times are causal (Done >= Issue >= Arrive);
//   - the engine fully drains (no leaked events);
//   - metrics account for every request;
//   - content checks: reconstructions always verified, none faulty.
func TestFuzzControllerInvariants(t *testing.T) {
	scenarios := []struct {
		name    string
		variant config.Variant
		pausing bool
		wearPsi uint64
		multi   bool
	}{
		{name: "baseline", variant: config.Baseline},
		{name: "baseline-pausing", variant: config.Baseline, pausing: true},
		{name: "row", variant: config.RoWNR},
		{name: "wow", variant: config.WoWNR},
		{name: "rwow", variant: config.RWoWNR},
		{name: "rwow-rd", variant: config.RWoWRD},
		{name: "rwow-rde", variant: config.RWoWRDE},
		{name: "rde-wear", variant: config.RWoWRDE, wearPsi: 7},
		{name: "rde-multiword", variant: config.RWoWRDE, multi: true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				runFuzz(t, sc.variant, sc.pausing, sc.wearPsi, sc.multi, seed)
			}
		})
	}
}

func runFuzz(t *testing.T, v config.Variant, pausing bool, wearPsi uint64, multi bool, seed uint64) {
	t.Helper()
	cfg := config.Default().WithVariant(v)
	cfg.Memory.Channels = 2
	cfg.Memory.CapacityBytes = 2 << 30
	cfg.Memory.WritePausing = pausing
	cfg.Memory.WearLevelPsi = wearPsi
	cfg.Memory.RoWMultiWord = multi
	cfg.Seed = seed
	eng := sim.NewEngine()
	m, err := NewMemory(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Ctrls {
		c.AssertContent = true
	}

	rng := sim.NewRNG(seed * 977)
	issued, completed := 0, 0
	doneSeen := map[*mem.Request]bool{}
	var submit func(r *mem.Request)
	submit = func(r *mem.Request) {
		prev := r.OnDone
		r.OnDone = func(rr *mem.Request) {
			if doneSeen[rr] {
				t.Fatal("request completed twice")
			}
			doneSeen[rr] = true
			completed++
			if rr.Done < rr.Issue || rr.Issue < rr.Arrive {
				t.Fatalf("causality violated: arrive=%v issue=%v done=%v", rr.Arrive, rr.Issue, rr.Done)
			}
			if prev != nil {
				prev(rr)
			}
		}
		issued++
		var try func()
		try = func() {
			if !m.Submit(r) {
				m.OnSpace(r.Kind, r.Addr, try)
			}
		}
		try()
	}

	// Traffic with bursts, hot lines, varied masks and gaps.
	n := 0
	hot := uint64(rng.Intn(4096))
	var gen func()
	gen = func() {
		if n >= 700 {
			return
		}
		n++
		var addr uint64
		if rng.Bool(0.3) {
			addr = hot * 64 // hot line: rewrites, silent stores
		} else {
			addr = uint64(rng.Intn(1<<16)) * 64
		}
		if rng.Bool(0.35) {
			submit(&mem.Request{Kind: mem.Read, Addr: addr})
		} else {
			submit(&mem.Request{Kind: mem.Write, Addr: addr, Mask: uint8(rng.Uint64())})
		}
		gap := sim.NS(float64(rng.Intn(60)))
		eng.Schedule(gap, gen)
	}
	eng.Schedule(0, gen)
	eng.Run()

	if completed != issued {
		t.Fatalf("%s seed %d: %d/%d requests completed", v, seed, completed, issued)
	}
	if eng.Pending() != 0 {
		t.Fatalf("%s seed %d: %d events leaked", v, seed, eng.Pending())
	}
	met := m.Metrics()
	if met.Reads.Value()+met.Writes.Value() != uint64(issued) {
		t.Fatalf("%s seed %d: metrics %d+%d != %d", v, seed,
			met.Reads.Value(), met.Writes.Value(), issued)
	}
	if met.RoWFaulty.Value() != 0 {
		t.Fatalf("%s seed %d: spurious faulty verifications", v, seed)
	}
	if met.RoWVerifies.Value() != met.RoWServed.Value() {
		t.Fatalf("%s seed %d: %d RoW reads but %d verifications", v, seed,
			met.RoWServed.Value(), met.RoWVerifies.Value())
	}
}
