package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"pcmap/internal/sim"
)

// Chrome trace_event serialization. One tick is 100 ps = 1e-4 µs
// exactly, so timestamps are rendered with pure integer math as
// "<ticks/10000>.<ticks%10000 zero-padded to 4>" — no floating point,
// byte-stable across platforms, which the golden test relies on.

func writeTS(w *bufio.Writer, t sim.Time) {
	ticks := t.Ticks()
	fmt.Fprintf(w, "%d.%04d", ticks/10000, ticks%10000)
}

// WriteJSON serializes the trace in Chrome trace_event "JSON object
// format": process/thread metadata first (registration order), then the
// live records oldest-first. The output is deterministic for a
// deterministic run.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	if t != nil {
		for i, p := range t.procs {
			sep()
			fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}", i+1, quote(p))
		}
		for _, ti := range t.tracks {
			sep()
			fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}", ti.pid, ti.tid, quote(ti.name))
		}
		t.each(func(r record) {
			ti := t.tracks[r.track]
			name := quote(t.names[r.name])
			sep()
			switch r.kind {
			case kindSpan:
				fmt.Fprintf(bw, "{\"name\":%s,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":", name, ti.pid, ti.tid)
				writeTS(bw, r.start)
				bw.WriteString(",\"dur\":")
				writeTS(bw, r.dur)
				bw.WriteString("}")
			case kindInstant:
				fmt.Fprintf(bw, "{\"name\":%s,\"ph\":\"I\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":", name, ti.pid, ti.tid)
				writeTS(bw, r.start)
				bw.WriteString("}")
			case kindCount:
				fmt.Fprintf(bw, "{\"name\":%s,\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"ts\":", name, ti.pid, ti.tid)
				writeTS(bw, r.start)
				fmt.Fprintf(bw, ",\"args\":{\"value\":%d}}", r.dur.Ticks())
			}
		})
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// quote JSON-encodes a metadata string. Metadata is cold path, so the
// stdlib encoder is fine here.
func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// traceEvent mirrors the subset of the trace_event format the
// validator checks.
type traceEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	PID  *int64           `json:"pid"`
	TID  *int64           `json:"tid"`
	TS   *float64         `json:"ts"`
	Dur  *float64         `json:"dur"`
	S    string           `json:"s"`
	Args *json.RawMessage `json:"args"`
}

// Validate checks that r holds structurally valid Chrome trace_event
// JSON as this package emits it: an object with a traceEvents array
// whose entries have the fields their phase requires. It is the backing
// for `pcmaptrace validate` and the trace-smoke CI check.
func Validate(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	for i, ev := range f.TraceEvents {
		if err := validateEvent(ev); err != nil {
			return fmt.Errorf("trace: event %d (%q): %w", i, ev.Name, err)
		}
	}
	return nil
}

func validateEvent(ev traceEvent) error {
	if ev.Name == "" {
		return fmt.Errorf("missing name")
	}
	if ev.PID == nil || ev.TID == nil {
		return fmt.Errorf("missing pid/tid")
	}
	needTS := func() error {
		if ev.TS == nil {
			return fmt.Errorf("ph %q missing ts", ev.Ph)
		}
		if *ev.TS < 0 {
			return fmt.Errorf("negative ts %v", *ev.TS)
		}
		return nil
	}
	switch ev.Ph {
	case "M":
		if ev.Args == nil {
			return fmt.Errorf("metadata event missing args")
		}
	case "X":
		if err := needTS(); err != nil {
			return err
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			return fmt.Errorf("complete span needs non-negative dur")
		}
	case "I":
		if err := needTS(); err != nil {
			return err
		}
		switch ev.S {
		case "", "g", "p", "t":
		default:
			return fmt.Errorf("bad instant scope %q", ev.S)
		}
	case "C":
		if err := needTS(); err != nil {
			return err
		}
		if ev.Args == nil {
			return fmt.Errorf("counter event missing args")
		}
	case "":
		return fmt.Errorf("missing ph")
	default:
		return fmt.Errorf("unsupported ph %q", ev.Ph)
	}
	return nil
}
