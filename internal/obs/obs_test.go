package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pcmap/internal/sim"
)

// buildFixedTrace emits a small hand-authored timeline exercising every
// record kind, both process groups, and the fractional-tick timestamp
// path. The golden test freezes its exact serialization.
func buildFixedTrace() *Tracer {
	tr := New(64, 1)
	bank := tr.Track("pcm chan0", "bank0")
	core := tr.Track("cpu", "core0")
	bank2 := tr.Track("pcm chan0", "bank1")
	read := tr.Name("read")
	stall := tr.Name("stall.mshr_full")
	depth := tr.Name("rdq.depth")
	tr.Span(bank, read, 0, sim.MemCycle.Times(2))
	tr.Instant(core, stall, sim.CPUCycle.Times(3))
	tr.Count(bank2, depth, sim.Time(12345), 7)
	tr.Span(bank2, read, sim.Time(12345), sim.Time(1))
	return tr
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "fixed.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (rerun with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSON drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// The golden bytes must themselves be a valid trace.
	if err := Validate(bytes.NewReader(want)); err != nil {
		t.Fatalf("golden trace does not validate: %v", err)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	// Every method must be callable on nil without effect.
	id := tr.Track("p", "t")
	n := tr.Name("x")
	tr.Span(id, n, 0, 5)
	tr.Instant(id, n, 1)
	tr.Count(id, n, 2, 3)
	if tr.Enabled() || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report disabled and empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty trace must validate: %v", err)
	}
}

func TestRingOverwriteCountsDropped(t *testing.T) {
	tr := New(4, 1)
	tk := tr.Track("p", "t")
	nm := tr.Name("e")
	for i := 0; i < 10; i++ {
		tr.Instant(tk, nm, sim.Time(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	// Survivors must be the newest records, oldest-first.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "\"ts\":0.0006") || strings.Contains(s, "\"ts\":0.0005") {
		t.Fatalf("ring did not keep the tail: %s", s)
	}
}

func TestCountSampling(t *testing.T) {
	tr := New(64, 4)
	tk := tr.Track("p", "t")
	nm := tr.Name("depth")
	for i := 0; i < 16; i++ {
		tr.Count(tk, nm, sim.Time(i), int64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("1-in-4 sampling kept %d of 16 counter records", tr.Len())
	}
	// Spans bypass sampling.
	tr.Span(tk, nm, 0, 1)
	if tr.Len() != 5 {
		t.Fatal("spans must not be sampled away")
	}
}

func TestTrackGroupsByProcess(t *testing.T) {
	tr := New(8, 1)
	a := tr.Track("pcm chan0", "bank0")
	b := tr.Track("cpu", "core0")
	c := tr.Track("pcm chan0", "bank1")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("track IDs not sequential: %d %d %d", a, b, c)
	}
	if tr.tracks[a].pid != tr.tracks[c].pid {
		t.Fatal("same process string must share a pid")
	}
	if tr.tracks[a].pid == tr.tracks[b].pid {
		t.Fatal("distinct processes must get distinct pids")
	}
	if tr.tracks[a].tid == tr.tracks[c].tid {
		t.Fatal("tracks within a process must get distinct tids")
	}
}

func TestNameInterning(t *testing.T) {
	tr := New(8, 1)
	a := tr.Name("read")
	b := tr.Name("write")
	if tr.Name("read") != a || tr.Name("write") != b || a == b {
		t.Fatal("name interning broken")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"displayTimeUnit":"ns"}`,
		"missing name":    `{"traceEvents":[{"ph":"I","pid":1,"tid":1,"ts":0}]}`,
		"missing ph":      `{"traceEvents":[{"name":"e","pid":1,"tid":1,"ts":0}]}`,
		"bad ph":          `{"traceEvents":[{"name":"e","ph":"Z","pid":1,"tid":1,"ts":0}]}`,
		"span without ts": `{"traceEvents":[{"name":"e","ph":"X","pid":1,"tid":1,"dur":1}]}`,
		"negative dur":    `{"traceEvents":[{"name":"e","ph":"X","pid":1,"tid":1,"ts":0,"dur":-1}]}`,
		"counter no args": `{"traceEvents":[{"name":"e","ph":"C","pid":1,"tid":1,"ts":0}]}`,
		"missing pid":     `{"traceEvents":[{"name":"e","ph":"I","tid":1,"ts":0}]}`,
		"bad scope":       `{"traceEvents":[{"name":"e","ph":"I","s":"q","pid":1,"tid":1,"ts":0}]}`,
	}
	for label, in := range cases {
		if err := Validate(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Validate accepted malformed input", label)
		}
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := New(8, 1)
	tk := tr.Track("p", "t")
	nm := tr.Name("e")
	tr.Span(tk, nm, 10, -5)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("clamped span must validate: %v", err)
	}
}
