package obs

import (
	"bytes"
	"testing"

	"pcmap/internal/sim"
)

// TestEngineHotLoopTracing drives the tracer from the engine's step
// hook and from event callbacks — the exact shape of the production
// instrumentation — under a deterministic million-event load. Run with
// -race this doubles as the regression test that engine + tracer stay a
// single-goroutine pairing; it also pins the zero-drop behaviour at
// DefaultCapacity-scale rings.
func TestEngineHotLoopTracing(t *testing.T) {
	e := sim.NewEngine()
	tr := New(1<<20, 1)
	track := tr.Track("engine", "events")
	tick := tr.Name("tick")
	step := tr.Name("step")
	e.SetStepHook(func(now sim.Time, pending int) {
		tr.Count(track, step, now, int64(pending))
	})
	const events = 1 << 18
	fired := 0
	var fire func()
	fire = func() {
		tr.Instant(track, tick, e.Now())
		fired++
		if fired < events {
			e.Schedule(sim.Time(fired%7+1), fire)
		}
	}
	e.Schedule(1, fire)
	e.Run()
	if fired != events {
		t.Fatalf("fired %d events, want %d", fired, events)
	}
	// Step hook fires once per event, Instant once per event.
	if tr.Len() != 2*events {
		t.Fatalf("recorded %d records, want %d", tr.Len(), 2*events)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d records with a large ring", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("hot-loop trace does not validate: %v", err)
	}
}
