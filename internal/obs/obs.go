// Package obs is the simulator's observability layer: a fixed-capacity,
// allocation-free timeline tracer that components feed with spans (a
// bank busy programming a line), instants (a core stalling on a full
// MSHR), and counter samples (read-queue depth), and that serializes to
// Chrome trace_event JSON for chrome://tracing or Perfetto.
//
// The tracer is built around two constraints:
//
//   - Disabled must be free. Every emit method is nil-receiver safe, so
//     instrumented components hold a plain *Tracer that is nil in normal
//     runs and the fast path is a single predictable branch — no
//     interface dispatch, no allocation, no time formatting.
//
//   - Enabled must not allocate per event. Records are fixed-size
//     structs written into a preallocated ring buffer; names and tracks
//     are interned once at construction time so the hot path passes
//     small integer IDs. When the ring wraps, the oldest records are
//     overwritten and counted in Dropped — a trace is a window onto the
//     end of a run, never a reason to grow memory without bound.
//
// Track and name registration is deterministic (construction order), so
// two runs of the same configuration produce byte-identical trace JSON.
package obs

import "pcmap/internal/sim"

// TrackID identifies one horizontal lane of the timeline (a bank, a
// core, a queue). Tracks are registered at construction time via
// Tracer.Track and grouped into named processes in the trace UI.
type TrackID int32

// NameID is an interned event name. Instrumentation interns its names
// once (Tracer.Name) and passes the IDs on the hot path.
type NameID int32

// Record kinds. The zero value is invalid so a zeroed ring slot is
// recognizable.
const (
	kindInvalid uint8 = iota
	kindSpan
	kindInstant
	kindCount
)

// record is one fixed-size ring slot. 32 bytes.
type record struct {
	start sim.Time
	dur   sim.Time // kindSpan: duration; kindCount: sampled value
	track TrackID
	name  NameID
	kind  uint8
}

type trackInfo struct {
	process string
	name    string
	pid     int32
	tid     int32
}

// Tracer collects timeline records into a ring buffer. It is not safe
// for concurrent use, matching the single-goroutine engine; the -race
// test in this package exists to catch any future violation of that
// pairing, not to bless concurrent emitters.
//
// A nil *Tracer is valid and inert: every method returns immediately.
type Tracer struct {
	//pcmaplint:guardedby single-goroutine
	ring []record
	// head is the next slot to write.
	//pcmaplint:guardedby single-goroutine
	head int
	// n is the number of live records (≤ len(ring)).
	//pcmaplint:guardedby single-goroutine
	n int
	//pcmaplint:guardedby single-goroutine
	dropped uint64

	// sampleN thins high-frequency counter records: only every Nth
	// Count call per tracer is kept. Spans and instants are never
	// sampled — they are the records that explain a timeline, and the
	// ring already bounds their cost.
	//pcmaplint:guardedby single-goroutine
	sampleN int
	//pcmaplint:guardedby single-goroutine
	countSeq uint64

	//pcmaplint:guardedby single-goroutine
	tracks []trackInfo
	//pcmaplint:guardedby single-goroutine
	names []string
	// procs holds distinct process names, in registration order.
	//pcmaplint:guardedby single-goroutine
	procs []string
}

// DefaultCapacity is the ring size used when Option WithCapacity is not
// given: 1<<18 records × 32 bytes = 8 MiB, enough for the full
// measured window of the bundled workloads at default budgets.
const DefaultCapacity = 1 << 18

// New returns an enabled tracer with capacity ring slots (clamped to a
// minimum of 1) and counter sampling 1-in-sample (values < 1 mean "keep
// every sample").
func New(capacity, sample int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if sample < 1 {
		sample = 1
	}
	return &Tracer{ring: make([]record, capacity), sampleN: sample}
}

// Track registers a timeline lane under a process group ("pcm chan0",
// "cpu", ...) and returns its ID. Call at construction time only; the
// hot path uses the returned ID.
func (t *Tracer) Track(process, name string) TrackID {
	if t == nil {
		return 0
	}
	pid := int32(-1)
	for i, p := range t.procs {
		if p == process {
			pid = int32(i + 1)
			break
		}
	}
	if pid < 0 {
		t.procs = append(t.procs, process)
		pid = int32(len(t.procs))
	}
	tid := int32(1)
	for _, ti := range t.tracks {
		if ti.pid == pid {
			tid++
		}
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, trackInfo{process: process, name: name, pid: pid, tid: tid})
	return id
}

// Name interns an event name and returns its ID. Call at construction
// time only.
func (t *Tracer) Name(s string) NameID {
	if t == nil {
		return 0
	}
	for i, n := range t.names {
		if n == s {
			return NameID(i)
		}
	}
	t.names = append(t.names, s)
	return NameID(len(t.names) - 1)
}

// push writes one record into the ring, overwriting the oldest when
// full.
func (t *Tracer) push(r record) {
	t.ring[t.head] = r
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped++
	}
}

// Span records a complete interval [start, start+dur) on a track: a
// bank busy with an array read, a request in service, a write drain.
// Emit it when the interval ends — sim time is monotonic, so records
// land in deterministic order. Nil-safe; zero or negative durations are
// clamped to zero so chrome://tracing still renders the marker.
func (t *Tracer) Span(track TrackID, name NameID, start, dur sim.Time) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.push(record{kind: kindSpan, track: track, name: name, start: start, dur: dur})
}

// Instant records a point event on a track: a stall cause firing, a
// retry, a remap. Nil-safe.
func (t *Tracer) Instant(track TrackID, name NameID, ts sim.Time) {
	if t == nil {
		return
	}
	t.push(record{kind: kindInstant, track: track, name: name, start: ts})
}

// Count records a sampled counter value (queue depth, occupancy) on a
// track. Subject to the tracer's 1-in-N sampling policy. Nil-safe.
func (t *Tracer) Count(track TrackID, name NameID, ts sim.Time, value int64) {
	if t == nil {
		return
	}
	t.countSeq++
	if t.sampleN > 1 && t.countSeq%uint64(t.sampleN) != 0 {
		return
	}
	t.push(record{kind: kindCount, track: track, name: name, start: ts, dur: sim.Time(value)})
}

// Enabled reports whether the tracer records anything. It is the
// documented spelling for guarding instrumentation whose *setup* (not
// emission) would cost something — e.g. computing a span start time.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of live records.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many records were overwritten because the ring
// wrapped. A non-zero value means the trace shows only the tail of the
// run; raise the capacity or the sampling interval.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// each visits live records oldest-first.
func (t *Tracer) each(f func(record)) {
	if t.n == 0 {
		return
	}
	start := t.head - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		j := start + i
		if j >= len(t.ring) {
			j -= len(t.ring)
		}
		f(t.ring[j])
	}
}
