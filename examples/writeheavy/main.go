// Writeheavy: a STREAM-like, write-dominated workload (the paper's
// motivating case — PCM write bandwidth is the bottleneck) replayed
// against all six system variants. Shows how WoW consolidation and
// ECC/PCC rotation recover write throughput, reproducing the Figure 9
// ordering on a single request stream.
//
//	go run ./examples/writeheavy
package main

import (
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
	"pcmap/internal/trace"
)

func main() {
	// Build the stream once: bursts of single/double-word write-backs
	// at correlated offsets (dirty-word clustering, Section IV-C2)
	// with occasional reads.
	var recs []trace.Record
	rng := sim.NewRNG(2024)
	offset := 0
	for i := 0; i < 4000; i++ {
		at := sim.NS(18).Times(i)
		addr := uint64(rng.Intn(1<<18)) * 64
		if i%5 == 4 {
			recs = append(recs, trace.Record{At: at, Addr: addr, Kind: mem.Read})
			continue
		}
		if !rng.Bool(0.32) { // the paper's 32% same-offset correlation
			offset = rng.Intn(8)
		}
		mask := uint8(1) << uint(offset)
		if rng.Bool(0.3) {
			mask |= 1 << uint((offset+1)%8)
		}
		recs = append(recs, trace.Record{At: at, Addr: addr, Kind: mem.Write, Mask: mask})
	}

	fmt.Printf("%-10s %12s %14s %12s %10s %8s\n",
		"variant", "makespan", "writes/us", "read-lat", "IRLP", "WoW")
	var baseThroughput float64
	for _, v := range config.Variants {
		cfg := config.Default().WithVariant(v)
		eng := sim.NewEngine()
		m, err := core.NewMemory(eng, cfg)
		if err != nil {
			panic(err)
		}
		trace.Replay(eng, m, recs)
		eng.Run()
		met := m.Metrics()
		irlp, _ := m.IRLP()
		thr := met.WriteThroughput()
		if v == config.Baseline {
			baseThroughput = thr
		}
		fmt.Printf("%-10s %10.1fus %8.2f(%.2fx) %10.1fns %10.2f %8d\n",
			v, eng.Now().Nanoseconds()/1000, thr, thr/baseThroughput,
			met.ReadLatency.MeanNS(), irlp, met.WoWOverlapped.Value())
	}
	fmt.Println("\nExpected ordering (paper Figure 9): Baseline < WoW-NR < RWoW-NR < RWoW-RD <= RWoW-RDE.")
}
