// Quickstart: build a PCMap memory system, issue reads and masked
// write-backs against it, and watch RoW/WoW overlap requests that a
// conventional controller would serialize.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

func main() {
	// A full PCMap system: RoW + WoW + data and ECC/PCC rotation.
	cfg := config.Default().WithVariant(config.RWoWRDE)
	eng := sim.NewEngine()
	memory, err := core.NewMemory(eng, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("built", memory)

	// Write a line with real content, then read it back.
	var payload [64]byte
	copy(payload[:], "PCM remembers this across the whole simulation.")
	done := func(r *mem.Request) {
		fmt.Printf("  %-5s addr=%#06x latency=%6.1fns reconstructed=%v\n",
			r.Kind, r.Addr, r.Latency().Nanoseconds(), r.Reconstructed)
	}
	memory.Submit(&mem.Request{Kind: mem.Write, Addr: 0x4000, Mask: 0xff, Data: &payload, OnDone: done})
	eng.Run()
	var read mem.Request
	read = mem.Request{Kind: mem.Read, Addr: 0x4000, OnDone: func(r *mem.Request) {
		done(r)
		fmt.Printf("  read back: %q\n", string(r.ReadData[:47]))
	}}
	memory.Submit(&read)
	eng.Run()

	// Now a burst of single-word write-backs (the paper's common case:
	// 14-52%% of write-backs dirty exactly one 8B word) with reads
	// arriving mid-burst. The controller consolidates the writes (WoW)
	// and serves the reads by PCC parity reconstruction (RoW).
	fmt.Println("\nwrite burst with concurrent reads (single channel):")
	rng := sim.NewRNG(1)
	// Stride 256B keeps everything on channel 0, so the burst fills
	// that channel's write queue and triggers a drain.
	line := func() uint64 { return uint64(0x100000) + uint64(rng.Intn(4096))*256 }
	var retry func(r *mem.Request) func()
	retry = func(r *mem.Request) func() {
		return func() {
			if !memory.Submit(r) {
				memory.OnSpace(r.Kind, r.Addr, retry(r))
			}
		}
	}
	for i := 0; i < 120; i++ {
		r := &mem.Request{Kind: mem.Write, Addr: line(), Mask: 1 << uint(rng.Intn(8))}
		retry(r)()
	}
	for i := 0; i < 6; i++ {
		addr := line()
		eng.Schedule(sim.NS(float64(150*i)), func() {
			memory.Submit(&mem.Request{Kind: mem.Read, Addr: addr, OnDone: done})
		})
	}
	eng.Run()

	met := memory.Metrics()
	irlp, irlpMax := memory.IRLP()
	fmt.Println("\nwhat the controller did:")
	fmt.Printf("  reads=%d writes=%d\n", met.Reads.Value(), met.Writes.Value())
	fmt.Printf("  reads served during writes: %d (of them %d by parity reconstruction)\n",
		met.OverlapReads.Value(), met.RoWServed.Value())
	fmt.Printf("  writes consolidated over an ongoing write: %d\n", met.WoWOverlapped.Value())
	fmt.Printf("  intra-rank parallelism during writes: %.2f (max %d of 8)\n", irlp, irlpMax)
	fmt.Printf("  mean read latency: %.1fns, mean write latency: %.1fns\n",
		met.ReadLatency.MeanNS(), met.WriteLatency.MeanNS())
}
