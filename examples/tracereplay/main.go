// Tracereplay: run a full-system simulation of a Table II workload
// while recording its PCM request stream, then replay that exact
// stream open-loop against a different controller variant — the
// apples-to-apples comparison a trace-driven methodology buys.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/sim"
	"pcmap/internal/system"
	"pcmap/internal/trace"
)

func main() {
	// Phase 1: record. An 8-thread canneal run on the baseline system
	// (the default config's variant).
	s, err := system.New(system.WithWorkload("canneal"))
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	detach := trace.Attach(s.Mem, w)
	if _, err := s.Run(5_000, 60_000); err != nil {
		panic(err)
	}
	detach()
	if err := w.Flush(); err != nil {
		panic(err)
	}
	fmt.Printf("recorded %d PCM requests from canneal (baseline, 8 cores)\n\n", w.Count())

	recs, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		panic(err)
	}

	// Phase 2: replay the identical stream against each variant.
	fmt.Printf("%-10s %12s %12s %12s %8s\n", "variant", "makespan", "read-lat", "write-lat", "IRLP")
	for _, v := range config.Variants {
		vcfg := config.Default().WithVariant(v)
		eng := sim.NewEngine()
		m, err := core.NewMemory(eng, vcfg)
		if err != nil {
			panic(err)
		}
		st := trace.Replay(eng, m, recs)
		eng.Run()
		if st.Completed != st.Submitted {
			panic("replay lost requests")
		}
		met := m.Metrics()
		irlp, _ := m.IRLP()
		fmt.Printf("%-10s %10.1fus %10.1fns %10.1fns %8.2f\n",
			v, eng.Now().Nanoseconds()/1000,
			met.ReadLatency.MeanNS(), met.WriteLatency.MeanNS(), irlp)
	}
	fmt.Println("\nSame request stream, six controllers: only the scheduling differs.")
}
