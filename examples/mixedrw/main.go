// Mixedrw: a read-latency-sensitive scenario shaped like a key-value
// store — point reads racing a background compaction's write-backs on
// one channel — including injected storage faults so the RoW
// verification / rollback machinery (Section IV-B3, Table IV) fires.
//
//	go run ./examples/mixedrw
package main

import (
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
	"pcmap/internal/stats"
)

func run(v config.Variant, faulty bool) (mean, p95 float64, served, verified, faults uint64) {
	cfg := config.Default().WithVariant(v)
	if faulty {
		cfg.Memory.BitErrorRate = 0.02 // 2% of reads see a correctable bit error
	}
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		panic(err)
	}
	rng := sim.NewRNG(7)
	lat := stats.NewLatencyTracker()

	// Background compaction: steady single-word write-backs.
	for i := 0; i < 600; i++ {
		addr := uint64(rng.Intn(1<<16)) * 256 // channel 0
		at := sim.NS(95).Times(i)
		req := &mem.Request{Kind: mem.Write, Addr: addr, Mask: 1 << uint(rng.Intn(8))}
		eng.At(at, func() {
			var try func()
			try = func() {
				if !m.Submit(req) {
					m.OnSpace(mem.Write, req.Addr, try)
				}
			}
			try()
		})
	}
	// Foreground point reads.
	for i := 0; i < 400; i++ {
		addr := uint64(rng.Intn(1<<16)) * 256
		at := sim.NS(140).Times(i) + sim.NS(5)
		req := &mem.Request{Kind: mem.Read, Addr: addr, OnDone: func(r *mem.Request) {
			lat.Add(r.Latency())
		}}
		eng.At(at, func() {
			var try func()
			try = func() {
				if !m.Submit(req) {
					m.OnSpace(mem.Read, req.Addr, try)
				}
			}
			try()
		})
	}
	eng.Run()
	met := m.Metrics()
	return lat.MeanNS(), lat.PercentileNS(95),
		met.RoWServed.Value(), met.RoWVerifies.Value(), met.RoWFaulty.Value()
}

func main() {
	fmt.Println("point-read latency under a background write stream (one channel):")
	fmt.Printf("%-10s %10s %10s %8s %9s %7s\n", "variant", "mean", "p95", "RoW", "verified", "faulty")
	for _, v := range []config.Variant{config.Baseline, config.RoWNR, config.RWoWRDE} {
		mean, p95, served, verified, faults := run(v, false)
		fmt.Printf("%-10s %8.1fns %8.1fns %8d %9d %7d\n", v, mean, p95, served, verified, faults)
	}

	fmt.Println("\nsame, with a 2% injected bit-error rate (every RoW read is")
	fmt.Println("verified off the critical path; faults trigger resends/rollbacks):")
	mean, p95, served, verified, faults := run(config.RWoWRDE, true)
	fmt.Printf("%-10s %8.1fns %8.1fns %8d %9d %7d\n", config.RWoWRDE, mean, p95, served, verified, faults)
	if verified != served {
		panic("every reconstruction-served read must be verified")
	}
	fmt.Println("\nAll reconstructed reads were SECDED-verified after the busy chip freed.")
}
