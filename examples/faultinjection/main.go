// Faultinjection: the reliability path end-to-end. A hot set of lines
// is rewritten until cells exceed their write-endurance budget and
// stick, while resistance drift randomly flips stored bits; every read
// then runs SECDED decode, falls back to PCC reconstruction for
// double-bit words, and reports anything worse as a typed
// mem.UncorrectableError. With program-and-verify enabled the
// controller additionally reads every write back, re-programs failed
// words, and remaps worn-out lines to the spare pool. A golden shadow
// copy checks the invariant the whole path exists for: corrupted data
// is never returned silently.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"

	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/ecc"
	"pcmap/internal/mem"
	"pcmap/internal/sim"
)

const (
	hotLines = 48   // small enough that rewrites exhaust tiny budgets
	ops      = 4000 // alternating write bursts and read-backs
)

type outcome struct {
	stuck, drift   uint64
	secded, pcc    uint64
	uncorrectable  uint64
	retries, remap uint64
	silent         int // reads returning wrong data with no error: must be 0
}

func main() {
	type setup struct {
		name      string
		endurance uint64
		drift     float64
		verify    bool
	}
	// The hot set sees ~60 rewrites per line, so budget 56 leaves each
	// word with at most a couple of stuck cells (inside SECDED+PCC's
	// design strength), while budget 12 wears words far past what any
	// code stored in equally worn cells can promise to catch.
	setups := []setup{
		{"perfect cells", 0, 0, false},
		{"moderate wear, ECC only", 56, 2e-3, false},
		{"severe wear, ECC only", 12, 2e-3, false},
		{"severe wear + verify/remap", 12, 2e-3, true},
	}
	fmt.Printf("%-28s %6s %6s %7s %5s %7s %8s %7s %7s\n",
		"configuration", "stuck", "drift", "SECDED", "PCC", "uncorr", "retries", "remaps", "silent")
	for _, su := range setups {
		o := run(su.endurance, su.drift, su.verify)
		fmt.Printf("%-28s %6d %6d %7d %5d %7d %8d %7d %7d\n",
			su.name, o.stuck, o.drift, o.secded, o.pcc, o.uncorrectable, o.retries, o.remap, o.silent)
	}
	fmt.Println(`
silent = reads returning wrong data with no error report. ECC alone cannot
bound it under severe wear — the check bytes and PCC parity sit in equally
worn cells, so past the code's design strength detection is best-effort.
Program-and-verify catches bad cells at write time and remaps worn lines,
keeping wear bounded: with it enabled, silent must be 0.`)
}

func run(endurance uint64, drift float64, verify bool) outcome {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	cfg.Memory.EnduranceBudget = endurance
	cfg.Memory.DriftProb = drift
	cfg.Memory.VerifyWrites = verify
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		panic(err)
	}

	rng := sim.NewRNG(1234)
	shadow := make(map[uint64]*[ecc.LineBytes]byte)
	var o outcome

	// Chain requests back-to-back so each read observes the preceding
	// write's content (the shadow model needs program order).
	var step func(i int)
	step = func(i int) {
		if i >= ops {
			return
		}
		addr := uint64(rng.Intn(hotLines)) * 64
		r := &mem.Request{Addr: addr, Core: -1}
		if sh, ok := shadow[addr]; ok && i%4 == 3 {
			r.Kind = mem.Read
			want := *sh
			r.OnDone = func(r *mem.Request) {
				if r.ReadData != want && r.Err == nil {
					o.silent++
				}
				eng.Schedule(sim.NS(40), func() { step(i + 1) })
			}
		} else {
			data := new([ecc.LineBytes]byte)
			for w := 0; w < ecc.WordsPerLine; w++ {
				ecc.SetWord(data, w, rng.Uint64())
			}
			r.Kind = mem.Write
			r.Mask = 0xff
			r.Data = data
			shadow[addr] = data
			r.OnDone = func(r *mem.Request) {
				eng.Schedule(sim.NS(40), func() { step(i + 1) })
			}
		}
		if !m.Submit(r) {
			panic("queue full despite serialized requests")
		}
	}
	step(0)
	eng.Run()

	met := m.Metrics()
	o.stuck, o.drift = m.FaultCounts()
	o.secded = met.SECDEDCorrected.Value()
	o.pcc = met.PCCRecovered.Value()
	o.uncorrectable = met.UncorrectedReads.Value()
	o.retries = met.WriteRetries.Value()
	o.remap = met.WriteRemaps.Value()
	return o
}
