// Endurance: the lifetime side of the paper's story. PCMap's rotation
// spreads programming across chips (Section IV-C2 argues better
// lifetime than the baseline); Start-Gap wear leveling (cited as
// orthogonal) rotates lines within chips; differential writes keep the
// programming energy proportional to changed bits. This example runs
// the same write-heavy workload under four configurations and reports
// per-chip wear, leveling overhead, and energy.
//
//	go run ./examples/endurance
package main

import (
	"fmt"
	"strings"

	"pcmap/internal/config"
	"pcmap/internal/energy"
	"pcmap/internal/system"
)

func main() {
	type setup struct {
		name    string
		variant config.Variant
		psi     uint64
	}
	setups := []setup{
		{"baseline", config.Baseline, 0},
		{"baseline + Start-Gap", config.Baseline, 100},
		{"PCMap (rotation)", config.RWoWRDE, 0},
		{"PCMap + Start-Gap", config.RWoWRDE, 100},
	}

	fmt.Printf("%-22s %10s %10s %10s %14s\n",
		"configuration", "wear CV", "gap moves", "IPC", "write energy")
	for _, su := range setups {
		cfg := config.Default().WithVariant(su.variant)
		cfg.Memory.WearLevelPsi = su.psi
		s, err := system.New(system.WithConfig(cfg), system.WithWorkload("MP4")) // astar x8: the write-heaviest mix
		if err != nil {
			panic(err)
		}
		res, err := s.Run(10_000, 80_000)
		if err != nil {
			panic(err)
		}
		perLine := energy.Default().WriteEnergyPerLineUJ(s.Mem.Ctrls[0].Rank(), s.Mem.Ctrls[0].Metrics)
		fmt.Printf("%-22s %10.3f %10d %10.2f %11.4fuJ\n",
			su.name, res.WearCV, res.Mem.WearMoves.Value(), res.IPCSum, perLine)
	}

	fmt.Println("\nper-chip programming share, channel 0 (D=data, E=ECC, P=PCC):")
	for _, su := range []setup{{"baseline", config.Baseline, 0}, {"PCMap (rotation)", config.RWoWRDE, 0}} {
		cfg := config.Default().WithVariant(su.variant)
		s, err := system.New(system.WithConfig(cfg), system.WithWorkload("MP4"))
		if err != nil {
			panic(err)
		}
		if _, err := s.Run(10_000, 80_000); err != nil {
			panic(err)
		}
		total, per := s.Mem.Ctrls[0].Rank().TotalWordWrites()
		fmt.Printf("  %-18s", su.name)
		labels := []string{"D0", "D1", "D2", "D3", "D4", "D5", "D6", "D7", "E", "P"}
		for i, n := range per {
			share := 0.0
			if total > 0 {
				share = float64(n) / float64(total)
			}
			bar := strings.Repeat("#", int(share*40))
			fmt.Printf("\n    %-3s %5.1f%% %s", labels[i], share*100, bar)
		}
		fmt.Println()
	}
	fmt.Println("\nWithout rotation the ECC and PCC chips absorb a programming share far")
	fmt.Println("above the data chips'; full rotation flattens the histogram — the")
	fmt.Println("paper's lifetime argument, measured.")
}
