module pcmap

go 1.22
