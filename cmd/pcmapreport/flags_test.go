package main

import (
	"flag"
	"reflect"
	"testing"

	"pcmap/internal/cli"
)

// TestFlagSurface pins pcmapreport's command-line interface.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("pcmapreport", flag.ContinueOnError)
	defineFlags(fs)
	want := []string{"in"}
	if got := cli.Surface(fs); !reflect.DeepEqual(got, want) {
		t.Errorf("flag surface changed:\n got %v\nwant %v", got, want)
	}
}
