// Command pcmapreport renders paper-vs-measured comparison tables from
// the JSON written by `pcmapsim -json`. It embeds the paper's published
// reference points for every figure and table so a results file can be
// turned into an EXPERIMENTS.md-style report in one step.
//
//	pcmapsim -exp all -json results.json
//	pcmapreport -in results.json > report.md
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pcmap/internal/cli"
)

// figure mirrors exp.FigureResult's JSON shape (kept local so the tool
// can be used on archived result files without importing the sim).
type figure struct {
	ID     string
	Title  string
	Series map[string]map[string]float64
	Notes  []string
}

// paperRef carries the paper's quoted values for headline comparisons.
var paperRef = map[string]string{
	"fig1":     "reads delayed 11.5%-38.1%; normalized latency 1.2x-1.8x",
	"fig2":     "1-word share 14% (omnetpp) to 52% (cactusADM); <4 words for 77-99%",
	"fig8":     "baseline ~2.37 average; RWoW-RDE 4.5 average, 7.4 max",
	"fig9":     ">1.2x on 5/12 workloads; >10% for the majority",
	"fig10":    "RoW-NR -6-14%; RWoW-RDE ~-50% (MT), ~-55% (MP)",
	"fig11":    "RoW-NR 4.5%, WoW-NR 6.1%, RWoW-NR 9.95%, RWoW-RD 13.1%, RWoW-RDE 16.6%",
	"table2":   "Table II RPKI/WPKI per workload",
	"table3":   "RWoW-RDE 16.6%->24.3%; RWoW-NR 11.3%->24.7% (2x->8x)",
	"table4":   "rollbacks up to 5.8%; cost up to 4.6%; never below baseline",
	"headline": "IRLP 2.37->4.5 (max 7.4); IPC +15.6% (MP) / +16.7% (MT)",
}

// defineFlags builds the flag surface (pinned by TestFlagSurface).
func defineFlags(fs *flag.FlagSet) (in *string) {
	return cli.In(fs, "results.json", "JSON file written by pcmapsim -json")
}

func main() {
	in := defineFlags(flag.CommandLine)
	flag.Parse()

	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var figs []figure
	if err := json.Unmarshal(data, &figs); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *in, err))
	}
	fmt.Println("# PCMap reproduction report")
	fmt.Println()
	for _, f := range figs {
		fmt.Printf("## %s\n\n", f.Title)
		if ref, ok := paperRef[f.ID]; ok {
			fmt.Printf("Paper reference: %s\n\n", ref)
		}
		printSeries(f)
		for _, n := range f.Notes {
			fmt.Printf("> %s\n", n)
		}
		fmt.Println()
	}
}

func printSeries(f figure) {
	rows := make([]string, 0, len(f.Series))
	colSet := map[string]bool{}
	for r, cols := range f.Series {
		rows = append(rows, r)
		for c := range cols {
			colSet[c] = true
		}
	}
	sort.Strings(rows)
	cols := make([]string, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)

	fmt.Printf("| row | %s |\n", strings.Join(cols, " | "))
	fmt.Printf("|---|%s\n", strings.Repeat("---|", len(cols)))
	for _, r := range rows {
		cells := make([]string, len(cols))
		for i, c := range cols {
			if v, ok := f.Series[r][c]; ok {
				cells[i] = fmt.Sprintf("%.3f", v)
			} else {
				cells[i] = "-"
			}
		}
		fmt.Printf("| %s | %s |\n", r, strings.Join(cells, " | "))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcmapreport:", err)
	os.Exit(1)
}
