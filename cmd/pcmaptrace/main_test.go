package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGenInfoReplayRoundTrip exercises the tool end to end: generate a
// trace from a real workload run, inspect it, and replay it against a
// PCMap variant.
func TestGenInfoReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trc")

	if err := cmdGen([]string{"-workload", "MP4", "-instr", "20000", "-out", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	st, err := os.Stat(out)
	if err != nil || st.Size() <= 16 {
		t.Fatalf("trace not written: %v (size %d)", err, st.Size())
	}
	if err := cmdInfo([]string{"-in", out}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdReplay([]string{"-in", out, "-variant", "RWoW-RDE"}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := cmdReplay([]string{"-in", out, "-variant", "Baseline"}); err != nil {
		t.Fatalf("replay baseline: %v", err)
	}
}

func TestReplayRejectsUnknownVariant(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trc")
	if err := cmdGen([]string{"-workload", "dedup", "-instr", "5000", "-out", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdReplay([]string{"-in", out, "-variant", "NoSuch"}); err == nil {
		t.Fatal("unknown variant must error")
	}
}

func TestInfoRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trc")
	os.WriteFile(bad, []byte("not a trace"), 0o644)
	if err := cmdInfo([]string{"-in", bad}); err == nil {
		t.Fatal("garbage input must error")
	}
}
