package main

import (
	"flag"
	"reflect"
	"testing"

	"pcmap/internal/cli"
)

// TestFlagSurface pins each subcommand's command-line interface; the
// literal lists are the reviewed surfaces.
func TestFlagSurface(t *testing.T) {
	cases := []struct {
		sub  string
		fs   *flag.FlagSet
		want []string
	}{
		{"gen", must(genFlags()), []string{"instr", "out", "seed", "workload"}},
		{"info", must(infoFlags()), []string{"in"}},
		{"replay", must(replayFlags()), []string{"in", "variant"}},
		{"validate", must(validateFlags()), []string{"in"}},
	}
	for _, tc := range cases {
		if got := cli.Surface(tc.fs); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s flag surface changed:\n got %v\nwant %v", tc.sub, got, tc.want)
		}
	}
}

func must[T any](fs *flag.FlagSet, _ T) *flag.FlagSet { return fs }
