// Command pcmaptrace records, inspects, and replays PCM-level memory
// request traces, and validates timeline traces.
//
//	pcmaptrace gen -workload canneal -instr 200000 -out canneal.trc
//	pcmaptrace info -in canneal.trc
//	pcmaptrace replay -in canneal.trc -variant RWoW-RDE
//	pcmaptrace validate -in out.json
//
// Traces decouple workload generation from controller evaluation: the
// same request stream can be replayed open-loop against every system
// variant. The validate subcommand checks a Chrome trace_event JSON
// timeline written by `pcmapsim -trace` (exit 0 iff well-formed).
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"strings"

	"pcmap/internal/cli"
	"pcmap/internal/config"
	"pcmap/internal/core"
	"pcmap/internal/mem"
	"pcmap/internal/obs"
	"pcmap/internal/sim"
	"pcmap/internal/system"
	"pcmap/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcmaptrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pcmaptrace {gen|info|replay|validate} [flags]")
	os.Exit(2)
}

func validateFlags() (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	return fs, cli.In(fs, "trace.json", "timeline trace (Chrome trace_event JSON written by pcmapsim -trace)")
}

func cmdValidate(args []string) error {
	fs, in := validateFlags()
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.Validate(f); err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	fmt.Printf("%s: valid trace_event JSON\n", *in)
	return nil
}

// genFlags, infoFlags, and replayFlags build each subcommand's flag
// set through the shared vocabulary in internal/cli; TestFlagSurface
// pins the resulting surfaces.
type genOpts struct {
	workload *string
	instr    *uint64
	out      *string
	seed     *uint64
}

func genFlags() (*flag.FlagSet, genOpts) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	return fs, genOpts{
		workload: cli.Workload(fs, "canneal"),
		instr:    fs.Uint64("instr", 200_000, "instructions per core to simulate"),
		out:      cli.Out(fs, "trace.trc", "output trace file"),
		seed:     cli.Seed(fs, 1),
	}
}

func infoFlags() (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	return fs, cli.In(fs, "trace.trc", "trace file to inspect")
}

type replayOpts struct {
	in      *string
	variant *string
}

func replayFlags() (*flag.FlagSet, replayOpts) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	return fs, replayOpts{
		in:      cli.In(fs, "trace.trc", "trace file to replay"),
		variant: cli.Variant(fs, "RWoW-RDE"),
	}
}

func cmdGen(args []string) error {
	fs, o := genFlags()
	fs.Parse(args)
	workload, instr, out, seed := o.workload, o.instr, o.out, o.seed

	s, err := system.New(system.WithWorkload(*workload), system.WithSeed(*seed))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	trace.Attach(s.Mem, w)
	if _, err := s.Run(0, *instr); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d requests to %s\n", w.Count(), *out)
	return nil
}

func cmdInfo(args []string) error {
	fs, in := infoFlags()
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	var reads, writes, silent uint64
	var dirty [9]uint64
	chans := map[int]uint64{}
	for _, r := range recs {
		if r.Kind == mem.Read {
			reads++
		} else {
			writes++
			k := bits.OnesCount8(r.Mask)
			dirty[k]++
			if k == 0 {
				silent++
			}
		}
		chans[int(r.Addr>>6)&3]++
	}
	span := recs[len(recs)-1].At - recs[0].At
	fmt.Printf("requests     %d (%d reads, %d writes, %d silent writes)\n", len(recs), reads, writes, silent)
	fmt.Printf("span         %.1f us\n", span.Nanoseconds()/1000)
	if span > 0 {
		fmt.Printf("rate         %.2f req/us\n", float64(len(recs))/(span.Nanoseconds()/1000))
	}
	fmt.Printf("channels     %v\n", chans)
	fmt.Printf("dirty words  ")
	for k, n := range dirty {
		if writes > 0 {
			fmt.Printf("%d:%.1f%% ", k, 100*float64(n)/float64(writes))
		}
	}
	fmt.Println()
	return nil
}

func cmdReplay(args []string) error {
	fs, o := replayFlags()
	fs.Parse(args)
	in, variantName := o.in, o.variant

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	variant, found := config.VariantByName(*variantName)
	if !found {
		return fmt.Errorf("unknown variant %q (want one of %s)",
			*variantName, strings.Join(config.VariantNames(), ", "))
	}

	cfg := config.Default().WithVariant(variant)
	eng := sim.NewEngine()
	m, err := core.NewMemory(eng, cfg)
	if err != nil {
		return err
	}
	st := trace.Replay(eng, m, recs)
	eng.Run()
	met := m.Metrics()
	irlp, irlpMax := m.IRLP()
	fmt.Printf("variant           %s\n", variant)
	fmt.Printf("replayed          %d requests (%d deferred on full queues)\n", st.Submitted, st.Deferred)
	fmt.Printf("makespan          %.1f us\n", eng.Now().Nanoseconds()/1000)
	fmt.Printf("read latency      %.1f ns mean, %.1f ns p95\n",
		met.ReadLatency.MeanNS(), met.ReadLatency.PercentileNS(95))
	fmt.Printf("write latency     %.1f ns mean\n", met.WriteLatency.MeanNS())
	fmt.Printf("write throughput  %.2f writes/us\n", met.WriteThroughput())
	fmt.Printf("IRLP              %.2f avg, %d max\n", irlp, irlpMax)
	fmt.Printf("RoW served        %d\n", met.RoWServed.Value())
	fmt.Printf("WoW overlapped    %d\n", met.WoWOverlapped.Value())
	return nil
}
