// Command pcmaplint runs the project's static-analysis suite: the
// custom analyzers in internal/analysis/checks (determinism, unit
// safety, metrics lifecycle, typed errors, float comparisons, lock
// discipline, goroutine lifecycle, wall-clock bans, channel ownership)
// plus `go vet`. It exits non-zero when any check reports a finding, so
// CI and `make lint` can gate on it.
//
// Usage:
//
//	pcmaplint [-vet=false] [-dir DIR] [-fix] [-json] [-summary] [packages...]
//
// Packages default to ./... . Findings print as
//
//	file:line:col: message (analyzer)
//
// With -json, findings are emitted to stdout as a JSON array instead
// (one object per finding: file, line, col, analyzer, message, and any
// suggested fixes), for CI artifacts and tooling; vet output is routed
// to stderr so stdout stays parseable. With -fix, suggested fixes are
// applied to the files in place and the findings they resolve are not
// counted as failures. With -summary, a per-analyzer finding count is
// printed to stderr after the run.
//
// A finding can be suppressed with a same-line or preceding-line
// comment
//
//	//pcmaplint:ignore analyzer1,analyzer2 reason for the exception
//
// The reason is mandatory; reasonless directives are themselves
// findings. See DESIGN.md ("Simulator invariants" and "Concurrency
// invariants") for what each analyzer enforces and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"

	"pcmap/internal/analysis"
	"pcmap/internal/analysis/checks"
)

// floatCmpScope limits the floatcmp analyzer to the packages where a
// float equality is essentially always a bug: statistics aggregation,
// the energy model, and the experiment harness. Elsewhere (e.g. unit
// tests asserting exact small constants) the comparison can be
// deliberate.
var floatCmpScope = regexp.MustCompile(`(^|/)(stats|energy|exp)(/|$)`)

// defineFlags builds the flag surface (pinned by TestFlagSurface).
func defineFlags(fs *flag.FlagSet) (vet *bool, dir *string, fix, jsonOut, summary *bool) {
	return fs.Bool("vet", true, "also run `go vet` over the same packages"),
		fs.String("dir", ".", "module directory to analyze"),
		fs.Bool("fix", false, "apply suggested fixes to the files in place"),
		fs.Bool("json", false, "emit findings as a JSON array on stdout"),
		fs.Bool("summary", false, "print per-analyzer finding counts to stderr")
}

// jsonFinding is the -json output schema, one object per finding.
type jsonFinding struct {
	File     string                  `json:"file"`
	Line     int                     `json:"line"`
	Col      int                     `json:"col"`
	Analyzer string                  `json:"analyzer"`
	Message  string                  `json:"message"`
	Fixes    []analysis.SuggestedFix `json:"fixes,omitempty"`
}

func main() {
	vet, dir, fix, jsonOut, summary := defineFlags(flag.CommandLine)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	vetFailed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = *dir
		cmd.Stdout = os.Stdout
		if *jsonOut {
			cmd.Stdout = os.Stderr // keep stdout pure JSON
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcmaplint:", err)
		os.Exit(2)
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzersFor(pkg.PkgPath))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcmaplint:", err)
			os.Exit(2)
		}
		all = append(all, diags...)
	}

	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(r) {
			return r
		}
		return name
	}

	if *fix {
		changed, skipped, err := analysis.ApplyFixes(all)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcmaplint:", err)
			os.Exit(2)
		}
		for _, f := range changed {
			fmt.Fprintf(os.Stderr, "pcmaplint: fixed %s\n", rel(f))
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "pcmaplint: %d overlapping edits skipped; re-run -fix\n", skipped)
		}
		// A finding whose fix was just applied is resolved, not a failure.
		rest := all[:0]
		for _, d := range all {
			if len(d.Fixes) == 0 {
				rest = append(rest, d)
			}
		}
		all = rest
	}

	for i := range all {
		all[i].Pos.Filename = rel(all[i].Pos.Filename)
	}

	if *jsonOut {
		findings := make([]jsonFinding, 0, len(all))
		for _, d := range all {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Fixes:    d.Fixes,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "pcmaplint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}

	if *summary {
		counts := map[string]int{}
		for _, d := range all {
			counts[d.Analyzer]++
		}
		line := "pcmaplint:"
		for _, a := range checks.All {
			line += fmt.Sprintf(" %s=%d", a.Name, counts[a.Name])
		}
		line += fmt.Sprintf(" findings=%d (%d packages)", len(all), len(pkgs))
		if *vet {
			if vetFailed {
				line += "; go vet failed"
			} else {
				line += "; go vet ok"
			}
		}
		fmt.Fprintln(os.Stderr, line)
	}

	if len(all) > 0 || vetFailed {
		os.Exit(1)
	}
}

// analyzersFor selects the suite for one package: everything except
// floatcmp, which applies only inside its scope.
func analyzersFor(pkgPath string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range checks.All {
		if a == checks.FloatCmp && !floatCmpScope.MatchString(pkgPath) {
			continue
		}
		out = append(out, a)
	}
	return out
}
