// Command pcmaplint runs the project's static-analysis suite: the
// custom analyzers in internal/analysis/checks (determinism, unit
// safety, metrics lifecycle, typed errors, float comparisons) plus
// `go vet`. It exits non-zero when any check reports a finding, so CI
// and `make lint` can gate on it.
//
// Usage:
//
//	pcmaplint [-vet=false] [-dir DIR] [packages...]
//
// Packages default to ./... . Findings print as
//
//	file:line:col: message (analyzer)
//
// A finding can be suppressed with a same-line or preceding-line
// comment
//
//	//pcmaplint:ignore analyzer1,analyzer2 reason for the exception
//
// The reason is mandatory; reasonless directives are themselves
// findings. See DESIGN.md ("Simulator invariants") for what each
// analyzer enforces and why.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"

	"pcmap/internal/analysis"
	"pcmap/internal/analysis/checks"
)

// floatCmpScope limits the floatcmp analyzer to the packages where a
// float equality is essentially always a bug: statistics aggregation,
// the energy model, and the experiment harness. Elsewhere (e.g. unit
// tests asserting exact small constants) the comparison can be
// deliberate.
var floatCmpScope = regexp.MustCompile(`(^|/)(stats|energy|exp)(/|$)`)

// defineFlags builds the flag surface (pinned by TestFlagSurface).
func defineFlags(fs *flag.FlagSet) (vet *bool, dir *string) {
	return fs.Bool("vet", true, "also run `go vet` over the same packages"),
		fs.String("dir", ".", "module directory to analyze")
}

func main() {
	vet, dir := defineFlags(flag.CommandLine)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = *dir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcmaplint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzersFor(pkg.PkgPath))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcmaplint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			failed = true
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// analyzersFor selects the suite for one package: everything except
// floatcmp, which applies only inside its scope.
func analyzersFor(pkgPath string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range checks.All {
		if a == checks.FloatCmp && !floatCmpScope.MatchString(pkgPath) {
			continue
		}
		out = append(out, a)
	}
	return out
}
