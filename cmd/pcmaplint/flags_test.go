package main

import (
	"flag"
	"reflect"
	"testing"

	"pcmap/internal/cli"
)

// TestFlagSurface pins pcmaplint's command-line interface.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("pcmaplint", flag.ContinueOnError)
	defineFlags(fs)
	want := []string{"dir", "fix", "json", "summary", "vet"}
	if got := cli.Surface(fs); !reflect.DeepEqual(got, want) {
		t.Errorf("flag surface changed:\n got %v\nwant %v", got, want)
	}
}
