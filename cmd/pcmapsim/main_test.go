package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

// TestMain builds the pcmapsim binary once so the flag-validation tests
// can exercise real exit codes rather than in-process approximations.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "pcmapsim")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(dir, "pcmapsim")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		panic("build failed: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// TestInvalidFlagsExitNonZero runs the binary with each class of invalid
// input and asserts it exits non-zero with a message naming the problem,
// instead of running a long simulation on garbage or dying on a panic.
func TestInvalidFlagsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"bad format", []string{"-format", "xml"}, `invalid -format "xml"`},
		{"zero measure", []string{"-measure", "0"}, "invalid -measure 0"},
		{"negative ratio", []string{"-exp", "adhoc", "-ratio", "-1"}, "invalid -ratio"},
		{"drift out of range", []string{"-exp", "adhoc", "-drift", "1.5"}, "invalid -drift"},
		{"unknown experiment", []string{"-exp", "fig99"}, `unknown experiment "fig99"`},
		{"unknown variant", []string{"-exp", "adhoc", "-variant", "NoSuch"}, `unknown variant "NoSuch"`},
		{"unknown reliability variant", []string{"-exp", "reliability", "-variant", "NoSuch"}, `unknown variant "NoSuch"`},
		{"unparseable flag", []string{"-measure", "lots"}, "invalid value"},
		{"resume without cache", []string{"-exp", "adhoc", "-resume"}, "invalid -resume"},
		{"negative retries", []string{"-exp", "adhoc", "-retries", "-2"}, "invalid -retries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr strings.Builder
			cmd := exec.Command(binPath, tc.args...)
			cmd.Stderr = &stderr
			err := cmd.Run()
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("want non-zero exit, got err=%v stderr=%q", err, stderr.String())
			}
			if ee.ExitCode() == 0 {
				t.Fatalf("exit code 0 for invalid input")
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestUnknownWorkloadFails asserts an unknown workload mix is rejected
// by the runner with a clear error rather than silently simulating an
// empty system.
func TestUnknownWorkloadFails(t *testing.T) {
	var stderr strings.Builder
	cmd := exec.Command(binPath, "-exp", "adhoc", "-workload", "NOPE", "-measure", "1000")
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("want non-zero exit, got err=%v stderr=%q", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "NOPE") {
		t.Fatalf("stderr %q does not name the bad workload", stderr.String())
	}
}
