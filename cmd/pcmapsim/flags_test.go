package main

import (
	"flag"
	"reflect"
	"testing"

	"pcmap/internal/cli"
)

// TestFlagSurface pins pcmapsim's command-line interface. The literal
// list below is the reviewed surface: adding, renaming, or dropping a
// flag must update it, making interface changes visible in review.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("pcmapsim", flag.ContinueOnError)
	defineFlags(fs)
	want := []string{
		"avgmt", "cache", "cpuprofile", "drift", "endurance", "exp",
		"format", "json", "list-variants", "measure", "memprofile", "par",
		"pausing", "ratio", "resume", "retries", "seed", "shards", "timeout",
		"trace", "tracesample", "v", "variant", "verify", "warmup", "workload",
	}
	if got := cli.Surface(fs); !reflect.DeepEqual(got, want) {
		t.Errorf("flag surface changed:\n got %v\nwant %v", got, want)
	}
}

// TestServeFlagSurface pins the serve subcommand's interface the same
// way.
func TestServeFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("pcmapsim serve", flag.ContinueOnError)
	defineServeFlags(fs)
	want := []string{
		"addr", "cache", "drain", "maxbudget", "maxtimeout", "measure",
		"queue", "retries", "seed", "timeout", "v", "warmup", "workers",
	}
	if got := cli.Surface(fs); !reflect.DeepEqual(got, want) {
		t.Errorf("serve flag surface changed:\n got %v\nwant %v", got, want)
	}
}
