// Command pcmapsim regenerates the paper's evaluation: every figure
// and table of "Boosting Access Parallelism to PCM-Based Main Memory"
// (ISCA 2016), on the simulator this repository implements.
//
// Usage:
//
//	pcmapsim -exp fig8                 # one experiment
//	pcmapsim -exp all -json out.json   # everything, plus raw series
//	pcmapsim -exp fig11 -avgmt         # include the Average(MT) PARSEC sweep
//	pcmapsim -exp adhoc -workload MP4 -variant RWoW-RDE
//	pcmapsim -exp adhoc -workload stream -trace out.json   # timeline trace
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"pcmap/internal/cli"
	"pcmap/internal/config"
	"pcmap/internal/exp"
	"pcmap/internal/obs"
)

// simFlags is pcmapsim's full flag surface, defined through the shared
// vocabulary in internal/cli where a flag is common across tools and
// pinned by TestFlagSurface.
type simFlags struct {
	exp       *string
	warmup    *uint64
	measure   *uint64
	avgmt     *bool
	format    *string
	jsonPath  *string
	par       *int
	verbose   *bool
	workload  *string
	variant   *string
	listVars  *bool
	seed      *uint64
	shards    *int
	ratio     *float64
	pausing   *bool
	endurance *uint64
	drift     *float64
	verify    *bool
	tracePath *string
	traceSmpl *int
	cacheDir  *string
	resume    *bool
	retries   *int
	timeout   *time.Duration
	cpuProf   *string
	memProf   *string
}

func defineFlags(fs *flag.FlagSet) *simFlags {
	return &simFlags{
		exp:       fs.String("exp", "headline", "experiment: fig1,fig2,fig8,fig9,fig10,fig11,table2,table3,table4,headline,reliability,all,adhoc"),
		warmup:    fs.Uint64("warmup", 40_000, "warmup instructions per core"),
		measure:   fs.Uint64("measure", 400_000, "measured instructions per core"),
		avgmt:     fs.Bool("avgmt", false, "include the full 13-program PARSEC Average(MT) sweep"),
		format:    fs.String("format", "md", "output format: md or csv"),
		jsonPath:  fs.String("json", "", "also write raw series as JSON to this file"),
		par:       fs.Int("par", 0, "parallel simulations (0 = NumCPU)"),
		verbose:   fs.Bool("v", false, "print per-run progress"),
		workload:  cli.Workload(fs, "MP4"),
		variant:   cli.Variant(fs, "RWoW-RDE"),
		listVars:  cli.ListVariants(fs),
		seed:      cli.Seed(fs, 0),
		shards:    cli.Shards(fs),
		ratio:     fs.Float64("ratio", 0, "adhoc: write-to-read latency ratio override (0 = default 2x)"),
		pausing:   fs.Bool("pausing", false, "adhoc: enable the write-pausing comparator (baseline only)"),
		endurance: fs.Uint64("endurance", 0, "adhoc: write-endurance budget before cells stick (0 = perfect cells)"),
		drift:     fs.Float64("drift", 0, "adhoc: per-read drift bit-flip probability"),
		verify:    fs.Bool("verify", false, "adhoc: enable the program-and-verify write path"),
		tracePath: fs.String("trace", "", "adhoc: write a Chrome trace_event timeline of the run to this JSON file"),
		traceSmpl: fs.Int("tracesample", 1, "adhoc: keep every Nth counter sample in the trace (spans and instants are never sampled)"),
		cacheDir:  fs.String("cache", "", "persist completed runs to this result-cache directory"),
		resume:    fs.Bool("resume", false, "load previously cached runs instead of re-simulating (requires -cache)"),
		retries:   fs.Int("retries", 0, "re-attempt a failed simulation up to this many times"),
		timeout:   cli.Timeout(fs, 0),
		cpuProf:   fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memProf:   fs.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

func main() {
	// `pcmapsim serve` is a subcommand with its own flag surface (the
	// long-running simulation service); everything else is the one-shot
	// flag interface below.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := cmdServe(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}

	f := defineFlags(flag.CommandLine)
	flag.Parse()
	if *f.listVars {
		fmt.Print(cli.PrintVariants())
		return
	}
	var (
		expName   = f.exp
		warmup    = f.warmup
		measure   = f.measure
		avgmt     = f.avgmt
		format    = f.format
		jsonPath  = f.jsonPath
		par       = f.par
		verbose   = f.verbose
		workload  = f.workload
		variant   = f.variant
		seed      = f.seed
		shards    = f.shards
		ratio     = f.ratio
		pausing   = f.pausing
		endurance = f.endurance
		drift     = f.drift
		verify    = f.verify
		tracePath = f.tracePath
		traceSmpl = f.traceSmpl
		cacheDir  = f.cacheDir
		resume    = f.resume
		retries   = f.retries
		timeout   = f.timeout
		cpuProf   = f.cpuProf
		memProf   = f.memProf
	)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer writeHeapProfile(*memProf)
	}

	if *format != "md" && *format != "csv" {
		fatal(fmt.Errorf("invalid -format %q (want md or csv)", *format))
	}
	if *measure == 0 {
		fatal(fmt.Errorf("invalid -measure 0 (need a measured instruction budget)"))
	}
	if *ratio < 0 {
		fatal(fmt.Errorf("invalid -ratio %g (must be >= 0)", *ratio))
	}
	if *drift < 0 || *drift >= 1 {
		fatal(fmt.Errorf("invalid -drift %g (must be in [0,1))", *drift))
	}
	if *resume && *cacheDir == "" {
		fatal(fmt.Errorf("invalid -resume: requires -cache DIR to resume from"))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("invalid -retries %d (must be >= 0)", *retries))
	}
	if *traceSmpl < 1 {
		fatal(fmt.Errorf("invalid -tracesample %d (must be >= 1)", *traceSmpl))
	}
	if *tracePath != "" && *expName != "adhoc" {
		fatal(fmt.Errorf("invalid -trace: timeline tracing only applies to single runs (-exp adhoc)"))
	}
	if *shards < 1 {
		fatal(fmt.Errorf("invalid -shards %d (must be >= 1)", *shards))
	}
	if *shards > 1 && *tracePath != "" {
		fatal(fmt.Errorf("invalid -shards %d with -trace: the timeline tracer observes a single engine's step stream", *shards))
	}

	// First SIGINT/SIGTERM cancels the sweep: no new simulations are
	// dispatched, in-flight ones finish and land in the cache, and the
	// process exits 130 — re-running with -cache DIR -resume continues
	// where it stopped. A second signal kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -timeout is the same cooperative cancellation as a signal: the
	// deadline stops dispatch, in-flight simulations halt between engine
	// events, and cached runs stay resumable.
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	r := exp.NewRunner()
	r.Warmup, r.Measure, r.Parallelism = *warmup, *measure, *par
	r.Resume, r.Retries = *resume, *retries
	r.Shards = *shards
	if *cacheDir != "" {
		cache, err := exp.NewDiskCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		r.Cache = cache
	}
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	// Sweep throughput summary: stderr only, so stdout (figures, tables,
	// JSON series) stays a pure function of config and seed.
	defer printAggregate(r)

	if *expName == "adhoc" {
		if err := runAdhoc(ctx, r, adhocOpts{
			workload: *workload, variant: *variant, ratio: *ratio, pausing: *pausing,
			endurance: *endurance, drift: *drift, verify: *verify, seed: *seed,
			tracePath: *tracePath, traceSample: *traceSmpl,
		}); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				timedOut(r, *timeout, *cacheDir)
			}
			fatal(err)
		}
		return
	}

	type expFn func() (*exp.FigureResult, error)
	table := map[string]expFn{
		"fig1":      func() (*exp.FigureResult, error) { return exp.Fig1(ctx, r) },
		"fig2":      func() (*exp.FigureResult, error) { return exp.Fig2(ctx, r) },
		"fig8":      func() (*exp.FigureResult, error) { return exp.Fig8(ctx, r, *avgmt) },
		"fig9":      func() (*exp.FigureResult, error) { return exp.Fig9(ctx, r, *avgmt) },
		"fig10":     func() (*exp.FigureResult, error) { return exp.Fig10(ctx, r, *avgmt) },
		"fig11":     func() (*exp.FigureResult, error) { return exp.Fig11(ctx, r, *avgmt) },
		"table2":    func() (*exp.FigureResult, error) { return exp.Table2(ctx, r) },
		"table3":    func() (*exp.FigureResult, error) { return exp.Table3(ctx, r) },
		"table4":    func() (*exp.FigureResult, error) { return exp.Table4(ctx, r) },
		"headline":  func() (*exp.FigureResult, error) { return exp.Headline(ctx, r, *avgmt) },
		"pausing":   func() (*exp.FigureResult, error) { return exp.Pausing(ctx, r) },
		"palp":      func() (*exp.FigureResult, error) { return exp.Palp(ctx, r) },
		"ablations": func() (*exp.FigureResult, error) { return exp.Ablations(ctx, r) },
		"reliability": func() (*exp.FigureResult, error) {
			v, err := lookupVariant(*variant)
			if err != nil {
				return nil, err
			}
			return exp.Reliability(ctx, r, *workload, v)
		},
	}
	order := []string{"fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "table2", "table3", "table4", "headline", "pausing", "palp", "ablations", "reliability"}

	var names []string
	if *expName == "all" {
		names = order
	} else {
		for _, n := range strings.Split(*expName, ",") {
			if _, ok := table[n]; !ok {
				fatal(fmt.Errorf("unknown experiment %q (want one of %s, all, adhoc)", n, strings.Join(order, ", ")))
			}
			names = append(names, n)
		}
	}

	var results []*exp.FigureResult
	for _, n := range names {
		f, err := table[n]()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted(r, *cacheDir)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				timedOut(r, *timeout, *cacheDir)
			}
			fatal(err)
		}
		results = append(results, f)
		if *format == "csv" {
			fmt.Println(f.Table.CSV())
		} else {
			fmt.Println(f.Table.Markdown())
		}
		for _, note := range f.Notes {
			fmt.Printf("> %s\n", note)
		}
		fmt.Println()
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// lookupVariant resolves a -variant flag value against the variant
// registry, with a clear error listing the valid names.
func lookupVariant(name string) (config.Variant, error) {
	if v, ok := config.VariantByName(name); ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want one of %s)", name, strings.Join(config.VariantNames(), ", "))
}

// adhocOpts bundles the adhoc run's flag values.
type adhocOpts struct {
	workload, variant string
	ratio             float64
	pausing           bool
	endurance         uint64
	drift             float64
	verify            bool
	seed              uint64
	tracePath         string
	traceSample       int
}

func runAdhoc(ctx context.Context, r *exp.Runner, o adhocOpts) error {
	variant, err := lookupVariant(o.variant)
	if err != nil {
		return err
	}
	if o.tracePath != "" {
		r.Tracer = obs.New(obs.DefaultCapacity, o.traceSample)
	}
	res, err := r.RunCtx(ctx, exp.Spec{Workload: o.workload, Variant: variant,
		WriteToReadRatio: o.ratio, WritePausing: o.pausing,
		EnduranceBudget: o.endurance, DriftProb: o.drift, VerifyWrites: o.verify,
		Seed: o.seed})
	if err != nil {
		return err
	}
	if r.Tracer != nil {
		if err := writeTrace(r.Tracer, o.tracePath); err != nil {
			return err
		}
	}
	fmt.Printf("workload          %s\n", res.Workload)
	fmt.Printf("variant           %s\n", res.Variant)
	fmt.Printf("IPC (sum)         %.3f\n", res.IPCSum)
	fmt.Printf("RPKI / WPKI       %.2f / %.2f\n", res.RPKI, res.WPKI)
	fmt.Printf("IRLP avg / max    %.2f / %d\n", res.IRLPAvg, res.IRLPMax)
	fmt.Printf("read latency      %.1f ns (p95 %.1f ns)\n",
		res.Mem.ReadLatency.MeanNS(), res.Mem.ReadLatency.PercentileNS(95))
	fmt.Printf("write throughput  %.2f writes/us\n", res.Mem.WriteThroughput())
	fmt.Printf("reads delayed     %.1f%%\n",
		100*float64(res.Mem.ReadsDelayedByWrite.Value())/float64(res.Mem.Reads.Value()+1))
	fmt.Printf("RoW served        %d (verifies %d, faulty %d)\n",
		res.Mem.RoWServed.Value(), res.Mem.RoWVerifies.Value(), res.Mem.RoWFaulty.Value())
	fmt.Printf("WoW overlapped    %d\n", res.Mem.WoWOverlapped.Value())
	fmt.Printf("rollbacks         %d\n", res.Rollbacks)
	fmt.Printf("wear imbalance    %.3f (CV of per-chip writes)\n", res.WearCV)
	fmt.Printf("write pauses      %d\n", res.Mem.WritePauses.Value())
	// Follow-on variant lines print only when the capability is on, so
	// the six paper variants' reports stay byte-identical.
	if feat := res.Variant.Features(); feat.PartitionRoW {
		fmt.Printf("part overlaps     %d reads, %d writes\n",
			res.Mem.PartOverlapReads.Value(), res.Mem.PartOverlapWrites.Value())
	} else if feat.ContentAware && res.Mem.SetBits != nil {
		fmt.Printf("bits per write    %.1f SET, %.1f RESET (mean)\n",
			res.Mem.SetBits.MeanValue(), res.Mem.ResetBits.MeanValue())
	}
	if o.endurance > 0 || o.drift > 0 || o.verify {
		fmt.Printf("injected faults   %d stuck-at, %d drift flips\n", res.InjectedStuck, res.InjectedDrift)
		fmt.Printf("read corrections  SECDED %d (check-only %d), PCC rebuilt %d, uncorrectable %d\n",
			res.Mem.SECDEDCorrected.Value(), res.Mem.SECDEDCheckFixed.Value(),
			res.Mem.PCCRecovered.Value(), res.Mem.UncorrectedReads.Value())
		fmt.Printf("verify path       %d verified, %d read-backs, %d retries, %d remaps (%d failed)\n",
			res.Mem.WriteVerifies.Value(), res.Mem.VerifyReads.Value(),
			res.Mem.WriteRetries.Value(), res.Mem.WriteRemaps.Value(), res.Mem.RemapFailures.Value())
		if res.Mem.WriteVerifies.Value() > 0 {
			fmt.Printf("verify overhead   %.1f ns/write (p95 %.1f ns)\n",
				res.Mem.VerifyLatency.MeanNS(), res.Mem.VerifyLatency.PercentileNS(95))
		}
	}
	fmt.Printf("energy            %s\n", res.Energy)
	return nil
}

// writeTrace serializes the run's timeline as Chrome trace_event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev). Trace
// bookkeeping goes to stderr so stdout stays the run report alone.
func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "pcmapsim: trace ring overflowed; the %d oldest records were dropped (the trace covers the end of the run)\n", d)
	}
	fmt.Fprintf(os.Stderr, "pcmapsim: wrote %s (%d timeline records)\n", path, tr.Len())
	return nil
}

// printAggregate emits the one-line sweep throughput summary to stderr.
func printAggregate(r *exp.Runner) {
	sims, events, wall := r.Totals()
	if hits := r.CacheHits(); hits > 0 {
		fmt.Fprintf(os.Stderr, "pcmapsim: %d runs loaded from cache, %d simulated\n", hits, sims)
	}
	if sims == 0 {
		return
	}
	rate := 0.0
	if wall > 0 {
		rate = float64(events) / wall.Seconds()
	}
	fmt.Fprintf(os.Stderr, "pcmapsim: %d sims, %d events, %.1fM events/sec per sim thread\n",
		sims, events, rate/1e6)
}

// timedOut reports a sweep stopped by -timeout and exits 1. Like a
// signal, the deadline leaves completed runs in the cache, so -resume
// picks up where the clock ran out.
func timedOut(r *exp.Runner, d time.Duration, cacheDir string) {
	sims, _, _ := r.Totals()
	msg := fmt.Sprintf("pcmapsim: -timeout %s elapsed after %d completed sims", d, sims)
	if cacheDir != "" {
		msg += fmt.Sprintf("; re-run with -cache %s -resume to continue", cacheDir)
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}

// interrupted reports a signal-cancelled sweep and exits 130 (the
// conventional SIGINT status). Completed runs are already on disk when
// -cache was given, so the user can re-run with -resume.
func interrupted(r *exp.Runner, cacheDir string) {
	sims, _, _ := r.Totals()
	msg := fmt.Sprintf("pcmapsim: interrupted after %d completed sims", sims)
	if cacheDir != "" {
		msg += fmt.Sprintf("; re-run with -cache %s -resume to continue", cacheDir)
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(130)
}

// writeHeapProfile snapshots the heap at exit for -memprofile.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcmapsim: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "pcmapsim: memprofile:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcmapsim:", err)
	os.Exit(1)
}
