// Command pcmapsim regenerates the paper's evaluation: every figure
// and table of "Boosting Access Parallelism to PCM-Based Main Memory"
// (ISCA 2016), on the simulator this repository implements.
//
// Usage:
//
//	pcmapsim -exp fig8                 # one experiment
//	pcmapsim -exp all -json out.json   # everything, plus raw series
//	pcmapsim -exp fig11 -avgmt         # include the Average(MT) PARSEC sweep
//	pcmapsim -exp adhoc -workload MP4 -variant RWoW-RDE
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pcmap/internal/config"
	"pcmap/internal/exp"
)

func main() {
	var (
		expName  = flag.String("exp", "headline", "experiment: fig1,fig2,fig8,fig9,fig10,fig11,table2,table3,table4,headline,all,adhoc")
		warmup   = flag.Uint64("warmup", 40_000, "warmup instructions per core")
		measure  = flag.Uint64("measure", 400_000, "measured instructions per core")
		avgmt    = flag.Bool("avgmt", false, "include the full 13-program PARSEC Average(MT) sweep")
		format   = flag.String("format", "md", "output format: md or csv")
		jsonPath = flag.String("json", "", "also write raw series as JSON to this file")
		par      = flag.Int("par", 0, "parallel simulations (0 = NumCPU)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		workload = flag.String("workload", "MP4", "adhoc: workload mix")
		variant  = flag.String("variant", "RWoW-RDE", "adhoc: system variant")
		ratio    = flag.Float64("ratio", 0, "adhoc: write-to-read latency ratio override (0 = default 2x)")
		pausing  = flag.Bool("pausing", false, "adhoc: enable the write-pausing comparator (baseline only)")
	)
	flag.Parse()

	r := exp.NewRunner()
	r.Warmup, r.Measure, r.Parallelism = *warmup, *measure, *par
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	if *expName == "adhoc" {
		if err := runAdhoc(r, *workload, *variant, *ratio, *pausing); err != nil {
			fatal(err)
		}
		return
	}

	type expFn func() (*exp.FigureResult, error)
	table := map[string]expFn{
		"fig1":      func() (*exp.FigureResult, error) { return exp.Fig1(r) },
		"fig2":      func() (*exp.FigureResult, error) { return exp.Fig2(r) },
		"fig8":      func() (*exp.FigureResult, error) { return exp.Fig8(r, *avgmt) },
		"fig9":      func() (*exp.FigureResult, error) { return exp.Fig9(r, *avgmt) },
		"fig10":     func() (*exp.FigureResult, error) { return exp.Fig10(r, *avgmt) },
		"fig11":     func() (*exp.FigureResult, error) { return exp.Fig11(r, *avgmt) },
		"table2":    func() (*exp.FigureResult, error) { return exp.Table2(r) },
		"table3":    func() (*exp.FigureResult, error) { return exp.Table3(r) },
		"table4":    func() (*exp.FigureResult, error) { return exp.Table4(r) },
		"headline":  func() (*exp.FigureResult, error) { return exp.Headline(r, *avgmt) },
		"pausing":   func() (*exp.FigureResult, error) { return exp.Pausing(r) },
		"ablations": func() (*exp.FigureResult, error) { return exp.Ablations(r) },
	}
	order := []string{"fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "table2", "table3", "table4", "headline", "pausing", "ablations"}

	var names []string
	if *expName == "all" {
		names = order
	} else {
		for _, n := range strings.Split(*expName, ",") {
			if _, ok := table[n]; !ok {
				fatal(fmt.Errorf("unknown experiment %q (want one of %s, all, adhoc)", n, strings.Join(order, ", ")))
			}
			names = append(names, n)
		}
	}

	var results []*exp.FigureResult
	for _, n := range names {
		f, err := table[n]()
		if err != nil {
			fatal(err)
		}
		results = append(results, f)
		if *format == "csv" {
			fmt.Println(f.Table.CSV())
		} else {
			fmt.Println(f.Table.Markdown())
		}
		for _, note := range f.Notes {
			fmt.Printf("> %s\n", note)
		}
		fmt.Println()
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

func runAdhoc(r *exp.Runner, workload, variantName string, ratio float64, pausing bool) error {
	var variant config.Variant
	found := false
	for _, v := range config.Variants {
		if v.String() == variantName {
			variant, found = v, true
		}
	}
	if !found {
		return fmt.Errorf("unknown variant %q", variantName)
	}
	res, err := r.Run(exp.Spec{Workload: workload, Variant: variant, WriteToReadRatio: ratio, WritePausing: pausing})
	if err != nil {
		return err
	}
	fmt.Printf("workload          %s\n", res.Workload)
	fmt.Printf("variant           %s\n", res.Variant)
	fmt.Printf("IPC (sum)         %.3f\n", res.IPCSum)
	fmt.Printf("RPKI / WPKI       %.2f / %.2f\n", res.RPKI, res.WPKI)
	fmt.Printf("IRLP avg / max    %.2f / %d\n", res.IRLPAvg, res.IRLPMax)
	fmt.Printf("read latency      %.1f ns (p95 %.1f ns)\n",
		res.Mem.ReadLatency.MeanNS(), res.Mem.ReadLatency.PercentileNS(95))
	fmt.Printf("write throughput  %.2f writes/us\n", res.Mem.WriteThroughput())
	fmt.Printf("reads delayed     %.1f%%\n",
		100*float64(res.Mem.ReadsDelayedByWrite.Value())/float64(res.Mem.Reads.Value()+1))
	fmt.Printf("RoW served        %d (verifies %d, faulty %d)\n",
		res.Mem.RoWServed.Value(), res.Mem.RoWVerifies.Value(), res.Mem.RoWFaulty.Value())
	fmt.Printf("WoW overlapped    %d\n", res.Mem.WoWOverlapped.Value())
	fmt.Printf("rollbacks         %d\n", res.Rollbacks)
	fmt.Printf("wear imbalance    %.3f (CV of per-chip writes)\n", res.WearCV)
	fmt.Printf("write pauses      %d\n", res.Mem.WritePauses.Value())
	fmt.Printf("energy            %s\n", res.Energy)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcmapsim:", err)
	os.Exit(1)
}
