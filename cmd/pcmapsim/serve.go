// The serve subcommand: pcmapsim as a long-running simulation service.
//
//	pcmapsim serve -addr 127.0.0.1:8080 -cache results/
//
// POST /v1/jobs takes a JSON job spec and answers with the Results
// JSON a one-shot run of the same spec would produce (byte-identical
// to the encoding in internal/system). GET /healthz, /readyz, and
// /metrics expose liveness, drain state, and service counters. See
// internal/serve for the robustness contract (admission control,
// per-job deadlines, panic isolation, retry, graceful drain).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pcmap/internal/cli"
	"pcmap/internal/exp"
	"pcmap/internal/serve"
)

// serveFlags is the serve subcommand's flag surface, pinned by
// TestServeFlagSurface.
type serveFlags struct {
	addr       *string
	workers    *int
	queue      *int
	warmup     *uint64
	measure    *uint64
	maxBudget  *uint64
	timeout    *time.Duration
	maxTimeout *time.Duration
	drain      *time.Duration
	retries    *int
	seed       *uint64
	cacheDir   *string
	verbose    *bool
}

func defineServeFlags(fs *flag.FlagSet) *serveFlags {
	return &serveFlags{
		addr:       fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)"),
		workers:    fs.Int("workers", 0, "simulation worker-pool size (0 = NumCPU)"),
		queue:      fs.Int("queue", 0, "admission queue depth; a full queue answers 429 (0 = 2x workers)"),
		warmup:     fs.Uint64("warmup", 0, "default warmup instructions per core for jobs that set none (0 = 40k)"),
		measure:    fs.Uint64("measure", 0, "default measured instructions per core for jobs that set none (0 = 400k)"),
		maxBudget:  fs.Uint64("maxbudget", 0, "reject jobs asking for more warmup or measure instructions than this (0 = 5M)"),
		timeout:    cli.Timeout(fs, 0),
		maxTimeout: fs.Duration("maxtimeout", 0, "cap on client-requested per-job deadlines (0 = 5m)"),
		drain:      fs.Duration("drain", 30*time.Second, "on SIGTERM/SIGINT, wait this long for in-flight jobs before exiting"),
		retries:    fs.Int("retries", 0, "re-attempt a retryable job failure up to this many times (with backoff)"),
		seed:       cli.Seed(fs, 0),
		cacheDir:   fs.String("cache", "", "persist and serve completed runs from this result-cache directory"),
		verbose:    fs.Bool("v", false, "log job admissions, drains, and runner retirements to stderr"),
	}
}

// cmdServe runs the service until a signal drains it. It does not
// return on success: serve.Main's exit code becomes the process's.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("pcmapsim serve", flag.ExitOnError)
	f := defineServeFlags(fs)
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %q", fs.Args())
	}
	if *f.drain <= 0 {
		return fmt.Errorf("serve: invalid -drain %s (need a positive drain deadline)", *f.drain)
	}

	cfg := serve.Config{
		Workers:        *f.workers,
		QueueDepth:     *f.queue,
		DefaultWarmup:  *f.warmup,
		DefaultMeasure: *f.measure,
		MaxBudget:      *f.maxBudget,
		DefaultTimeout: *f.timeout,
		MaxTimeout:     *f.maxTimeout,
		Retries:        *f.retries,
		JitterSeed:     *f.seed,
	}
	if *f.cacheDir != "" {
		cache, err := exp.NewDiskCache(*f.cacheDir)
		if err != nil {
			return err
		}
		cfg.Cache = cache
	}
	// Operational logging goes to stderr; the "serving on" line always
	// prints so scripts can discover the bound port under -addr :0.
	logger := log.New(os.Stderr, "pcmapsim serve: ", 0)
	if *f.verbose {
		cfg.Logf = logger.Printf
	}

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", *f.addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	logger.Printf("serving on %s", ln.Addr())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(s.Main(ln, sig, *f.drain))
	return nil // unreachable
}
