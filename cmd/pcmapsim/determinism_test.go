package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// runOnce executes the built binary and returns its stdout plus the
// JSON sidecar (empty when jsonName is "").
func runOnce(t *testing.T, jsonName string, args ...string) (stdout, jsonOut []byte) {
	t.Helper()
	var jsonPath string
	if jsonName != "" {
		jsonPath = filepath.Join(t.TempDir(), jsonName)
		args = append(args, "-json", jsonPath)
	}
	cmd := exec.Command(binPath, args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("run %v: %v\nstderr: %s", args, err, errb.String())
	}
	if jsonPath != "" {
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatalf("reading JSON sidecar: %v", err)
		}
		jsonOut = data
	}
	return out.Bytes(), jsonOut
}

// TestOutputDeterminism is the end-to-end determinism regression guard:
// two full CLI invocations with identical flags (and therefore the same
// seed) must produce byte-identical stdout — and, for experiments, a
// byte-identical JSON series file. This is the property the
// nodeterminism analyzer enforces statically; here it is checked
// dynamically through the whole stack (engine, controllers, experiment
// harness, report formatting).
func TestOutputDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	cases := []struct {
		name string
		json string // sidecar filename, "" to skip
		args []string
	}{
		{"adhoc", "", []string{
			"-exp", "adhoc", "-workload", "MP4", "-variant", "RWoW-RDE",
			"-warmup", "500", "-measure", "4000"}},
		{"fig1-json", "series.json", []string{
			"-exp", "fig1", "-warmup", "500", "-measure", "4000"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out1, json1 := runOnce(t, tc.json, tc.args...)
			out2, json2 := runOnce(t, tc.json, tc.args...)
			if len(out1) == 0 {
				t.Fatal("no output produced")
			}
			if !bytes.Equal(out1, out2) {
				t.Errorf("stdout differs between identically-seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
			}
			if tc.json != "" && !bytes.Equal(json1, json2) {
				t.Errorf("JSON series differ between identically-seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", json1, json2)
			}
		})
	}
}

// TestShardedOutputIdentity is the PDES acceptance check end to end:
// the same invocation at -shards 1, 2, and 4 must produce byte-
// identical stdout (and CSV series for the figure case). -shards is an
// execution strategy, not a simulation parameter — any divergence here
// means the parallel scheduler reordered events.
func TestShardedOutputIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	cases := []struct {
		name string
		args []string
	}{
		{"adhoc", []string{
			"-exp", "adhoc", "-workload", "MP6", "-variant", "RWoW-RDE",
			"-warmup", "2000", "-measure", "20000"}},
		{"fig1-csv", []string{
			"-exp", "fig1", "-format", "csv", "-warmup", "500", "-measure", "4000"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, _ := runOnce(t, "", append(tc.args, "-shards", "1")...)
			if len(ref) == 0 {
				t.Fatal("no output produced")
			}
			for _, shards := range []string{"2", "4"} {
				got, _ := runOnce(t, "", append(tc.args, "-shards", shards)...)
				if !bytes.Equal(ref, got) {
					t.Errorf("-shards %s stdout differs from -shards 1:\n--- shards=1 ---\n%s\n--- shards=%s ---\n%s", shards, ref, shards, got)
				}
			}
		})
	}
}
