package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestPaperVariantsByteIdentical is the API redesign's regression
// anchor: the fault-free stdout of the six paper variants (and the
// Figure 1 sweep) must match the committed golden files byte for byte.
// The goldens were captured from the binary as built before the Variant
// registry, partition scheduler, and content-aware write path landed,
// so any drift here means the redesign changed the paper systems'
// observable behavior. Regenerate only with an explicit simulator
// semantics change: go run ./cmd/pcmapsim <args below> > <file>.
func TestPaperVariantsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("six small simulations; skipped in -short")
	}
	variants := []string{"Baseline", "RoW-NR", "WoW-NR", "RWoW-NR", "RWoW-RD", "RWoW-RDE"}
	for _, v := range variants {
		v := v
		t.Run(v, func(t *testing.T) {
			t.Parallel()
			compareGolden(t, filepath.Join("testdata", "golden", "adhoc_"+v+".txt"),
				"-exp", "adhoc", "-workload", "MP4", "-variant", v,
				"-warmup", "500", "-measure", "4000")
		})
	}
	t.Run("fig1", func(t *testing.T) {
		t.Parallel()
		compareGolden(t, filepath.Join("testdata", "golden", "fig1.csv"),
			"-exp", "fig1", "-warmup", "200", "-measure", "2000", "-format", "csv")
	})
}

// compareGolden runs the built binary and byte-compares its stdout
// against the committed golden file (stderr carries wall-clock-
// dependent throughput lines and is ignored).
func compareGolden(t *testing.T, golden string, args ...string) {
	t.Helper()
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	cmd := exec.Command(binPath, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("run failed: %v\nstderr: %s", err, stderr.String())
	}
	if got := stdout.String(); got != string(want) {
		t.Errorf("output drifted from %s\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}
