// Command pcmapbench turns `go test -bench` output into the committed
// benchmark ledger (BENCH_3.json) and checks fresh runs against it.
//
// Two modes:
//
//	go test -bench=. -benchmem . | pcmapbench -out BENCH_3.json
//	    parses the run and rewrites the ledger's "current" section,
//	    preserving the committed "baseline" section (the pre-overhaul
//	    numbers) so the speedup stays visible in the diff.
//
//	go test -bench=. -benchmem . | pcmapbench -check BENCH_3.json
//	    fails (exit 1) when the fresh run's allocs/op exceed the
//	    ledger's current allocs/op by more than 10% + 1 — or by
//	    anything at all when the ledger records 0 (allocation-free is
//	    a contract, not a measurement). Allocation counts are
//	    deterministic — unlike ns/op, which varies with CI machine
//	    load — so this is the regression gate: reintroducing a boxed
//	    event or a per-arm closure trips it immediately.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"pcmap/internal/cli"
)

// Result is one benchmark's measured numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Ledger is the BENCH_3.json document: the frozen pre-overhaul
// baseline and the numbers this tree produces.
type Ledger struct {
	Baseline map[string]Result `json:"baseline,omitempty"`
	Current  map[string]Result `json:"current"`
}

// defineFlags builds the flag surface (pinned by TestFlagSurface).
func defineFlags(fs *flag.FlagSet) (out, check *string) {
	return cli.Out(fs, "", "write/update this ledger from stdin"),
		fs.String("check", "", "compare stdin against this ledger's allocs/op")
}

func main() {
	out, check := defineFlags(flag.CommandLine)
	flag.Parse()
	if (*out == "") == (*check == "") {
		fatal(fmt.Errorf("need exactly one of -out or -check"))
	}

	run, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(run) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (run `go test -bench=. -benchmem`)"))
	}

	if *out != "" {
		if err := writeLedger(*out, run); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pcmapbench: wrote %d results to %s\n", len(run), *out)
		return
	}
	if err := checkLedger(*check, run); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pcmapbench: %d benchmarks within allocation budget\n", len(run))
}

// parse extracts benchmark result lines from `go test -bench` output.
// A line looks like
//
//	BenchmarkEngine-8   123456   9.15 ns/op   0 B/op   0 allocs/op
//
// possibly with extra ReportMetric columns, which are ignored. The
// -8 GOMAXPROCS suffix is stripped so ledgers compare across machines.
func parse(sc *bufio.Scanner) (map[string]Result, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	run := make(map[string]Result)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r Result
		seen := false
		// Columns after the iteration count come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, seen = v, true
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if seen {
			run[name] = r
		}
	}
	return run, sc.Err()
}

// readLedger loads a ledger file.
func readLedger(path string) (Ledger, error) {
	var led Ledger
	data, err := os.ReadFile(path)
	if err != nil {
		return led, err
	}
	if err := json.Unmarshal(data, &led); err != nil {
		return led, fmt.Errorf("%s: %w", path, err)
	}
	return led, nil
}

// writeLedger replaces the ledger's current section with run, keeping
// an existing baseline section (or seeding it from run on first write).
func writeLedger(path string, run map[string]Result) error {
	led, err := readLedger(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	led.Current = run
	if led.Baseline == nil {
		led.Baseline = run
	}
	// encoding/json sorts map keys, so the committed file diffs cleanly.
	data, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkLedger fails when the fresh run allocates materially more per op
// than the committed current numbers. The 10%+1 slack absorbs benchmark
// jitter on end-to-end benches (whose counts are in the thousands)
// while still catching a single reintroduced boxing on the 0-alloc
// hot-path benches. A ledger value of exactly 0 is strict: allocation-
// free is a contract (engine hot loop, disabled tracer), and the first
// allocation on such a path is the regression, so no slack applies.
func checkLedger(path string, run map[string]Result) error {
	led, err := readLedger(path)
	if err != nil {
		return err
	}
	var failures []string
	for _, name := range sortedKeys(run) {
		want, ok := led.Current[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pcmapbench: %s not in ledger; run `make bench` to record it\n", name)
			continue
		}
		limit := want.AllocsPerOp + want.AllocsPerOp/10 + 1
		if want.AllocsPerOp == 0 {
			limit = 0
		}
		if got := run[name].AllocsPerOp; got > limit {
			failures = append(failures,
				fmt.Sprintf("%s: %d allocs/op, ledger %d (limit %d)", name, got, want.AllocsPerOp, limit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcmapbench:", err)
	os.Exit(1)
}
