package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: pcmap
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngine-8           	131123848	         9.147 ns/op	       0 B/op	       0 allocs/op
BenchmarkSECDEDEncode-8     	201632186	         5.951 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig1-8             	       5	 224416018 ns/op	        14.09 %reads-delayed	         1.485 latency-vs-symmetric	42728480 B/op	  321456 allocs/op
BenchmarkControllerRequests 	   444308	      2699 ns/op	      1817 B/op	        12 allocs/op
PASS
ok  	pcmap	12.3s
`

func parseSample(t *testing.T, text string) map[string]Result {
	t.Helper()
	run, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestParseStripsSuffixAndExtraMetrics(t *testing.T) {
	run := parseSample(t, sampleRun)
	if len(run) != 4 {
		t.Fatalf("parsed %d results, want 4: %v", len(run), run)
	}
	eng, ok := run["BenchmarkEngine"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", run)
	}
	if eng.NsPerOp != 9.147 || eng.AllocsPerOp != 0 || eng.BytesPerOp != 0 {
		t.Fatalf("BenchmarkEngine = %+v", eng)
	}
	// Fig1 carries two ReportMetric columns between ns/op and B/op;
	// they must be skipped, not mistaken for allocation columns.
	fig1 := run["BenchmarkFig1"]
	if fig1.NsPerOp != 224416018 || fig1.AllocsPerOp != 321456 || fig1.BytesPerOp != 42728480 {
		t.Fatalf("BenchmarkFig1 = %+v", fig1)
	}
	// No -N suffix at all (GOMAXPROCS=1 output) still parses.
	ctl := run["BenchmarkControllerRequests"]
	if ctl.AllocsPerOp != 12 {
		t.Fatalf("BenchmarkControllerRequests = %+v", ctl)
	}
}

func TestParseIgnoresNonBenchmarkLines(t *testing.T) {
	run := parseSample(t, "PASS\nok pcmap 1s\n--- FAIL: TestX\nBenchmarkBroken-8\n")
	if len(run) != 0 {
		t.Fatalf("parsed %d results from noise, want 0: %v", len(run), run)
	}
}

func TestCheckLedger(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bench.json"
	base := map[string]Result{
		"BenchmarkEngine": {NsPerOp: 9.1, AllocsPerOp: 0},
		"BenchmarkFig1":   {NsPerOp: 2e8, AllocsPerOp: 100_000},
	}
	if err := writeLedger(path, base); err != nil {
		t.Fatal(err)
	}

	// Identical run passes; jitter within 10%+1 passes.
	if err := checkLedger(path, base); err != nil {
		t.Fatalf("identical run: %v", err)
	}
	ok := map[string]Result{
		"BenchmarkFig1": {AllocsPerOp: 109_000}, // limit = 100000 + 10000 + 1
	}
	if err := checkLedger(path, ok); err != nil {
		t.Fatalf("within-slack run: %v", err)
	}

	// A 0 in the ledger is strict: the first allocation on an
	// allocation-free path fails, with no slack.
	bad := map[string]Result{"BenchmarkEngine": {AllocsPerOp: 1}}
	if err := checkLedger(path, bad); err == nil {
		t.Fatal("1 alloc/op vs 0-alloc ledger passed the check")
	}

	// Unknown benchmarks are reported but not fatal (new benches land
	// before the ledger is regenerated).
	unknown := map[string]Result{"BenchmarkNew": {AllocsPerOp: 5}}
	if err := checkLedger(path, unknown); err != nil {
		t.Fatalf("unknown bench: %v", err)
	}
}

func TestWriteLedgerPreservesBaseline(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bench.json"
	first := map[string]Result{"BenchmarkEngine": {NsPerOp: 79.98, AllocsPerOp: 2, BytesPerOp: 48}}
	if err := writeLedger(path, first); err != nil {
		t.Fatal(err)
	}
	second := map[string]Result{"BenchmarkEngine": {NsPerOp: 9.1, AllocsPerOp: 0}}
	if err := writeLedger(path, second); err != nil {
		t.Fatal(err)
	}
	data, err := readLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if data.Baseline["BenchmarkEngine"].NsPerOp != 79.98 {
		t.Fatalf("baseline overwritten: %+v", data.Baseline)
	}
	if data.Current["BenchmarkEngine"].NsPerOp != 9.1 {
		t.Fatalf("current not updated: %+v", data.Current)
	}
}
