package main

import (
	"flag"
	"reflect"
	"testing"

	"pcmap/internal/cli"
)

// TestFlagSurface pins pcmapbench's command-line interface.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("pcmapbench", flag.ContinueOnError)
	defineFlags(fs)
	want := []string{"check", "out"}
	if got := cli.Surface(fs); !reflect.DeepEqual(got, want) {
		t.Errorf("flag surface changed:\n got %v\nwant %v", got, want)
	}
}
