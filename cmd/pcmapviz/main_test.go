package main

import (
	"strings"
	"testing"
)

func TestBarScaling(t *testing.T) {
	if got := bar(10, 10); len([]rune(got)) != barWidth {
		t.Fatalf("full bar has %d cells, want %d", len([]rune(got)), barWidth)
	}
	if got := bar(5, 10); len([]rune(got)) != barWidth/2 {
		t.Fatalf("half bar has %d cells", len([]rune(got)))
	}
	if got := bar(0, 10); got != "" {
		t.Fatalf("zero bar %q", got)
	}
	if got := bar(20, 10); len([]rune(got)) != barWidth {
		t.Fatal("overflow must clamp")
	}
}

func TestNegativeBarsMarked(t *testing.T) {
	got := bar(-5, 10)
	if !strings.Contains(got, "▒") || strings.Contains(got, "█") {
		t.Fatalf("negative bar should use the regression glyph: %q", got)
	}
}

func TestColumnSetStable(t *testing.T) {
	m := map[string]map[string]float64{
		"r1": {"b": 1, "a": 2},
		"r2": {"c": 3},
	}
	cols := columnSet(m)
	if len(cols) != 3 || cols[0] != "a" || cols[1] != "b" || cols[2] != "c" {
		t.Fatalf("columns %v", cols)
	}
	rows := sortedKeys(m)
	if rows[0] != "r1" || rows[1] != "r2" {
		t.Fatalf("rows %v", rows)
	}
}
