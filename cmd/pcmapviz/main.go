// Command pcmapviz renders the JSON written by `pcmapsim -json` as
// ASCII bar charts, one per figure — the terminal equivalent of the
// paper's plots.
//
//	pcmapsim -exp fig8,fig11 -json results.json
//	pcmapviz -in results.json
//	pcmapviz -in results.json -fig fig8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pcmap/internal/cli"
)

type figure struct {
	ID     string
	Title  string
	Series map[string]map[string]float64
	Notes  []string
}

const barWidth = 44

// defineFlags builds the flag surface (pinned by TestFlagSurface).
func defineFlags(fs *flag.FlagSet) (in, only *string) {
	return cli.In(fs, "results.json", "JSON written by pcmapsim -json"),
		fs.String("fig", "", "render only this figure id (e.g. fig8)")
}

func main() {
	in, only := defineFlags(flag.CommandLine)
	flag.Parse()

	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var figs []figure
	if err := json.Unmarshal(data, &figs); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *in, err))
	}
	rendered := 0
	for _, f := range figs {
		if *only != "" && f.ID != *only {
			continue
		}
		render(f)
		rendered++
	}
	if rendered == 0 {
		fatal(fmt.Errorf("no figure %q in %s", *only, *in))
	}
}

func render(f figure) {
	fmt.Printf("━━ %s ━━\n\n", f.Title)
	rows := sortedKeys(f.Series)
	cols := columnSet(f.Series)
	maxVal := 0.0
	for _, r := range rows {
		for _, c := range cols {
			if v, ok := f.Series[r][c]; ok && v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	rowW := maxLen(rows)
	colW := maxLen(cols)
	for _, r := range rows {
		fmt.Printf("%-*s\n", rowW, r)
		for _, c := range cols {
			v, ok := f.Series[r][c]
			if !ok {
				continue
			}
			fmt.Printf("  %-*s %s %.3f\n", colW, c, bar(v, maxVal), v)
		}
	}
	for _, n := range f.Notes {
		fmt.Printf("\n  note: %s", n)
	}
	fmt.Println()
	fmt.Println()
}

// bar renders a scaled horizontal bar; negative values grow a '▒' bar
// to mark regressions.
func bar(v, max float64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	n := int(v / max * barWidth)
	if n > barWidth {
		n = barWidth
	}
	ch := "█"
	if neg {
		ch = "▒"
	}
	return strings.Repeat(ch, n)
}

func sortedKeys(m map[string]map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func columnSet(m map[string]map[string]float64) []string {
	seen := map[string]bool{}
	var out []string
	for _, cols := range m {
		for c := range cols {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}

func maxLen(xs []string) int {
	n := 0
	for _, x := range xs {
		if len(x) > n {
			n = len(x)
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcmapviz:", err)
	os.Exit(1)
}
