package main

import (
	"flag"
	"reflect"
	"testing"

	"pcmap/internal/cli"
)

// TestFlagSurface pins pcmapviz's command-line interface.
func TestFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("pcmapviz", flag.ContinueOnError)
	defineFlags(fs)
	want := []string{"fig", "in"}
	if got := cli.Surface(fs); !reflect.DeepEqual(got, want) {
		t.Errorf("flag surface changed:\n got %v\nwant %v", got, want)
	}
}
