// Package pcmap is a from-scratch Go reproduction of "Boosting Access
// Parallelism to PCM-Based Main Memory" (Arjomand, Kandemir,
// Sivasubramaniam, Das — ISCA 2016).
//
// The repository implements the paper's PCMap memory controller (RoW
// read-over-write via PCC parity reconstruction, WoW write
// consolidation, data-word and ECC/PCC rotation) together with every
// substrate its evaluation depends on: a discrete-event simulator, a
// DDR3-style PCM device/DIMM model with rank subsetting, a Hamming
// SECDED codec, a three-level cache hierarchy with a MOESI directory
// and a mesh NoC, interval-model out-of-order cores, and calibrated
// synthetic models of the SPEC CPU 2006 / PARSEC-2 / STREAM workloads.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate every figure and table of the
// paper's evaluation section.
package pcmap
