// Benchmarks that regenerate the paper's evaluation (one per figure
// and table, Section VI) plus ablations of PCMap's design choices and
// micro-benchmarks of the hot substrates. Figure benches run reduced
// instruction budgets per iteration so `go test -bench=.` stays
// tractable; cmd/pcmapsim runs the full-budget versions.
package pcmap_test

import (
	"testing"

	"pcmap/internal/cache"
	"pcmap/internal/config"
	"pcmap/internal/ecc"
	"pcmap/internal/exp"
	"pcmap/internal/mem"
	"pcmap/internal/obs"
	"pcmap/internal/pcm"
	"pcmap/internal/sim"
	"pcmap/internal/system"
	"pcmap/internal/workloads"

	pcmcore "pcmap/internal/core"
)

// benchRunner builds a reduced-budget experiment runner.
func benchRunner() *exp.Runner {
	r := exp.NewRunner()
	r.Warmup, r.Measure = 5_000, 40_000
	r.Parallelism = 1 // deterministic wall-clock per iteration
	return r
}

// runSystem executes one workload/variant pair at bench budgets.
func runSystem(b *testing.B, workload string, v config.Variant) *system.Results {
	b.Helper()
	s, err := system.Build(config.Default().WithVariant(v), workload)
	if err != nil {
		b.Fatal(err)
	}
	res, err := s.Run(5_000, 40_000)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig1 regenerates Figure 1's two series for one SPEC program
// per iteration (reads delayed by writes; latency vs symmetric PCM).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		asym, err := r.Run(exp.Spec{Workload: "cactusADM", Variant: config.Baseline})
		if err != nil {
			b.Fatal(err)
		}
		symm, err := r.Run(exp.Spec{Workload: "cactusADM", Variant: config.Baseline, Symmetric: true})
		if err != nil {
			b.Fatal(err)
		}
		delayed := float64(asym.Mem.ReadsDelayedByWrite.Value()) / float64(asym.Mem.Reads.Value()+1)
		b.ReportMetric(100*delayed, "%reads-delayed")
		b.ReportMetric(asym.Mem.ReadLatency.MeanNS()/symm.Mem.ReadLatency.MeanNS(), "latency-vs-symmetric")
	}
}

// BenchmarkFig1Shards4 is BenchmarkFig1 with every simulation sharded
// across 4 goroutines at the channel boundary (internal/pdes). Results
// are bit-identical to the sequential run; the benchmark exists to
// track the parallel scheduler's wall-clock scaling (compare ns/op
// against BenchmarkFig1 on a multi-core host) and to gate its per-op
// allocations — window dispatch reuses pooled outbox slices and the
// per-shard engines' event arenas, so the sharded run must not allocate
// per event.
func BenchmarkFig1Shards4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.Shards = 4
		asym, err := r.Run(exp.Spec{Workload: "cactusADM", Variant: config.Baseline})
		if err != nil {
			b.Fatal(err)
		}
		symm, err := r.Run(exp.Spec{Workload: "cactusADM", Variant: config.Baseline, Symmetric: true})
		if err != nil {
			b.Fatal(err)
		}
		delayed := float64(asym.Mem.ReadsDelayedByWrite.Value()) / float64(asym.Mem.Reads.Value()+1)
		b.ReportMetric(100*delayed, "%reads-delayed")
		b.ReportMetric(asym.Mem.ReadLatency.MeanNS()/symm.Mem.ReadLatency.MeanNS(), "latency-vs-symmetric")
	}
}

// BenchmarkFig2 regenerates Figure 2's dirty-word distribution for the
// paper's two anchor programs.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cactus := runSystem(b, "cactusADM", config.Baseline)
		omnet := runSystem(b, "omnetpp", config.Baseline)
		b.ReportMetric(100*cactus.Mem.DirtyWords.Fraction(1), "%cactus-1word")
		b.ReportMetric(100*omnet.Mem.DirtyWords.Fraction(1), "%omnetpp-1word")
	}
}

// BenchmarkFig8 regenerates Figure 8's IRLP comparison (baseline vs
// full PCMap) on the most intense Table II workload.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runSystem(b, "canneal", config.Baseline)
		full := runSystem(b, "canneal", config.RWoWRDE)
		b.ReportMetric(base.IRLPAvg, "IRLP-baseline")
		b.ReportMetric(full.IRLPAvg, "IRLP-pcmap")
	}
}

// BenchmarkFig9 regenerates Figure 9's write-throughput improvement on
// the write-bound MP4 mix.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runSystem(b, "MP4", config.Baseline)
		full := runSystem(b, "MP4", config.RWoWRDE)
		b.ReportMetric(full.Mem.WriteThroughput()/base.Mem.WriteThroughput(), "write-throughput-x")
	}
}

// BenchmarkFig10 regenerates Figure 10's effective read latency
// normalization.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runSystem(b, "MP6", config.Baseline)
		full := runSystem(b, "MP6", config.RWoWRDE)
		b.ReportMetric(full.Mem.ReadLatency.MeanNS()/base.Mem.ReadLatency.MeanNS(), "read-latency-norm")
	}
}

// BenchmarkFig11 regenerates Figure 11's IPC improvement for one MT
// and one MP workload.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"canneal", "MP1"} {
			base := runSystem(b, w, config.Baseline)
			full := runSystem(b, w, config.RWoWRDE)
			b.ReportMetric(100*(full.IPCSum/base.IPCSum-1), "%ipc-"+w)
		}
	}
}

// BenchmarkTable2 checks the RPKI/WPKI calibration against Table II.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runSystem(b, "MP4", config.Baseline)
		b.ReportMetric(res.RPKI, "RPKI(target-8.05)")
		b.ReportMetric(res.WPKI, "WPKI(target-5.65)")
	}
}

// BenchmarkTable3 regenerates one cell of the Table III sensitivity
// sweep (write-to-read ratio 8x).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		base, err := r.Run(exp.Spec{Workload: "MP6", Variant: config.Baseline, WriteToReadRatio: 8})
		if err != nil {
			b.Fatal(err)
		}
		full, err := r.Run(exp.Spec{Workload: "MP6", Variant: config.RWoWRDE, WriteToReadRatio: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(full.IPCSum/base.IPCSum-1), "%ipc-at-8x")
	}
}

// BenchmarkTable4 regenerates the rollback-cost comparison on canneal.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		faulty, err := r.Run(exp.Spec{Workload: "canneal", Variant: config.RWoWRDE, FaultMode: "always"})
		if err != nil {
			b.Fatal(err)
		}
		clean, err := r.Run(exp.Spec{Workload: "canneal", Variant: config.RWoWRDE, FaultMode: "never"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*faulty.MaxRollbackPct, "%rollbacks")
		b.ReportMetric(100*(clean.IPCSum/faulty.IPCSum-1), "%rollback-cost")
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

// BenchmarkAblationRotation isolates the two rotation schemes at fixed
// RoW+WoW: the Section IV-C2 contribution.
func BenchmarkAblationRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nr := runSystem(b, "MP4", config.RWoWNR)
		rd := runSystem(b, "MP4", config.RWoWRD)
		rde := runSystem(b, "MP4", config.RWoWRDE)
		b.ReportMetric(nr.IRLPAvg, "IRLP-norotation")
		b.ReportMetric(rd.IRLPAvg, "IRLP-data-rotation")
		b.ReportMetric(rde.IRLPAvg, "IRLP-full-rotation")
		b.ReportMetric(rde.WearCV, "wearCV-full-rotation")
	}
}

// BenchmarkAblationRoWMultiWord measures the Section IV-B4 extension:
// splitting multi-word writes into serial single-word RoW steps.
func BenchmarkAblationRoWMultiWord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, multi := range []bool{false, true} {
			cfg := config.Default().WithVariant(config.RWoWRDE)
			cfg.Memory.RoWMultiWord = multi
			s, err := system.Build(cfg, "canneal")
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run(5_000, 40_000)
			if err != nil {
				b.Fatal(err)
			}
			name := "ipc-1word-row"
			if multi {
				name = "ipc-multiword-row"
			}
			b.ReportMetric(res.IPCSum, name)
		}
	}
}

// BenchmarkAblationDrainThreshold sweeps the write-drain high-water
// mark (the alpha of Section II-B).
func BenchmarkAblationDrainThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0.6, 0.8, 0.95} {
			cfg := config.Default().WithVariant(config.RWoWRDE)
			cfg.Memory.DrainHighPct = alpha
			s, err := system.Build(cfg, "MP6")
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run(5_000, 40_000)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.IPCSum, ipcName(alpha))
		}
	}
}

func ipcName(alpha float64) string {
	switch alpha {
	case 0.6:
		return "ipc-alpha60"
	case 0.8:
		return "ipc-alpha80"
	default:
		return "ipc-alpha95"
	}
}

// BenchmarkAblationStatusPoll measures the DIMM-register polling cost.
func BenchmarkAblationStatusPoll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cycles := range []mem.Cycles{0, 2, 8} {
			cfg := config.Default().WithVariant(config.RWoWRDE)
			cfg.Memory.StatusPollCycles = cycles
			s, err := system.Build(cfg, "MP1")
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run(5_000, 40_000)
			if err != nil {
				b.Fatal(err)
			}
			switch cycles {
			case 0:
				b.ReportMetric(res.IPCSum, "ipc-poll0")
			case 2:
				b.ReportMetric(res.IPCSum, "ipc-poll2")
			default:
				b.ReportMetric(res.IPCSum, "ipc-poll8")
			}
		}
	}
}

// BenchmarkAblationConcurrentWrites sweeps the WoW scheduler's
// outstanding-write bound.
func BenchmarkAblationConcurrentWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 4} {
			cfg := config.Default().WithVariant(config.RWoWRDE)
			cfg.Memory.MaxConcurrentWrites = n
			s, err := system.Build(cfg, "MP4")
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Run(5_000, 40_000)
			if err != nil {
				b.Fatal(err)
			}
			switch n {
			case 1:
				b.ReportMetric(res.Mem.WriteThroughput(), "wthr-max1")
			case 2:
				b.ReportMetric(res.Mem.WriteThroughput(), "wthr-max2")
			default:
				b.ReportMetric(res.Mem.WriteThroughput(), "wthr-max4")
			}
		}
	}
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkSECDEDEncode measures the Hamming(72,64) encoder.
func BenchmarkSECDEDEncode(b *testing.B) {
	rng := sim.NewRNG(1)
	words := make([]uint64, 1024)
	for i := range words {
		words[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint8
	for i := 0; i < b.N; i++ {
		sink ^= ecc.Encode64(words[i&1023])
	}
	_ = sink
}

// BenchmarkSECDEDCorrect measures single-bit correction.
func BenchmarkSECDEDCorrect(b *testing.B) {
	data := uint64(0x0123456789abcdef)
	check := ecc.Encode64(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corrupt := data ^ (1 << uint(i&63))
		if got, _ := ecc.Check64(corrupt, check); got != data {
			b.Fatal("correction failed")
		}
	}
}

// BenchmarkSECDEDDecodeClean measures the fault-free decode path — the
// common case on every memory read when fault injection is off.
func BenchmarkSECDEDDecodeClean(b *testing.B) {
	rng := sim.NewRNG(2)
	words := make([]uint64, 1024)
	checks := make([]uint8, 1024)
	for i := range words {
		words[i] = rng.Uint64()
		checks[i] = ecc.Encode64(words[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := ecc.Check64(words[i&1023], checks[i&1023]); st != ecc.OK {
			b.Fatal("clean word flagged")
		}
	}
}

// BenchmarkPCCReconstruct measures the RoW XOR reconstruction path.
func BenchmarkPCCReconstruct(b *testing.B) {
	var line [64]byte
	rng := sim.NewRNG(3)
	for i := range line {
		line[i] = byte(rng.Uint64())
	}
	pcc := ecc.PCCLine(&line)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= ecc.ReconstructWord(&line, i&7, pcc)
	}
	_ = sink
}

// BenchmarkPCCUpdate measures the incremental parity update issued on
// every single-word write.
func BenchmarkPCCUpdate(b *testing.B) {
	rng := sim.NewRNG(4)
	var pcc [8]byte
	for i := range pcc {
		pcc[i] = byte(rng.Uint64())
	}
	oldWord, newWord := rng.Uint64(), rng.Uint64()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pcc = ecc.UpdatePCC(pcc, oldWord, newWord)
	}
	_ = pcc
}

// BenchmarkEngine measures raw event throughput of the simulator core.
func BenchmarkEngine(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(sim.MemCycle, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(0, tick)
	eng.Run()
}

// BenchmarkEngineTimer measures the pre-bound recurring-callback path
// every per-cycle component loop uses; steady state must not allocate.
func BenchmarkEngineTimer(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tm *sim.Timer
	tm = eng.NewTimer(func() {
		n++
		if n < b.N {
			tm.Schedule(sim.MemCycle)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	tm.Schedule(0)
	eng.Run()
}

// BenchmarkEngineTraceDisabled measures the event hot loop with the
// observability layer present but disabled: a nil tracer's emission
// methods and an engine without a step hook. The ledger pins this at
// 0 allocs/op — the disabled-tracer contract (tracing off must cost
// one predictable branch per call site, never an allocation).
func BenchmarkEngineTraceDisabled(b *testing.B) {
	eng := sim.NewEngine()
	var tr *obs.Tracer // disabled: every method is a nil-receiver no-op
	n := 0
	var tick func()
	tick = func() {
		n++
		tr.Span(0, 0, eng.Now(), sim.MemCycle)
		tr.Instant(0, 0, eng.Now())
		tr.Count(0, 0, eng.Now(), int64(n))
		if n < b.N {
			eng.Schedule(sim.MemCycle, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(0, tick)
	eng.Run()
}

// BenchmarkRNGUint64 measures the SplitMix64 core every stochastic
// decision in the workload generators draws from.
func BenchmarkRNGUint64(b *testing.B) {
	rng := sim.NewRNG(6)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= rng.Uint64()
	}
	_ = sink
}

// BenchmarkRNGExp measures exponential inter-arrival sampling.
func BenchmarkRNGExp(b *testing.B) {
	rng := sim.NewRNG(7)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.Exp(100)
	}
	_ = sink
}

// BenchmarkRNGPick measures weighted choice over a Table II-sized
// category distribution.
func BenchmarkRNGPick(b *testing.B) {
	rng := sim.NewRNG(8)
	weights := []float64{0.35, 0.25, 0.15, 0.10, 0.08, 0.05, 0.02}
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += rng.Pick(weights)
	}
	_ = sink
}

// BenchmarkCacheLoadHit measures the L1-hit load path — the single
// most frequent operation in any simulation. The ledger pins it at 0
// allocs/op: hits touch only the SoA state arrays, never the fetch or
// request pools.
func BenchmarkCacheLoadHit(b *testing.B) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	eng := sim.NewEngine()
	m, err := pcmcore.NewMemory(eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	h := cache.NewHierarchy(eng, cfg, m)
	const addr = 0x880000
	h.Load(0, addr, false, 0)
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(0, addr, false, uint64(i+1))
	}
}

// BenchmarkStoreGetWarm measures pcm.Store line access once the line's
// 4 KB block is materialized — the steady state of every write-back
// after the footprint is touched. Pinned at 0 allocs/op: the two-level
// page table allocates per block, not per line.
func BenchmarkStoreGetWarm(b *testing.B) {
	s := pcm.NewStore()
	const lines = 1 << 12
	for i := uint64(0); i < lines; i++ {
		s.Get(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint64(i) & (lines - 1))
	}
}

// BenchmarkAnalyzeLineWrite measures the DCA content-analysis kernel:
// the per-write SET/RESET bit census RWoW-DCA folds over a masked line
// with OnesCount64. It runs on the applyWrite hot path whenever the
// ContentAware feature is on, so the ledger pins it at 0 allocs/op.
func BenchmarkAnalyzeLineWrite(b *testing.B) {
	rng := sim.NewRNG(9)
	s := pcm.NewStore()
	const lines = 1 << 10
	var news [lines][ecc.LineBytes]byte
	for i := uint64(0); i < lines; i++ {
		line := s.Get(i)
		for j := range line.Data {
			line.Data[j] = byte(rng.Uint64())
		}
		for j := range news[i] {
			news[i][j] = byte(rng.Uint64())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		idx := uint64(i) & (lines - 1)
		old := s.Peek(idx)
		f := pcm.AnalyzeLineWrite(&old.Data, &news[idx], uint8(i)|1)
		sink += f.Sets + f.Resets
	}
	_ = sink
}

// BenchmarkGeneratorNext measures steady-state op generation including
// the per-line write-pattern memo. Warm (footprint's patterns sampled)
// it must not allocate: the memo map is clear()ed at its cap, never
// reallocated.
func BenchmarkGeneratorNext(b *testing.B) {
	p := workloads.MustByName("canneal")
	g := workloads.NewGenerator(p, 0, sim.NewRNG(17), nil)
	var op workloads.Op
	for i := 0; i < 200_000; i++ {
		g.Next(&op)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&op)
	}
}

// BenchmarkControllerRequests measures end-to-end requests/second
// through a full PCMap controller (open loop, mixed traffic).
func BenchmarkControllerRequests(b *testing.B) {
	cfg := config.Default().WithVariant(config.RWoWRDE)
	eng := sim.NewEngine()
	m, err := pcmcore.NewMemory(eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(rng.Intn(1<<20)) * 64
		var req *mem.Request
		if i%3 == 0 {
			req = &mem.Request{Kind: mem.Read, Addr: addr}
		} else {
			req = &mem.Request{Kind: mem.Write, Addr: addr, Mask: 1 << uint(i&7)}
		}
		for !m.Submit(req) {
			if !eng.Step() {
				b.Fatal("engine drained with full queues")
			}
		}
	}
	eng.Run()
}
