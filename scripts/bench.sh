#!/bin/sh
# Benchmark entry point, shared by `make bench` and CI.
#
#   scripts/bench.sh            run the hot-path suite and rewrite
#                               BENCH_3.json's "current" section
#   scripts/bench.sh -check     run the suite and fail on allocs/op
#                               regressions against BENCH_3.json
#   scripts/bench.sh -shards    run Fig1 sequentially and at -shards 4
#                               and record the wall-clock comparison in
#                               BENCH_8.json
#
# The suite covers the perf-critical substrates (event engine, timers,
# SECDED, PCC, RNG), one end-to-end controller bench, and one full
# figure regeneration — enough to catch both micro-level allocation
# regressions and macro-level slowdowns without CI running every
# figure. BENCHTIME trades precision for CI time.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
PATTERN='^(BenchmarkEngine|BenchmarkEngineTimer|BenchmarkEngineTraceDisabled|BenchmarkSECDEDEncode|BenchmarkSECDEDCorrect|BenchmarkSECDEDDecodeClean|BenchmarkPCCReconstruct|BenchmarkPCCUpdate|BenchmarkRNGUint64|BenchmarkRNGExp|BenchmarkRNGPick|BenchmarkControllerRequests|BenchmarkFig1|BenchmarkFig1Shards4)$'

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# -shards: the PDES scaling record. Runs the same figure regeneration
# on one engine and sharded across 4, and writes both wall-clock
# numbers (plus the host's CPU budget, which bounds the achievable
# speedup) to BENCH_8.json. Outputs are bit-identical by construction —
# scripts/shard_smoke.sh checks that; this records only time.
if [ "${1:-}" = "-shards" ]; then
	echo ">> go test -bench Fig1 sequential vs -shards 4 (benchtime=$BENCHTIME)"
	go test -run '^$' -bench '^(BenchmarkFig1|BenchmarkFig1Shards4)$' \
		-benchtime "$BENCHTIME" . | tee "$OUT"
	seq_ns=$(awk '$1 ~ /^BenchmarkFig1-|^BenchmarkFig1$/ {print $3}' "$OUT")
	par_ns=$(awk '$1 ~ /^BenchmarkFig1Shards4/ {print $3}' "$OUT")
	if [ -z "$seq_ns" ] || [ -z "$par_ns" ]; then
		echo "bench.sh: missing Fig1 results in bench output" >&2
		exit 1
	fi
	ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
	awk -v seq="$seq_ns" -v par="$par_ns" -v ncpu="$ncpu" 'BEGIN {
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkFig1\",\n"
		printf "  \"shards\": 4,\n"
		printf "  \"sequential_ns_per_op\": %s,\n", seq
		printf "  \"shards4_ns_per_op\": %s,\n", par
		printf "  \"speedup\": %.3f,\n", seq / par
		printf "  \"host_cpus\": %s\n", ncpu
		printf "}\n"
	}' > BENCH_8.json
	echo ">> wrote BENCH_8.json (speedup $(awk -v s="$seq_ns" -v p="$par_ns" 'BEGIN{printf "%.3f", s/p}')x on $ncpu CPUs)"
	exit 0
fi

echo ">> go test -bench (benchtime=$BENCHTIME)"
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$OUT"

case "${1:-}" in
-check)
	echo '>> pcmapbench -check BENCH_3.json'
	go run ./cmd/pcmapbench -check BENCH_3.json <"$OUT"
	;;
"")
	echo '>> pcmapbench -out BENCH_3.json'
	go run ./cmd/pcmapbench -out BENCH_3.json <"$OUT"
	;;
*)
	echo "usage: scripts/bench.sh [-check]" >&2
	exit 2
	;;
esac

echo 'bench OK'
