#!/bin/sh
# Benchmark entry point, shared by `make bench` and CI.
#
#   scripts/bench.sh            run the hot-path suite and rewrite
#                               BENCH_3.json's "current" section
#   scripts/bench.sh -check     run the suite and fail on allocs/op
#                               regressions against BENCH_3.json
#
# The suite covers the perf-critical substrates (event engine, timers,
# SECDED, PCC, RNG), one end-to-end controller bench, and one full
# figure regeneration — enough to catch both micro-level allocation
# regressions and macro-level slowdowns without CI running every
# figure. BENCHTIME trades precision for CI time.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
PATTERN='^(BenchmarkEngine|BenchmarkEngineTimer|BenchmarkEngineTraceDisabled|BenchmarkSECDEDEncode|BenchmarkSECDEDCorrect|BenchmarkSECDEDDecodeClean|BenchmarkPCCReconstruct|BenchmarkPCCUpdate|BenchmarkRNGUint64|BenchmarkRNGExp|BenchmarkRNGPick|BenchmarkControllerRequests|BenchmarkFig1)$'

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo ">> go test -bench (benchtime=$BENCHTIME)"
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$OUT"

case "${1:-}" in
-check)
	echo '>> pcmapbench -check BENCH_3.json'
	go run ./cmd/pcmapbench -check BENCH_3.json <"$OUT"
	;;
"")
	echo '>> pcmapbench -out BENCH_3.json'
	go run ./cmd/pcmapbench -out BENCH_3.json <"$OUT"
	;;
*)
	echo "usage: scripts/bench.sh [-check]" >&2
	exit 2
	;;
esac

echo 'bench OK'
