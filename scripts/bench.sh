#!/bin/sh
# Benchmark entry point, shared by `make bench` and CI.
#
#   scripts/bench.sh            run the hot-path suite and rewrite
#                               BENCH_3.json's "current" section
#   scripts/bench.sh -check     run the suite and fail on allocs/op
#                               regressions against BENCH_3.json
#   scripts/bench.sh -shards    run Fig1 sequentially and at -shards 4
#                               and record the wall-clock comparison in
#                               BENCH_8.json
#   scripts/bench.sh -footprint run Fig1 with -benchmem and record the
#                               before/after footprint (ns, bytes,
#                               allocs per op vs the BENCH_3.json
#                               baseline) in BENCH_9.json, failing if
#                               the memory-overhaul reductions regress
#                               (allocs/op >= 5x, bytes/op >= 3x)
#
# The suite covers the perf-critical substrates (event engine, timers,
# SECDED, PCC, RNG), one end-to-end controller bench, and one full
# figure regeneration — enough to catch both micro-level allocation
# regressions and macro-level slowdowns without CI running every
# figure. BENCHTIME trades precision for CI time.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
PATTERN='^(BenchmarkEngine|BenchmarkEngineTimer|BenchmarkEngineTraceDisabled|BenchmarkSECDEDEncode|BenchmarkSECDEDCorrect|BenchmarkSECDEDDecodeClean|BenchmarkPCCReconstruct|BenchmarkPCCUpdate|BenchmarkRNGUint64|BenchmarkRNGExp|BenchmarkRNGPick|BenchmarkCacheLoadHit|BenchmarkStoreGetWarm|BenchmarkAnalyzeLineWrite|BenchmarkGeneratorNext|BenchmarkControllerRequests|BenchmarkFig1|BenchmarkFig1Shards4)$'

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# -shards: the PDES scaling record. Runs the same figure regeneration
# on one engine and sharded across 4, and writes both wall-clock
# numbers (plus the host's CPU budget, which bounds the achievable
# speedup) to BENCH_8.json. Outputs are bit-identical by construction —
# scripts/shard_smoke.sh checks that; this records only time.
if [ "${1:-}" = "-shards" ]; then
	echo ">> go test -bench Fig1 sequential vs -shards 4 (benchtime=$BENCHTIME)"
	go test -run '^$' -bench '^(BenchmarkFig1|BenchmarkFig1Shards4)$' \
		-benchtime "$BENCHTIME" . | tee "$OUT"
	seq_ns=$(awk '$1 ~ /^BenchmarkFig1-|^BenchmarkFig1$/ {print $3}' "$OUT")
	par_ns=$(awk '$1 ~ /^BenchmarkFig1Shards4/ {print $3}' "$OUT")
	if [ -z "$seq_ns" ] || [ -z "$par_ns" ]; then
		echo "bench.sh: missing Fig1 results in bench output" >&2
		exit 1
	fi
	ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
	awk -v seq="$seq_ns" -v par="$par_ns" -v ncpu="$ncpu" 'BEGIN {
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkFig1\",\n"
		printf "  \"shards\": 4,\n"
		printf "  \"sequential_ns_per_op\": %s,\n", seq
		printf "  \"shards4_ns_per_op\": %s,\n", par
		printf "  \"speedup\": %.3f,\n", seq / par
		printf "  \"host_cpus\": %s\n", ncpu
		printf "}\n"
	}' > BENCH_8.json
	echo ">> wrote BENCH_8.json (speedup $(awk -v s="$seq_ns" -v p="$par_ns" 'BEGIN{printf "%.3f", s/p}')x on $ncpu CPUs)"
	exit 0
fi

# -footprint: the memory-overhaul record. Reruns the figure
# regeneration with -benchmem and writes its footprint next to the
# frozen pre-overhaul baseline from BENCH_3.json, so the allocs/bytes
# reduction stays visible (and enforced: the overhaul promised >=5x
# fewer allocs/op and >=3x fewer bytes/op, and CI fails if either
# erodes). ns/op is recorded but not gated — wall clock varies with
# the CI machine; allocation counts do not.
if [ "${1:-}" = "-footprint" ]; then
	echo ">> go test -bench Fig1 -benchmem (benchtime=$BENCHTIME)"
	go test -run '^$' -bench '^BenchmarkFig1$' -benchmem \
		-benchtime "$BENCHTIME" . | tee "$OUT"
	eval "$(awk '$1 ~ /^BenchmarkFig1-[0-9]+$/ || $1 == "BenchmarkFig1" {
		for (i = 3; i <= NF; i++) {
			if ($i == "ns/op")     printf "after_ns=%s\n", $(i-1)
			if ($i == "B/op")      printf "after_bytes=%s\n", $(i-1)
			if ($i == "allocs/op") printf "after_allocs=%s\n", $(i-1)
		}
		exit
	}' "$OUT")"
	if [ -z "${after_allocs:-}" ] || [ -z "${after_bytes:-}" ]; then
		echo "bench.sh: missing -benchmem columns in Fig1 output" >&2
		exit 1
	fi
	# The baseline section precedes current in BENCH_3.json, so the
	# first BenchmarkFig1 block is the frozen pre-overhaul footprint.
	eval "$(awk '
		/"BenchmarkFig1"/ {f=1}
		f && /"ns_per_op"/     {gsub(/[^0-9.]/, "", $2); printf "before_ns=%s\n", $2}
		f && /"bytes_per_op"/  {gsub(/[^0-9]/,  "", $2); printf "before_bytes=%s\n", $2}
		f && /"allocs_per_op"/ {gsub(/[^0-9]/,  "", $2); printf "before_allocs=%s\n", $2; exit}
	' BENCH_3.json)"
	if [ -z "${before_allocs:-}" ]; then
		echo "bench.sh: no BenchmarkFig1 baseline in BENCH_3.json" >&2
		exit 1
	fi
	awk -v bns="$before_ns" -v bby="$before_bytes" -v bal="$before_allocs" \
		-v ans="$after_ns" -v aby="$after_bytes" -v aal="$after_allocs" 'BEGIN {
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkFig1\",\n"
		printf "  \"before\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", bns, bby, bal
		printf "  \"after\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", ans, aby, aal
		printf "  \"allocs_reduction\": %.2f,\n", bal / aal
		printf "  \"bytes_reduction\": %.2f,\n", bby / aby
		printf "  \"ns_reduction\": %.2f\n", bns / ans
		printf "}\n"
	}' > BENCH_9.json
	echo ">> wrote BENCH_9.json (allocs $(awk -v b="$before_allocs" -v a="$after_allocs" 'BEGIN{printf "%.1f", b/a}')x, bytes $(awk -v b="$before_bytes" -v a="$after_bytes" 'BEGIN{printf "%.1f", b/a}')x down from baseline)"
	awk -v bby="$before_bytes" -v bal="$before_allocs" \
		-v aby="$after_bytes" -v aal="$after_allocs" 'BEGIN {
		if (bal / aal < 5) {
			printf "bench.sh: Fig1 allocs/op %s is within 5x of the %s baseline\n", aal, bal
			exit 1
		}
		if (bby / aby < 3) {
			printf "bench.sh: Fig1 bytes/op %s is within 3x of the %s baseline\n", aby, bby
			exit 1
		}
	}' >&2
	echo 'footprint OK'
	exit 0
fi

echo ">> go test -bench (benchtime=$BENCHTIME)"
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$OUT"

case "${1:-}" in
-check)
	echo '>> pcmapbench -check BENCH_3.json'
	go run ./cmd/pcmapbench -check BENCH_3.json <"$OUT"
	;;
"")
	echo '>> pcmapbench -out BENCH_3.json'
	go run ./cmd/pcmapbench -out BENCH_3.json <"$OUT"
	;;
*)
	echo "usage: scripts/bench.sh [-check|-shards|-footprint]" >&2
	exit 2
	;;
esac

echo 'bench OK'
