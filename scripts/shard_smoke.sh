#!/bin/sh
# Shard bit-identity smoke test: run the same simulations at -shards 1,
# 2, and 4 and require byte-identical stdout. -shards is an execution
# strategy, not a simulation parameter — the PDES scheduler
# (internal/pdes) merges cross-shard events back into the sequential
# engine's exact (time, seq) order, so any output difference is a
# scheduler bug. Covers both the single adhoc report and a figure's CSV
# series end to end.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

bin="$tmp/pcmapsim"
$GO build -o "$bin" ./cmd/pcmapsim

check() {
    name=$1
    shift
    "$bin" "$@" -shards 1 > "$tmp/$name.ref" 2> /dev/null
    for n in 2 4; do
        "$bin" "$@" -shards $n > "$tmp/$name.s$n" 2> /dev/null
        if ! cmp -s "$tmp/$name.ref" "$tmp/$name.s$n"; then
            echo "shard-smoke: $name output at -shards $n differs from -shards 1" >&2
            diff -u "$tmp/$name.ref" "$tmp/$name.s$n" >&2 || true
            exit 1
        fi
    done
}

# The adhoc report exercises the hardest completion paths (RWoW-RDE:
# RoW reconstruction, deferred verify); the fig1 CSV sweeps workloads
# and both latency-symmetry device models.
check adhoc -exp adhoc -workload MP6 -variant RWoW-RDE -warmup 2000 -measure 20000
check fig1 -exp fig1 -format csv -warmup 500 -measure 4000

# -shards must refuse to combine with the single-engine tracer.
if "$bin" -exp adhoc -shards 2 -trace "$tmp/t.json" -warmup 100 -measure 500 2> /dev/null; then
    echo "shard-smoke: -shards 2 -trace was accepted; want rejection" >&2
    exit 1
fi

echo "shard-smoke: OK (adhoc and fig1 outputs byte-identical at 1/2/4 shards)"
