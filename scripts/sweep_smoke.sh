#!/bin/sh
# Resume smoke test: run a sweep with a result cache, interrupt it with
# SIGINT, re-run with -resume, and require the resumed stdout to be
# byte-identical to an uninterrupted run. Exercises the orchestrator's
# cancellation, atomic cache writes, and resume paths end to end.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

bin="$tmp/pcmapsim"
$GO build -o "$bin" ./cmd/pcmapsim

# Small budgets keep the job fast while still spanning several sims.
args="-exp fig1 -warmup 500 -measure 4000 -par 2"

# Reference: the uninterrupted sweep, no cache involved.
$bin $args > "$tmp/ref.txt"

# Interrupted sweep: SIGINT once the first sim has landed in the cache.
# On a fast machine the sweep may finish before the signal arrives;
# exit 0 is as acceptable as the conventional SIGINT status 130.
$bin $args -cache "$tmp/cache" -v > "$tmp/first.txt" 2> "$tmp/first.log" &
pid=$!
i=0
while [ "$i" -lt 200 ]; do
    grep -q '^ran ' "$tmp/first.log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
    i=$((i + 1))
done
kill -INT "$pid" 2>/dev/null || true
status=0
wait "$pid" || status=$?
case $status in
    0|130) ;;
    *) echo "sweep-smoke: unexpected exit status $status" >&2
       cat "$tmp/first.log" >&2
       exit 1 ;;
esac

# Resume: loads everything the interrupted run completed, simulates only
# what is missing, and must reproduce the reference stdout exactly.
$bin $args -cache "$tmp/cache" -resume > "$tmp/resumed.txt" 2> "$tmp/resume.log"
if ! cmp -s "$tmp/ref.txt" "$tmp/resumed.txt"; then
    echo "sweep-smoke: resumed stdout differs from the uninterrupted run" >&2
    diff -u "$tmp/ref.txt" "$tmp/resumed.txt" >&2 || true
    exit 1
fi
grep '^pcmapsim:' "$tmp/resume.log" >&2 || true
echo "sweep-smoke: OK (first run exit $status, resumed output byte-identical)"
