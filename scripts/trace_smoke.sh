#!/bin/sh
# End-to-end smoke test of the observability layer, shared by
# `make trace-smoke` and CI:
#
#   1. run one adhoc simulation with -trace and one without,
#   2. require byte-identical stdout (tracing must not perturb results),
#   3. validate the emitted Chrome trace_event JSON with
#      `pcmaptrace validate`,
#   4. require the trace to contain per-bank spans and core stall
#      instants (the two instrumentation families the tracer exists for).
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

ARGS="-exp adhoc -workload stream -warmup 2000 -measure 20000"

echo ">> traced run"
go run ./cmd/pcmapsim $ARGS -trace "$TMP/trace.json" >"$TMP/traced.txt"
echo ">> untraced run"
go run ./cmd/pcmapsim $ARGS >"$TMP/plain.txt"

echo ">> diff stdout (traced vs untraced)"
diff "$TMP/traced.txt" "$TMP/plain.txt"

echo '>> pcmaptrace validate'
go run ./cmd/pcmaptrace validate -in "$TMP/trace.json"

echo ">> trace content checks"
grep -q '"name":"chip0.bank0"' "$TMP/trace.json" ||
	{ echo 'missing per-bank track metadata' >&2; exit 1; }
grep -q '"name":"stall.' "$TMP/trace.json" ||
	{ echo 'missing core stall-cause instants' >&2; exit 1; }
grep -q '"ph":"X"' "$TMP/trace.json" ||
	{ echo 'missing duration spans' >&2; exit 1; }

echo 'trace smoke OK'
