#!/bin/sh
# Serve smoke test: start `pcmapsim serve` on an ephemeral port, post
# the same job twice (the second answer must be byte-identical — the
# single-flight/cache path), reject an invalid job with a structured
# 400, scrape the service counters, then SIGTERM the server and require
# a clean drain (exit 0). Exercises the service end to end through the
# real binary, real sockets, and a real signal.
set -eu

GO=${GO:-go}
CURL=${CURL:-curl}
tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

bin="$tmp/pcmapsim"
$GO build -o "$bin" ./cmd/pcmapsim

# Ephemeral port, small default budgets, a disk cache, verbose logging.
"$bin" serve -addr 127.0.0.1:0 -workers 2 -warmup 500 -measure 4000 \
    -cache "$tmp/cache" -drain 30s -v 2> "$tmp/serve.log" &
pid=$!

# The bound address is announced on stderr: "serving on 127.0.0.1:PORT".
addr=""
i=0
while [ "$i" -lt 200 ]; do
    addr=$(sed -n 's/.*serving on \([0-9.:]*\)$/\1/p' "$tmp/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: server died at startup" >&2; cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.05
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve-smoke: never saw the serving address in the log" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
base="http://$addr"

# Liveness and readiness answer before any job has run.
for ep in healthz readyz; do
    code=$($CURL -s -o /dev/null -w '%{http_code}' --max-time 10 "$base/$ep")
    if [ "$code" != "200" ]; then
        echo "serve-smoke: /$ep answered $code, want 200" >&2
        exit 1
    fi
done

# The same job twice: both 200, byte-identical Results JSON (the second
# is served from the memo/disk cache, never re-simulated differently).
job='{"workload":"MP4","variant":"RWoW-RDE","seed":7}'
for n in 1 2; do
    code=$($CURL -s -o "$tmp/res$n.json" -w '%{http_code}' --max-time 120 \
        -X POST -H 'Content-Type: application/json' -d "$job" "$base/v1/jobs")
    if [ "$code" != "200" ]; then
        echo "serve-smoke: job $n answered $code, want 200" >&2
        cat "$tmp/res$n.json" >&2
        exit 1
    fi
done
if ! cmp -s "$tmp/res1.json" "$tmp/res2.json"; then
    echo "serve-smoke: repeated job answers differ (cache/coalesce broken)" >&2
    exit 1
fi
grep -q '"IPCSum"' "$tmp/res1.json" || {
    echo "serve-smoke: response is not Results JSON" >&2
    cat "$tmp/res1.json" >&2
    exit 1
}

# An invalid job is a structured 400, not a crash.
code=$($CURL -s -o "$tmp/bad.json" -w '%{http_code}' --max-time 10 \
    -X POST -H 'Content-Type: application/json' \
    -d '{"workload":"no-such-mix","variant":"Baseline"}' "$base/v1/jobs")
if [ "$code" != "400" ]; then
    echo "serve-smoke: invalid job answered $code, want 400" >&2
    cat "$tmp/bad.json" >&2
    exit 1
fi
grep -q '"kind":"invalid"' "$tmp/bad.json" || {
    echo "serve-smoke: invalid job lacks the typed error body" >&2
    cat "$tmp/bad.json" >&2
    exit 1
}

# The counters account for what just happened.
$CURL -s --max-time 10 "$base/metrics" > "$tmp/metrics.txt"
for want in 'serve_jobs_accepted 2' 'serve_jobs_completed 2' 'serve_jobs_rejected_invalid 1'; do
    grep -q "^$want\$" "$tmp/metrics.txt" || {
        echo "serve-smoke: /metrics missing \"$want\"" >&2
        cat "$tmp/metrics.txt" >&2
        exit 1
    }
done

# SIGTERM drains and exits 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" != "0" ]; then
    echo "serve-smoke: server exited $status after SIGTERM, want 0" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
echo "serve-smoke: OK (repeat answers byte-identical, invalid job 400, clean drain)"
