#!/bin/sh
# Lint entry point, shared by `make lint` and CI.
#
# Always runs:
#   go vet        — the standard vet checks
#   pcmaplint     — the project's custom analyzers (determinism, unit
#                   safety, metrics lifecycle, typed errors, float
#                   comparisons); see DESIGN.md "Simulator invariants"
#
# Runs when installed (CI installs pinned versions; locally they are
# optional because this repository builds offline with no dependencies
# beyond the Go toolchain):
#   staticcheck
#   govulncheck
set -eu

cd "$(dirname "$0")/.."

echo '>> go vet'
go vet ./...

echo '>> pcmaplint'
# pcmaplint runs go vet itself by default; -vet=false avoids doing it twice.
go run ./cmd/pcmaplint -vet=false ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo '>> staticcheck'
	staticcheck ./...
else
	echo '>> staticcheck not installed; skipping (CI runs it)'
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo '>> govulncheck'
	govulncheck ./...
else
	echo '>> govulncheck not installed; skipping (CI runs it)'
fi

echo 'lint OK'
