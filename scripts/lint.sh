#!/bin/sh
# Lint entry point, shared by `make lint` and CI.
#
# Always runs:
#   go vet        — the standard vet checks
#   pcmaplint     — the project's custom analyzers (determinism, unit
#                   safety, metrics lifecycle, typed errors, float
#                   comparisons, lock discipline, goroutine lifecycle,
#                   wall-clock bans, channel ownership); see DESIGN.md
#                   "Simulator invariants" and "Concurrency invariants"
#
# Runs when installed (CI installs pinned versions; locally they are
# optional because this repository builds offline with no dependencies
# beyond the Go toolchain):
#   staticcheck
#   govulncheck
#
# Every tool runs even when an earlier one fails, so one invocation
# reports everything; the exit code is non-zero if any tool failed.
set -u

cd "$(dirname "$0")/.."

failed=''
run() {
	name=$1
	shift
	echo ">> $name"
	if ! "$@"; then
		failed="$failed $name"
	fi
}

run 'go vet' go vet ./...

# pcmaplint runs go vet itself by default; -vet=false avoids doing it
# twice. -summary prints the per-analyzer finding counts.
run 'pcmaplint' go run ./cmd/pcmaplint -vet=false -summary ./...

if command -v staticcheck >/dev/null 2>&1; then
	run 'staticcheck' staticcheck ./...
else
	echo '>> staticcheck not installed; skipping (CI runs it)'
fi

if command -v govulncheck >/dev/null 2>&1; then
	run 'govulncheck' govulncheck ./...
else
	echo '>> govulncheck not installed; skipping (CI runs it)'
fi

if [ -n "$failed" ]; then
	echo "lint FAILED:$failed"
	exit 1
fi
echo 'lint OK'
