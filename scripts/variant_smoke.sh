#!/bin/sh
# Variant-registry smoke test: exercise the open Variant API end to end
# through the CLI. Checks that -list-variants prints the full registry
# (the paper's six plus PALP and RWoW-DCA), that both follow-on
# variants run as adhoc simulations with their variant-specific report
# lines, and that PALP actually overlaps partition accesses on a
# write-heavy mix while RWoW-DCA actually counts SET bits.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

bin="$tmp/pcmapsim"
$GO build -o "$bin" ./cmd/pcmapsim

# The registry listing must name every variant, old and new.
$bin -list-variants > "$tmp/variants.txt"
for v in Baseline RoW-NR WoW-NR RWoW-NR RWoW-RD RWoW-RDE PALP RWoW-DCA; do
    if ! grep -q "^$v " "$tmp/variants.txt"; then
        echo "variant-smoke: -list-variants is missing $v" >&2
        cat "$tmp/variants.txt" >&2
        exit 1
    fi
done

# PALP: a write-heavy mix at small budgets must produce at least one
# read or write served against a busy bank's free partition.
$bin -exp adhoc -workload MP4 -variant PALP -warmup 500 -measure 8000 \
    2> /dev/null > "$tmp/palp.txt"
overlaps=$(awk '/^part overlaps/ {print $3 + $5}' "$tmp/palp.txt")
if [ -z "$overlaps" ]; then
    echo "variant-smoke: PALP adhoc report has no 'part overlaps' line" >&2
    cat "$tmp/palp.txt" >&2
    exit 1
fi
if [ "$overlaps" -le 0 ]; then
    echo "variant-smoke: PALP served 0 partition overlaps on MP4" >&2
    cat "$tmp/palp.txt" >&2
    exit 1
fi

# RWoW-DCA: the same mix must report a nonzero mean SET-bit count per
# write (content analysis ran on the programming path).
$bin -exp adhoc -workload MP4 -variant RWoW-DCA -warmup 500 -measure 8000 \
    2> /dev/null > "$tmp/dca.txt"
sets=$(awk '/^bits per write/ {print $4}' "$tmp/dca.txt")
if [ -z "$sets" ]; then
    echo "variant-smoke: RWoW-DCA adhoc report has no 'bits per write' line" >&2
    cat "$tmp/dca.txt" >&2
    exit 1
fi
if ! awk -v s="$sets" 'BEGIN { exit !(s > 0) }'; then
    echo "variant-smoke: RWoW-DCA reports $sets mean SET bits per write" >&2
    cat "$tmp/dca.txt" >&2
    exit 1
fi

echo "variant-smoke: OK ($overlaps PALP partition overlaps, $sets mean SET bits/write)"
