# Convenience targets; CI runs the same commands (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet + the pcmaplint suite, plus staticcheck and
# govulncheck when installed. See scripts/lint.sh.
lint:
	sh scripts/lint.sh

# Regenerate the paper's headline figures (small budgets; see README
# for full-scale runs).
figures:
	$(GO) run ./cmd/pcmapsim -exp headline
