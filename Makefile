# Convenience targets; CI runs the same commands (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint lint-fix figures bench bench-check bench-shards profile sweep-smoke trace-smoke serve-smoke shard-smoke variant-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet + the pcmaplint suite, plus staticcheck and
# govulncheck when installed. See scripts/lint.sh.
lint:
	sh scripts/lint.sh

# Apply pcmaplint's suggested fixes in place (currently the typederr
# ==/!= -> errors.Is rewrites); run gofmt afterwards if imports moved.
lint-fix:
	$(GO) run ./cmd/pcmaplint -vet=false -fix ./...

# Regenerate the paper's headline figures (small budgets; see README
# for full-scale runs).
figures:
	$(GO) run ./cmd/pcmapsim -exp headline

# Run the hot-path benchmark suite and rewrite BENCH_3.json's
# "current" section (set BENCHTIME=10s for publication-grade numbers).
bench:
	sh scripts/bench.sh

# Same suite, but fail on allocs/op regressions against the committed
# ledger instead of rewriting it. CI runs this.
bench-check:
	sh scripts/bench.sh -check

# Record the sequential-vs-4-shard Fig1 wall-clock comparison in
# BENCH_8.json (see DESIGN.md §13). CI uploads the result as an
# artifact on every push.
bench-shards:
	sh scripts/bench.sh -shards

# End-to-end resume check: run a sweep with -cache, SIGINT it, re-run
# with -resume, and require byte-identical stdout. CI runs this.
sweep-smoke:
	sh scripts/sweep_smoke.sh

# PDES bit-identity check: -shards 1/2/4 must produce byte-identical
# stdout for an adhoc report and a figure's CSV series. CI runs this.
shard-smoke:
	sh scripts/shard_smoke.sh

# Observability smoke test: a traced adhoc run must keep stdout
# byte-identical to an untraced one and emit valid Chrome trace_event
# JSON with per-bank spans and stall instants. CI runs this.
trace-smoke:
	sh scripts/trace_smoke.sh

# End-to-end service check: start `pcmapsim serve`, post jobs over real
# sockets (repeat answers must be byte-identical), reject an invalid
# job, scrape /metrics, and SIGTERM into a clean drain. CI runs this.
serve-smoke:
	sh scripts/serve_smoke.sh

# Variant-registry check: -list-variants names every registered system
# and the follow-on variants (PALP, RWoW-DCA) run end to end with their
# variant-specific metrics nonzero. CI runs this.
variant-smoke:
	sh scripts/variant_smoke.sh

# Capture CPU and heap profiles of a full figure regeneration; inspect
# with `go tool pprof cpu.prof` (see DESIGN.md §8).
profile:
	$(GO) run ./cmd/pcmapsim -exp fig8 -cpuprofile cpu.prof -memprofile mem.prof
	@echo 'wrote cpu.prof and mem.prof; open with: go tool pprof cpu.prof'
